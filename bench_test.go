package tardis

// The benchmark harness regenerating every table and figure of the paper's
// evaluation (§VI). Each BenchmarkFigNN runs the corresponding experiment at
// a laptop scale and logs the same rows/series the paper reports; run with
//
//	go test -bench=. -benchmem
//
// Scales are deliberately small (thousands of series, not billions) — the
// goal is the *shape* of each result (who wins, by what factor), not the
// absolute numbers of the authors' 112-core cluster. cmd/tardis-bench runs
// the same experiments at configurable scale.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/eval"
	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/pack"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"

	ibtpkg "github.com/tardisdb/tardis/internal/ibt"
)

const (
	benchSeriesLen = 64
	benchN         = 4000
	benchBlock     = 500
	benchSeed      = 11
)

func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	dir := filepath.Join(os.TempDir(), "tardis-bench")
	e, err := eval.NewEnv(4, dir)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchSpecs() []eval.DatasetSpec {
	var specs []eval.DatasetSpec
	for _, k := range dataset.Kinds() {
		specs = append(specs, eval.DatasetSpec{
			Kind: k, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock,
		})
	}
	return specs
}

func logTable(b *testing.B, render func(*strings.Builder)) {
	var sb strings.Builder
	render(&sb)
	b.Log("\n" + sb.String())
}

// BenchmarkFig09DatasetDistribution regenerates Fig. 9: the signature
// frequency distribution (skew spectrum) of the four datasets.
func BenchmarkFig09DatasetDistribution(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig9(e, benchSpecs(), 8, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig9(sb, rows) })
}

// BenchmarkFig10IndexConstruction regenerates Fig. 10: clustered index
// construction time, TARDIS vs the DPiSAX baseline, on all four datasets.
func BenchmarkFig10IndexConstruction(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig10(e, benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig10(sb, rows) })
	// The paper's headline: TARDIS builds faster than the baseline.
	var tardis, baseline float64
	for _, r := range rows {
		if r.System == "TARDIS" {
			tardis += r.Total.Seconds()
		} else {
			baseline += r.Total.Seconds()
		}
	}
	b.ReportMetric(baseline/tardis, "baseline/tardis-build-ratio")
}

// BenchmarkFig11GlobalBreakdown regenerates Fig. 11: the global index
// construction stage breakdown.
func BenchmarkFig11GlobalBreakdown(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig11(e, benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig11(sb, rows) })
}

// BenchmarkFig12BloomConstruction regenerates Fig. 12: Bloom filter
// construction overhead across dataset sizes.
func BenchmarkFig12BloomConstruction(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig12(e, []int64{2000, 4000, 8000}, benchSeriesLen, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig12(sb, rows) })
}

// BenchmarkFig13IndexSize regenerates Fig. 13: global and local index sizes
// for both systems.
func BenchmarkFig13IndexSize(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig13(e, benchSpecs())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig13(sb, rows) })
}

// BenchmarkFig14ExactMatch regenerates Fig. 14: exact-match average query
// time for Tardis-BF, Tardis-NoBF, and the baseline.
func BenchmarkFig14ExactMatch(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig14(e, benchSpecs(), 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig14(sb, rows) })
}

// BenchmarkFig15KNNStrategies regenerates Fig. 15: kNN-approximate recall,
// error ratio, and latency for the four strategies across the datasets.
func BenchmarkFig15KNNStrategies(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.KNNRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig15(e, benchSpecs(), 8, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) {
		eval.ReportKNN(sb, "Fig 15: kNN-approximate performance (k=10 scaled; the paper uses k=500 on 400M series — k:partition ratio preserved)", rows)
	})
	var mpa, baseline float64
	var nMPA, nBase int
	for _, r := range rows {
		switch r.Strategy {
		case eval.StratMPA:
			mpa += r.Recall
			nMPA++
		case eval.StratBaseline:
			baseline += r.Recall
			nBase++
		}
	}
	if nMPA > 0 && nBase > 0 && baseline > 0 {
		b.ReportMetric((mpa/float64(nMPA))/(baseline/float64(nBase)), "mpa/baseline-recall-ratio")
	}
}

// BenchmarkFig16KNNSweeps regenerates Fig. 16: kNN performance across
// dataset sizes (left) and k values (right).
func BenchmarkFig16KNNSweeps(b *testing.B) {
	e := benchEnv(b)
	var sizeRows, kRows []eval.KNNRow
	for i := 0; i < b.N; i++ {
		var err error
		sizeRows, err = eval.Fig16Size(e, "randomwalk", benchSeriesLen, []int64{2000, 4000, 8000}, benchSeed, 5, 100)
		if err != nil {
			b.Fatal(err)
		}
		spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
		kRows, err = eval.Fig16K(e, spec, 5, []int{10, 50, 200, 500})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) {
		eval.ReportKNN(sb, "Fig 16 (left): kNN vs dataset size (k=100 scaled)", sizeRows)
		eval.ReportKNN(sb, "Fig 16 (right): kNN vs k (RandomWalk)", kRows)
	})
}

// BenchmarkFig17Sampling regenerates Fig. 17: the impact of the sampling
// percentage on construction time, index size, partition-size estimation,
// and query accuracy.
func BenchmarkFig17Sampling(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig17Row
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: 200}
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig17(e, spec, []float64{0.01, 0.05, 0.1, 0.2, 0.4, 1.0}, 5, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig17(sb, rows) })
}

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationConversion compares the cardinality-conversion cost of
// iSAX-T (string dropRight, Eq. 2) against classic character-level iSAX
// demotion — the micro-operation behind the paper's construction-time gap.
func BenchmarkAblationConversion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	paa := make(ts.Series, 8)
	for i := range paa {
		paa[i] = rng.NormFloat64()
	}
	codec := isaxt.MustNewCodec(8)
	sig, err := codec.FromPAA(paa, 9)
	if err != nil {
		b.Fatal(err)
	}
	word := isax.FromPAA(paa, 9)
	target := []int{1, 2, 3, 4, 1, 2, 3, 4}

	b.Run("isaxt-dropright", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := codec.DropTo(sig, 1+i%8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("isax-char-demote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			word.DemoteTo(target)
		}
	})
}

// BenchmarkAblationTreeShape compares sigTree and iBT shapes (node counts,
// leaf depths) at the same split threshold — the paper's §III-B compactness
// claim.
func BenchmarkAblationTreeShape(b *testing.B) {
	codec := isaxt.MustNewCodec(8)
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(2))
		st, err := sigtree.New(codec, 6, 25)
		if err != nil {
			b.Fatal(err)
		}
		it, err := ibtpkg.New(8, 9, 25, ibtpkg.StatisticsBased)
		if err != nil {
			b.Fatal(err)
		}
		for rid := int64(0); rid < 50000; rid++ {
			s := make(ts.Series, benchSeriesLen)
			for j := range s {
				s[j] = rng.NormFloat64()
			}
			s = s.ZNormalize()
			sig, err := codec.FromSeries(s, 6)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Insert(sigtree.Entry{Sig: sig, RID: rid}); err != nil {
				b.Fatal(err)
			}
			w, err := isax.FromSeries(s, 8, 9)
			if err != nil {
				b.Fatal(err)
			}
			if err := it.Insert(ibtpkg.Entry{Word: w, RID: rid}); err != nil {
				b.Fatal(err)
			}
		}
		ss, is := st.ComputeStats(), it.ComputeStats()
		if i == b.N-1 {
			b.Logf("\nsigTree: nodes=%d internal=%d leaves=%d maxDepth=%d avgDepth=%.2f avgLeafSize=%.1f",
				ss.Nodes, ss.Internal, ss.Leaves, ss.MaxLeafDepth, ss.AvgLeafDepth, ss.AvgLeafSize)
			b.Logf("iBT:     nodes=%d internal=%d leaves=%d maxDepth=%d avgDepth=%.2f avgLeafSize=%.1f conversions=%d",
				is.Nodes, is.Internal, is.Leaves, is.MaxLeafDepth, is.AvgLeafDepth, is.AvgLeafSize, it.Conversions)
			b.ReportMetric(float64(is.Internal)/float64(maxInt(ss.Internal, 1)), "ibt/sigtree-internal-ratio")
			b.ReportMetric(is.AvgLeafDepth/ss.AvgLeafDepth, "ibt/sigtree-depth-ratio")
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblationPacking compares the partition-packing heuristics (FFD is
// the paper's choice) on leaf-size distributions shaped like real builds.
func BenchmarkAblationPacking(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	items := make([]pack.Item, 2000)
	for i := range items {
		// Zipf-ish leaf sizes.
		items[i] = pack.Item{ID: i, Size: int64(rng.ExpFloat64()*400) + 1}
	}
	const capacity = 2000
	for _, alg := range []pack.Algorithm{pack.FirstFitDecreasing, pack.BestFitDecreasing, pack.NextFitDecreasing} {
		b.Run(alg.String(), func(b *testing.B) {
			var res pack.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pack.Pack(items, capacity, alg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Bins)), "bins")
			b.ReportMetric(pack.Utilization(res, capacity), "utilization")
		})
	}
}

// BenchmarkAblationSplitPolicy compares the iBT split policies (round robin
// vs iSAX 2.0 statistics) on tree quality.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	for _, policy := range []ibtpkg.SplitPolicy{ibtpkg.RoundRobin, ibtpkg.StatisticsBased} {
		b.Run(policy.String(), func(b *testing.B) {
			var stats ibtpkg.Stats
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(4))
				tree, err := ibtpkg.New(8, 9, 50, policy)
				if err != nil {
					b.Fatal(err)
				}
				for rid := int64(0); rid < 10000; rid++ {
					s := make(ts.Series, benchSeriesLen)
					for j := range s {
						s[j] = rng.NormFloat64()
					}
					w, err := isax.FromSeries(s.ZNormalize(), 8, 9)
					if err != nil {
						b.Fatal(err)
					}
					if err := tree.Insert(ibtpkg.Entry{Word: w, RID: rid}); err != nil {
						b.Fatal(err)
					}
				}
				stats = tree.ComputeStats()
			}
			b.ReportMetric(stats.AvgLeafDepth, "avg-leaf-depth")
			b.ReportMetric(float64(stats.Nodes), "nodes")
		})
	}
}

// ---- Micro benchmarks of the hot paths ----

// BenchmarkSignatureEncode measures iSAX-T encoding of a series.
func BenchmarkSignatureEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	s := make(ts.Series, 256)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	s = s.ZNormalize()
	codec := isaxt.MustNewCodec(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.FromSeries(s, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEuclidean measures the refine-phase distance with and without
// early abandoning.
func BenchmarkEuclidean(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make(ts.Series, 256)
	y := make(ts.Series, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts.SquaredDistance(x, y)
		}
	})
	b.Run("early-abandon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts.SquaredDistanceEarlyAbandon(x, y, 1.0)
		}
	})
}

// BenchmarkExactMatchQuery measures a single exact-match query end to end
// (partition load included) against a prebuilt index.
func BenchmarkExactMatchQuery(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	ix, err := e.BuildTardis(spec, eval.ScaledTardisConfig(spec), "bench-em")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := dataset.New(dataset.RandomWalk, benchSeriesLen)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.Record(gen, benchSeed, 7).Values.ZNormalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.ExactMatch(q, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNQuery measures the three TARDIS kNN strategies end to end.
func BenchmarkKNNQuery(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	ix, err := e.BuildTardis(spec, eval.ScaledTardisConfig(spec), "bench-knn")
	if err != nil {
		b.Fatal(err)
	}
	queries, err := eval.KNNQueries(spec, 4, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		run  func(ts.Series, int) ([]Neighbor, QueryStats, error)
	}{
		{"target-node", ix.KNNTargetNode},
		{"one-partition", ix.KNNOnePartition},
		{"multi-partitions", ix.KNNMultiPartition},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := tc.run(queries[i%len(queries)], 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildThroughput measures full clustered-index build throughput in
// records/second for both systems.
func BenchmarkBuildThroughput(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	b.Run("tardis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.BuildTardis(spec, eval.ScaledTardisConfig(spec), fmt.Sprintf("tp-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.N)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.BuildBaseline(spec, eval.ScaledBaselineConfig(spec), fmt.Sprintf("tp-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.N)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

// BenchmarkFig14SimulatedHDFS re-runs the exact-match experiment with a
// synthetic 5ms per-partition-load latency, emulating the HDFS block-fetch
// cost that dominates the paper's testbed. Under it, the Bloom filter's
// skipped loads become the paper's ~50% latency cut for Tardis-BF.
func BenchmarkFig14SimulatedHDFS(b *testing.B) {
	e := benchEnv(b)
	var rows []eval.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig14SimulatedHDFS(e, benchSpecs()[:1], 40, 5*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportFig14(sb, rows) })
	var bf, base float64
	for _, r := range rows {
		switch r.Variant {
		case "Tardis-BF":
			bf = r.AvgLatency.Seconds()
		case "Baseline":
			base = r.AvgLatency.Seconds()
		}
	}
	if bf > 0 {
		b.ReportMetric(base/bf, "baseline/tardis-bf-latency-ratio")
	}
}

// BenchmarkTRLocalBreakdown reproduces the technical report's local-index
// construction breakdown (referenced in §VI-B1): shuffle/read/convert versus
// local structure construction versus Bloom encoding, for both systems.
func BenchmarkTRLocalBreakdown(b *testing.B) {
	e := benchEnv(b)
	type row struct {
		system                       string
		dataset                      string
		shuffle, local, bloom, total string
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, spec := range benchSpecs() {
			tix, err := e.BuildTardis(spec, eval.ScaledTardisConfig(spec), "tr-local")
			if err != nil {
				b.Fatal(err)
			}
			ts_ := tix.BuildStats()
			rows = append(rows, row{"TARDIS", string(spec.Kind),
				eval.Dur(ts_.ShuffleReadConvert), eval.Dur(ts_.LocalConstruct),
				eval.Dur(ts_.BloomConstruct), eval.Dur(ts_.LocalTotal)})
			bix, err := e.BuildBaseline(spec, eval.ScaledBaselineConfig(spec), "tr-local")
			if err != nil {
				b.Fatal(err)
			}
			bs := bix.BuildStats()
			rows = append(rows, row{"Baseline", string(spec.Kind),
				eval.Dur(bs.ShuffleReadConvert), eval.Dur(bs.LocalConstruct),
				"-", eval.Dur(bs.LocalTotal)})
		}
	}
	logTable(b, func(sb *strings.Builder) {
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.system, r.dataset, r.shuffle, r.local, r.bloom, r.total})
		}
		eval.PrintTable(sb, "Technical report: local index construction breakdown",
			[]string{"system", "dataset", "read+convert+shuffle", "local build", "bloom", "total"}, cells)
	})
}

// BenchmarkAblationCompression measures the flate partition-compression
// trade: store size on disk versus partition-load (query) latency.
func BenchmarkAblationCompression(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	gen, err := dataset.New(dataset.RandomWalk, benchSeriesLen)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.Record(gen, benchSeed, 3).Values.ZNormalize()

	for _, tc := range []struct {
		name     string
		compress bool
	}{{"plain", false}, {"flate", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := eval.ScaledTardisConfig(spec)
			if tc.compress {
				cfg.Compression = storage.Flate
			}
			ix, err := e.BuildTardis(spec, cfg, "ablation-compress-"+tc.name)
			if err != nil {
				b.Fatal(err)
			}
			size, err := ix.Store.SizeBytes()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.KNNOnePartition(q, 20); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size)/(1<<20), "store-MiB")
		})
	}
}

// BenchmarkWarmQueryCache measures the resident partition cache: the same
// kNN query stream against one prebuilt index, cold (cache disabled — every
// load re-decodes the partition into per-record allocations) versus warm
// (cache enabled and primed — loads are arena-backed cache hits). Run with
// -benchmem to see the allocs/op collapse.
func BenchmarkWarmQueryCache(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	// Compressed partitions, like the paper's HDFS blocks: the cold path pays
	// the inflate+decode on every load, the warm path skips it entirely.
	// Block-sized partitions (1000 records) keep the load cost dominant, as
	// in the paper's testbed where a partition is a full HDFS block.
	cfg := eval.ScaledTardisConfig(spec)
	cfg.Compression = storage.Flate
	cfg.GMaxSize = 1000
	cfg.LMaxSize = 50
	ix, err := e.BuildTardis(spec, cfg, "bench-warm")
	if err != nil {
		b.Fatal(err)
	}
	queries, err := eval.KNNQueries(spec, 4, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	const k = 50

	b.Run("cold", func(b *testing.B) {
		if err := ix.SetCacheBudget(-1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.KNNMultiPartition(queries[i%len(queries)], k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if err := ix.SetCacheBudget(0); err != nil {
			b.Fatal(err)
		}
		for _, q := range queries { // prime
			if _, _, err := ix.KNNMultiPartition(q, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		var hits, misses int
		for i := 0; i < b.N; i++ {
			_, st, err := ix.KNNMultiPartition(queries[i%len(queries)], k)
			if err != nil {
				b.Fatal(err)
			}
			hits += st.CacheHits
			misses += st.CacheMisses
		}
		if hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
		}
	})
}

// BenchmarkAblationPth sweeps the Multi-Partitions Access partition cap
// (paper Table II fixes pth = 40 without studying it): more loaded
// partitions buy recall at linear latency cost, saturating once the sibling
// pool is exhausted.
func BenchmarkAblationPth(b *testing.B) {
	e := benchEnv(b)
	spec := eval.DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: benchSeriesLen, N: benchN, Seed: benchSeed, BlockRecs: benchBlock}
	var rows []eval.PthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationPth(e, spec, 6, 20, []int{1, 2, 4, 8, 16, 40})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, func(sb *strings.Builder) { eval.ReportPth(sb, rows) })
}
