package tardis_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/tardisdb/tardis"
)

// Example demonstrates the core flow: generate, build, query, evaluate.
func Example() {
	work, err := os.MkdirTemp("", "tardis-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, _ := tardis.NewCluster(tardis.ClusterConfig{Workers: 4})
	gen, _ := tardis.NewGenerator(tardis.RandomWalk, 64)
	src, _ := tardis.GenerateStore(gen, 1, 5000, filepath.Join(work, "data"), 500, true)

	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 500
	ix, err := tardis.Build(cl, src, filepath.Join(work, "idx"), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Query with a stored series: it must come back first at distance 0.
	q := tardis.ZNormalize(tardis.GenerateRecord(gen, 1, 77).Values)
	res, _, err := ix.KNNMultiPartition(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest rid=%d dist=%.1f\n", res[0].RID, res[0].Dist)
	// Output: nearest rid=77 dist=0.0
}

// ExampleIndex_ExactMatch shows Bloom-filtered exact matching.
func ExampleIndex_ExactMatch() {
	work, err := os.MkdirTemp("", "tardis-example-em")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, _ := tardis.NewCluster(tardis.ClusterConfig{Workers: 4})
	gen, _ := tardis.NewGenerator(tardis.NOAA, 64)
	src, _ := tardis.GenerateStore(gen, 2, 3000, filepath.Join(work, "data"), 500, true)
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 400
	ix, err := tardis.Build(cl, src, filepath.Join(work, "idx"), cfg)
	if err != nil {
		log.Fatal(err)
	}

	stored := tardis.ZNormalize(tardis.GenerateRecord(gen, 2, 42).Values)
	rids, _, _ := ix.ExactMatch(stored, true)
	found := false
	for _, rid := range rids {
		if rid == 42 {
			found = true
		}
	}
	fmt.Println("stored series found:", found)

	absent := tardis.ZNormalize(tardis.GenerateRecord(gen, 999, 0).Values)
	rids, _, _ = ix.ExactMatch(absent, true)
	fmt.Println("absent series found:", len(rids) > 0)
	// Output:
	// stored series found: true
	// absent series found: false
}

// ExampleStore_ImportCSV shows indexing user-supplied CSV data.
func ExampleStore_ImportCSV() {
	work, err := os.MkdirTemp("", "tardis-example-csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	csvData := strings.NewReader(
		"10,0.1,0.9,0.4,0.7\n" +
			"20,2.5,2.1,2.8,2.2\n" +
			"30,5.0,4.0,3.0,2.0\n")
	st, _ := tardis.CreateStore(filepath.Join(work, "data"), 4)
	n, err := st.ImportCSV(csvData, tardis.CSVOptions{HasRID: true, Normalize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported:", n)
	// Output: imported: 3
}

// ExampleIndex_KNNBatch runs a query batch across the cluster.
func ExampleIndex_KNNBatch() {
	work, err := os.MkdirTemp("", "tardis-example-batch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, _ := tardis.NewCluster(tardis.ClusterConfig{Workers: 4})
	gen, _ := tardis.NewGenerator(tardis.DNA, 64)
	src, _ := tardis.GenerateStore(gen, 3, 4000, filepath.Join(work, "data"), 500, true)
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 400
	ix, err := tardis.Build(cl, src, filepath.Join(work, "idx"), cfg)
	if err != nil {
		log.Fatal(err)
	}

	queries := []tardis.Series{
		tardis.ZNormalize(tardis.GenerateRecord(gen, 3, 5).Values),
		tardis.ZNormalize(tardis.GenerateRecord(gen, 3, 6).Values),
	}
	results, _, err := ix.KNNBatch(queries, 2, tardis.MultiPartitionsAccess)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q0 first rid=%d, q1 first rid=%d\n",
		results[0].Neighbors[0].RID, results[1].Neighbors[0].RID)
	// Output: q0 first rid=5, q1 first rid=6
}
