// Package tardis is the public API of this repository: a from-scratch Go
// implementation of TARDIS, the distributed indexing framework for big time
// series data (Zhang, Alghamdi, Eltabakh, Rundensteiner — ICDE 2019).
//
// TARDIS indexes a dataset of equal-length time series for two similarity
// queries: Exact-Match and approximate k-nearest-neighbors. It converts each
// series to an iSAX-T signature (a transposed, hex-encoded SAX bit matrix
// with word-level variable cardinality), organizes the dataset with a
// centralized global sigTree built from sampled statistics, shuffles the
// data into similarity-clustered partitions (FFD bin packing of sibling
// leaves), and indexes each partition with a local sigTree plus a Bloom
// filter for exact-match short-circuiting.
//
// # Quick start
//
//	cl, _ := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
//	gen, _ := tardis.NewGenerator(tardis.RandomWalk, 256)
//	src, _ := tardis.GenerateStore(gen, 1, 100_000, "data/src", 10_000, true)
//	ix, _ := tardis.Build(cl, src, "data/clustered", tardis.DefaultConfig())
//	neighbors, stats, _ := ix.KNNMultiPartition(query, 100)
//
// The packages under internal/ hold the building blocks (iSAX-T codec,
// sigTree, the DPiSAX/iBT baseline, the Spark-like execution substrate); this
// package re-exports the surface a downstream application needs.
package tardis

import (
	"context"
	"net"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/dpisax"
	"github.com/tardisdb/tardis/internal/dtw"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Series is one time series: an ordered sequence of real values at a fixed
// time granularity.
type Series = ts.Series

// Record pairs a series with its record id.
type Record = ts.Record

// Config carries the TARDIS build parameters (paper Table II).
type Config = core.Config

// Index is a built TARDIS index supporting Exact-Match and kNN-approximate
// queries.
type Index = core.Index

// BuildStats is the construction-time and index-size profile of a build.
type BuildStats = core.BuildStats

// QueryStats profiles a single query (partition loads, candidates, timing).
type QueryStats = core.QueryStats

// Neighbor is one kNN result: record id and Euclidean distance.
type Neighbor = knn.Neighbor

// Cluster is the execution substrate: a Spark-like engine of simulated
// workers providing map, reduce-by-key, shuffle, and broadcast.
type Cluster = cluster.Cluster

// ClusterConfig configures the substrate.
type ClusterConfig = cluster.Config

// Store is a directory of binary partition files — the HDFS-block stand-in.
type Store = storage.Store

// Generator produces one of the paper's evaluation datasets.
type Generator = dataset.Generator

// DatasetKind identifies one of the four evaluation datasets.
type DatasetKind = dataset.Kind

// The four evaluation datasets of the paper's §VI-A.
const (
	RandomWalk = dataset.RandomWalk
	Texmex     = dataset.Texmex
	DNA        = dataset.DNA
	NOAA       = dataset.NOAA
)

// DefaultConfig returns the paper's Table II configuration scaled for a
// single machine.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCluster creates the execution substrate.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Build constructs a TARDIS index over the z-normalized dataset in src,
// writing the clustered partitions into a new store at dstDir.
func Build(cl *Cluster, src *Store, dstDir string, cfg Config) (*Index, error) {
	return core.Build(cl, src, dstDir, cfg)
}

// Load restores a previously saved index from its clustered store directory.
func Load(cl *Cluster, storeDir string) (*Index, error) { return core.Load(cl, storeDir) }

// OpenStore opens an existing dataset store.
func OpenStore(dir string) (*Store, error) { return storage.Open(dir) }

// CreateStore initializes an empty dataset store for fixed-length series.
func CreateStore(dir string, seriesLen int) (*Store, error) {
	return storage.Create(dir, seriesLen)
}

// NewGenerator returns a deterministic generator for one of the evaluation
// datasets at the given series length (the paper uses 256/128/192/64 for
// RandomWalk/Texmex/DNA/NOAA respectively; see DefaultSeriesLen).
func NewGenerator(kind DatasetKind, seriesLen int) (Generator, error) {
	return dataset.New(kind, seriesLen)
}

// DefaultSeriesLen returns the paper's series length for a dataset kind.
func DefaultSeriesLen(kind DatasetKind) int { return dataset.DefaultLen(kind) }

// GenerateStore writes n generated records into a new store at dir in
// blocks of blockRecords each; normalize z-normalizes each series first
// (the paper's setup).
func GenerateStore(g Generator, seed, n int64, dir string, blockRecords int64, normalize bool) (*Store, error) {
	return dataset.WriteStore(g, seed, n, dir, blockRecords, normalize)
}

// GenerateRecord returns record rid of the dataset identified by (g, seed);
// generation is order-independent, so any record can be produced directly.
func GenerateRecord(g Generator, seed, rid int64) Record { return dataset.Record(g, seed, rid) }

// GroundTruthKNN computes the exact k nearest neighbors of q over a store by
// a full parallel scan — the evaluation oracle for recall and error ratio.
func GroundTruthKNN(cl *Cluster, st *Store, q Series, k int) ([]Neighbor, error) {
	return core.GroundTruthKNN(cl, st, q, k)
}

// Recall computes |truth ∩ result| / |truth| (paper Eq. 5).
func Recall(truth, result []Neighbor) float64 { return knn.Recall(truth, result) }

// ErrorRatio computes the mean distance ratio against the ground truth
// (paper Eq. 6); 1.0 is ideal, larger is worse.
func ErrorRatio(truth, result []Neighbor) float64 { return knn.ErrorRatio(truth, result) }

// ZNormalize returns a zero-mean unit-variance copy of a series; queries
// against a normalized dataset must be normalized the same way.
func ZNormalize(s Series) Series { return s.ZNormalize() }

// EuclideanDistance returns the Euclidean distance between two equal-length
// series.
func EuclideanDistance(a, b Series) (float64, error) { return ts.EuclideanDistance(a, b) }

// ---- Baseline system (DPiSAX) ----
//
// The repository ships the evaluation baseline as a first-class citizen so
// downstream users can reproduce the paper's comparisons.

// BaselineConfig carries the DPiSAX baseline's parameters (Table II:
// character-level iSAX with initial cardinality 512, partition table global
// index, binary-tree local indices).
type BaselineConfig = dpisax.Config

// BaselineIndex is a built DPiSAX index.
type BaselineIndex = dpisax.Index

// DefaultBaselineConfig returns the paper's baseline configuration.
func DefaultBaselineConfig() BaselineConfig { return dpisax.DefaultConfig() }

// BuildBaseline constructs the DPiSAX baseline index over a dataset store.
func BuildBaseline(cl *Cluster, src *Store, dstDir string, cfg BaselineConfig) (*BaselineIndex, error) {
	return dpisax.Build(cl, src, dstDir, cfg)
}

// ---- Distributed (multi-process) build over net/rpc ----

// WorkerPool is a set of connected tardis-worker processes.
type WorkerPool = clusterrpc.Pool

// RPCPolicy configures the worker pool's retries, per-call/per-stage
// deadlines, and circuit breaker (see clusterrpc.DefaultPolicy).
type RPCPolicy = clusterrpc.Policy

// DistBuildStats summarizes a distributed build.
type DistBuildStats = clusterrpc.BuildStats

// ServeWorker runs a worker service on the listener until it is closed;
// worker processes (cmd/tardis-worker) call this.
func ServeWorker(ln net.Listener, workerID string) error { return clusterrpc.Serve(ln, workerID) }

// DialWorkers connects a coordinator to worker addresses (host:port) with
// the default fault-tolerance policy. The pool starts degraded as long as at
// least one worker is reachable; use DialWorkersContext for a custom policy.
func DialWorkers(addrs []string) (*WorkerPool, error) { return clusterrpc.Dial(addrs) }

// DialWorkersContext is DialWorkers with an explicit context and policy.
func DialWorkersContext(ctx context.Context, addrs []string, pol RPCPolicy) (*WorkerPool, error) {
	return clusterrpc.DialContext(ctx, addrs, pol)
}

// BuildDistributed runs the TARDIS build across a worker pool sharing this
// coordinator's filesystem, then finalizes the on-disk index so Load can
// restore it. Worker failures mid-build fail over to surviving workers.
func BuildDistributed(ctx context.Context, pool *WorkerPool, srcDir, dstDir, workDir string, cfg Config) (DistBuildStats, error) {
	return clusterrpc.BuildDistributed(ctx, pool, srcDir, dstDir, workDir, cfg)
}

// ---- Batch queries, CSV interchange, incremental maintenance ----

// Strategy selects a kNN algorithm for batch query runs.
type Strategy = core.Strategy

// The four batch strategies: the paper's three approximate accesses plus the
// exact-search extension.
const (
	TargetNodeAccess      = core.TargetNodeAccess
	OnePartitionAccess    = core.OnePartitionAccess
	MultiPartitionsAccess = core.MultiPartitionsAccess
	ExactKNN              = core.ExactKNN
)

// BatchResult is one query's outcome within a batch run.
type BatchResult = core.BatchResult

// CSVOptions configures Store.ImportCSV / Store.ExportCSV.
type CSVOptions = storage.CSVOptions

// IOLatencyModel injects synthetic per-load / per-byte latency into a
// store's reads, emulating distributed-filesystem costs at laptop scale
// (see Store.SetLatency).
type IOLatencyModel = storage.LatencyModel

// LoadWithRepair is Load followed by integrity verification and a parallel
// rebuild of any missing or damaged per-partition structures from the data
// files. It returns the loaded index and the number of partitions repaired.
func LoadWithRepair(cl *Cluster, storeDir string) (*Index, int, error) {
	return core.LoadWithRepair(cl, storeDir)
}

// DTWDistance computes the Sakoe-Chiba banded Dynamic Time Warping distance
// between two equal-length series (band 0 equals the Euclidean distance).
func DTWDistance(a, b Series, band int) (float64, error) { return dtw.Distance(a, b, band) }

// Partition payload encodings for Config.Compression and CreateStore
// variants.
const (
	NoCompression = storage.NoCompression
	Flate         = storage.Flate
)

// CreateStoreCompressed initializes an empty dataset store whose partitions
// are written with the given payload encoding.
func CreateStoreCompressed(dir string, seriesLen int, c storage.Compression) (*Store, error) {
	return storage.CreateCompressed(dir, seriesLen, c)
}

// Subsequences cuts a long series into fixed-length windows every `stride`
// points for whole-matching indexing — the preprocessing behind the paper's
// DNA dataset and the standard way to index a sensor stream. Window i gets
// record id ridBase+i; SubsequencePosition recovers its start offset.
func Subsequences(long Series, window, stride int, ridBase int64, normalize bool) ([]Record, error) {
	return ts.Subsequences(long, window, stride, ridBase, normalize)
}

// SubsequencePosition returns the start offset in the original series of a
// record id produced by Subsequences.
func SubsequencePosition(rid, ridBase int64, stride int) int64 {
	return ts.SubsequencePosition(rid, ridBase, stride)
}

// DistKNN runs a Multi-Partitions kNN query with the partition scans
// distributed across a worker pool sharing the index's filesystem — the
// paper's deployment shape, where Algorithm 1's scans run as cluster tasks.
// It degrades gracefully: partitions lost to worker failures are skipped and
// reported on the returned QueryStats (Degraded, PartitionsSkipped).
func DistKNN(ctx context.Context, pool *WorkerPool, storeDir string, cfg Config, q Series, k int) ([]Neighbor, QueryStats, error) {
	return clusterrpc.DistKNN(ctx, pool, storeDir, cfg, q, k)
}

// DistKNNExact answers an exact kNN query over the worker pool. Worker
// failures fail over to survivors; an unscannable partition fails the query
// — an exact answer is never silently incomplete.
func DistKNNExact(ctx context.Context, pool *WorkerPool, storeDir string, cfg Config, q Series, k int) ([]Neighbor, QueryStats, error) {
	return clusterrpc.DistKNNExact(ctx, pool, storeDir, cfg, q, k)
}

// DistRange answers an exact range query over the worker pool, failing
// loudly like DistKNNExact.
func DistRange(ctx context.Context, pool *WorkerPool, storeDir string, cfg Config, q Series, eps float64) ([]Neighbor, QueryStats, error) {
	return clusterrpc.DistRange(ctx, pool, storeDir, cfg, q, eps)
}
