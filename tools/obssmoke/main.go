// Command obssmoke is the observability end-to-end gate: it builds the real
// tardis-serve and tardis-worker binaries, boots two workers plus a serve
// over a freshly distributed-built miniature index, runs local and
// distributed queries through the HTTP API, then scrapes /metrics and fails
// unless the exposition parses cleanly (internal/obs/expfmt's strict parser,
// histogram invariants included) and every subsystem the telemetry layer
// instruments — server, core, pcache, cluster, rpc, qprof, runtime — is
// present with the queries actually counted. /debug/traces must serve valid
// JSON, and /debug/queries must hold the distributed query's flight record
// with grafted worker sub-scans.
//
// Run it from the module root (CI and `make obs-smoke` do):
//
//	go run ./tools/obssmoke
//
// It exits non-zero with a diagnostic on any failure.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
)

// requiredFamilies is the cross-subsystem coverage contract: one family per
// instrumented layer that must appear in a booted server's exposition.
var requiredFamilies = []string{
	"tardis_server_requests_total",
	"tardis_server_request_duration_seconds",
	"tardis_core_queries_total",
	"tardis_core_query_duration_seconds",
	"tardis_pcache_hits_total",
	"tardis_pcache_budget_bytes",
	"tardis_cluster_stage_duration_seconds",
	"tardis_rpc_calls_total",
	"tardis_obs_spans_dropped_total",
	"tardis_qprof_profiles_total",
	"tardis_runtime_goroutines_count",
	"tardis_runtime_heap_alloc_bytes",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	work, err := os.MkdirTemp("", "tardis-obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// A miniature but real index: enough records for several partitions.
	const (
		n         = 4000
		seriesLen = 32
		seed      = 7
	)
	g, err := dataset.New(dataset.RandomWalk, seriesLen)
	if err != nil {
		return err
	}
	srcDir := filepath.Join(work, "src")
	if _, err := dataset.WriteStore(g, seed, n, srcDir, 500, true); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}

	// Build the real binaries once.
	serveBin := filepath.Join(work, "tardis-serve")
	workerBin := filepath.Join(work, "tardis-worker")
	for bin, pkg := range map[string]string{serveBin: "./cmd/tardis-serve", workerBin: "./cmd/tardis-worker"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Two real worker processes on ephemeral ports; they share the temp dir
	// filesystem with the coordinator, as in a real deployment.
	workerRe := regexp.MustCompile(`listening on ([^\s]+)`)
	var workerAddrs []string
	for i := 1; i <= 2; i++ {
		w := exec.Command(workerBin, "-listen", "127.0.0.1:0", "-id", fmt.Sprintf("w%d", i))
		w.Stderr = os.Stderr
		wout, err := w.StdoutPipe()
		if err != nil {
			return err
		}
		if err := w.Start(); err != nil {
			return fmt.Errorf("starting tardis-worker: %w", err)
		}
		defer func() {
			w.Process.Kill()
			w.Wait()
		}()
		addr, err := awaitAddr(wout, workerRe, "tardis-worker", 30*time.Second)
		if err != nil {
			return err
		}
		workerAddrs = append(workerAddrs, addr)
	}

	// Distributed index build over the worker pool, so the dist strategies
	// have routing metadata to follow.
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 500
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25
	idxDir := filepath.Join(work, "idx")
	pool, err := clusterrpc.DialContext(context.Background(), workerAddrs, clusterrpc.DefaultPolicy())
	if err != nil {
		return fmt.Errorf("worker pool dial: %w", err)
	}
	if _, err := clusterrpc.BuildDistributed(context.Background(), pool, srcDir, idxDir, filepath.Join(work, "staging"), cfg); err != nil {
		pool.Close()
		return fmt.Errorf("distributed build: %w", err)
	}
	pool.Close()

	// Boot the server with the worker pool attached and the flight recorder
	// profiling every query (sample 1) with an always-on slow ring.
	serve := exec.Command(serveBin, "-index", idxDir, "-listen", "127.0.0.1:0",
		"-rpc", strings.Join(workerAddrs, ","),
		"-profile-sample", "1", "-slow-query-ms", "0",
		"-debug-addr", "127.0.0.1:0")
	serve.Stderr = os.Stderr
	stdout, err := serve.StdoutPipe()
	if err != nil {
		return err
	}
	if err := serve.Start(); err != nil {
		return fmt.Errorf("starting tardis-serve: %w", err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()

	addr, err := awaitAddr(stdout, regexp.MustCompile(`on http://([^\s]+)`), "tardis-serve", 30*time.Second)
	if err != nil {
		return err
	}
	base := "http://" + addr
	if err := awaitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// Drive one local query so the per-query counters move, then a real
	// distributed query so the flight recorder has a cross-worker tree.
	q := dataset.Record(g, seed, 42).Values.ZNormalize()
	for _, strategy := range []string{"mpa", "dist-exact"} {
		body, _ := json.Marshal(map[string]any{"series": q, "k": 5, "strategy": strategy})
		resp, err := http.Post(base+"/query/knn", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("query %s: %w", strategy, err)
		}
		qb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query %s: status %d: %s", strategy, resp.StatusCode, qb)
		}
	}

	// The distributed query's flight record must be in /debug/queries with
	// worker sub-trees grafted in.
	resp, err := http.Get(base + "/debug/queries")
	if err != nil {
		return fmt.Errorf("debug/queries: %w", err)
	}
	var payload qprof.DebugPayload
	err = json.NewDecoder(resp.Body).Decode(&payload)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("debug/queries: invalid JSON: %w", err)
	}
	if len(payload.Recent) == 0 || len(payload.Slowest) == 0 {
		return fmt.Errorf("debug/queries: empty rings after profiled queries (recent=%d slowest=%d)",
			len(payload.Recent), len(payload.Slowest))
	}
	var dist *qprof.Snapshot
	for _, s := range payload.Slowest {
		if s.Strategy == "dist-exact" && s.ID != "" {
			dist = s
		}
	}
	if dist == nil {
		return fmt.Errorf("debug/queries: no dist-exact flight record in the slow ring")
	}
	workerScans := 0
	for _, sc := range dist.Scans {
		if sc.Addr != "" && sc.WorkerID != "" {
			workerScans++
		}
	}
	if workerScans == 0 {
		return fmt.Errorf("debug/queries: dist-exact profile has no grafted worker sub-scans: %+v", dist.Scans)
	}
	if len(dist.RPCs) == 0 {
		return fmt.Errorf("debug/queries: dist-exact profile recorded no transport attempts")
	}
	if _, ok := payload.Digests["dist-exact"]; !ok {
		return fmt.Errorf("debug/queries: no dist-exact latency digest: %v", payload.Digests)
	}

	// Scrape and strictly validate the exposition.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics: content-type %q", ct)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(text))
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	for _, fam := range requiredFamilies {
		if _, ok := exp.Families[fam]; !ok {
			return fmt.Errorf("exposition missing family %s", fam)
		}
	}
	if got := sumFamily(exp, "tardis_core_queries_total"); got < 1 {
		return fmt.Errorf("tardis_core_queries_total = %v after a query, want >= 1", got)
	}
	if got := sumFamily(exp, "tardis_server_requests_total"); got < 1 {
		return fmt.Errorf("tardis_server_requests_total = %v after a request, want >= 1", got)
	}

	// The trace endpoint must serve valid JSON even with tracing off.
	resp, err = http.Get(base + "/debug/traces")
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	tb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traces: status %d", resp.StatusCode)
	}
	var traces any
	if err := json.Unmarshal(tb, &traces); err != nil {
		return fmt.Errorf("traces: invalid JSON: %w", err)
	}
	return nil
}

// awaitAddr scans a child's stdout for its announcement line and returns the
// host:port the given regexp captures (the children listen on :0).
func awaitAddr(r io.Reader, re *regexp.Regexp, what string, timeout time.Duration) (string, error) {
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				ch <- result{addr: m[1]}
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("%s exited before announcing its address", what)}
	}()
	select {
	case res := <-ch:
		return res.addr, res.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for %s to announce its address", what)
	}
}

func awaitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sumFamily adds all sample values of one family.
func sumFamily(exp *obs.Exposition, fam string) float64 {
	total := 0.0
	for _, s := range exp.Families[fam].Samples {
		total += s.Value
	}
	return total
}
