// Command obssmoke is the observability end-to-end gate: it builds the real
// tardis-serve binary, boots it over a freshly built miniature index, runs a
// query through the HTTP API, then scrapes /metrics and fails unless the
// exposition parses cleanly (internal/obs/expfmt's strict parser, histogram
// invariants included) and every subsystem the telemetry layer instruments —
// server, core, pcache, cluster, rpc — is present with the query actually
// counted. /debug/traces must serve valid JSON too.
//
// Run it from the module root (CI and `make obs-smoke` do):
//
//	go run ./tools/obssmoke
//
// It exits non-zero with a diagnostic on any failure.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/storage"
)

// requiredFamilies is the cross-subsystem coverage contract: one family per
// instrumented layer that must appear in a booted server's exposition.
var requiredFamilies = []string{
	"tardis_server_requests_total",
	"tardis_server_request_duration_seconds",
	"tardis_core_queries_total",
	"tardis_core_query_duration_seconds",
	"tardis_pcache_hits_total",
	"tardis_pcache_budget_bytes",
	"tardis_cluster_stage_duration_seconds",
	"tardis_rpc_calls_total",
	"tardis_obs_spans_dropped_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	work, err := os.MkdirTemp("", "tardis-obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// A miniature but real index: enough records for several partitions.
	const (
		n         = 4000
		seriesLen = 32
		seed      = 7
	)
	g, err := dataset.New(dataset.RandomWalk, seriesLen)
	if err != nil {
		return err
	}
	srcDir := filepath.Join(work, "src")
	if _, err := dataset.WriteStore(g, seed, n, srcDir, 500, true); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		return err
	}
	src, err := storage.Open(srcDir)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 500
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25
	idxDir := filepath.Join(work, "idx")
	ix, err := core.Build(cl, src, idxDir, cfg)
	if err != nil {
		return fmt.Errorf("index build: %w", err)
	}
	if err := ix.Save(); err != nil {
		return fmt.Errorf("index save: %w", err)
	}

	// Build and boot the real binary on an ephemeral port.
	bin := filepath.Join(work, "tardis-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tardis-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building tardis-serve: %w", err)
	}
	serve := exec.Command(bin, "-index", idxDir, "-listen", "127.0.0.1:0")
	serve.Stderr = os.Stderr
	stdout, err := serve.StdoutPipe()
	if err != nil {
		return err
	}
	if err := serve.Start(); err != nil {
		return fmt.Errorf("starting tardis-serve: %w", err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()

	addr, err := awaitListenAddr(stdout, 30*time.Second)
	if err != nil {
		return err
	}
	base := "http://" + addr
	if err := awaitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// Drive one query so the per-query counters move.
	q := dataset.Record(g, seed, 42).Values.ZNormalize()
	body, _ := json.Marshal(map[string]any{"series": q, "k": 5, "strategy": "mpa"})
	resp, err := http.Post(base+"/query/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	qb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query: status %d: %s", resp.StatusCode, qb)
	}

	// Scrape and strictly validate the exposition.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics: content-type %q", ct)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(text))
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	for _, fam := range requiredFamilies {
		if _, ok := exp.Families[fam]; !ok {
			return fmt.Errorf("exposition missing family %s", fam)
		}
	}
	if got := sumFamily(exp, "tardis_core_queries_total"); got < 1 {
		return fmt.Errorf("tardis_core_queries_total = %v after a query, want >= 1", got)
	}
	if got := sumFamily(exp, "tardis_server_requests_total"); got < 1 {
		return fmt.Errorf("tardis_server_requests_total = %v after a request, want >= 1", got)
	}

	// The trace endpoint must serve valid JSON even with tracing off.
	resp, err = http.Get(base + "/debug/traces")
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	tb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traces: status %d", resp.StatusCode)
	}
	var traces any
	if err := json.Unmarshal(tb, &traces); err != nil {
		return fmt.Errorf("traces: invalid JSON: %w", err)
	}
	return nil
}

// awaitListenAddr scans the child's stdout for the announcement line and
// returns the host:port it resolved (the child listens on :0).
func awaitListenAddr(r io.Reader, timeout time.Duration) (string, error) {
	re := regexp.MustCompile(`on http://([^\s]+)`)
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				ch <- result{addr: m[1]}
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("tardis-serve exited before announcing its address")}
	}()
	select {
	case res := <-ch:
		return res.addr, res.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for tardis-serve to announce its address")
	}
}

func awaitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sumFamily adds all sample values of one family.
func sumFamily(exp *obs.Exposition, fam string) float64 {
	total := 0.0
	for _, s := range exp.Families[fam].Samples {
		total += s.Value
	}
	return total
}
