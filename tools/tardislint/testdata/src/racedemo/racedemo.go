// Package racedemo seeds one deliberate data race for the golden JSON test:
// flush and serve run as separate goroutines and both write pending, but
// only flush holds mu — racecheck must report serve's bare write with both
// witnessing chains.
package racedemo

import "sync"

type queue struct {
	mu      sync.Mutex
	pending int
}

func (q *queue) flush() {
	q.mu.Lock()
	q.pending = 0
	q.mu.Unlock()
}

func (q *queue) serve() {
	q.pending++
}

func Run(q *queue) {
	go q.flush()
	go q.serve()
}
