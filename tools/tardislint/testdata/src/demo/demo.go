// Package demo seeds one violation per flow-sensitive pass, plus a
// suppressed one, so the golden test locks the CLI's output format,
// finding order, and suppression handling.
package demo

import (
	"context"
	"fmt"
	"sync"
)

type counter struct {
	mu   sync.Mutex
	hits int // guarded by mu
}

// Read touches the guarded field without the lock: lockflow.
func (c *counter) Read() int {
	return c.hits
}

// Swallow overwrites an error before any path checks it: errflow.
func Swallow() error {
	err := fmt.Errorf("first")
	err = fmt.Errorf("second")
	return err
}

// Hot formats on an annotated hot path: hotalloc.
//
//tardis:hotpath
func Hot(n int) string {
	return fmt.Sprintf("%d", n)
}

// Quiet is the same access as Read, silenced the sanctioned way.
func Quiet(c *counter) int {
	return c.hits //tardislint:ignore lockflow demo of suppression handling
}

// Stall takes a ctx but drops it on the way to a blocking receive two
// frames down: ctxflow, with the witnessing call chain in the finding.
func Stall(ctx context.Context, ch chan int) int {
	return waitFor(ch)
}

func waitFor(ch chan int) int {
	return <-ch
}
