// Package fixture seeds lockguard violations: methods and functions that
// touch annotated fields without taking the guarding mutex, next to the
// disciplined forms that must stay clean.
package fixture

import "sync"

type counter struct {
	mu   sync.Mutex
	hits int // guarded by mu
	free int
}

func newCounter(n int) *counter {
	return &counter{hits: n} // construction, not access: clean
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *counter) badRead() int {
	return c.hits // WANT
}

func (c *counter) badWrite(n int) {
	c.hits = n // WANT
}

func (c *counter) freeAccess() int {
	return c.free // unannotated field: clean
}

// peek shows the check applies to plain functions, not just methods.
func peek(c *counter) int {
	return c.hits // WANT
}

// underLock is a helper documented to run with the caller's lock held; the
// suppression is the sanctioned escape hatch.
func underLock(c *counter) int {
	return c.hits //tardislint:ignore lockguard caller holds mu
}

type rwbox struct {
	mu sync.RWMutex
	// val is the cached value. // guarded by mu
	val string
}

func (b *rwbox) get() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *rwbox) set(v string) {
	b.mu.Lock()
	b.val = v
	b.mu.Unlock()
}

func (b *rwbox) badGet() string {
	return b.val // WANT
}

type broken struct {
	n int // guarded by missing — no such mutex // WANT
}

func use(b *broken) int { return b.n }
