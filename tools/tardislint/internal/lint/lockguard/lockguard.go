// Package lockguard enforces documented mutex discipline. A struct field
// annotated with a comment containing "guarded by <mu>" (trailing or in the
// field's doc comment), where <mu> is a sync.Mutex or sync.RWMutex field of
// the same struct, may only be used inside functions that lock that mutex:
// the function body must contain a <expr>.<mu>.Lock() or .RLock() call.
//
// The check is flow-insensitive by design — it asks "does this function take
// the lock at all", not "is the lock held at this statement" — which is
// cheap, has no false negatives for the unlocked-method mistake, and matches
// how the annotated fields in internal/server, internal/cluster, and
// internal/cluster/rpc are actually used. Composite-literal initialization
// (&T{field: v}) is construction, not access, and is not flagged. Helpers
// that run with the caller's lock held should be suppressed explicitly with
// //tardislint:ignore lockguard and a reason.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "lockguard"

// Pass is the lockguard analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "flag uses of '// guarded by <mu>' struct fields in functions that never lock <mu>",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)`)

// guard ties an annotated field to the mutex field that protects it.
type guard struct {
	field *types.Var
	mutex *types.Var
	name  string // mutex field name, for messages
}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	guards := map[*types.Var]guard{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			out = append(out, collectGuards(p, st, guards)...)
			return true
		})
	}
	if len(guards) == 0 {
		return out
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFunc(p, fd, guards)...)
		}
	}
	return out
}

// collectGuards records the annotated fields of one struct type, reporting
// annotations that name a missing or non-mutex field.
func collectGuards(p *lint.Package, st *ast.StructType, guards map[*types.Var]guard) []lint.Finding {
	var out []lint.Finding
	mutexByName := map[string]*types.Var{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj, ok := p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := lint.Deref(obj.Type())
			if lint.IsNamed(t, "sync", "Mutex") || lint.IsNamed(t, "sync", "RWMutex") {
				mutexByName[name.Name] = obj
			}
		}
	}
	for _, field := range st.Fields.List {
		text := ""
		if field.Doc != nil {
			text += field.Doc.Text()
		}
		if field.Comment != nil {
			text += field.Comment.Text()
		}
		m := guardedRe.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mu := mutexByName[m[1]]
		if mu == nil {
			out = append(out, p.Findingf(name, field.Pos(),
				"'guarded by %s' names no sync.Mutex/RWMutex field of this struct", m[1]))
			continue
		}
		for _, name := range field.Names {
			if obj, ok := p.Info.Defs[name].(*types.Var); ok {
				guards[obj] = guard{field: obj, mutex: mu, name: m[1]}
			}
		}
	}
	return out
}

// checkFunc flags guarded-field uses in a function that never locks the
// guarding mutex.
func checkFunc(p *lint.Package, fd *ast.FuncDecl, guards map[*types.Var]guard) []lint.Finding {
	locked := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if mu, ok := p.Info.Uses[muSel.Sel].(*types.Var); ok {
			locked[mu] = true
		}
		return true
	})
	var out []lint.Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fieldVar, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[fieldVar]
		if !guarded || locked[g.mutex] {
			return true
		}
		out = append(out, p.Findingf(name, sel.Sel.Pos(),
			"%s is guarded by %s, but %s never locks it", sel.Sel.Name, g.name, funcName(fd)))
		return true
	})
	return out
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			return t + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}
