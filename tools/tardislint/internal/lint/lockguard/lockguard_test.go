package lockguard_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockguard"
)

func TestLockguard(t *testing.T) {
	for _, tc := range []struct {
		name  string
		files []string
	}{
		{"fixture", []string{"testdata/fixture.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, lockguard.Pass, "fixture", tc.files...)
		})
	}
}
