package goroleak_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/goroleak"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestGoroleak(t *testing.T) {
	for _, tc := range []struct {
		name  string
		files []string
	}{
		{"fixture", []string{"testdata/fixture.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, goroleak.Pass, "fixture", tc.files...)
		})
	}
}
