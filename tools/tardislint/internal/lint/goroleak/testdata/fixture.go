// Package fixture seeds goroleak violations: loop-variable capture and
// unsupervised fan-out, next to the managed forms that must stay clean.
package fixture

import (
	"context"
	"sync"
)

func work(int) {}

// badCapture launches goroutines that capture the loop variable instead of
// receiving it as an argument.
func badCapture(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // WANT
			defer wg.Done()
			work(it)
		}()
	}
	wg.Wait()
}

// badUnmanaged fans goroutines out of a loop with nothing to bound their
// lifetime.
func badUnmanaged(items []int) {
	for i := 0; i < len(items); i++ {
		go work(items[i]) // WANT
	}
}

func goodWaitGroup(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			work(v)
		}(it)
	}
	wg.Wait()
}

func goodContext(ctx context.Context, items []int) {
	for _, it := range items {
		go func(v int) {
			select {
			case <-ctx.Done():
			default:
				work(v)
			}
		}(it)
	}
}

// goodSingle launches one goroutine outside any loop and joins it.
func goodSingle() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work(0)
	}()
	<-done
}

func suppressed(items []int) {
	for i := 0; i < len(items); i++ {
		go work(items[i]) //tardislint:ignore goroleak fixture exercises the escape hatch
	}
}
