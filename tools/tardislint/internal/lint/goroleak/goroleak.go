// Package goroleak flags goroutine launches in long-lived server/RPC code
// that are easy to leak or mis-scope:
//
//  1. A `go func(){...}()` whose body captures an iteration variable of an
//     enclosing loop instead of receiving it as an argument. Go 1.22 made
//     per-iteration capture safe, but the explicit-argument form keeps the
//     data flow visible and survives copy-paste into older-module code.
//  2. A `go` statement inside a loop, in a function that shows no lifecycle
//     management at all — no sync.WaitGroup call and no context.Context in
//     scope. An accept- or dispatch-loop that fans out unsupervised
//     goroutines has no way to drain them on shutdown; the race detector
//     only catches this when the leak also races.
//
// Test files are exempt (tests are not long-lived servers); deliberate
// process-lifetime goroutines should be suppressed with
// //tardislint:ignore goroleak and a reason.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "goroleak"

// Pass is the goroleak analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "flag goroutines that capture loop variables or fan out of loops without WaitGroup/context",
	Run:  run,
}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFunc(p, fd)...)
		}
	}
	return out
}

func checkFunc(p *lint.Package, fd *ast.FuncDecl) []lint.Finding {
	managed := hasWaitGroupCall(p, fd.Body) || usesContext(p, fd)
	var out []lint.Finding
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var loops []ast.Node
		for _, m := range stack[:len(stack)-1] {
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, m)
			}
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			for _, name := range capturedLoopVars(p, lit, loopVarObjects(p, loops)) {
				out = append(out, p.Findingf(name, g.Pos(),
					"goroutine captures loop variable %q; pass it as a call argument so the hand-off is explicit", name))
			}
		}
		if len(loops) > 0 && !managed {
			out = append(out, p.Findingf(name, g.Pos(),
				"goroutine started in a loop, but %s has no sync.WaitGroup or context.Context to bound its lifetime", fd.Name.Name))
		}
		return true
	})
	return out
}

// loopVarObjects collects the iteration variables declared by the given
// for/range statements' clauses (not their bodies).
func loopVarObjects(p *lint.Package, loops []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, n := range loops {
		switch s := n.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				ast.Inspect(s.Init, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						addIdent(id)
					}
					return true
				})
			}
		case *ast.RangeStmt:
			addIdent(s.Key)
			addIdent(s.Value)
		}
	}
	return vars
}

// capturedLoopVars returns the names of enclosing-loop iteration variables
// referenced inside the literal's body (call arguments are evaluated in the
// launching goroutine and do not count).
func capturedLoopVars(p *lint.Package, lit *ast.FuncLit, loopVars map[types.Object]bool) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || seen[obj] || !loopVars[obj] {
			return true
		}
		seen[obj] = true
		names = append(names, id.Name)
		return true
	})
	return names
}

// hasWaitGroupCall reports whether the body calls any method on a
// sync.WaitGroup value.
func hasWaitGroupCall(p *lint.Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if t := p.TypeOf(sel.X); t != nil && lint.IsNamed(lint.Deref(t), "sync", "WaitGroup") {
			found = true
			return false
		}
		return true
	})
	return found
}

// usesContext reports whether the function mentions any context.Context
// value (parameter or local).
func usesContext(p *lint.Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if t := p.TypeOf(id); t != nil && lint.IsNamed(t, "context", "Context") {
			found = true
			return false
		}
		return true
	})
	return found
}
