// Package lockorder detects potential deadlocks from inconsistent lock
// acquisition order across call chains.
//
// It builds the global lock-acquisition-order graph from the callgraph
// summaries: an edge A → B means some function acquires B (directly or
// through any chain of calls, including stored callbacks) while already
// holding A. Mutexes are identified per type — every instance of
// "pkg.Type.field" shares one identity, matching the `guarded by`
// annotation convention — so an AB/BA inversion between two instances of
// the same pair of types is caught even though no single execution touches
// both orders. Any cycle in the graph is reported once, with the witnessing
// call chain for every hop spelled out, so the report shows both orders of
// the classic AB/BA deadlock.
//
// Goroutine spawns (`go f()`) do not extend the holding context: locks held
// at the spawn are not ordered before locks the goroutine takes. The spawned
// function is still analyzed on its own.
package lockorder

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
)

// Pass is the lockorder analyzer.
var Pass = lint.Pass{
	Name:       "lockorder",
	Doc:        "lock-acquisition-order cycles across call chains (potential deadlock)",
	RunProgram: run,
}

func run(pkgs []*lint.Package) []lint.Finding {
	g := callgraph.Build(pkgs)
	edges := g.Edges()
	if len(edges) == 0 {
		return nil
	}
	adj := map[callgraph.LockID][]*callgraph.Edge{}
	var locks []callgraph.LockID
	seen := map[callgraph.LockID]bool{}
	addLock := func(id callgraph.LockID) {
		if !seen[id] {
			seen[id] = true
			locks = append(locks, id)
		}
	}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		addLock(e.From)
		addLock(e.To)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}

	var out []lint.Finding
	for _, comp := range lockSCCs(locks, adj) {
		if len(comp) < 2 {
			continue
		}
		inComp := map[callgraph.LockID]bool{}
		for _, id := range comp {
			inComp[id] = true
		}
		cycle := shortestCycle(comp[0], adj, inComp)
		if len(cycle) == 0 {
			continue
		}
		out = append(out, report(cycle))
	}
	return out
}

// lockSCCs returns the strongly connected components of the lock graph,
// each sorted, in deterministic order.
func lockSCCs(locks []callgraph.LockID, adj map[callgraph.LockID][]*callgraph.Edge) [][]callgraph.LockID {
	index := map[callgraph.LockID]int{}
	low := map[callgraph.LockID]int{}
	onStack := map[callgraph.LockID]bool{}
	var stack []callgraph.LockID
	var comps [][]callgraph.LockID
	next := 0

	type frame struct {
		id callgraph.LockID
		ci int
	}
	for _, start := range locks {
		if _, ok := index[start]; ok {
			continue
		}
		var frames []frame
		push := func(id callgraph.LockID) {
			index[id] = next
			low[id] = next
			next++
			stack = append(stack, id)
			onStack[id] = true
			frames = append(frames, frame{id: id})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := adj[f.id]
			if f.ci < len(succ) {
				w := succ[f.ci].To
				f.ci++
				if _, ok := index[w]; !ok {
					push(w)
				} else if onStack[w] && index[w] < low[f.id] {
					low[f.id] = index[w]
				}
				continue
			}
			id := f.id
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].id
				if low[id] < low[p] {
					low[p] = low[id]
				}
			}
			if low[id] == index[id] {
				var comp []callgraph.LockID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == id {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// shortestCycle finds a minimal cycle through start inside one SCC via BFS
// over the (sorted) edges, returning the edge sequence start → … → start.
func shortestCycle(start callgraph.LockID, adj map[callgraph.LockID][]*callgraph.Edge, inComp map[callgraph.LockID]bool) []*callgraph.Edge {
	type pathTo struct {
		edge *callgraph.Edge
		prev callgraph.LockID
	}
	visited := map[callgraph.LockID]pathTo{}
	queue := []callgraph.LockID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if !inComp[e.To] {
				continue
			}
			if e.To == start {
				// Unwind cur back to start, then append the closing edge.
				var rev []*callgraph.Edge
				for at := cur; at != start; {
					p := visited[at]
					rev = append(rev, p.edge)
					at = p.prev
				}
				var cycle []*callgraph.Edge
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				return append(cycle, e)
			}
			if _, ok := visited[e.To]; ok {
				continue
			}
			visited[e.To] = pathTo{edge: e, prev: cur}
			queue = append(queue, e.To)
		}
	}
	return nil
}

// report renders one cycle as a finding, anchored at the acquisition that
// closes the first edge, with every hop's witnessing call chain.
func report(cycle []*callgraph.Edge) lint.Finding {
	var names []string
	for _, e := range cycle {
		names = append(names, e.FromDisplay)
	}
	names = append(names, cycle[0].FromDisplay)

	var hops []string
	var chain []lint.Step
	for _, e := range cycle {
		hops = append(hops, fmt.Sprintf("%s is acquired while holding %s via %s",
			e.ToDisplay, e.FromDisplay, callgraph.RenderChain(e.Chain)))
		chain = append(chain, e.Chain...)
	}
	first := cycle[0]
	anchor := first.Chain[len(first.Chain)-1].Pos
	return lint.Finding{
		Pos:   anchor,
		Chain: chain,
		Message: fmt.Sprintf("potential deadlock: lock order cycle %s: %s",
			strings.Join(names, " -> "), strings.Join(hops, "; ")),
	}
}
