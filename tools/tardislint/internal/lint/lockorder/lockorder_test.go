package lockorder_test

import (
	"strings"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockorder"
)

func TestFixture(t *testing.T) {
	linttest.Check(t, lockorder.Pass, "fixture", "testdata/fixture.go")
}

// TestWitnessChains proves the acceptance contract: the seeded AB/BA
// deadlock and the callback-mediated cycle are each reported with both
// witnessing call chains spelled out.
func TestWitnessChains(t *testing.T) {
	pkg, err := lint.NewLoader().LoadFiles("fixture", "testdata/fixture.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := lint.Run([]lint.Pass{lockorder.Pass}, []*lint.Package{pkg})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%v", len(findings), findings)
	}

	abba := findings[0].Message
	for _, want := range []string{
		"potential deadlock",
		"accounts.mu -> audit.mu -> accounts.mu",
		// First witness: Transfer holds accounts.mu, record locks audit.mu.
		"audit.mu is acquired while holding accounts.mu via fixture.Transfer",
		"fixture.(*audit).record",
		// Second witness: Report holds audit.mu, readBalance locks accounts.mu.
		"accounts.mu is acquired while holding audit.mu via fixture.Report",
		"fixture.readBalance",
	} {
		if !strings.Contains(abba, want) {
			t.Errorf("AB/BA finding missing %q:\n%s", want, abba)
		}
	}

	cb := findings[1].Message
	for _, want := range []string{
		"sink.mu -> source.mu -> sink.mu",
		// The callback-mediated order: run holds source.mu and invokes the
		// closure stored in wire, which locks sink.mu through push.
		"sink.mu is acquired while holding source.mu via fixture.run",
		"fixture.wire$0",
		"fixture.(*sink).push",
		// The inverse order through drain -> pause.
		"source.mu is acquired while holding sink.mu via fixture.(*sink).drain",
		"fixture.(*source).pause",
	} {
		if !strings.Contains(cb, want) {
			t.Errorf("callback-cycle finding missing %q:\n%s", want, cb)
		}
	}

	for _, f := range findings {
		if len(f.Chain) == 0 {
			t.Errorf("finding at %v has no structured chain", f.Pos)
		}
	}
}
