// Package fixture seeds the lock-order cycles the lockorder pass must
// report — the classic AB/BA inversion and one mediated by a stored
// callback — next to a consistently ordered pair that must stay clean. The
// markers sit on the acquisition that closes each reported cycle's first
// edge (the canonical anchor lockorder picks).
package fixture

import "sync"

// --- seeded AB/BA deadlock ---------------------------------------------------

type accounts struct {
	mu      sync.Mutex
	balance int // guarded by mu
}

type audit struct {
	mu  sync.Mutex
	log []string // guarded by mu
}

// Transfer establishes accounts.mu -> audit.mu.
func Transfer(a *accounts, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance--
	l.record("transfer")
}

func (l *audit) record(s string) {
	l.mu.Lock() // WANT
	defer l.mu.Unlock()
	l.log = append(l.log, s)
}

// Report establishes the inverse order audit.mu -> accounts.mu two frames
// down, closing the cycle.
func Report(a *accounts, l *audit) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return readBalance(a)
}

func readBalance(a *accounts) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance
}

// --- cycle mediated by a stored callback ------------------------------------

type source struct {
	mu   sync.Mutex
	emit func() // invoked with mu held
}

type sink struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// wire stores the callback: invoking it locks sink.mu.
func wire(s *source, k *sink) {
	s.emit = func() { k.push() }
}

// run holds source.mu across the stored callback: source.mu -> sink.mu.
func run(s *source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit()
}

func (k *sink) push() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.n++
}

// drain establishes the inverse order sink.mu -> source.mu.
func (k *sink) drain(s *source) {
	k.mu.Lock()
	defer k.mu.Unlock()
	s.pause()
}

func (s *source) pause() {
	s.mu.Lock() // WANT
	defer s.mu.Unlock()
}

// --- consistent order stays clean -------------------------------------------

type registry struct {
	mu sync.Mutex
}

type journal struct {
	mu sync.Mutex
}

// SaveBoth and SaveAgain acquire registry.mu before journal.mu on every
// path: one global order, no cycle, no finding.
func SaveBoth(r *registry, j *journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.append()
}

func (j *journal) append() {
	j.mu.Lock()
	defer j.mu.Unlock()
}

func SaveAgain(r *registry, j *journal) {
	r.mu.Lock()
	j.mu.Lock()
	j.mu.Unlock()
	r.mu.Unlock()
}
