// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — standard library only, like the rest of tardislint —
// and provides a forward-worklist dataflow solver over them (dataflow.go).
//
// A Graph is a set of basic blocks. Each block carries the statements and
// control expressions it executes, in order: the condition of an if or for
// lives in the block that evaluates it, a switch tag and its case
// expressions live in the dispatching block, and a range statement
// contributes a synthesized assignment (key, value := range-expr) to the
// loop head so dataflow passes see the per-iteration definitions. Composite
// statements (if/for/switch/select bodies) never appear inside a block's
// Nodes — only their leaves do — so passes can ast.Inspect every node of a
// block without double-visiting nested control flow.
//
// Edges cover if/else, for and range loops (with back edges), switch and
// type switch (including fallthrough), select, goto and labeled
// break/continue, and early exits: return, panic, os.Exit, and log.Fatal*
// all jump to the synthetic Exit block. Defer statements stay in their
// block in syntactic order; passes that care about exit-time effects (e.g.
// lockflow's deferred-unlock tracking) interpret them there.
//
// Code after a terminator still gets blocks — they are simply unreachable
// from the entry and have Live == false. Build computes liveness so passes
// can skip dead code (go vet already reports it).
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order,
	// roughly reverse postorder for structured code).
	Index int
	// Nodes holds the simple statements and control expressions executed
	// by this block, in execution order.
	Nodes []ast.Node
	// Succs and Preds are the flow edges.
	Succs []*Block
	Preds []*Block
	// Live reports whether the block is reachable from the entry block.
	Live bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the synthetic sink: every return, panic, and fall-off-the-end
	// path edges into it. It holds no nodes.
	Exit   *Block
	Blocks []*Block
}

// Build constructs the CFG of a function body. It never mutates the AST it
// is given; the only synthesized nodes are assignment wrappers for range
// headers, which reuse the original ident/expr nodes so go/types lookups
// on them still work.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock()
	g.Exit = &Block{} // indexed last, below, so block order reads naturally
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.addEdge(b.cur, g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	markLive(g.Entry)
	return g
}

func markLive(b *Block) {
	if b.Live {
		return
	}
	b.Live = true
	for _, s := range b.Succs {
		markLive(s)
	}
}

// labelInfo tracks the blocks associated with one label: the goto/entry
// target, and the break/continue targets when the label names a loop,
// switch, or select.
type labelInfo struct {
	target *Block
	brk    *Block
	cont   *Block
}

type builder struct {
	g   *Graph
	cur *Block // nil after a terminator; next statement starts a dead block

	labels       map[string]*labelInfo
	pendingLabel *labelInfo // label immediately preceding the next loop/switch

	breakStack    []*Block
	continueStack []*Block
	fallthroughTo *Block // next case body, inside a switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a fresh (dead) block if
// the previous statement terminated control flow.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.addEdge(b.cur, target)
	}
	b.cur = nil
}

// linkTo continues flow into target: edge from the current block (if live)
// and make target current.
func (b *builder) linkTo(target *Block) {
	if b.cur != nil {
		b.addEdge(b.cur, target)
	}
	b.cur = target
}

// takeLabel consumes the pending label (if any) so a loop/switch/select can
// register its break/continue targets under it.
func (b *builder) takeLabel() *labelInfo {
	l := b.pendingLabel
	b.pendingLabel = nil
	return l
}

func (b *builder) labelInfoFor(name string) *labelInfo {
	l := b.labels[name]
	if l == nil {
		l = &labelInfo{target: b.newBlock()}
		b.labels[name] = l
	}
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch invalidates a pending
	// label's break/continue registration; the label target itself stays.
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
	default:
		b.pendingLabel = nil
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		l := b.labelInfoFor(s.Label.Name)
		b.linkTo(l.target)
		b.pendingLabel = l
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.jump(b.g.Exit)
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	if b.cur == nil {
		b.cur = b.newBlock() // dead if: keep structure anyway
	}
	cond := b.cur
	then := b.newBlock()
	b.addEdge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock()
		b.addEdge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	join := b.newBlock()
	if !hasElse {
		b.addEdge(cond, join)
	}
	if thenEnd != nil {
		b.addEdge(thenEnd, join)
	}
	if elseEnd != nil {
		b.addEdge(elseEnd, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.add(s.Init)
	head := b.newBlock()
	b.linkTo(head)
	b.add(s.Cond)
	head = b.cur // add may not change cur, but keep the invariant explicit
	body := b.newBlock()
	exit := b.newBlock()
	b.addEdge(head, body)
	if s.Cond != nil {
		b.addEdge(head, exit)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	if label != nil {
		label.brk, label.cont = exit, cont
	}
	b.breakStack = append(b.breakStack, exit)
	b.continueStack = append(b.continueStack, cont)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.addEdge(b.cur, cont)
	}
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.addEdge(b.cur, head)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.linkTo(head)
	// Synthesize "key, value := x" (reusing the original nodes) so passes
	// see the per-iteration definitions and the range operand use.
	if s.Key != nil {
		lhs := []ast.Expr{s.Key}
		if s.Value != nil {
			lhs = append(lhs, s.Value)
		}
		b.add(&ast.AssignStmt{Lhs: lhs, TokPos: s.For, Tok: s.Tok, Rhs: []ast.Expr{s.X}})
	} else {
		b.add(s.X)
	}
	head = b.cur
	body := b.newBlock()
	exit := b.newBlock()
	b.addEdge(head, body)
	b.addEdge(head, exit)
	if label != nil {
		label.brk, label.cont = exit, head
	}
	b.breakStack = append(b.breakStack, exit)
	b.continueStack = append(b.continueStack, head)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.addEdge(b.cur, head)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = exit
}

// switchStmt covers both expression switches (tag != nil, fallthrough
// allowed) and type switches (assign != nil).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFallthrough bool) {
	label := b.takeLabel()
	b.add(init)
	b.add(tag)
	b.add(assign)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	exit := b.newBlock()
	if label != nil {
		label.brk = exit
	}
	b.breakStack = append(b.breakStack, exit)

	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated by the dispatching block.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.addEdge(head, bodies[i])
	}
	if !hasDefault {
		b.addEdge(head, exit)
	}
	for i, cc := range clauses {
		savedFT := b.fallthroughTo
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.addEdge(b.cur, exit)
		}
		b.fallthroughTo = savedFT
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	exit := b.newBlock()
	if label != nil {
		label.brk = exit
	}
	b.breakStack = append(b.breakStack, exit)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.addEdge(head, body)
		b.cur = body
		b.add(cc.Comm)
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.addEdge(b.cur, exit)
		}
	}
	// An empty select{} blocks forever: head keeps no successors and exit
	// stays unreachable, which is exactly the runtime behavior.
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = exit
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.brk != nil {
				b.add(s)
				b.jump(l.brk)
				return
			}
		} else if n := len(b.breakStack); n > 0 {
			b.add(s)
			b.jump(b.breakStack[n-1])
			return
		}
	case token.CONTINUE:
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.cont != nil {
				b.add(s)
				b.jump(l.cont)
				return
			}
		} else if n := len(b.continueStack); n > 0 {
			b.add(s)
			b.jump(b.continueStack[n-1])
			return
		}
	case token.GOTO:
		if s.Label != nil {
			b.add(s)
			b.jump(b.labelInfoFor(s.Label.Name).target)
			return
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.add(s)
			b.jump(b.fallthroughTo)
			return
		}
	}
	// Malformed branch (e.g. break outside a loop in a fuzzed body): treat
	// as a terminator to the exit rather than panicking.
	b.add(s)
	b.jump(b.g.Exit)
}

// isTerminalCall reports whether a call statement never returns: the panic
// builtin and, by conventional name, os.Exit / log.Fatal* / runtime.Goexit.
// Name-based matching is deliberate — the cfg package is type-free.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
