package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/cfg"
)

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	g, err := tryBuild(body)
	if err != nil {
		t.Fatalf("parsing body: %v", err)
	}
	return g
}

func tryBuild(body string) (*cfg.Graph, error) {
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.Build(fd.Body), nil
}

// liveBlocks returns the blocks reachable from the entry.
func liveBlocks(g *cfg.Graph) []*cfg.Block {
	var out []*cfg.Block
	for _, b := range g.Blocks {
		if b.Live {
			out = append(out, b)
		}
	}
	return out
}

func hasBackEdge(g *cfg.Graph) bool {
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				return true
			}
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := x\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if len(g.Exit.Preds) == 0 {
		t.Error("exit has no predecessors; fall-off-the-end edge missing")
	}
}

func TestIfElseJoin(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	// entry(cond), then, else, join, exit: all live.
	if got := len(liveBlocks(g)); got < 5 {
		t.Errorf("live blocks = %d, want >= 5", got)
	}
	if hasBackEdge(g) {
		t.Error("if/else produced a back edge")
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g := build(t, "return\nx := 1\n_ = x")
	dead := 0
	for _, b := range g.Blocks {
		if !b.Live && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Error("statements after return should land in a dead block")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\n_ = i\n}")
	if !hasBackEdge(g) {
		t.Error("for loop has no back edge")
	}
	if len(g.Exit.Preds) == 0 {
		t.Error("loop exit does not reach function exit")
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := build(t, "for {\n}\nx := 1\n_ = x")
	for _, b := range g.Blocks {
		if b.Live && len(b.Nodes) > 0 {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
						t.Error("code after for{} should be unreachable")
					}
				}
			}
		}
	}
}

func TestRangeSynthesizesAssign(t *testing.T) {
	g := build(t, "s := []int{1}\nfor _, v := range s {\n_ = v\n}")
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("range header did not synthesize a key,value assignment")
	}
	if !hasBackEdge(g) {
		t.Error("range loop has no back edge")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\nfallthrough\ncase 2:\nx = 3\ndefault:\nx = 4\n}\n_ = x")
	// The fallthrough edge links case 1's body to case 2's body: some live
	// non-head block must have a live non-exit successor holding x = 3.
	if got := len(liveBlocks(g)); got < 5 {
		t.Errorf("live blocks = %d, want >= 5", got)
	}
}

func TestSwitchNoDefaultReachesExit(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nreturn\n}\n_ = x")
	// Without a default, the dispatch block must edge past the cases.
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit preds = %d, want >= 2 (return and fall-through)", len(g.Exit.Preds))
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}")
	if !hasBackEdge(g) {
		t.Error("backward goto produced no back edge")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}\nx := 1\n_ = x")
	// break outer must make the code after the loops reachable.
	reached := false
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					reached = true
				}
			}
		}
	}
	if !reached {
		t.Error("labeled break did not reach the statement after the loop")
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x")
	// The panic block's only successor is the exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("panic block succs = %d, want exactly the exit", len(b.Succs))
				}
			}
		}
	}
}

func TestSelectClauses(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n_ = v\ncase ch <- 1:\n}")
	if got := len(liveBlocks(g)); got < 4 {
		t.Errorf("live blocks = %d, want >= 4", got)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "select {\n}\nx := 1\n_ = x")
	for _, p := range g.Exit.Preds {
		if p.Live {
			t.Error("empty select should make the exit unreachable from live code")
		}
	}
}

func TestEdgeSymmetry(t *testing.T) {
	g := build(t, `
	for i := 0; i < 4; i++ {
		switch {
		case i == 1:
			continue
		case i == 2:
			break
		default:
			goto done
		}
	}
done:
	return`)
	checkInvariants(t, g)
}

// checkInvariants asserts the structural guarantees Build makes; the fuzz
// target reuses it.
func checkInvariants(t *testing.T, g *cfg.Graph) {
	t.Helper()
	member := map[*cfg.Block]bool{}
	for _, b := range g.Blocks {
		if b == nil {
			t.Fatal("nil block in Blocks")
		}
		member[b] = true
	}
	if !member[g.Entry] || !member[g.Exit] {
		t.Fatal("entry/exit not in Blocks")
	}
	if len(g.Exit.Succs) != 0 {
		t.Error("exit block has successors")
	}
	countEdge := func(list []*cfg.Block, target *cfg.Block) int {
		n := 0
		for _, b := range list {
			if b == target {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !member[s] {
				t.Fatalf("block %d has successor outside the graph", b.Index)
			}
			if countEdge(b.Succs, s) != countEdge(s.Preds, b) {
				t.Errorf("edge %d->%d not symmetric in preds", b.Index, s.Index)
			}
		}
	}
	// Liveness must equal reachability from entry.
	reach := map[*cfg.Block]bool{}
	stack := []*cfg.Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, b.Succs...)
	}
	for _, b := range g.Blocks {
		if b.Live != reach[b] {
			t.Errorf("block %d Live=%v but reachable=%v", b.Index, b.Live, reach[b])
		}
	}
}

func TestSolveReachingCount(t *testing.T) {
	// A trivial forward problem: count the maximum number of nodes executed
	// on any path into each block. On the diamond below the join must take
	// the max of the two branch lengths and the loop must converge.
	g := build(t, `
	x := 0
	if x == 0 {
		x = 1
		x = 2
	} else {
		x = 3
	}
	for i := 0; i < 3; i++ {
		x += i
	}
	_ = x`)
	in := cfg.Solve(g, cfg.Problem[int]{
		Entry: 0,
		Clone: func(v int) int { return v },
		Transfer: func(b *cfg.Block, v int) int {
			n := v + len(b.Nodes)
			if n > 1000 { // widen so the loop converges
				n = 1000
			}
			return n
		},
		Join: func(dst, src int) (int, bool) {
			if src > dst {
				return src, true
			}
			return dst, false
		},
	})
	if len(in) == 0 {
		t.Fatal("Solve returned no facts")
	}
	if _, ok := in[g.Exit]; !ok {
		t.Error("exit block got no fact")
	}
	for b, v := range in {
		if b.Live && v < 0 {
			t.Errorf("block %d has negative fact", b.Index)
		}
	}
}
