package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/cfg"
)

// FuzzBuild parses arbitrary function bodies and asserts the builder never
// panics and always produces a structurally sound graph: symmetric edges,
// a successor-free exit, and Live flags that exactly match reachability
// from the entry (every block is reachable-from-entry or explicitly dead).
func FuzzBuild(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"if a {\nreturn\n}\nreturn",
		// defer shapes
		"mu.Lock()\ndefer mu.Unlock()\nreturn",
		"defer f()\ndefer g()\npanic(\"x\")",
		"for {\ndefer f()\n}",
		// goto shapes, forward and backward, into shared tails
		"goto end\nx := 1\n_ = x\nend:\nreturn",
		"i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}",
		"if a {\ngoto out\n}\nb()\nout:\nc()",
		// labeled break/continue through nested loops
		"outer:\nfor {\nfor {\nbreak outer\n}\n}",
		"outer:\nfor i := 0; i < 9; i++ {\nfor {\ncontinue outer\n}\n}",
		"L:\nswitch x {\ncase 1:\nbreak L\ncase 2:\n}",
		// switch with fallthrough and no default
		"switch x {\ncase 1:\nfallthrough\ncase 2:\nreturn\n}",
		"switch y := f(); y.(type) {\ncase int:\ncase string:\nreturn\n}",
		// select, empty select, send/recv clauses
		"select {\ncase v := <-ch:\n_ = v\ncase ch <- 1:\ndefault:\n}",
		"select {\n}",
		// terminators mid-block
		"os.Exit(1)\nx := 2\n_ = x",
		"log.Fatalf(\"%d\", 1)",
		// range loops
		"for k, v := range m {\n_ = k\n_ = v\n}",
		"for range ch {\nbreak\n}",
		// degenerate branches the builder must not trip over
		"break",
		"continue",
		"fallthrough",
		"goto nowhere",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		if len(body) > 64<<10 {
			return // parser recursion limits dominate beyond this; not our target
		}
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		parsed, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			return // not compilable; nothing to build
		}
		fd, ok := parsed.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return
		}
		g := cfg.Build(fd.Body)
		checkInvariants(t, g)
		// The solver must terminate on whatever graph came out, including
		// irreducible goto webs.
		cfg.Solve(g, cfg.Problem[int]{
			Entry: 0,
			Clone: func(v int) int { return v },
			Transfer: func(b *cfg.Block, v int) int {
				if v < 1<<20 {
					v++
				}
				return v
			},
			Join: func(dst, src int) (int, bool) {
				if src > dst {
					return src, true
				}
				return dst, false
			},
		})
	})
}
