package cfg

// Problem is a forward dataflow problem over a Graph. F is the fact type
// (the abstract state at a program point). The framework is deliberately
// small: passes supply the entry fact, a transfer function over whole
// blocks, and a join; Solve iterates to a fixpoint with a worklist.
type Problem[F any] struct {
	// Entry is the fact at the function entry.
	Entry F
	// Clone deep-copies a fact. Transfer receives a clone it may mutate.
	Clone func(F) F
	// Transfer computes the fact after executing block b given the fact
	// before it. It may mutate and return its argument.
	Transfer func(b *Block, in F) F
	// Join merges src into dst, returning the merged fact and whether dst
	// changed. It may mutate dst. Join must be monotone w.r.t. a finite
	// lattice or Solve will hit its iteration cap.
	Join func(dst, src F) (F, bool)
}

// Solve runs forward worklist iteration to a fixpoint and returns the IN
// fact of every reachable block. Dead blocks get no fact. The iteration
// count is capped defensively (fuzzed inputs, non-monotone joins); the cap
// is far above what any real function needs, and on overrun the facts
// computed so far are returned — they are sound joins, just possibly not
// yet maximal.
func Solve[F any](g *Graph, p Problem[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: p.Entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := (len(g.Blocks) + 1) * 64
	for len(work) > 0 && budget > 0 {
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := p.Transfer(blk, p.Clone(in[blk]))
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			var changed bool
			if !ok {
				in[succ] = p.Clone(out)
				changed = true
			} else {
				in[succ], changed = p.Join(cur, out)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
