// Package lint is the analysis framework behind tardislint, the project's
// static-analysis gate. It loads and type-checks packages with nothing but
// the standard library (go/parser + go/types + the source importer — the
// module stays dependency-free) and runs project-specific passes over them.
//
// A pass is a function from a type-checked package to findings. Findings can
// be suppressed at a single site with a trailing or preceding comment of the
// form
//
//	//tardislint:ignore <pass>[,<pass>...] optional reason
//
// Suppressions are deliberate, reviewable escape hatches; every one should
// carry a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Step is one hop of an interprocedural call chain attached to a finding:
// the function the hop is in and the position of the call (or, for the last
// hop, the operation itself).
type Step struct {
	Func string
	Pos  token.Position
}

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Pos     token.Position
	Pass    string
	Message string
	// Chain is the witnessing call chain for interprocedural findings
	// (lockorder, ctxflow); empty for intraprocedural passes.
	Chain []Step
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
}

// Pass is one analyzer: a name for reporting and suppression, a one-line
// doc string, and the analysis function itself. Exactly one of Run and
// RunProgram is set: Run analyzes one package at a time; RunProgram runs
// once over every loaded package (interprocedural passes that need the
// whole-program call graph).
type Pass struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Finding
	RunProgram func(pkgs []*Package) []Finding
}

// Package is a parsed, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("github.com/tardisdb/tardis/internal/core",
	// with a "_test" suffix for external test packages).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Findingf constructs a Finding for pass at the given position.
func (p *Package) Findingf(pass string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Pass: pass, Message: fmt.Sprintf(format, args...)}
}

// IsNamed reports whether t is the named (or aliased) type
// <...pathSuffix>.<name>, e.g. IsNamed(t, "internal/isaxt", "Signature").
func IsNamed(t types.Type, pathSuffix, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pathSuffix || strings.HasSuffix(path, "/"+pathSuffix)
}

// Deref returns the element type of a pointer, or t unchanged.
func Deref(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// HasMethod reports whether the method set of t or *t contains a method with
// the given name (interface or concrete receiver alike).
func HasMethod(t types.Type, name string) bool {
	t = Deref(t)
	for _, probe := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(probe)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//tardislint:ignore\s+([\w,]+)`)

// directive is one //tardislint:ignore comment, tracked so the suppresscheck
// audit can report directives that no longer suppress anything.
type directive struct {
	pos    token.Position
	passes []string
	used   map[string]bool
}

// ignoreIndex maps filename -> line -> the directives covering that line. A
// directive applies to its own line and the line below it, covering both
// trailing comments and comments on the preceding line.
type ignoreIndex struct {
	at  map[string]map[int][]*directive
	all []*directive
}

func buildIgnoreIndex(pkgs []*Package) *ignoreIndex {
	idx := &ignoreIndex{at: map[string]map[int][]*directive{}}
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
					if seen[key] {
						continue // files shared between package loads
					}
					seen[key] = true
					d := &directive{pos: pos, passes: strings.Split(m[1], ","), used: map[string]bool{}}
					idx.all = append(idx.all, d)
					if idx.at[pos.Filename] == nil {
						idx.at[pos.Filename] = map[int][]*directive{}
					}
					for _, l := range []int{pos.Line, pos.Line + 1} {
						idx.at[pos.Filename][l] = append(idx.at[pos.Filename][l], d)
					}
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a finding at pos from pass is covered by a
// directive, and marks the directive used.
func (idx *ignoreIndex) suppressed(pass string, pos token.Position) bool {
	hit := false
	for _, d := range idx.at[pos.Filename][pos.Line] {
		for _, name := range d.passes {
			if name == pass {
				d.used[pass] = true
				hit = true
			}
		}
	}
	return hit
}

// PassTiming records how long one pass took across the whole run.
type PassTiming struct {
	Pass     string
	Duration time.Duration
}

// Result is the outcome of one Analyze invocation.
type Result struct {
	// Findings are the surviving findings, sorted by position.
	Findings []Finding
	// Stale are suppresscheck audit findings: //tardislint:ignore
	// directives naming a pass that ran but suppressed nothing.
	Stale []Finding
	// Timings report per-pass wall time, in pass order.
	Timings []PassTiming
}

// Analyze executes the passes over the packages, applies //tardislint:ignore
// suppressions, audits the suppressions that matched nothing, and records
// per-pass timing. Package passes run per package; program passes run once
// over the full package list.
func Analyze(passes []Pass, pkgs []*Package) Result {
	idx := buildIgnoreIndex(pkgs)
	var out []Finding
	elapsed := make([]time.Duration, len(passes))
	collect := func(i int, pass Pass, fs []Finding) {
		for _, f := range fs {
			f.Pass = pass.Name
			if idx.suppressed(pass.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	for i, pass := range passes {
		start := time.Now()
		if pass.RunProgram != nil {
			collect(i, pass, pass.RunProgram(pkgs))
		} else {
			for _, pkg := range pkgs {
				collect(i, pass, pass.Run(pkg))
			}
		}
		elapsed[i] += time.Since(start)
	}
	sortFindings(out)

	res := Result{Findings: out}
	for i, pass := range passes {
		res.Timings = append(res.Timings, PassTiming{Pass: pass.Name, Duration: elapsed[i]})
	}
	ran := map[string]bool{}
	for _, pass := range passes {
		ran[pass.Name] = true
	}
	for _, d := range idx.all {
		var stale []string
		for _, name := range d.passes {
			if ran[name] && !d.used[name] {
				stale = append(stale, name)
			}
		}
		if len(stale) > 0 {
			res.Stale = append(res.Stale, Finding{
				Pos:     d.pos,
				Pass:    "suppresscheck",
				Message: fmt.Sprintf("//tardislint:ignore %s no longer suppresses any finding; remove the stale directive", strings.Join(stale, ",")),
			})
		}
	}
	sortFindings(res.Stale)
	return res
}

// Run executes the passes and returns the surviving findings sorted by
// position. It is the simple entry point used by fixture tests; the driver
// uses Analyze for timings and the suppression audit.
func Run(passes []Pass, pkgs []*Package) []Finding {
	return Analyze(passes, pkgs).Findings
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
