// Package lint is the analysis framework behind tardislint, the project's
// static-analysis gate. It loads and type-checks packages with nothing but
// the standard library (go/parser + go/types + the source importer — the
// module stays dependency-free) and runs project-specific passes over them.
//
// A pass is a function from a type-checked package to findings. Findings can
// be suppressed at a single site with a trailing or preceding comment of the
// form
//
//	//tardislint:ignore <pass>[,<pass>...] optional reason
//
// Suppressions are deliberate, reviewable escape hatches; every one should
// carry a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
}

// Pass is one analyzer: a name for reporting and suppression, a one-line
// doc string, and the analysis function itself.
type Pass struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Package is a parsed, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("github.com/tardisdb/tardis/internal/core",
	// with a "_test" suffix for external test packages).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Findingf constructs a Finding for pass at the given position.
func (p *Package) Findingf(pass string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Pass: pass, Message: fmt.Sprintf(format, args...)}
}

// IsNamed reports whether t is the named (or aliased) type
// <...pathSuffix>.<name>, e.g. IsNamed(t, "internal/isaxt", "Signature").
func IsNamed(t types.Type, pathSuffix, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pathSuffix || strings.HasSuffix(path, "/"+pathSuffix)
}

// Deref returns the element type of a pointer, or t unchanged.
func Deref(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// HasMethod reports whether the method set of t or *t contains a method with
// the given name (interface or concrete receiver alike).
func HasMethod(t types.Type, name string) bool {
	t = Deref(t)
	for _, probe := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(probe)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//tardislint:ignore\s+([\w,]+)`)

// ignoreIndex maps filename -> line -> set of suppressed pass names. A
// directive applies to its own line and the line below it, covering both
// trailing comments and comments on the preceding line.
type ignoreIndex map[string]map[int]map[string]bool

func (p *Package) buildIgnoreIndex() ignoreIndex {
	idx := ignoreIndex{}
	add := func(file string, line int, passes []string) {
		if idx[file] == nil {
			idx[file] = map[int]map[string]bool{}
		}
		for _, l := range []int{line, line + 1} {
			if idx[file][l] == nil {
				idx[file][l] = map[string]bool{}
			}
			for _, name := range passes {
				idx[file][l][name] = true
			}
		}
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				add(pos.Filename, pos.Line, strings.Split(m[1], ","))
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(pass string, pos token.Position) bool {
	return idx[pos.Filename][pos.Line][pass]
}

// Run executes the passes over the packages, applies //tardislint:ignore
// suppressions, and returns the surviving findings sorted by position.
func Run(passes []Pass, pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		idx := pkg.buildIgnoreIndex()
		for _, pass := range passes {
			for _, f := range pass.Run(pkg) {
				f.Pass = pass.Name
				if idx.suppressed(pass.Name, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}
