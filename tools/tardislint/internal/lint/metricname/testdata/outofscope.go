// Package fixture proves scope: constructors and With methods with the same
// names defined outside an internal/obs package are not the telemetry API,
// so nothing here is flagged no matter how wrong the names look.
package fixture

type Counter struct{}

func (*Counter) Inc() {}

type CounterVec struct{}

func (*CounterVec) With(values ...string) *Counter { return &Counter{} }

func NewCounter(name, help string) *Counter { return &Counter{} }

func dyn() string { return "whatever" }

var sink any

func use() {
	sink = NewCounter("totally wrong name", "but not the obs API")
	sink = NewCounter(dyn(), "dynamic, still not the obs API")
	(&CounterVec{}).With(dyn()).Inc()
}
