// Mini registry API mirroring internal/obs. The fixture package is loaded
// under the import path "internal/obs" so the pass's callee-package check
// applies; the package-level constructors forward to Registry methods of the
// same name, exactly like the real package, exercising the forwarding
// exemption (the forwarded `name` parameter is not a constant, yet these
// frames must stay clean).
package obs

// Registry holds metric families.
type Registry struct{}

var defaultRegistry = &Registry{}

// Counter is a monotone counter.
type Counter struct{}

func (*Counter) Inc()            {}
func (*Counter) Add(delta int64) {}

// CounterVec is a labeled counter family.
type CounterVec struct{}

func (*CounterVec) With(values ...string) *Counter { return &Counter{} }

// Gauge is a settable value.
type Gauge struct{}

func (*Gauge) Set(v float64) {}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{}

func (*GaugeVec) With(values ...string) *Gauge { return &Gauge{} }

// Histogram records observations into fixed buckets.
type Histogram struct{}

func (*Histogram) Observe(v float64) {}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{}

func (*HistogramVec) With(values ...string) *Histogram { return &Histogram{} }

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (r *Registry) NewGauge(name, help string) *Gauge { return &Gauge{} }
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{}
}
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {}
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}

// Package-level constructors forward to the default registry — same-name
// frames the pass must exempt.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, labels...)
}
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.NewGaugeVec(name, help, labels...)
}
func NewGaugeFunc(name, help string, fn func() float64) {
	defaultRegistry.NewGaugeFunc(name, help, fn)
}
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, buckets)
}
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.NewHistogramVec(name, help, buckets, labels...)
}
