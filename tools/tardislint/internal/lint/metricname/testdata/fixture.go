package obs

// Constants fold at compile time, so they are as checkable as literals.
const goodName = "tardis_pcache_hits_total"

func dynamicName() string { return "tardis_x_y_total" }
func statusClass() string { return "2xx" }

var sink any

func registrations() {
	sink = NewCounter(goodName, "constant names are fine")
	sink = NewCounter("tardis_core_queries_total", "literal conforming name")
	sink = NewGauge("tardis_pcache_resident_bytes", "gauge with bytes unit")
	sink = NewHistogram("tardis_rpc_call_duration_seconds", "histogram", nil)
	NewGaugeFunc("tardis_obs_spans_ratio", "func gauge", func() float64 { return 0 })

	sink = NewCounter("pcache_hits_total", "missing tardis prefix")                          // WANT
	sink = NewCounter("tardis_hits_total", "missing subsystem segment")                      // WANT
	sink = NewCounter("tardis_core_queries", "missing unit suffix")                          // WANT
	sink = NewCounter("tardis_Core_queries_total", "uppercase segment")                      // WANT
	sink = NewCounter("tardis_core_query_duration_millis", "unrecognized unit")              // WANT
	sink = NewCounter(dynamicName(), "name must be a compile-time constant")                 // WANT
	sink = NewHistogram("tardis_core_latency", "histogram missing unit", nil)                // WANT
	NewGaugeFunc(dynamicName(), "func gauge with dynamic name", func() float64 { return 0 }) // WANT
}

func labelNames() {
	sink = NewCounterVec("tardis_rpc_calls_total", "ok", "method", "outcome")
	sink = NewHistogramVec("tardis_cluster_stage_duration_seconds", "ok", nil, "stage")

	sink = NewCounterVec("tardis_rpc_calls_total", "uppercase label", "method", "Outcome") // WANT
	lbl := "outcome"
	sink = NewCounterVec("tardis_rpc_errors_total", "non-constant label", lbl) // WANT
}

func labelValues(code int, vec *CounterVec) {
	vec.With("ok").Inc()
	vec.With("a" + "b").Inc() // constant concatenation folds: clean
	class := statusClass()
	vec.With(class).Inc() // bound to a named variable: clean

	vec.With(statusClass()).Inc()           // WANT
	vec.With("class_" + class).Inc()        // WANT
	vec.With(("ok"), (statusClass())).Inc() // WANT
}
