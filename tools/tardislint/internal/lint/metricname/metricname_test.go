package metricname_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/metricname"
)

func TestMetricname(t *testing.T) {
	for _, tc := range []struct {
		name    string
		pkgPath string
		files   []string
	}{
		{"fixture", "internal/obs", []string{"testdata/obs.go", "testdata/fixture.go"}},
		{"outofscope", "fixture", []string{"testdata/outofscope.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, metricname.Pass, tc.pkgPath, tc.files...)
		})
	}
}
