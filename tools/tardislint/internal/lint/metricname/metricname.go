// Package metricname enforces the telemetry naming and cardinality
// discipline on every internal/obs registration and label-value site.
//
// Metric names are a public, grep-able contract: dashboards, alerts, and the
// obs-smoke gate all key on them, so the pass requires each name passed to
// an obs New* constructor to be a compile-time string constant matching
//
//	tardis_<subsystem>_<name>_<unit>
//
// with <unit> one of total, seconds, bytes, entries, records, ratio, count,
// or info, and every segment lowercase [a-z0-9]. Label names must be
// constants for the same reason.
//
// Label values are where cardinality explodes: a value interpolated from an
// error string, an ID, or a file path turns one family into millions of
// series. The pass rejects inline call and concatenation expressions as
// With(...) arguments — a dynamic value must first be bound to a named
// variable (e.g. class := codeClass(code)), making the boundedness of the
// value a reviewable property of that binding rather than an invisible
// side effect of the expression.
//
// The obs package's own package-level constructors forward their `name`
// parameter to the default registry's method of the same name; those
// forwarding frames are recognized (caller and callee share a name) and
// exempt.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "metricname"

// Pass is the metricname analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "require tardis_<subsystem>_<name>_<unit> metric names and bounded (non-inline-dynamic) label values at internal/obs call sites",
	Run:  run,
}

const obsSuffix = "internal/obs"

// nameRe encodes tardis_<subsystem>_<name>_<unit>: at least four segments,
// the last being a recognized unit.
var nameRe = regexp.MustCompile(`^tardis(_[a-z][a-z0-9]*){2,}_(total|seconds|bytes|entries|records|ratio|count|info)$`)

// constructors maps obs constructor names to the argument index where label
// names begin (-1: the constructor takes no labels).
var constructors = map[string]int{
	"NewCounter":      -1,
	"NewCounterVec":   2,
	"NewGauge":        -1,
	"NewGaugeVec":     2,
	"NewGaugeFunc":    -1,
	"NewHistogram":    -1,
	"NewHistogramVec": 3,
}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p, call)
			if fn == nil || fn.Pkg() == nil || !pathIsObs(fn.Pkg().Path()) {
				return true
			}
			if labelStart, ok := constructors[fn.Name()]; ok && len(call.Args) > 0 {
				if enclosingFuncName(stack) == fn.Name() {
					return true // obs's own forwarding wrapper
				}
				out = append(out, checkName(p, call.Args[0])...)
				if labelStart >= 0 && len(call.Args) > labelStart {
					for _, arg := range call.Args[labelStart:] {
						out = append(out, checkLabelName(p, arg)...)
					}
				}
				return true
			}
			if fn.Name() == "With" {
				for _, arg := range call.Args {
					out = append(out, checkLabelValue(p, arg)...)
				}
			}
			return true
		})
	}
	return out
}

// checkName validates the metric-name argument of a constructor.
func checkName(p *lint.Package, arg ast.Expr) []lint.Finding {
	val, ok := constString(p, arg)
	if !ok {
		return []lint.Finding{p.Findingf(name, arg.Pos(),
			"metric name must be a compile-time string constant so the naming convention is statically checkable")}
	}
	if !nameRe.MatchString(val) {
		return []lint.Finding{p.Findingf(name, arg.Pos(),
			"metric name %q does not match tardis_<subsystem>_<name>_<unit> (unit: total|seconds|bytes|entries|records|ratio|count|info)", val)}
	}
	return nil
}

// checkLabelName validates one label-name argument of a Vec constructor.
func checkLabelName(p *lint.Package, arg ast.Expr) []lint.Finding {
	val, ok := constString(p, arg)
	if !ok {
		return []lint.Finding{p.Findingf(name, arg.Pos(),
			"label name must be a compile-time string constant")}
	}
	if !labelRe.MatchString(val) {
		return []lint.Finding{p.Findingf(name, arg.Pos(),
			"label name %q must be lowercase [a-z0-9_] starting with a letter", val)}
	}
	return nil
}

var labelRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// checkLabelValue rejects inline dynamic expressions as With arguments.
func checkLabelValue(p *lint.Package, arg ast.Expr) []lint.Finding {
	switch e := unparen(arg).(type) {
	case *ast.CallExpr:
		return []lint.Finding{p.Findingf(name, arg.Pos(),
			"label value must not be an inline call — bind it to a named variable so its bounded cardinality is reviewable")}
	case *ast.BinaryExpr:
		if _, isConst := constString(p, e); !isConst {
			return []lint.Finding{p.Findingf(name, arg.Pos(),
				"label value must not be built by inline concatenation — bind it to a named variable so its bounded cardinality is reviewable")}
		}
	}
	return nil
}

// callee resolves the *types.Func a call invokes, or nil.
func callee(p *lint.Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// constString reports the compile-time string value of e, if it has one.
func constString(p *lint.Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// enclosingFuncName returns the name of the innermost FuncDecl on the
// inspection stack, or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

func pathIsObs(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == obsSuffix || strings.HasSuffix(path, "/"+obsSuffix)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
