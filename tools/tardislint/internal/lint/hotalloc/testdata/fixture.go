// Package fixture seeds hotalloc violations — fmt formatting, string
// concatenation, interface boxing, and per-iteration allocations inside
// //tardis:hotpath functions — next to the exempt forms: the same code
// without the annotation, panic and error-return cold paths, preallocated
// slices, and constants.
package fixture

import "fmt"

type item struct{ k int }

func sinkAny(any)        {}
func variadic(vs ...any) {}

//tardis:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // WANT
}

//tardis:hotpath
func hotConcat(a, b string) string {
	return a + b // WANT
}

//tardis:hotpath
func hotBox(n int) {
	sinkAny(n) // WANT
}

//tardis:hotpath
func hotVariadicBox(n int) {
	variadic(1, n) // WANT
}

//tardis:hotpath
func hotLoopMapLiteral(items []item) int {
	total := 0
	for _, it := range items {
		m := map[int]bool{} // WANT
		m[it.k] = true
		total += len(m)
	}
	return total
}

//tardis:hotpath
func hotLoopMake(items []item) int {
	total := 0
	for range items {
		buf := make([]byte, 8) // WANT
		total += len(buf)
	}
	return total
}

//tardis:hotpath
func hotLoopAppend(items []item) []int {
	var out []int
	for _, it := range items {
		out = append(out, it.k) // WANT
	}
	return out
}

//tardis:hotpath
func hotLoopClosure(items []item) int {
	total := 0
	for _, it := range items {
		f := func() int { return it.k } // WANT
		total += f()
	}
	return total
}

// coldFmt has no annotation: the same code is fine off the hot path.
func coldFmt(n int) string {
	return fmt.Sprintf("%d", n)
}

//tardis:hotpath
func hotPanicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n)) // clean: panic argument is cold
	}
	return n * 2
}

//tardis:hotpath
func hotErrorReturn(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative: %d", n) // clean: error return is cold
	}
	return n * 2, nil
}

//tardis:hotpath
func hotPrealloc(items []item) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it.k) // clean: capacity reserved up front
	}
	return out
}

//tardis:hotpath
func hotMakeOnce(n int) []byte {
	buf := make([]byte, n) // clean: one-time allocation outside the loop
	for i := range buf {
		buf[i] = byte(i)
	}
	return buf
}

//tardis:hotpath
func hotConstArgs() {
	sinkAny(42)        // clean: untyped constant does not box at run time
	variadic("a", "b") // clean: constants again
}

//tardis:hotpath
func hotIfaceToIface(s fmt.Stringer) {
	sinkAny(s) // clean: already an interface, no boxing
}

//tardis:hotpath
func hotSuppressed(n int) {
	sinkAny(n) //tardislint:ignore hotalloc metrics callback boxes deliberately
}
