package hotalloc_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/hotalloc"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Check(t, hotalloc.Pass, "fixture", "testdata/fixture.go")
}
