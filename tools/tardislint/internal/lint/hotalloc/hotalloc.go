// Package hotalloc implements the hotalloc pass: it looks only at functions
// annotated with a //tardis:hotpath doc-comment directive and flags
// allocation patterns that do not belong on a per-record code path.
//
// Two classes of check run over an annotated function:
//
// Whole-body (the function itself is called per element, so one allocation
// is already one-per-record):
//   - fmt.Sprint/Sprintf/Sprintln/Errorf calls
//   - non-constant string concatenation
//   - interface boxing: passing a concrete value to an interface-typed
//     parameter (including variadic ...any), which forces a heap allocation
//     for most values
//
// Loop-only (per-iteration allocation inside the annotated function):
//   - map and slice composite literals
//   - make calls
//   - append to a slice declared without capacity
//   - function literals (closure allocation)
//
// Cold sub-paths are exempt: arguments to panic and return statements that
// carry an error value are skipped entirely, so diagnostic formatting on
// failure paths stays idiomatic. Function literal bodies are also skipped —
// the literal itself is flagged when it appears in a loop, but its body is
// a separate (un-annotated) function.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const passName = "hotalloc"

// Directive marks a function as a hot path for this pass.
const Directive = "//tardis:hotpath"

// Pass is the hotalloc analyzer.
var Pass = lint.Pass{
	Name: passName,
	Doc:  "allocation on a //tardis:hotpath function: fmt, string concat, interface boxing, per-iteration literals",
	Run:  run,
}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			c := &checker{pkg: p, errType: types.Universe.Lookup("error").Type()}
			c.collectSliceDecls(fd.Body)
			c.walkBody(fd.Body)
			out = append(out, c.findings...)
		}
	}
	return out
}

func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

type checker struct {
	pkg      *lint.Package
	errType  types.Type
	findings []lint.Finding
	// sliceDecl maps a local slice variable to whether its declaration
	// preallocates capacity; absent means the variable is unknown (not
	// declared in this function, or initialized from an expression we do
	// not model) and append to it is not flagged.
	sliceDecl map[*types.Var]bool
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, c.pkg.Findingf(passName, pos, format, args...))
}

// collectSliceDecls records, for every slice variable declared in the body,
// whether the declaration provides capacity up front.
func (c *checker) collectSliceDecls(body *ast.BlockStmt) {
	c.sliceDecl = map[*types.Var]bool{}
	record := func(id *ast.Ident, val ast.Expr) {
		v, ok := c.pkg.Info.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, ok := v.Type().Underlying().(*types.Slice); !ok {
			return
		}
		c.sliceDecl[v] = preallocates(val)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					record(id, n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var val ast.Expr
					if len(vs.Values) == len(vs.Names) {
						val = vs.Values[i]
					}
					record(name, val)
				}
			}
		}
		return true
	})
}

// preallocates reports whether a slice initializer reserves capacity:
// make with an explicit capacity argument, or a literal with elements.
// Unknown initializer shapes (calls, slicing) count as preallocated so we
// stay quiet rather than guess.
func preallocates(val ast.Expr) bool {
	switch v := val.(type) {
	case nil:
		return false // var s []T
	case *ast.CompositeLit:
		return len(v.Elts) > 0
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
			return len(v.Args) >= 3
		}
		return true
	default:
		return true
	}
}

// walkBody runs the whole-body checks and dispatches the loop-only checks
// when it reaches a loop.
func (c *checker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if c.pruned(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate, un-annotated function
		case *ast.ForStmt, *ast.RangeStmt:
			c.walkLoop(n)
			return false // walkLoop re-runs the whole-body checks inside
		case *ast.CallExpr:
			c.checkCall(n, false)
		case *ast.BinaryExpr:
			if c.checkConcat(n) {
				return false // one report per concat chain
			}
		}
		return true
	})
}

// walkLoop checks a loop subtree: everything walkBody checks, plus the
// per-iteration allocation checks. Nested loops stay inside this walk.
func (c *checker) walkLoop(loop ast.Node) {
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == loop {
			return true
		}
		if c.pruned(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure literal allocates on every iteration of a hot loop; hoist it out")
			return false
		case *ast.CallExpr:
			c.checkCall(n, true)
		case *ast.BinaryExpr:
			if c.checkConcat(n) {
				return false
			}
		case *ast.CompositeLit:
			switch c.typeOf(n).Underlying().(type) {
			case *types.Map:
				c.reportf(n.Pos(), "map literal allocates on every iteration of a hot loop; hoist and reuse it")
			case *types.Slice:
				c.reportf(n.Pos(), "slice literal allocates on every iteration of a hot loop; hoist or preallocate")
			}
		}
		return true
	})
}

// pruned reports whether a subtree is a cold path the checks must skip:
// panic arguments and returns that carry an error value.
func (c *checker) pruned(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if t := c.typeOf(res); t != nil && types.Identical(t, c.errType) {
				return true
			}
		}
	}
	return false
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// checkCall flags fmt formatting calls, interface boxing at call arguments,
// per-iteration make, and append to an unpreallocated slice.
func (c *checker) checkCall(call *ast.CallExpr, inLoop bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
			switch sel.Sel.Name {
			case "Sprint", "Sprintf", "Sprintln", "Errorf":
				c.reportf(call.Pos(), "fmt.%s allocates on a hot path; format off the hot path or use strconv/append", sel.Sel.Name)
				return
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if inLoop {
				c.reportf(call.Pos(), "make allocates on every iteration of a hot loop; hoist and reuse the buffer")
			}
			return
		case "append":
			if inLoop && len(call.Args) > 0 {
				if target, ok := call.Args[0].(*ast.Ident); ok {
					if v, ok := c.pkg.Info.Uses[target].(*types.Var); ok {
						if prealloc, known := c.sliceDecl[v]; known && !prealloc {
							c.reportf(call.Pos(), "append to %q grows an unpreallocated slice inside a hot loop; make it with capacity up front", v.Name())
						}
					}
				}
			}
			return
		}
	}
	c.checkBoxing(call)
}

// checkBoxing flags concrete values passed to interface-typed parameters.
// Conversions, untyped constants, nil, interface-to-interface passes, and
// spread (...) calls are exempt.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	ftv, ok := c.pkg.Info.Types[call.Fun]
	if !ok || ftv.IsType() { // conversion, not a call
		return
	}
	sig, ok := ftv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var ptype types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			ptype = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			ptype = params.At(i).Type()
		} else {
			break
		}
		if !types.IsInterface(ptype) {
			continue
		}
		atv, ok := c.pkg.Info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil || atv.IsNil() {
			continue // constants and nil do not box at run time
		}
		if types.IsInterface(atv.Type) {
			continue
		}
		c.reportf(arg.Pos(), "passing %s boxes a %s into an interface on a hot path", exprString(arg), atv.Type.String())
	}
}

// checkConcat flags non-constant string concatenation; it returns true when
// it reported so the caller can stop descending into the same chain.
func (c *checker) checkConcat(be *ast.BinaryExpr) bool {
	if be.Op != token.ADD {
		return false
	}
	tv, ok := c.pkg.Info.Types[be]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // not typed here, or a compile-time constant
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	c.reportf(be.Pos(), "string concatenation allocates on a hot path; use a preallocated []byte or strings.Builder off the hot path")
	return true
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
	}
	return "this argument"
}
