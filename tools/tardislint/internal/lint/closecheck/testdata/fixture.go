// Package fixture seeds closecheck violations: write-path Close/Flush/Sync
// calls whose error vanishes, next to the corrected forms that must stay
// clean.
package fixture

import (
	"bufio"
	"errors"
	"io"
	"os"
)

func badClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // WANT
	return nil
}

func badFlush(f *os.File) {
	bw := bufio.NewWriter(f)
	bw.Flush() // WANT
}

func badSync(f *os.File) {
	f.Sync() // WANT
}

func goodPropagate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

func goodJoin(f *os.File, primary error) error {
	return errors.Join(primary, f.Close())
}

func goodBlank(f *os.File) {
	_ = f.Close() // explicit acknowledgment: clean
}

func goodDefer(f *os.File) {
	defer f.Close() // deferred: clean
}

func goodReadOnly(r io.ReadCloser) {
	r.Close() // no Write in the method set: clean
}

func suppressed(f *os.File) {
	f.Close() //tardislint:ignore closecheck fixture exercises the escape hatch
}
