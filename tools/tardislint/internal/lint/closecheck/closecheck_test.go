package closecheck_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/closecheck"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestClosecheck(t *testing.T) {
	for _, tc := range []struct {
		name  string
		files []string
	}{
		{"fixture", []string{"testdata/fixture.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, closecheck.Pass, "fixture", tc.files...)
		})
	}
}
