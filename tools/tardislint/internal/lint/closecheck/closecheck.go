// Package closecheck flags discarded errors from Close, Flush, and Sync on
// writable files and encoders.
//
// On a buffered or compressed write path the final Close/Flush is where the
// data actually reaches the disk; dropping its error silently truncates
// partition files and index snapshots (the exact failure mode TARDIS's
// storage layer is built to count and surface). A call is flagged when it is
// a bare expression statement discarding the single error result of a
// Close/Flush/Sync method on a receiver whose method set contains Write.
// Deferred closes are exempt (their error has nowhere to go without a
// named-return dance), as is the explicit acknowledgment `_ = f.Close()`;
// error paths that still care should join the close error into the primary
// one with errors.Join.
package closecheck

import (
	"go/ast"
	"go/types"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "closecheck"

// Pass is the closecheck analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "flag discarded Close/Flush/Sync errors on writable files and encoders",
	Run:  run,
}

var watched = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !watched[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !returnsOnlyError(fn) {
				return true
			}
			recv := p.TypeOf(sel.X)
			if recv == nil || !lint.HasMethod(recv, "Write") {
				return true
			}
			out = append(out, p.Findingf(name, stmt.Pos(),
				"error from %s.%s is discarded on writable %s; propagate it (errors.Join on error paths) or write `_ = x.%s()` to mean it",
				typeName(recv), sel.Sel.Name, typeName(recv), sel.Sel.Name))
			return true
		})
	}
	return out
}

func returnsOnlyError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

func typeName(t types.Type) string {
	if named, ok := types.Unalias(lint.Deref(t)).(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
