// Package rpc seeds ctxfirst violations: exported Pool methods and
// Pool-taking functions without a leading context.Context, next to the
// conforming forms that must stay clean. The fixture is type-checked under
// the import path "internal/cluster/rpc" so the pass's scope check applies.
package rpc

import "context"

// Pool stands in for the real worker pool.
type Pool struct {
	addrs []string
}

// Stats is a value carrier, not the pool itself; methods on it are exempt.
type Stats struct {
	Calls int
}

func (p *Pool) Close()          {}           // zero params: clean
func (p *Pool) Size() int       { return 0 } // zero params: clean
func (p *Pool) Addrs() []string { return p.addrs }

func (p *Pool) Ping(ctx context.Context) error { return ctx.Err() } // ctx first: clean

func (p *Pool) Call(method string) error { return nil } // WANT

func (p *Pool) Broadcast(msg string, ctx context.Context) {} // WANT

func (p Pool) Describe(verbose bool) string { return "" } // WANT

func (p *Pool) call(method string) error { return nil } // unexported: clean

func (s *Stats) Add(n int) { s.Calls += n } // not a Pool method: clean

func Dial(addrs []string) (*Pool, error) { return &Pool{addrs: addrs}, nil } // no Pool param: clean

func BuildDistributed(ctx context.Context, pool *Pool, dir string) error { return nil } // clean

func DistKNN(pool *Pool, k int) error { return nil } // WANT

func DistRange(pool Pool, eps float64) error { return nil } // WANT

func helperScan(pool *Pool, k int) error { return nil } // unexported: clean

func Hostname(name string) string { return name } // no Pool anywhere: clean

func Legacy(pool *Pool, k int) error { return nil } //tardislint:ignore ctxfirst fixture exercises the escape hatch
