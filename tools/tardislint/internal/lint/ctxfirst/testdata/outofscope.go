// Package fixture mirrors the violations from fixture.go but is loaded under
// a package path that does not end in internal/cluster/rpc, so the pass must
// report nothing: ctxfirst is scoped to the cluster RPC surface only.
package fixture

// Pool shadows the RPC pool's name in an unrelated package.
type Pool struct{}

func (p *Pool) Call(method string) error { return nil } // out of scope: clean

func DistKNN(pool *Pool, k int) error { return nil } // out of scope: clean
