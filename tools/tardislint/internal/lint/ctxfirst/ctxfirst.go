// Package ctxfirst enforces context plumbing on the cluster RPC surface.
//
// Every remote operation in internal/cluster/rpc must be cancellable: the
// fault-tolerance layer (deadlines, retries, failover) hangs off the
// context.Context threaded through each call, so an exported entry point
// without one is a hole where a hung worker pins the caller forever. The
// pass flags, in packages whose import path ends in internal/cluster/rpc,
//
//   - exported methods on Pool that take parameters, and
//   - exported package-level functions that take a Pool (or *Pool) parameter,
//
// whose first parameter is not a context.Context. Zero-parameter accessors
// (Close, Size, Health, ...) are exempt — they only read pool state and have
// nothing to cancel. Constructors that merely return a *Pool are out of
// scope; Dial is the documented legacy shim over DialContext.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "ctxfirst"

// Pass is the ctxfirst analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "require context.Context as the first parameter of exported Pool methods and Pool-taking functions in internal/cluster/rpc",
	Run:  run,
}

const pkgSuffix = "internal/cluster/rpc"

func run(p *lint.Package) []lint.Finding {
	path := strings.TrimSuffix(p.PkgPath, "_test")
	if path != pkgSuffix && !strings.HasSuffix(path, "/"+pkgSuffix) {
		return nil
	}
	var out []lint.Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() == 0 {
				continue
			}
			switch {
			case sig.Recv() != nil:
				if !isPool(sig.Recv().Type()) {
					continue
				}
			default:
				if !takesPool(sig) {
					continue
				}
			}
			if isContext(sig.Params().At(0).Type()) {
				continue
			}
			kind := "function"
			if sig.Recv() != nil {
				kind = "method"
			}
			out = append(out, p.Findingf(name, fd.Name.Pos(),
				"exported Pool %s %s must take context.Context as its first parameter so deadlines, retries, and failover can cancel it",
				kind, fd.Name.Name))
		}
	}
	return out
}

func isPool(t types.Type) bool {
	return lint.IsNamed(lint.Deref(t), pkgSuffix, "Pool")
}

func isContext(t types.Type) bool {
	return lint.IsNamed(t, "context", "Context")
}

func takesPool(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isPool(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
