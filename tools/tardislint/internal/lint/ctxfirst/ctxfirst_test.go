package ctxfirst_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/ctxfirst"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestCtxfirst(t *testing.T) {
	for _, tc := range []struct {
		name    string
		pkgPath string
		files   []string
	}{
		{"fixture", "internal/cluster/rpc", []string{"testdata/fixture.go"}},
		{"outofscope", "fixture", []string{"testdata/outofscope.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, ctxfirst.Pass, tc.pkgPath, tc.files...)
		})
	}
}
