// Package fixture seeds lockflow violations: accesses on paths where the
// guarding mutex is not held, broken lock pairing, and leaked locks — next
// to the path-sensitive correct forms that must stay clean (access under a
// branch that does hold the lock, lock held across a loop).
package fixture

import "sync"

type counter struct {
	mu   sync.Mutex
	hits int // guarded by mu
	free int
}

func newCounter(n int) *counter {
	return &counter{hits: n} // construction, not access: clean
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// goodBranch accesses the field only inside the branch that holds the lock:
// the old method-granular check and this one both accept it, but only a
// path-sensitive analysis can also accept goodBranchElse below.
func (c *counter) goodBranch(really bool) int {
	if really {
		c.mu.Lock()
		n := c.hits
		c.mu.Unlock()
		return n
	}
	return -1
}

// goodBranchElse holds the lock on both arms with different shapes.
func (c *counter) goodBranchElse(fast bool) int {
	var n int
	if fast {
		c.mu.Lock()
		n = c.hits
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		n = c.hits + c.free
		c.mu.Unlock()
	}
	return n
}

// goodLoop keeps the lock across a loop: the back-edge join must keep the
// held state.
func (c *counter) goodLoop(k int) int {
	total := 0
	c.mu.Lock()
	for i := 0; i < k; i++ {
		total += c.hits
	}
	c.mu.Unlock()
	return total
}

// badNeverLocks never takes the lock at all.
func (c *counter) badNeverLocks() int {
	return c.hits // WANT
}

// badAfterUnlock locks correctly but touches the field after releasing —
// invisible to a method-granular check.
func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	n := c.hits
	c.mu.Unlock()
	return n + c.hits // WANT
}

// badOneBranch locks on one path only; the merge point may reach the access
// unlocked.
func (c *counter) badOneBranch(really bool) int {
	if really {
		c.mu.Lock()
	}
	n := c.hits // WANT
	if really {
		c.mu.Unlock()
	}
	return n
}

// badDoubleLock self-deadlocks.
func (c *counter) badDoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // WANT
	c.hits++
	c.mu.Unlock()
}

// badDoubleUnlock releases twice.
func (c *counter) badDoubleUnlock() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	c.mu.Unlock() // WANT
}

// badLeak returns early with the lock still held and no defer registered.
func (c *counter) badLeak(n int) bool {
	c.mu.Lock()
	if n > c.hits {
		return true // WANT
	}
	c.mu.Unlock()
	return false
}

// underLock is a helper documented to run with the caller's lock held; the
// suppression is the sanctioned escape hatch.
func underLock(c *counter) int {
	return c.hits //tardislint:ignore lockflow caller holds mu
}

type rwbox struct {
	mu sync.RWMutex
	// val is the cached value. // guarded by mu
	val string
}

func (b *rwbox) get() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *rwbox) set(v string) {
	b.mu.Lock()
	b.val = v
	b.mu.Unlock()
}

// badWriteUnderRLock mutates under a read lock.
func (b *rwbox) badWriteUnderRLock(v string) {
	b.mu.RLock()
	b.val = v // WANT
	b.mu.RUnlock()
}

// badMismatchedUnlock releases a write lock with RUnlock.
func (b *rwbox) badMismatchedUnlock(v string) {
	b.mu.Lock()
	b.val = v
	b.mu.RUnlock() // WANT
}

type broken struct {
	n int // guarded by missing — no such mutex // WANT
}

func use(b *broken) int { return b.n }
