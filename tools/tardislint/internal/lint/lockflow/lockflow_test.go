package lockflow_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockflow"
)

func TestLockflow(t *testing.T) {
	linttest.Check(t, lockflow.Pass, "fixture", "testdata/fixture.go")
}
