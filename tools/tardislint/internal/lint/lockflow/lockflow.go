// Package lockflow enforces documented mutex discipline path-sensitively.
// It supersedes the PR 1 lockguard pass: where lockguard asked "does this
// function ever lock the guarding mutex", lockflow runs a forward dataflow
// analysis over the function's control-flow graph and asks "is the mutex
// held at this access, on every path that reaches it".
//
// A struct field annotated with a comment containing "guarded by <mu>"
// (trailing or in the field's doc comment; the annotation grammar, shared
// with racecheck, lives in internal/lint/guards), where <mu> is a
// sync.Mutex or sync.RWMutex field of the same struct, may only be accessed
// while <mu> is held. On top of the per-access check, lockflow reports
// lock-pairing defects on any mutex it can resolve, guarded or not:
//
//   - access on a path where the mutex is not (or may not be) held,
//     including use-after-Unlock;
//   - a write to a guarded field under RLock only;
//   - Lock while the mutex is already definitely held (self-deadlock), and
//     RLock while the write lock is definitely held;
//   - Unlock/RUnlock of a mutex that is definitely not held, and
//     kind-mismatched unlocks (Unlock of a read lock, RUnlock of a write
//     lock);
//   - a return reached with the mutex held and no deferred unlock
//     registered on that path (a leaked lock).
//
// The lattice per mutex is the powerset of {unlocked, read-held,
// write-held}; joins at merge points take the union, so "held on one
// branch only" degrades to may-not-be-held and is reported at the access,
// not at the merge. Defer statements register exit-time unlocks on the
// paths that execute them.
//
// Scope and granularity: mutexes are identified by their field (or
// variable) object, so two instances of the same struct share a state —
// the same granularity lockguard used, which matches how the annotated
// fields in this tree are locked (always through the receiver). Function
// literals are not analyzed as part of the enclosing flow: a closure runs
// under its caller's discipline (worker-pool bodies, deferred cleanups),
// which flow analysis of the creating function cannot see. Helpers that
// run with the caller's lock held should carry //tardislint:ignore
// lockflow with a reason.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/cfg"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/guards"
)

const name = "lockflow"

// Pass is the lockflow analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "path-sensitive mutex discipline: 'guarded by <mu>' fields, double-(un)lock, leaked locks",
	Run:  run,
}

// state is the powerset lattice element for one mutex.
type state uint8

const (
	mayUnlocked state = 1 << iota
	mayReadHeld
	mayWriteHeld
)

func (s state) definitelyHeld() bool    { return s != 0 && s&mayUnlocked == 0 }
func (s state) definitelyNotHeld() bool { return s == mayUnlocked }

// guard ties an annotated field to the mutex field that protects it.
type guard struct {
	mutex *types.Var
	name  string // mutex field name, for messages
}

func run(p *lint.Package) []lint.Finding {
	// The annotation grammar is shared with racecheck; lockflow is the pass
	// that owns malformed-annotation findings (it runs first and per package).
	gs, out := guards.Collect(p, name)
	gm := map[*types.Var]guard{}
	for _, g := range gs {
		gm[g.Field] = guard{mutex: g.Mutex, name: g.Name}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &funcAnalysis{pkg: p, guards: gm}
			out = append(out, fn.check(fd)...)
		}
	}
	return out
}

func isMutex(t types.Type) bool   { return guards.IsMutex(t) }
func isRWMutex(t types.Type) bool { return guards.IsRWMutex(t) }

// fact is the dataflow fact: the lattice state of every mutex seen so far,
// plus the set of mutexes with a deferred unlock registered on this path.
type fact struct {
	locks    map[*types.Var]state
	deferred map[*types.Var]bool
}

func cloneFact(f fact) fact {
	nf := fact{locks: make(map[*types.Var]state, len(f.locks)), deferred: make(map[*types.Var]bool, len(f.deferred))}
	for k, v := range f.locks {
		nf.locks[k] = v
	}
	for k, v := range f.deferred {
		nf.deferred[k] = v
	}
	return nf
}

func joinFact(dst, src fact) (fact, bool) {
	changed := false
	for mu, s := range src.locks {
		d, ok := dst.locks[mu]
		if !ok {
			d = mayUnlocked // absent means never touched: not held
		}
		if d|s != d {
			dst.locks[mu] = d | s
			changed = true
		}
	}
	for mu := range dst.locks {
		if _, ok := src.locks[mu]; !ok {
			if dst.locks[mu]|mayUnlocked != dst.locks[mu] {
				dst.locks[mu] |= mayUnlocked
				changed = true
			}
		}
	}
	// A deferred unlock counts only if every path registered it; but for
	// leak reporting we stay conservative the other way (OR), so a defer on
	// any incoming path silences the leak finding.
	for mu, v := range src.deferred {
		if v && !dst.deferred[mu] {
			dst.deferred[mu] = true
			changed = true
		}
	}
	return dst, changed
}

type funcAnalysis struct {
	pkg    *lint.Package
	guards map[*types.Var]guard
}

// lockOp is a recognized <expr>.<mu>.Lock/Unlock/RLock/RUnlock call.
type lockOp struct {
	mu     *types.Var
	read   bool // RLock/RUnlock
	unlock bool
}

func (a *funcAnalysis) check(fd *ast.FuncDecl) []lint.Finding {
	// Cheap pre-scan: skip functions that touch neither locks nor guarded
	// fields (the overwhelmingly common case).
	relevant := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := a.pkg.Info.Uses[n.Sel].(*types.Var); ok {
				if _, g := a.guards[v]; g || isMutex(v.Type()) {
					relevant = true
				}
			}
		case *ast.Ident:
			if v, ok := a.pkg.Info.Uses[n].(*types.Var); ok && isMutex(v.Type()) {
				relevant = true
			}
		}
		return !relevant
	})
	if !relevant {
		return nil
	}

	g := cfg.Build(fd.Body)
	var findings []lint.Finding
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, a.pkg.Findingf(name, pos, format, args...))
	}
	transfer := func(reporting bool) func(b *cfg.Block, in fact) fact {
		return func(b *cfg.Block, in fact) fact {
			for _, n := range b.Nodes {
				in = a.transferNode(fd, n, in, reporting, report, g)
			}
			// Implicit return: a block that flows into the exit without an
			// explicit return/panic still ends the function.
			if reporting && endsImplicitReturn(b, g) {
				a.checkLeak(fd.Body.Rbrace, in, report)
			}
			return in
		}
	}
	in := cfg.Solve(g, cfg.Problem[fact]{
		Entry:    fact{locks: map[*types.Var]state{}, deferred: map[*types.Var]bool{}},
		Clone:    cloneFact,
		Transfer: transfer(false),
		Join:     joinFact,
	})
	// Second pass over each reachable block with the fixpoint facts, now
	// reporting. Each block is visited once, so findings are not duplicated.
	rep := transfer(true)
	for _, b := range g.Blocks {
		if f, ok := in[b]; ok && b.Live {
			rep(b, cloneFact(f))
		}
	}
	return findings
}

// endsImplicitReturn reports whether block b falls off the end of the
// function: it edges into the exit and its last node is not an explicit
// return or terminal call (those are checked at their own statement).
func endsImplicitReturn(b *cfg.Block, g *cfg.Graph) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if len(b.Nodes) == 0 {
		return len(b.Preds) > 0 || b == g.Entry
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					switch id.Name + "." + sel.Sel.Name {
					case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
						return false
					}
				}
			}
		}
	}
	return true
}

func (a *funcAnalysis) transferNode(fd *ast.FuncDecl, n ast.Node, in fact, reporting bool, report func(token.Pos, string, ...any), g *cfg.Graph) fact {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if op, ok := a.lockOpOf(n.Call); ok && op.unlock {
			in.deferred[op.mu] = true
		}
		// Deferred lock-taking and deferred closures are out of scope.
		return in
	case *ast.ReturnStmt:
		if reporting {
			a.checkLeak(n.Pos(), in, report)
		}
		a.scanUses(n, in, reporting, report, false)
		return in
	case *ast.AssignStmt:
		// LHS guarded-field selectors are writes; check them with write
		// semantics, everything else as reads.
		for _, rhs := range n.Rhs {
			a.scanUses(rhs, in, reporting, report, false)
		}
		for _, lhs := range n.Lhs {
			a.scanUses(lhs, in, reporting, report, true)
		}
		return in
	case *ast.IncDecStmt:
		a.scanUses(n.X, in, reporting, report, true)
		return in
	}
	// Generic statement/expression: find lock operations and guarded
	// accesses in evaluation order. ast.Inspect is pre-order, which matches
	// evaluation order closely enough for single-statement granularity.
	return a.scanUses(n, in, reporting, report, false)
}

// scanUses walks one node, updating lock states at Lock/Unlock calls and
// checking guarded-field accesses. write marks the topmost selector as a
// write access (assignment LHS).
func (a *funcAnalysis) scanUses(n ast.Node, in fact, reporting bool, report func(token.Pos, string, ...any), write bool) fact {
	top := true
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run under their caller's discipline
		case *ast.CallExpr:
			if op, ok := a.lockOpOf(n); ok {
				// Arguments (there are none for lock ops) and the receiver
				// chain don't need separate scanning: sel.X is the mutex
				// owner, and accessing x.mu is not a guarded access.
				in = a.applyLockOp(n, op, in, reporting, report)
				return false
			}
		case *ast.SelectorExpr:
			isWrite := write && top
			top = false
			if v, ok := a.pkg.Info.Uses[n.Sel].(*types.Var); ok {
				if gd, ok := a.guards[v]; ok {
					a.checkAccess(n, v, gd, in, isWrite, reporting, report)
				}
			}
		}
		return true
	}
	ast.Inspect(n, walk)
	return in
}

func (a *funcAnalysis) checkAccess(sel *ast.SelectorExpr, field *types.Var, gd guard, in fact, write, reporting bool, report func(token.Pos, string, ...any)) {
	if !reporting {
		return
	}
	s, ok := in.locks[gd.mutex]
	if !ok {
		s = mayUnlocked
	}
	switch {
	case s.definitelyNotHeld():
		report(sel.Sel.Pos(), "%s is guarded by %s, which is not held here", field.Name(), gd.name)
	case !s.definitelyHeld():
		report(sel.Sel.Pos(), "%s is guarded by %s, which may not be held on every path reaching this access", field.Name(), gd.name)
	case write && s&mayWriteHeld == 0:
		report(sel.Sel.Pos(), "write to %s under %s.RLock(); writes need the write lock", field.Name(), gd.name)
	}
}

func (a *funcAnalysis) applyLockOp(call *ast.CallExpr, op lockOp, in fact, reporting bool, report func(token.Pos, string, ...any)) fact {
	s, ok := in.locks[op.mu]
	if !ok {
		s = mayUnlocked
	}
	muName := op.mu.Name()
	if op.unlock {
		if reporting {
			switch {
			case s.definitelyNotHeld():
				report(call.Pos(), "%s is unlocked here but not held on any path (double unlock?)", muName)
			case s.definitelyHeld() && op.read && s == mayWriteHeld:
				report(call.Pos(), "RUnlock of %s, which is write-locked here; use Unlock", muName)
			case s.definitelyHeld() && !op.read && s == mayReadHeld && isRWMutex(op.mu.Type()):
				report(call.Pos(), "Unlock of %s, which is read-locked here; use RUnlock", muName)
			}
		}
		in.locks[op.mu] = mayUnlocked
		return in
	}
	if reporting {
		switch {
		case !op.read && s.definitelyHeld():
			report(call.Pos(), "%s.Lock() while %s is already held on every path reaching here (self-deadlock)", muName, muName)
		case op.read && s == mayWriteHeld:
			report(call.Pos(), "%s.RLock() while %s is already write-locked here (self-deadlock)", muName, muName)
		}
	}
	if op.read {
		in.locks[op.mu] = mayReadHeld
	} else {
		in.locks[op.mu] = mayWriteHeld
	}
	return in
}

// lockOpOf recognizes <expr>.<mu>.(Lock|RLock|Unlock|RUnlock)() where <mu>
// resolves to a sync.Mutex or sync.RWMutex variable or field. TryLock is
// deliberately unrecognized: its result-dependent state is beyond this
// lattice, and the tree does not use it.
func (a *funcAnalysis) lockOpOf(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
	case "RLock":
		op.read = true
	case "Unlock":
		op.unlock = true
	case "RUnlock":
		op.read, op.unlock = true, true
	default:
		return lockOp{}, false
	}
	var muVar *types.Var
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		muVar, _ = a.pkg.Info.Uses[x.Sel].(*types.Var)
	case *ast.Ident:
		muVar, _ = a.pkg.Info.Uses[x].(*types.Var)
	}
	if muVar == nil || !isMutex(muVar.Type()) {
		return lockOp{}, false
	}
	op.mu = muVar
	return op, true
}

// checkLeak reports mutexes still definitely held at a function exit with
// no deferred unlock registered on the path.
func (a *funcAnalysis) checkLeak(pos token.Pos, in fact, report func(token.Pos, string, ...any)) {
	for mu, s := range in.locks {
		if s.definitelyHeld() && !in.deferred[mu] {
			report(pos, "return while %s is still locked and no unlock is deferred (leaked lock)", mu.Name())
		}
	}
}
