package sigslice_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/sigslice"
)

func TestSigslice(t *testing.T) {
	for _, tc := range []struct {
		name  string
		files []string
	}{
		{"fixture", []string{"testdata/fixture.go"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			linttest.Check(t, sigslice.Pass, "fixture", tc.files...)
		})
	}
}
