// Package sigslice flags raw string surgery on isaxt.Signature values
// outside internal/isaxt.
//
// An iSAX-T signature is a sequence of whole bit-planes, w/4 hex characters
// each; cardinality reduction is defined only as a word-aligned truncation
// (paper Eq. 2). A raw slice, index, or concatenation can produce a string
// that is no longer a valid signature — a partial plane silently corrupts
// tree descent and recall rather than crashing. All cardinality manipulation
// must go through Codec.DropTo, Codec.Prefix, or Codec.Plane, which preserve
// plane alignment by construction. Deliberate boundary crossings convert to
// string first, which this pass does not chase.
package sigslice

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const name = "sigslice"

// Pass is the sigslice analyzer.
var Pass = lint.Pass{
	Name: name,
	Doc:  "flag raw slicing/indexing/concatenation of isaxt.Signature outside internal/isaxt",
	Run:  run,
}

func run(p *lint.Package) []lint.Finding {
	if strings.HasSuffix(p.PkgPath, "internal/isaxt") {
		return nil // the codec's home package implements the primitives
	}
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SliceExpr:
				if isSignature(p, e.X) {
					out = append(out, p.Findingf(name, e.Pos(),
						"isaxt.Signature sliced with a raw [i:j]; use Codec.DropTo, Prefix, or Plane so truncation stays word-aligned (paper Eq. 2)"))
				}
			case *ast.IndexExpr:
				if isSignature(p, e.X) {
					out = append(out, p.Findingf(name, e.Pos(),
						"isaxt.Signature indexed with a raw [i]; extract whole bit-planes with Codec.Plane instead of single hex characters"))
				}
			case *ast.BinaryExpr:
				if e.Op == token.ADD && (isSignature(p, e.X) || isSignature(p, e.Y)) {
					out = append(out, p.Findingf(name, e.Pos(),
						"isaxt.Signature built by concatenation; signatures come only from Codec.Encode/FromSeries or plane-aligned truncation"))
				}
			}
			return true
		})
	}
	return out
}

func isSignature(p *lint.Package, e ast.Expr) bool {
	t := p.TypeOf(e)
	return t != nil && lint.IsNamed(t, "internal/isaxt", "Signature")
}
