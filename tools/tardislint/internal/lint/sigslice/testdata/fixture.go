// Package fixture seeds sigslice violations: raw string surgery on
// isaxt.Signature values that bypasses the Eq. 2 word-alignment invariant,
// next to the corrected forms that must stay clean.
package fixture

import "github.com/tardisdb/tardis/internal/isaxt"

var codec = isaxt.MustNewCodec(8)

func badDrop(sig isaxt.Signature) isaxt.Signature {
	return sig[:2] // WANT
}

func badIndex(sig isaxt.Signature) byte {
	return sig[0] // WANT
}

func badConcat(a, b isaxt.Signature) isaxt.Signature {
	return a + b // WANT
}

func badMixedConcat(a isaxt.Signature) isaxt.Signature {
	return a + isaxt.Signature("0F") // WANT
}

func goodDrop(sig isaxt.Signature) (isaxt.Signature, error) {
	return codec.DropTo(sig, 1)
}

func goodPrefix(sig isaxt.Signature) isaxt.Signature {
	return codec.Prefix(sig, 1)
}

func goodPlane(sig isaxt.Signature) isaxt.Signature {
	return codec.Plane(sig, 1)
}

// goodString converts at a deliberate boundary; raw strings are fair game.
func goodString(sig isaxt.Signature) string {
	s := string(sig)
	return s[:1]
}

func goodCompare(a, b isaxt.Signature) bool {
	return len(a) == len(b) && isaxt.Covers(a, b)
}

func suppressed(sig isaxt.Signature) isaxt.Signature {
	return sig[:1] //tardislint:ignore sigslice fixture exercises the escape hatch
}
