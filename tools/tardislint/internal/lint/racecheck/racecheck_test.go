package racecheck_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/racecheck"
)

func TestRaceFixture(t *testing.T) {
	linttest.Check(t, racecheck.Pass, "race", "testdata/race.go")
}

func TestLoopCaptureFixture(t *testing.T) {
	linttest.Check(t, racecheck.Pass, "loopcap", "testdata/loopcap.go")
}

func TestExemptionsFixture(t *testing.T) {
	linttest.Check(t, racecheck.Pass, "exempt", "testdata/exempt.go")
}

func TestAnnotatedFixture(t *testing.T) {
	linttest.Check(t, racecheck.Pass, "annotated", "testdata/annotated.go")
}

func TestDetFixture(t *testing.T) {
	linttest.Check(t, racecheck.Pass, "det", "testdata/det_a.go", "testdata/det_b.go")
}

func load(t *testing.T, pkgPath string, files ...string) []lint.Finding {
	t.Helper()
	pkg, err := lint.NewLoader().LoadFiles(pkgPath, files...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return lint.Run([]lint.Pass{racecheck.Pass}, []*lint.Package{pkg})
}

// TestWitnessChains proves the acceptance contract: the majority-lock
// finding on Stats.hits names the inferred lock, spells out the witnessing
// chain to the offending read, and cites the conflicting locked write from
// the other root — with both chains present in Finding.Chain.
func TestWitnessChains(t *testing.T) {
	findings := load(t, "race", "testdata/race.go")
	var hit *lint.Finding
	for i := range findings {
		if strings.Contains(findings[i].Message, "Stats.hits") {
			hit = &findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("no finding on Stats.hits:\n%v", findings)
	}
	for _, want := range []string{
		"potential data race on Stats.hits",
		"read does not hold Stats.mu",
		"inferred majority lock",
		"access via race.(*Stats).readHit",
		"conflicting write from root race.(*Stats).addHit",
		"race.(*Stats).bump",
	} {
		if !strings.Contains(hit.Message, want) {
			t.Errorf("Stats.hits finding missing %q:\n%s", want, hit.Message)
		}
	}
	// Both chains are concatenated in Chain: the offender's path and the
	// conflicting path, each starting at its root.
	var funcs []string
	for _, st := range hit.Chain {
		funcs = append(funcs, st.Func)
	}
	joined := strings.Join(funcs, " ")
	if !strings.Contains(joined, "readHit") || !strings.Contains(joined, "bump") {
		t.Errorf("Chain must contain both witnessing paths, got %v", funcs)
	}
}

// TestContradictedAnnotation pins the shape of the annotation-contradiction
// finding: one finding at the annotation, naming both locks.
func TestContradictedAnnotation(t *testing.T) {
	findings := load(t, "annotated", "testdata/annotated.go")
	var contra *lint.Finding
	for i := range findings {
		if strings.Contains(findings[i].Message, "contradicted") {
			if contra != nil {
				t.Fatalf("more than one contradiction finding:\n%v", findings)
			}
			contra = &findings[i]
		}
	}
	if contra == nil {
		t.Fatalf("no contradiction finding:\n%v", findings)
	}
	for _, want := range []string{
		"'guarded by' annotation on Registry.count",
		"no concurrent access holds Registry.idx",
		"Registry.mu is held at 2 of 2 site(s)",
	} {
		if !strings.Contains(contra.Message, want) {
			t.Errorf("contradiction finding missing %q:\n%s", want, contra.Message)
		}
	}
}

func render(t *testing.T, files ...string) string {
	t.Helper()
	findings := load(t, "det", files...)
	var sb strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&sb, "%s:%d:%d %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
		for _, st := range f.Chain {
			fmt.Fprintf(&sb, "  %s %s:%d:%d\n", st.Func, st.Pos.Filename, st.Pos.Line, st.Pos.Column)
		}
	}
	return sb.String()
}

// TestDeterministicAcrossOrderings loads the two-file fixture in both file
// orders and requires byte-identical rendered findings, chains included.
func TestDeterministicAcrossOrderings(t *testing.T) {
	ab := render(t, "testdata/det_a.go", "testdata/det_b.go")
	ba := render(t, "testdata/det_b.go", "testdata/det_a.go")
	if ab == "" {
		t.Fatal("determinism fixture produced no findings")
	}
	if ab != ba {
		t.Errorf("findings differ across file orderings:\n--- a,b ---\n%s--- b,a ---\n%s", ab, ba)
	}
}
