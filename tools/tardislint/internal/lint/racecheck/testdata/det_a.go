// Fixture (file 1 of 2) for the shuffled-ordering determinism test: findings
// span both files so the rendered report exercises cross-file ordering.
package det

import "sync"

type shared struct {
	mu sync.Mutex
	a  int
	b  int
}

func alphaWriter(s *shared) {
	s.a++ // WANT
	s.mu.Lock()
	s.b++
	s.mu.Unlock()
}
