// Fixture for racecheck's exemptions: constructor escape (writes to fresh
// allocations are owned), sync/atomic operations and atomic-typed fields,
// and channel hand-off (received values are transferred, not shared). None
// of these may produce a finding.
package exempt

import (
	"sync"
	"sync/atomic"
)

// Box demonstrates constructor escape: NewBox writes to memory it just
// allocated, so the unlocked store is owned, and the only shared access is
// properly locked.
type Box struct {
	mu sync.Mutex
	n  int
}

func NewBox() *Box {
	b := &Box{}
	b.n = 1
	return b
}

func worker() {
	b := NewBox()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func Start() {
	go worker()
	go worker()
}

// Counter is only touched through sync/atomic calls.
type Counter struct {
	n int64
}

func (c *Counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) get() int64 {
	return atomic.LoadInt64(&c.n)
}

func Count(c *Counter) {
	go c.inc()
	go c.get()
}

// Hits uses the typed atomic — the field type itself is exempt.
type Hits struct {
	n atomic.Int64
}

func (h *Hits) bump() {
	h.n.Add(1)
}

func Observe(h *Hits) {
	go h.bump()
	go h.bump()
}

// job crosses a channel by pointer: the producer writes before sending, the
// consumer owns what it receives.
type job struct {
	n int
}

func produce(ch chan<- *job) {
	j := &job{}
	j.n = 1
	ch <- j
}

func consume(ch <-chan *job) {
	for j := range ch {
		j.n++
	}
}

func Pipeline() {
	ch := make(chan *job)
	go produce(ch)
	go consume(ch)
}
