// Fixture for racecheck: genuine races between goroutine roots, plus the
// interprocedural case where the guarding lock is only visible after the
// callee's accesses are lifted into the caller that holds it.
package race

import "sync"

// Tracker seeds the no-lock-anywhere variant: done is written by two
// goroutine roots with no lock, while tags is consistently guarded.
type Tracker struct {
	mu   sync.Mutex
	done int
	tags []string
}

func (t *Tracker) produce() {
	t.done++ // WANT
	t.mu.Lock()
	t.tags = append(t.tags, "p")
	t.mu.Unlock()
}

func (t *Tracker) consume() {
	t.done++ // WANT
	t.mu.Lock()
	t.tags = append(t.tags, "c")
	t.mu.Unlock()
}

func SpawnPair(t *Tracker) {
	go t.produce()
	go t.consume()
}

// Stats seeds majority-lock inference: the write reaches hits through bump,
// whose caller holds mu — the lifted summary carries the lock — while
// readHit touches the field bare.
type Stats struct {
	mu   sync.Mutex
	hits int
}

func (s *Stats) addHit() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

// bump relies on its caller holding mu.
func (s *Stats) bump() {
	s.hits++
}

func (s *Stats) readHit() int {
	return s.hits // WANT
}

func Monitor(s *Stats) {
	go s.addHit()
	go s.addHit()
	go s.readHit()
}
