// Fixture for racecheck: a single goroutine literal spawned inside a loop is
// a multi-instance root — its instances race with each other even though no
// second root exists.
package loopcap

// Gauge is mutated by worker goroutines fanned out in a loop.
type Gauge struct {
	val int
}

// FanOut rebinds g per iteration; every instance still mutates a shared
// Gauge with no lock.
func FanOut(gs []*Gauge) {
	for _, g := range gs {
		g := g
		go func() {
			g.val++ // WANT
		}()
	}
}

// FanOutCaptured is the legacy capture pattern: the literal closes over the
// range variable directly. The field write races across instances all the
// same.
func FanOutCaptured(gs []*Gauge) {
	for _, g := range gs {
		go func() {
			g.val-- // WANT
		}()
	}
}
