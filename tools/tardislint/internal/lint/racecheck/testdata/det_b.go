// Fixture (file 2 of 2) for the shuffled-ordering determinism test.
package det

func betaWriter(s *shared) {
	s.a++ // WANT
	s.b++ // WANT
}

func Spawn(s *shared) {
	go alphaWriter(s)
	go betaWriter(s)
}
