// Fixture for racecheck's annotation handling: a `guarded by` comment is
// ground truth when honored, and a finding of its own when inference
// contradicts it.
package annotated

import "sync"

// Registry's count annotation names the wrong lock: every concurrent access
// actually holds mu, so the annotation is contradicted and the finding lands
// on the annotation itself rather than on each access.
type Registry struct {
	mu    sync.Mutex
	idx   sync.Mutex
	count int // guarded by idx — wrong lock // WANT
}

func (r *Registry) add() {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
}

func (r *Registry) snapshot() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func Run(r *Registry) {
	go r.add()
	go r.snapshot()
}

// Ledger's annotation is honored; the unlocked increment is the bug.
type Ledger struct {
	mu    sync.Mutex
	total int // guarded by mu
}

func (l *Ledger) credit() {
	l.mu.Lock()
	l.total++
	l.mu.Unlock()
}

func (l *Ledger) drain() {
	l.total++ // WANT
}

func Book(l *Ledger) {
	go l.credit()
	go l.drain()
}
