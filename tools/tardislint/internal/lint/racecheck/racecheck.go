// Package racecheck detects potential data races interprocedurally, via
// lock-set inference over the callgraph's access summaries and concurrency
// roots (RacerD-style, after Blackshear et al.).
//
// The callgraph layer supplies, per function, every struct-field access the
// function may perform — keyed by per-type field identity, tagged with the
// lock set held at the access, lifted bottom-up over the SCC fixpoint — and
// the set of concurrency roots: goroutine targets, net/rpc handler methods,
// and HTTP-handler-shaped functions (see callgraph/access.go, including the
// ownership, atomic, channel-transfer, and sync.Once exemptions applied at
// collection time).
//
// A field is a race candidate when it is reachable from at least two
// distinct roots — or from one root that runs as multiple concurrent
// instances (spawned in a loop or from several sites, or invoked
// per-request) — and at least one of those accesses is a write. For each
// candidate the pass determines the lock that is supposed to guard it:
//
//   - a `guarded by <mu>` annotation (parsed by internal/lint/guards, the
//     same parser lockflow uses) is ground truth — every concurrent access
//     that does not hold the annotated lock is reported, and an annotation
//     that inference contradicts (no concurrent access holds it while
//     another lock dominates) is itself a finding at the annotation;
//   - otherwise the majority lock is inferred: the lock held at the most
//     access sites (ties break lexicographically), and each site whose
//     intersected lock set misses it is reported;
//   - a candidate with no lock held anywhere is reported at each write.
//
// Every finding carries two witnessing call chains — root to the offending
// access, and root to a conflicting access — concatenated in Finding.Chain,
// the same format lockorder golden-tests in -format json.
package racecheck

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/guards"
)

const name = "racecheck"

// Pass is the racecheck analyzer.
var Pass = lint.Pass{
	Name:       name,
	Doc:        "interprocedural data races: lock-set inference over concurrency roots",
	RunProgram: run,
}

// annotation is the ground truth a `guarded by` comment declares for a field.
type annotation struct {
	lock      callgraph.LockID
	lockDisp  string
	fieldDisp string
	pos       token.Position
}

// occurrence is one access site as witnessed from one concurrency root.
type occurrence struct {
	root *callgraph.Root
	acc  *callgraph.Access
}

// site collapses the occurrences of one source position: its lock set is the
// intersection over every root reaching it (a lock held on only some of the
// concurrent paths protects nothing).
type site struct {
	key   string
	write bool
	acc   *callgraph.Access
	locks []callgraph.LockID
	occs  []occurrence
}

func run(pkgs []*lint.Package) []lint.Finding {
	g := callgraph.Build(pkgs)
	roots := g.Roots()
	if len(roots) == 0 {
		return nil
	}
	ann := collectAnnotations(pkgs)

	byField := map[callgraph.FieldID][]occurrence{}
	var fields []callgraph.FieldID
	for _, r := range roots {
		for _, a := range r.Node.Summary.AccessList() {
			if perCallRooted(r, a) {
				continue
			}
			if _, ok := byField[a.Field]; !ok {
				fields = append(fields, a.Field)
			}
			byField[a.Field] = append(byField[a.Field], occurrence{root: r, acc: a})
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })

	var out []lint.Finding
	for _, fid := range fields {
		occs := byField[fid]
		distinctRoots := map[string]bool{}
		multi := false
		for _, o := range occs {
			distinctRoots[o.root.Node.ID] = true
			if o.root.Multi {
				multi = true
			}
		}
		if len(distinctRoots) < 2 && !multi {
			continue
		}
		sites := collapse(occs)
		hasWrite := false
		for _, s := range sites {
			if s.write {
				hasWrite = true
			}
		}
		if !hasWrite {
			continue
		}
		out = append(out, checkField(g, fid, sites, ann)...)
	}
	return out
}

// perCallRooted reports accesses through memory the transport allocates per
// call: net/rpc decodes a fresh args value and allocates a fresh reply for
// every request, and net/http hands each handler invocation its own
// ResponseWriter/Request pair. Receiver-rooted state is the shared service
// and always participates.
func perCallRooted(r *callgraph.Root, a *callgraph.Access) bool {
	return (r.Kind == "rpc" || r.Kind == "http") && a.Param >= 0
}

// collapse groups occurrences into unique sites in deterministic order.
func collapse(occs []occurrence) []*site {
	byKey := map[string]*site{}
	var sites []*site
	for _, o := range occs {
		k := fmt.Sprintf("%s:%d:%d|%v", o.acc.Pos.Filename, o.acc.Pos.Line, o.acc.Pos.Column, o.acc.Write)
		s := byKey[k]
		if s == nil {
			s = &site{key: k, write: o.acc.Write, acc: o.acc, locks: o.acc.Locks}
			byKey[k] = s
			sites = append(sites, s)
		} else {
			s.locks = intersectLocks(s.locks, o.acc.Locks)
		}
		s.occs = append(s.occs, o)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].key < sites[j].key })
	return sites
}

// checkField judges one race-candidate field and renders its findings.
func checkField(g *callgraph.Graph, fid callgraph.FieldID, sites []*site, ann map[callgraph.FieldID]annotation) []lint.Finding {
	counts := map[callgraph.LockID]int{}
	var lockOrder []callgraph.LockID
	for _, s := range sites {
		for _, l := range s.locks {
			if counts[l] == 0 {
				lockOrder = append(lockOrder, l)
			}
			counts[l]++
		}
	}
	sort.Slice(lockOrder, func(i, j int) bool { return lockOrder[i] < lockOrder[j] })
	var best callgraph.LockID
	bestN := 0
	for _, l := range lockOrder {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	display := sites[0].acc.Display

	if an, ok := ann[fid]; ok {
		held := counts[an.lock]
		if held == 0 && bestN > 0 && bestN*2 >= len(sites) {
			// The annotation names a lock nobody holds while another lock
			// dominates: the annotation itself is wrong (or the locking is).
			// Reporting every access would drown the signal, so the finding
			// lands on the annotation.
			return []lint.Finding{{
				Pos:  an.pos,
				Pass: name,
				Message: fmt.Sprintf(
					"'guarded by' annotation on %s is contradicted by inference: no concurrent access holds %s, while %s is held at %d of %d site(s); fix the annotation or the locking",
					an.fieldDisp, an.lockDisp, g.LockDisplay(best), bestN, len(sites)),
			}}
		}
		var out []lint.Finding
		for _, s := range sites {
			if containsLock(s.locks, an.lock) {
				continue
			}
			out = append(out, offenderFinding(g, s, sites, an.lock,
				fmt.Sprintf("%s ('guarded by' annotation, held at %d of %d concurrent access site(s))", an.lockDisp, held, len(sites))))
		}
		return out
	}

	if bestN == 0 {
		// No lock anywhere: every concurrent write is a finding.
		var out []lint.Finding
		for _, s := range sites {
			if !s.write {
				continue
			}
			off := s.occs[0]
			conflict := pickConflict(s, sites)
			out = append(out, renderFinding(off, conflict,
				fmt.Sprintf("potential data race on %s: concurrent %s with no lock held (root %s)",
					display, kindOf(s.write), off.root.Node.Display)))
		}
		return out
	}

	var out []lint.Finding
	for _, s := range sites {
		if containsLock(s.locks, best) {
			continue
		}
		out = append(out, offenderFinding(g, s, sites, best,
			fmt.Sprintf("%s (inferred majority lock, held at %d of %d concurrent access site(s))", g.LockDisplay(best), bestN, len(sites))))
	}
	return out
}

// offenderFinding renders one access that misses the guarding lock.
func offenderFinding(g *callgraph.Graph, s *site, sites []*site, lock callgraph.LockID, lockDesc string) lint.Finding {
	off := witnessOcc(s, lock)
	conflict := pickConflict(s, sites)
	return renderFinding(off, conflict,
		fmt.Sprintf("potential data race on %s: %s does not hold %s",
			s.acc.Display, kindOf(s.write), lockDesc))
}

// renderFinding assembles the diagnostic: the offending access with its
// witnessing chain, the conflicting access with its chain, and both chains
// concatenated in Finding.Chain for -format json consumers.
func renderFinding(off, conflict occurrence, msg string) lint.Finding {
	chain := make([]lint.Step, 0, len(off.acc.Chain)+len(conflict.acc.Chain))
	chain = append(chain, off.acc.Chain...)
	chain = append(chain, conflict.acc.Chain...)
	var conflictDesc string
	if conflict.acc == off.acc && conflict.root == off.root {
		conflictDesc = fmt.Sprintf("a second instance of root %s races on the same access", off.root.Node.Display)
	} else {
		conflictDesc = fmt.Sprintf("conflicting %s from root %s via %s",
			kindOf(conflict.acc.Write), conflict.root.Node.Display, callgraph.RenderChain(conflict.acc.Chain))
	}
	return lint.Finding{
		Pos:   off.acc.Pos,
		Pass:  name,
		Chain: chain,
		Message: fmt.Sprintf("%s; access via %s; %s",
			msg, callgraph.RenderChain(off.acc.Chain), conflictDesc),
	}
}

// witnessOcc picks the occurrence whose own lock set misses the lock — the
// path the diagnostic should spell out.
func witnessOcc(s *site, lock callgraph.LockID) occurrence {
	for _, o := range s.occs {
		if !containsLock(o.acc.Locks, lock) {
			return o
		}
	}
	return s.occs[0]
}

// pickConflict returns the racing counterpart to cite: prefer a write at a
// different site, then any other site, then (multi-instance roots) another
// occurrence of the same site.
func pickConflict(s *site, sites []*site) occurrence {
	var fallback *occurrence
	for _, t := range sites {
		if t == s {
			continue
		}
		o := t.occs[0]
		if t.write {
			return o
		}
		if fallback == nil {
			fallback = &o
		}
	}
	if fallback != nil {
		return *fallback
	}
	if len(s.occs) > 1 {
		return s.occs[1]
	}
	return s.occs[0]
}

func kindOf(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func containsLock(locks []callgraph.LockID, l callgraph.LockID) bool {
	for _, id := range locks {
		if id == l {
			return true
		}
	}
	return false
}

func intersectLocks(a, b []callgraph.LockID) []callgraph.LockID {
	inB := map[callgraph.LockID]bool{}
	for _, id := range b {
		inB[id] = true
	}
	var out []callgraph.LockID
	for _, id := range a {
		if inB[id] {
			out = append(out, id)
		}
	}
	return out
}

// collectAnnotations resolves type-granular `guarded by` ground truth from
// the shared parser. Malformed annotations are lockflow's findings, not
// racecheck's; anonymous-struct annotations have no per-type identity and
// fall back to inference.
func collectAnnotations(pkgs []*lint.Package) map[callgraph.FieldID]annotation {
	out := map[callgraph.FieldID]annotation{}
	for _, p := range pkgs {
		if p == nil || strings.HasSuffix(p.PkgPath, "_test") {
			continue
		}
		gs, _ := guards.Collect(p, name)
		for _, gd := range gs {
			if gd.Owner == nil {
				continue
			}
			pos := p.Fset.Position(gd.Field.Pos())
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			tid := callgraph.TypeID(gd.Owner)
			fid := callgraph.FieldID(tid + "." + gd.Field.Name())
			out[fid] = annotation{
				lock:      callgraph.LockID(tid + "." + gd.Mutex.Name()),
				lockDisp:  gd.Owner.Obj().Name() + "." + gd.Mutex.Name(),
				fieldDisp: gd.Owner.Obj().Name() + "." + gd.Field.Name(),
				pos:       pos,
			}
		}
	}
	return out
}
