package ctxflow_test

import (
	"strings"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/ctxflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Check(t, ctxflow.Pass, "fixture", "testdata/fixture.go")
}

// TestTwoFramesDeep locks the chain rendering for the ctx-dropped-two-
// frames-deep shape: the finding names every hop down to the receive.
func TestTwoFramesDeep(t *testing.T) {
	pkg, err := lint.NewLoader().LoadFiles("fixture", "testdata/fixture.go")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := lint.Run([]lint.Pass{ctxflow.Pass}, []*lint.Package{pkg})
	var outer *lint.Finding
	for i, f := range findings {
		if strings.Contains(f.Message, "fixture.Outer") {
			outer = &findings[i]
		}
	}
	if outer == nil {
		t.Fatalf("no finding with the Outer chain among:\n%v", findings)
	}
	for _, want := range []string{"fixture.Outer", "fixture.middle", "fixture.inner", "channel receive"} {
		if !strings.Contains(outer.Message, want) {
			t.Errorf("Outer finding missing %q:\n%s", want, outer.Message)
		}
	}
	if len(outer.Chain) != 3 {
		t.Errorf("Outer chain has %d steps, want 3: %v", len(outer.Chain), outer.Chain)
	}
}
