// Package ctxflow flags functions that receive a context.Context but can
// reach a blocking operation — a raw channel send or receive, a select with
// no cancellation case, sync.WaitGroup.Wait, time.Sleep, a synchronous
// net/rpc call, a context-less dial — through some call path that never
// forwards the context. That is the bug shape that silently turns a
// deadline-bounded query into an unbounded hang: the deadline is plumbed to
// the entry point and then dropped two frames down.
//
// The analysis is built on the callgraph summaries:
//
//   - only functions whose own parameter list includes a context.Context are
//     reported — a context-less helper is the responsibility of whichever
//     context-holding caller reaches it, and the finding appears at that
//     caller's call site with the full chain;
//   - an operation is governed (not reported) when it is a select with a
//     <-ctx.Done() case on a context derived from the parameter, or a
//     context-aware primitive that received a derived context;
//   - forwarding a derived context to a callee that itself takes a context
//     delegates responsibility to the callee; calling it with
//     context.Background() (or any underived context) severs cancellation,
//     so the callee's governed operations are reported at the dropping call
//     site;
//   - `go f()` does not propagate: the spawner does not block in f.
//
// Disk reads are deliberately out of scope: the cancellable surface is
// channels, waits, sleeps, dials, and RPC.
package ctxflow

import (
	"fmt"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
)

// Pass is the ctxflow analyzer.
var Pass = lint.Pass{
	Name:       "ctxflow",
	Doc:        "blocking operations reached from ctx-taking functions without forwarding cancellation",
	RunProgram: run,
}

func run(pkgs []*lint.Package) []lint.Finding {
	g := callgraph.Build(pkgs)
	var out []lint.Finding
	for _, n := range g.Nodes() {
		if !n.HasCtx() {
			continue
		}
		for _, blk := range n.Summary.Blocks {
			if blk.Governed {
				continue
			}
			f := lint.Finding{Pos: blk.Chain[0].Pos, Chain: blk.Chain}
			if len(blk.Chain) == 1 {
				f.Message = fmt.Sprintf("ctx is in scope but %s blocks without a cancellation path (select on <-ctx.Done() or use a ctx-aware variant)", blk.Op)
			} else {
				f.Message = fmt.Sprintf("ctx is dropped on the path to %s: %s", blk.Op, callgraph.RenderChain(blk.Chain))
			}
			out = append(out, f)
		}
	}
	return out
}
