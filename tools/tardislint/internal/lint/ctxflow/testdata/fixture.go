// Package fixture seeds the context-propagation violations the ctxflow pass
// must flag, next to the governed forms that must stay clean. WANT markers
// sit where the finding anchors: the blocking operation itself when it is in
// the ctx-taking function, or the call site where the context is dropped.
package fixture

import (
	"context"
	"sync"
	"time"
)

// WaitRaw blocks on a bare receive with ctx in scope.
func WaitRaw(ctx context.Context, ch chan int) int {
	return <-ch // WANT
}

// WaitGuarded is the governed form: the select carries a cancellation case.
func WaitGuarded(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Outer drops ctx two frames above the blocking receive: the finding lands
// on the call that enters the context-less chain.
func Outer(ctx context.Context, ch chan int) {
	middle(ch) // WANT
}

func middle(ch chan int) { inner(ch) }

func inner(ch chan int) { <-ch }

// Drop severs cancellation by handing a fresh Background context to a
// callee whose blocking select is only governed by the context it receives.
func Drop(ctx context.Context, ch chan int) {
	WaitGuarded(context.Background(), ch) // WANT
}

// Forward delegates correctly: the callee takes over responsibility.
func Forward(ctx context.Context, ch chan int) {
	if _, err := WaitGuarded(ctx, ch); err != nil {
		return
	}
}

// Join blocks on a WaitGroup, which no context can interrupt.
func Join(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // WANT
}

// Spawn does not block: the receive happens on the spawned goroutine.
func Spawn(ctx context.Context, ch chan int) {
	go inner(ch)
}

// Send blocks on an unbuffered send.
func Send(ctx context.Context, ch chan int) {
	ch <- 1 // WANT
}

// Buffered sends on a channel with known capacity: never blocks.
func Buffered(ctx context.Context, n int) chan int {
	out := make(chan int, 1)
	out <- n
	return out
}

// Nap sleeps with ctx in scope.
func Nap(ctx context.Context) {
	time.Sleep(time.Millisecond) // WANT
}

// NapGuarded is the cancellable sleep.
func NapGuarded(ctx context.Context) error {
	select {
	case <-time.After(time.Millisecond):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
