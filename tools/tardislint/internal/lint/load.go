package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages. One Loader shares a FileSet and a
// source importer across loads, so dependency packages are compiled once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the source importer, which compiles
// dependencies (stdlib and module-internal alike) from source — no export
// data or external tooling required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadPatterns resolves go-style package patterns ("./...", "./internal/core")
// relative to the current directory and loads every matched package,
// including in-package and external test files. Directories named testdata or
// vendor, and hidden or underscore-prefixed directories, are skipped.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(root)
		if root == "" {
			root = "."
		}
		if !recursive {
			addDir(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root &&
				(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
				return fs.SkipDir
			}
			addDir(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", root, err)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// LoadDir loads the packages found directly in dir (not recursing): the
// primary package including its in-package test files, and the external
// _test package if present. Directories without Go files load nothing.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	byName := map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		name, err := packageClause(l.fset, path)
		if err != nil {
			return nil, err
		}
		byName[name] = append(byName[name], path)
	}
	if len(byName) == 0 {
		return nil, nil
	}
	basePath, err := importPathOf(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		pkgPath := basePath
		if strings.HasSuffix(name, "_test") {
			pkgPath += "_test"
		}
		files := byName[name]
		sort.Strings(files)
		pkg, err := l.LoadFiles(pkgPath, files...)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFiles parses and type-checks the given files as a single package under
// the given import path. Used directly by fixture tests.
func (l *Loader) LoadFiles(pkgPath string, paths ...string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// packageClause reads just the package name of a file.
func packageClause(fset *token.FileSet, path string) (string, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	return f.Name.Name, nil
}

// importPathOf derives the import path of dir from the enclosing go.mod.
func importPathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			// Outside any module (fixture in a temp dir): the directory name
			// stands in for the import path.
			return filepath.Base(abs), nil
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
