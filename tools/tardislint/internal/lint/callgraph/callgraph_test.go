package callgraph_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
)

func load(t *testing.T, pkgPath string, files ...string) *callgraph.Graph {
	t.Helper()
	pkg, err := lint.NewLoader().LoadFiles(pkgPath, files...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.New([]*lint.Package{pkg})
}

func calleeIDs(t *testing.T, g *callgraph.Graph, id string) map[string]bool {
	t.Helper()
	n := g.Lookup(id)
	if n == nil {
		t.Fatalf("no node %q in graph", id)
	}
	out := map[string]bool{}
	for _, site := range n.Sites {
		for _, c := range site.Callees {
			out[c.ID] = true
		}
	}
	return out
}

// TestResolution covers each call-resolution mode: static, concrete-receiver
// method, closure via local variable, field-stored callback, parameter-bound
// callback, and immediately invoked literal.
func TestResolution(t *testing.T) {
	g := load(t, "resolve", "testdata/resolve.go")
	cases := []struct {
		caller, callee string
	}{
		{"resolve.caller", "resolve.target"},
		{"resolve.methodCall", "(*resolve.T).m"},
		{"resolve.closureCall", "resolve.closureCall$0"},
		{"resolve.callField", "resolve.target"},
		{"resolve.takesCb", "resolve.target"},
		{"resolve.immediate", "resolve.immediate$0"},
		{"resolve.immediate$0", "resolve.target"},
	}
	for _, c := range cases {
		if !calleeIDs(t, g, c.caller)[c.callee] {
			t.Errorf("%s does not call %s; graph:\n%s", c.caller, c.callee, g.Dump())
		}
	}
}

// TestSCCFixpoint proves summaries converge over mutual recursion: each
// function of the ping/pong pair must report both locks.
func TestSCCFixpoint(t *testing.T) {
	g := load(t, "recurse", "testdata/recurse.go")
	for _, id := range []string{"recurse.ping", "recurse.pong"} {
		n := g.Lookup(id)
		if n == nil {
			t.Fatalf("no node %q", id)
		}
		for _, lock := range []callgraph.LockID{"recurse.left.mu", "recurse.right.mu"} {
			chain, ok := n.Summary.Acquires[lock]
			if !ok {
				t.Errorf("%s summary missing %s; got %v", id, lock, n.Summary.Acquires)
				continue
			}
			if len(chain) == 0 {
				t.Errorf("%s acquire of %s has empty witness chain", id, lock)
			}
		}
	}
}

// TestExitHeld proves lock-helper propagation: acquireHeld returns holding
// left.mu, so holdsAcross observes the left.mu -> right.mu ordering.
func TestExitHeld(t *testing.T) {
	g := load(t, "recurse", "testdata/recurse.go")
	helper := g.Lookup("(*recurse.left).acquireHeld")
	if helper == nil {
		t.Fatal("no node for acquireHeld")
	}
	if len(helper.Summary.ExitHeld) != 1 || helper.Summary.ExitHeld[0] != "recurse.left.mu" {
		t.Fatalf("acquireHeld ExitHeld = %v, want [recurse.left.mu]", helper.Summary.ExitHeld)
	}
	found := false
	for _, e := range g.Edges() {
		if e.From == "recurse.left.mu" && e.To == "recurse.right.mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing left.mu -> right.mu edge from holdsAcross; edges: %v", g.Edges())
	}
}

// TestDeterministicAcrossOrderings builds the graph from the same fixtures
// with the file order reversed and from a fresh loader: the dumps must be
// byte-identical (node IDs, summaries, and edges are all sorted, and
// first-witness selection follows source order, not map order).
func TestDeterministicAcrossOrderings(t *testing.T) {
	a := load(t, "resolve", "testdata/resolve.go", "testdata/resolve2.go")
	b := load(t, "resolve", "testdata/resolve2.go", "testdata/resolve.go")
	if a.Dump() != b.Dump() {
		t.Errorf("graph dump differs across file orderings:\n--- a ---\n%s\n--- b ---\n%s", a.Dump(), b.Dump())
	}
	c := load(t, "resolve", "testdata/resolve.go", "testdata/resolve2.go")
	if a.Dump() != c.Dump() {
		t.Errorf("graph dump differs across fresh loads:\n--- a ---\n%s\n--- c ---\n%s", a.Dump(), c.Dump())
	}
}
