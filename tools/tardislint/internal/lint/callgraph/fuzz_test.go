package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
)

// FuzzSummaries asserts two invariants of the callgraph engine over
// arbitrary (possibly ill-typed) Go source: building the graph and its
// summaries never panics, and building twice from independent parses of the
// same source produces byte-identical dumps. Type checking runs without an
// importer and with errors tolerated, so the engine must cope with partial
// type information — the same resilience the driver needs when the source
// importer falls over mid-package.
func FuzzSummaries(f *testing.F) {
	f.Add(`package p
import "sync"
type s struct{ mu sync.Mutex }
func a(x *s) { x.mu.Lock(); b(x); x.mu.Unlock() }
func b(x *s) { x.mu.Lock(); x.mu.Unlock() }
`)
	f.Add(`package p
func rec(n int) { if n > 0 { rec(n - 1) } }
func chans(ch chan int) { ch <- 1; <-ch }
`)
	f.Add(`package p
type h struct{ fn func() }
func set(x *h) { x.fn = func() { set(x) } }
func call(x *h) { x.fn() }
func spawn() { go call(nil); defer call(nil) }
`)
	f.Fuzz(func(t *testing.T, src string) {
		g1 := buildFromSource(src)
		g2 := buildFromSource(src)
		if g1 == nil || g2 == nil {
			t.Skip("unparseable input")
		}
		if g1.Dump() != g2.Dump() {
			t.Errorf("nondeterministic summaries for source:\n%s\n--- first ---\n%s\n--- second ---\n%s",
				src, g1.Dump(), g2.Dump())
		}
	})
}

// buildFromSource parses and loosely type-checks src (errors tolerated, no
// importer) and builds a graph, or returns nil when parsing fails outright.
func buildFromSource(src string) *callgraph.Graph {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil || file == nil {
		return nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Error:                    func(error) {}, // keep going on type errors
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check("fuzz", fset, []*ast.File{file}, info)
	pkg := &lint.Package{PkgPath: "fuzz", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return callgraph.New([]*lint.Package{pkg})
}
