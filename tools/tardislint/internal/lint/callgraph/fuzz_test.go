package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/callgraph"
)

// FuzzSummaries asserts two invariants of the callgraph engine over
// arbitrary (possibly ill-typed) Go source: building the graph and its
// summaries never panics, and building twice from independent parses of the
// same source produces byte-identical dumps. Type checking runs without an
// importer and with errors tolerated, so the engine must cope with partial
// type information — the same resilience the driver needs when the source
// importer falls over mid-package.
func FuzzSummaries(f *testing.F) {
	f.Add(`package p
import "sync"
type s struct{ mu sync.Mutex }
func a(x *s) { x.mu.Lock(); b(x); x.mu.Unlock() }
func b(x *s) { x.mu.Lock(); x.mu.Unlock() }
`)
	f.Add(`package p
func rec(n int) { if n > 0 { rec(n - 1) } }
func chans(ch chan int) { ch <- 1; <-ch }
`)
	f.Add(`package p
type h struct{ fn func() }
func set(x *h) { x.fn = func() { set(x) } }
func call(x *h) { x.fn() }
func spawn() { go call(nil); defer call(nil) }
`)
	f.Fuzz(func(t *testing.T, src string) {
		g1 := buildFromSource(src)
		g2 := buildFromSource(src)
		if g1 == nil || g2 == nil {
			t.Skip("unparseable input")
		}
		if g1.Dump() != g2.Dump() {
			t.Errorf("nondeterministic summaries for source:\n%s\n--- first ---\n%s\n--- second ---\n%s",
				src, g1.Dump(), g2.Dump())
		}
	})
}

// FuzzAccessSummaries stresses the racecheck-facing layer: field-access
// summaries, lock sets, ownership, and concurrency roots over arbitrary
// source. The invariants mirror FuzzSummaries — no panics, and access lists
// and roots identical across independent parses (both are folded into
// Dump's and the summaries' rendering) — plus sortedness of every access's
// lock set, which downstream set operations rely on.
func FuzzAccessSummaries(f *testing.F) {
	f.Add(`package p
import "sync"
type s struct {
	mu sync.Mutex
	n  int
}
func writer(x *s) { x.mu.Lock(); x.n++; x.mu.Unlock() }
func reader(x *s) int { return x.n }
func spawn(x *s) { go writer(x); go reader(x) }
`)
	f.Add(`package p
type g struct{ v int }
func fan(gs []*g) {
	for _, it := range gs {
		go func() { it.v++ }()
	}
}
`)
	f.Add(`package p
import "sync/atomic"
type c struct{ n int64 }
func bump(x *c) { atomic.AddInt64(&x.n, 1) }
func own() { x := &c{}; x.n = 7; go bump(x) }
`)
	f.Add(`package p
type j struct{ n int }
func produce(ch chan *j) { v := &j{}; v.n = 1; ch <- v }
func consume(ch chan *j) { for v := range ch { v.n++ } }
func pipe(ch chan *j) { go produce(ch); go consume(ch) }
`)
	f.Fuzz(func(t *testing.T, src string) {
		g1 := buildFromSource(src)
		g2 := buildFromSource(src)
		if g1 == nil || g2 == nil {
			t.Skip("unparseable input")
		}
		if g1.Dump() != g2.Dump() {
			t.Errorf("nondeterministic access summaries for source:\n%s\n--- first ---\n%s\n--- second ---\n%s",
				src, g1.Dump(), g2.Dump())
		}
		for _, r := range g1.Roots() {
			for _, a := range r.Node.Summary.AccessList() {
				for i := 1; i < len(a.Locks); i++ {
					if a.Locks[i-1] >= a.Locks[i] {
						t.Errorf("access %s on %s has unsorted lock set %v", a.Display, a.Field, a.Locks)
					}
				}
			}
		}
	})
}

// buildFromSource parses and loosely type-checks src (errors tolerated, no
// importer) and builds a graph, or returns nil when parsing fails outright.
func buildFromSource(src string) *callgraph.Graph {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil || file == nil {
		return nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Error:                    func(error) {}, // keep going on type errors
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check("fuzz", fset, []*ast.File{file}, info)
	pkg := &lint.Package{PkgPath: "fuzz", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return callgraph.New([]*lint.Package{pkg})
}
