package callgraph

// Access summaries and concurrency roots: the raw material for racecheck's
// interprocedural lock-set inference.
//
// Every function summary records the struct fields the function may read or
// write — directly or through any callee chain, excluding goroutines it
// spawns — keyed by per-type field identity ("pkg/path.Type.field", the same
// scheme LockID uses, so a `guarded by` annotation maps onto both sides).
// Each access carries the lock set held at the access, intersected over
// every witnessed path, and one witnessing call chain.
//
// Accesses that cannot race are exempt at collection time (RacerD-style):
//
//   - fields whose type is itself a synchronization primitive (mutexes,
//     sync.Once/WaitGroup/Cond/Map/Pool, sync/atomic types) or a channel;
//   - operands of sync/atomic package functions (atomic.AddInt64(&x.n, 1));
//   - accesses through a provably owned local base: a variable only ever
//     assigned freshly allocated values (&T{}, T{}, new(T)) or values
//     received from a channel (ownership hand-off) — the constructor idiom
//     of building a struct before publishing it, and the pipeline idiom of
//     transferring ownership through a channel;
//   - the body of a function literal passed to (*sync.Once).Do, which runs
//     exactly once under the Once's own serialization.
//
// Concurrency roots are the functions that can actually run in parallel:
// targets of go statements (including pool dispatch callbacks, which reach
// the spawned literal through the existing parameter bindings), exported
// methods of values registered with net/rpc, and HTTP-handler-shaped
// functions. A root spawned inside a loop or from several sites — or served
// per-request — is marked Multi: two instances of it race with each other.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

// FieldID identifies a struct field with per-type granularity:
// "pkg/path.Type.field". Every instance of the type shares the identity,
// matching both LockID and the `guarded by` annotation convention.
type FieldID string

// Access is one struct-field read or write reachable from a function.
type Access struct {
	Field FieldID
	// Display is the short "Type.field" name used in diagnostics.
	Display string
	Write   bool
	// Pos is the access site itself.
	Pos token.Position
	// Locks is the lock set held at the access, intersected over every
	// witnessed path, sorted.
	Locks []LockID
	// Chain is one witnessing call chain from the summarized function to
	// the access; when paths disagree on the lock set, the chain follows
	// the least-locked path seen.
	Chain []lint.Step
	// Param is the index of the summarized function's parameter the access
	// base is rooted at, or -1. Ownership transfers through calls: when a
	// caller passes owned memory for that parameter, the lifted access is
	// dropped, and when it passes one of its own parameters the access is
	// re-rooted — so per-call structures (RPC replies, request objects,
	// stats sinks) stay exempt however deep they are threaded.
	Param int
	// RecvRooted marks an access rooted at the method receiver instead of
	// a parameter; receivers are the shared-service identity and never
	// transfer ownership outward.
	RecvRooted bool
}

// accessKey is the dedup identity of an access inside one summary: same
// field, same source position, same kind.
func accessKey(f FieldID, pos token.Position, write bool) string {
	return fmt.Sprintf("%s|%s:%d:%d|%v", f, pos.Filename, pos.Line, pos.Column, write)
}

// sortedAccessKeys returns the keys of an access map in deterministic order.
func sortedAccessKeys(m map[string]*Access) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AccessList returns the summary's accesses in deterministic order.
func (s *Summary) AccessList() []*Access {
	out := make([]*Access, 0, len(s.Accesses))
	for _, k := range sortedAccessKeys(s.Accesses) {
		out = append(out, s.Accesses[k])
	}
	return out
}

// Root is one concurrency root: a function that can run on its own
// goroutine concurrently with other roots (or other instances of itself).
type Root struct {
	Node *Node
	// Kind is "go" (goroutine target), "rpc" (exported method of a value
	// registered with net/rpc), or "http" (http.HandlerFunc-shaped).
	Kind string
	// Multi reports that several instances of the root can run at once:
	// spawned inside a loop or from more than one site, or invoked
	// per-request (rpc and http roots always are).
	Multi bool
	// Pos is the first spawn site (go roots) or the declaration (others).
	Pos token.Position
}

// Roots returns the concurrency roots sorted by node ID.
func (g *Graph) Roots() []*Root { return g.roots }

// LockDisplay returns the short display name recorded for a lock, falling
// back to the raw identity for locks never acquired in analyzed code.
func (g *Graph) LockDisplay(id LockID) string {
	if d, ok := g.lockDisp[id]; ok {
		return d
	}
	return string(id)
}

func (g *Graph) noteLockDisplay(id LockID, display string) {
	if g.lockDisp == nil {
		g.lockDisp = map[LockID]string{}
	}
	if _, ok := g.lockDisp[id]; !ok && display != "" {
		g.lockDisp[id] = display
	}
}

// TypeID returns the stable "pkg/path.Name" identity of a named type — the
// prefix both LockID and FieldID build on. Exported for consumers that must
// construct matching identities from annotations.
func TypeID(named *types.Named) string { return typeID(named) }

// --- collection-time exemptions ---------------------------------------------

// syncExemptTypes are field types that are themselves synchronization
// primitives: accessing them is coordination, not shared-state access.
var syncExemptTypes = []struct{ pkg, name string }{
	{"sync", "Mutex"}, {"sync", "RWMutex"}, {"sync", "Once"},
	{"sync", "WaitGroup"}, {"sync", "Cond"}, {"sync", "Map"}, {"sync", "Pool"},
	{"sync/atomic", "Bool"}, {"sync/atomic", "Int32"}, {"sync/atomic", "Int64"},
	{"sync/atomic", "Uint32"}, {"sync/atomic", "Uint64"}, {"sync/atomic", "Uintptr"},
	{"sync/atomic", "Pointer"}, {"sync/atomic", "Value"},
}

// exemptFieldType reports whether a field of type t is exempt from race
// candidacy: sync primitives, atomics, and channels (sends/receives order
// themselves).
func exemptFieldType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = lint.Deref(t)
	for _, e := range syncExemptTypes {
		if lint.IsNamed(t, e.pkg, e.name) {
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return false
}

// isAtomicCall reports whether call targets a function in sync/atomic
// (AddInt64, LoadPointer, ...): its &field operands are accessed atomically.
func isAtomicCall(pkg *lint.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok && pkg.Info.Selections[sel] != nil {
		fn, _ = pkg.Info.Selections[sel].Obj().(*types.Func)
	}
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// computeOwnership interleaves per-node owned-local inference with
// transitive constructor detection, to a bounded fixpoint. A constructor —
// a function whose every return hands back fresh or owned memory in its
// first result — makes its call results owned at every caller, which can in
// turn make the caller a constructor (the wrapper idiom: ReadTree calling
// decode calling New). Each round recomputes owned sets with the current
// constructor marks, then promotes newly qualifying nodes; marks only ever
// accumulate, so the loop is monotone and the cap is a cost guard, not a
// correctness device.
//
// Function literals additionally inherit their parent's owned locals for
// the variables they capture: a callback handed to a synchronous
// higher-order function (store.ScanPartition(pid, func(r){ heap.Offer(...) }))
// operates on the enclosing frame's memory. Literals that escape that frame
// — spawned by a go statement or stored into a struct field — run
// concurrently with it and inherit nothing.
func (b *builder) computeOwnership() {
	g := b.g
	escaped := map[*Node]bool{}
	for _, n := range g.order {
		for _, site := range n.Sites {
			if !site.Go {
				continue
			}
			for _, c := range site.Callees {
				escaped[c] = true
			}
		}
	}
	for _, ids := range b.fieldBind {
		for id := range ids {
			if n := g.nodes[id]; n != nil {
				escaped[n] = true
			}
		}
	}
	const maxRounds = 6
	for round := 0; round < maxRounds; round++ {
		for _, n := range g.order {
			computeAbstract(n, !escaped[n])
		}
		changed := false
		for _, n := range g.order {
			if !n.constructor && returnsFresh(n) {
				n.constructor = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// returnsFresh reports whether n has the constructor shape: a non-empty
// result list and every return statement in its own body (function literals
// excluded — they return from someone else) handing back a fresh value, an
// owned local, a constructor call, or nil in the first result position.
// Naked returns and bodyless declarations disqualify.
func returnsFresh(n *Node) bool {
	body := n.Body()
	if body == nil || n.Sig == nil || n.Sig.Results().Len() == 0 {
		return false
	}
	returned := false
	ok := true
	ast.Inspect(body, func(x ast.Node) bool {
		if !ok {
			return false
		}
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				ok = false
				return false
			}
			returned = true
			if !freshResult(n, s.Results[0]) {
				ok = false
			}
			return false
		}
		return true
	})
	return ok && returned
}

// freshResult reports whether a returned expression hands ownership to the
// caller: a fresh value (including constructor calls), an owned plain local,
// or nil.
func freshResult(n *Node, e ast.Expr) bool {
	if freshValue(n, e) {
		return true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if id.Name == "nil" {
			return true
		}
		obj := n.Pkg.Info.Uses[id]
		return obj != nil && n.owned[obj]
	}
	return false
}

// Abstract memory classes for locals, ordered as a join semilattice:
// Bottom (no information) ⊑ Fresh (caller-owned allocation) ⊑ Recv/Param
// (alias of the receiver's or a parameter's object graph) ⊑ Top (shared or
// unknown). Join of Fresh with a rooted class keeps the rooted class: fresh
// memory that is sometimes replaced by (or linked into) a rooted structure
// is safe to attribute to that root — when a caller owns the root, both
// components are private; at a shared root the access stays a candidate.
type absKind int

const (
	absBottom absKind = iota
	absFresh
	absRecv
	absParam
	absTop
)

type absVal struct {
	kind  absKind
	param int
}

func joinAbs(a, b absVal) absVal {
	switch {
	case a.kind == absBottom || a == b:
		return b
	case b.kind == absBottom:
		return a
	case a.kind == absFresh:
		return b
	case b.kind == absFresh:
		return a
	default:
		return absVal{kind: absTop}
	}
}

// computeAbstract infers, per local variable, which memory it denotes —
// Fresh (provably owned: every value flowing in is freshly allocated here,
// received from a channel, or loaded from an owned container of owned
// elements), Recv/Param (a stable alias into the receiver's or a
// parameter's object graph, like the tree-cursor idiom cur := t.root;
// cur = cur.Children[k]), or Top (shared). Containers get a second, element
// class fed by composite-literal elements, appends, and indexed stores, so
// the DFS-stack idiom (stack = append(stack, freshNode); parent :=
// stack[len(stack)-1]) keeps ownership, and a stack of receiver-rooted
// nodes keeps its rooting. The analysis is flow-insensitive with the same
// deliberate deep-ownership optimism RacerD makes: reaching through fields
// of Fresh or rooted memory stays in that class.
//
// Accesses through Fresh bases are exempt from race candidacy; Recv/Param
// bases root the access for interprocedural ownership transfer (see
// Access.Param). When inherit is set (non-escaping literals), the parent's
// owned locals seed Fresh for captured variables; rooted classes never
// inherit — they are meaningless outside the parent's signature frame.
func computeAbstract(n *Node, inherit bool) {
	body := n.Body()
	if body == nil {
		return
	}
	pkg := n.Pkg
	var recvObj types.Object
	paramIdx := map[types.Object]int{}
	if n.Sig != nil {
		if r := n.Sig.Recv(); r != nil {
			recvObj = r
		}
		for i := 0; i < n.Sig.Params().Len(); i++ {
			paramIdx[n.Sig.Params().At(i)] = i
		}
	}
	vals := map[types.Object]absVal{}
	elems := map[types.Object]absVal{}
	if inherit && n.Parent != nil {
		// The parent precedes its literals in graph order, so its current
		// round's set is visible here. Element ownership carries too: the
		// scatter/cleanup idiom stores owned values into a captured map from
		// one literal and drains it from a sibling.
		for obj := range n.Parent.owned {
			vals[obj] = absVal{kind: absFresh}
		}
		for obj := range n.Parent.elemOwned {
			elems[obj] = absVal{kind: absFresh}
		}
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[id]
	}
	classify := func(obj types.Object) absVal {
		switch {
		case obj == nil:
			return absVal{kind: absTop}
		case obj == recvObj:
			return absVal{kind: absRecv}
		default:
			if i, ok := paramIdx[obj]; ok {
				return absVal{kind: absParam, param: i}
			}
			return vals[obj]
		}
	}
	// strict switches Bottom from "optimistically unconstrained" to "unknown
	// memory": the fixpoint first lets classes settle, then a second
	// convergence run treats anything still Bottom as Top so a dependent
	// never keeps a class its base cannot justify.
	strict := false
	bottomAs := func(v absVal) absVal {
		if strict && v.kind == absBottom {
			return absVal{kind: absTop}
		}
		return v
	}
	// loadElem is the class of an element loaded from a container
	// expression: local Fresh containers yield their element class; rooted
	// containers yield their root (the deep access-path convention); shared
	// yield Top.
	loadElem := func(container ast.Expr) absVal {
		if obj := objOf(container); obj != nil && obj != recvObj {
			if _, ok := paramIdx[obj]; !ok {
				switch cv := bottomAs(vals[obj]); cv.kind {
				case absFresh:
					return bottomAs(elems[obj])
				default:
					return cv
				}
			}
		}
		return bottomAs(classify(baseObject(n, container)))
	}
	valOf := func(e ast.Expr, self types.Object) absVal {
		if freshValue(n, e) {
			return absVal{kind: absFresh}
		}
		if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
			if obj := objOf(ix.X); obj != nil && obj != self {
				return loadElem(ix.X)
			}
		}
		base := baseObject(n, e)
		if base == self && self != nil {
			// cur = cur.Children[k], stack = stack[:n]: self-derived, no
			// constraint (deep classes are closed under path extension).
			return absVal{kind: absBottom}
		}
		return bottomAs(classify(base))
	}
	isAppend := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return false
		}
		_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	changed := false
	joinVal := func(obj types.Object, v absVal) {
		if obj == nil || obj == recvObj || v.kind == absBottom {
			return
		}
		if _, ok := paramIdx[obj]; ok {
			return
		}
		if nv := joinAbs(vals[obj], v); nv != vals[obj] {
			vals[obj] = nv
			changed = true
		}
	}
	joinElem := func(obj types.Object, v absVal) {
		if obj == nil || v.kind == absBottom {
			return
		}
		if nv := joinAbs(elems[obj], v); nv != elems[obj] {
			elems[obj] = nv
			changed = true
		}
	}
	var assignPair func(lhs, rhs ast.Expr)
	assignPair = func(lhs, rhs ast.Expr) {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			// c[k] = v stores into a tracked container; stores through
			// deeper paths don't change any local's class.
			if obj := objOf(ix.X); obj != nil {
				joinElem(obj, valOf(rhs, nil))
			}
			return
		}
		obj := objOf(lhs)
		if obj == nil {
			return
		}
		if rhs == nil {
			joinVal(obj, absVal{kind: absTop})
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if isAppend(r) {
				// append feeds the element class; appending to oneself
				// does not change the container's own class.
				if src := objOf(r.Args[0]); src != obj {
					joinVal(obj, valOf(r.Args[0], obj))
					if src != nil {
						joinElem(obj, bottomAs(elems[src]))
					}
				}
				for _, a := range r.Args[1:] {
					if r.Ellipsis != token.NoPos {
						joinElem(obj, loadElem(a))
					} else {
						joinElem(obj, valOf(a, nil))
					}
				}
				return
			}
		case *ast.CompositeLit:
			assignComposite(n, obj, r, joinElem, func(e ast.Expr) absVal { return valOf(e, nil) })
			joinVal(obj, absVal{kind: absFresh})
			return
		case *ast.UnaryExpr:
			if r.Op == token.AND {
				if cl, ok := ast.Unparen(r.X).(*ast.CompositeLit); ok {
					assignComposite(n, obj, cl, joinElem, func(e ast.Expr) absVal { return valOf(e, nil) })
					joinVal(obj, absVal{kind: absFresh})
					return
				}
			}
		case *ast.SliceExpr:
			if objOf(r.X) == obj {
				return // x = x[a:b] keeps both classes
			}
		}
		joinVal(obj, valOf(rhs, obj))
	}
	process := func() {
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						assignPair(s.Lhs[i], s.Rhs[i])
					}
				} else if len(s.Rhs) == 1 {
					// t, err := New(...) / v, ok := m[k] — the object
					// travels in the first position by convention (matching
					// returnsFresh); the rest (error, ok) never carry it.
					assignPair(s.Lhs[0], s.Rhs[0])
					for _, l := range s.Lhs[1:] {
						assignPair(l, nil)
					}
				} else {
					for _, l := range s.Lhs {
						assignPair(l, nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					switch {
					case len(s.Values) == 0:
						// var x T declares a zero value nothing else can
						// reference yet — owned like a fresh composite.
						joinVal(objOf(name), absVal{kind: absFresh})
					case len(s.Values) == 1 && len(s.Names) > 1:
						if i == 0 {
							assignPair(name, s.Values[0])
						} else {
							assignPair(name, nil)
						}
					case i < len(s.Values):
						assignPair(name, s.Values[i])
					}
				}
			case *ast.RangeStmt:
				// Ranging over a channel hands off ownership of each
				// received value (the receive operand is the Key slot);
				// other ranges yield the container's element class.
				if t := pkg.TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						joinVal(objOf(s.Key), absVal{kind: absFresh})
						return true
					}
				}
				if s.Key != nil {
					joinVal(objOf(s.Key), absVal{kind: absTop})
				}
				if s.Value != nil {
					joinVal(objOf(s.Value), loadElem(s.X))
				}
			}
			return true
		})
	}
	const maxRounds = 6
	for _, strictRun := range []bool{false, true} {
		strict = strictRun
		for round := 0; round < maxRounds; round++ {
			changed = false
			process()
			if !changed {
				break
			}
		}
	}
	owned := map[types.Object]bool{}
	var elemOwned map[types.Object]bool
	var rootedRecv map[types.Object]bool
	var rootedParam map[types.Object]int
	for obj, v := range vals {
		switch v.kind {
		case absFresh:
			owned[obj] = true
			if elems[obj].kind == absFresh {
				if elemOwned == nil {
					elemOwned = map[types.Object]bool{}
				}
				elemOwned[obj] = true
			}
		case absRecv:
			if rootedRecv == nil {
				rootedRecv = map[types.Object]bool{}
			}
			rootedRecv[obj] = true
		case absParam:
			if rootedParam == nil {
				rootedParam = map[types.Object]int{}
			}
			rootedParam[obj] = v.param
		}
	}
	n.owned = owned
	n.elemOwned = elemOwned
	n.rootedRecv = rootedRecv
	n.rootedParam = rootedParam
}

// assignComposite feeds a slice/array/map literal's elements into the
// assignee's element class; struct literals have no indexable elements and
// contribute nothing.
func assignComposite(n *Node, obj types.Object, cl *ast.CompositeLit, joinElem func(types.Object, absVal), valOf func(ast.Expr) absVal) {
	if t := n.Pkg.TypeOf(cl); t != nil {
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			return
		}
	}
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		joinElem(obj, valOf(elt))
	}
}

// isFreshValue reports whether e evaluates to a value the assignee owns:
// a fresh allocation or a channel receive.
func isFreshValue(pkg *lint.Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
		return e.Op == token.ARROW
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "new" || id.Name == "make") {
			_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// freshValue extends isFreshValue with constructor knowledge: a call whose
// every resolved callee is a constructor yields caller-owned memory.
// Requires at least one resolved callee — an unresolved call proves nothing.
// The site lookup spans the node's literal family: computeAbstract inspects
// nested literal bodies from the parent's frame, where the call belongs to a
// child node's site table.
func freshValue(n *Node, e ast.Expr) bool {
	if isFreshValue(n.Pkg, e) {
		return true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	site := familySite(n, call)
	if site == nil || len(site.Callees) == 0 {
		return false
	}
	for _, c := range site.Callees {
		if !c.constructor {
			return false
		}
	}
	return true
}

// familySite resolves a call site in n or any literal nested inside it.
func familySite(n *Node, call *ast.CallExpr) *Site {
	if s := n.siteOf[call]; s != nil {
		return s
	}
	for _, c := range n.children {
		if s := familySite(c, call); s != nil {
			return s
		}
	}
	return nil
}

// baseObject returns the object of the leftmost identifier an expression is
// rooted at, peeling selectors, indexing, derefs, slices, and address-of.
func baseObject(n *Node, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			id, ok := x.(*ast.Ident)
			if !ok {
				return nil
			}
			if obj := n.Pkg.Info.Uses[id]; obj != nil {
				return obj
			}
			return n.Pkg.Info.Defs[id]
		}
	}
}

// ownedBase reports whether the leftmost base of a selector chain is an
// owned local of n.
func ownedBase(n *Node, e ast.Expr) bool {
	if len(n.owned) == 0 {
		return false
	}
	obj := baseObject(n, e)
	return obj != nil && n.owned[obj]
}

// exprOwned reports whether an argument expression denotes memory the
// caller owns: a fresh allocation or constructor call inline, or a chain
// rooted at an owned local.
func exprOwned(n *Node, e ast.Expr) bool {
	return freshValue(n, e) || ownedBase(n, e)
}

// --- concurrency roots --------------------------------------------------------

// rpcRegisterExt are the net/rpc registration entry points whose service
// argument's exported methods become per-request concurrency roots.
var rpcRegisterExt = map[string]bool{
	"(*net/rpc.Server).Register":     true,
	"(*net/rpc.Server).RegisterName": true,
	"net/rpc.Register":               true,
	"net/rpc.RegisterName":           true,
}

// onceDoExt marks (*sync.Once).Do call sites, whose literal arguments run
// exactly once and are exempt from access collection.
const onceDoExt = "(*sync.Once).Do"

// markOnceBodies flags every function literal passed to (*sync.Once).Do.
func (b *builder) markOnceBodies() {
	for _, n := range b.g.order {
		for _, site := range n.Sites {
			isDo := false
			for _, ext := range site.Ext {
				if ext == onceDoExt {
					isDo = true
				}
			}
			if !isDo {
				continue
			}
			for _, arg := range site.Call.Args {
				for _, id := range b.funcValueIDs(n.Pkg, arg) {
					if t := b.g.nodes[id]; t != nil {
						t.onceBody = true
					}
				}
			}
		}
	}
}

// markJoinedSpawns flags go sites that follow the structured fork-join
// idiom: the spawning function calls Wait on a sync.WaitGroup, and every
// resolved target of the site is a literal nested in that same function
// whose own body calls Done on one of those WaitGroups. Such goroutines run
// entirely within the spawner's dynamic extent — any lock the spawner's
// callers hold across the call is held for the goroutine's whole lifetime —
// so their accesses fold into the spawner's summary (see the walker's
// GoStmt case) rather than forming independent concurrency roots. Two
// workers of one fork-join pool still overlap each other; the model
// deliberately leaves intra-pool interleaving to the pool's own discipline
// (disjoint slice elements, a results mutex), which is the idiom's
// contract.
func (b *builder) markJoinedSpawns() {
	for _, n := range b.g.order {
		body := n.Body()
		if body == nil {
			continue
		}
		waitObjs := waitGroupCalls(n, body, "Wait", true)
		if len(waitObjs) == 0 {
			continue
		}
		for _, site := range n.Sites {
			if !site.Go || len(site.Callees) == 0 {
				continue
			}
			joined := true
			for _, c := range site.Callees {
				if c.Lit == nil || c.Parent != n || !doneMatches(c, waitObjs) {
					joined = false
					break
				}
			}
			site.Joined = joined
		}
	}
}

// waitGroupCalls collects the sync.WaitGroup objects that receive a method
// call named method within body; ownBody excludes nested function literals
// (a Wait inside a spawned literal is not the spawner waiting).
func waitGroupCalls(n *Node, body *ast.BlockStmt, method string, ownBody bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && ownBody {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		obj := baseObject(n, sel.X)
		if obj == nil || !lint.IsNamed(lint.Deref(obj.Type()), "sync", "WaitGroup") {
			return true
		}
		out[obj] = true
		return true
	})
	return out
}

// doneMatches reports whether literal node c calls Done on one of the
// spawner's waited-on WaitGroups (lexical capture makes the objects
// identical between parent and child).
func doneMatches(c *Node, waitObjs map[types.Object]bool) bool {
	for obj := range waitGroupCalls(c, c.Lit.Body, "Done", false) {
		if waitObjs[obj] {
			return true
		}
	}
	return false
}

// collectRoots gathers the concurrency roots after sites are resolved.
func (b *builder) collectRoots() {
	g := b.g
	type mark struct {
		kind  string
		multi bool
		count int
		pos   token.Position
	}
	marks := map[*Node]*mark{}
	note := func(n *Node, kind string, multi bool, pos token.Position) {
		m := marks[n]
		if m == nil {
			m = &mark{kind: kind, pos: pos}
			marks[n] = m
		}
		m.count++
		if multi {
			m.multi = true
		}
	}
	methodsOf := map[string][]*Node{}
	for _, n := range g.order {
		if n.Decl == nil || n.Sig == nil || n.Sig.Recv() == nil {
			continue
		}
		if named, ok := types.Unalias(lint.Deref(n.Sig.Recv().Type())).(*types.Named); ok {
			tid := typeID(named)
			methodsOf[tid] = append(methodsOf[tid], n)
		}
	}
	for _, n := range g.order {
		for _, site := range n.Sites {
			if site.Go && !site.Joined {
				for _, c := range site.Callees {
					note(c, "go", site.InLoop, n.Pkg.Fset.Position(site.Call.Pos()))
				}
			}
			for _, ext := range site.Ext {
				if !rpcRegisterExt[ext] {
					continue
				}
				for _, arg := range site.Call.Args {
					t := n.Pkg.TypeOf(arg)
					if t == nil {
						continue
					}
					named, ok := types.Unalias(lint.Deref(t)).(*types.Named)
					if !ok || named.Obj().Pkg() == nil {
						continue
					}
					for _, m := range methodsOf[typeID(named)] {
						if ast.IsExported(m.Decl.Name.Name) {
							note(m, "rpc", true, m.Pkg.Fset.Position(m.Pos()))
						}
					}
				}
			}
		}
	}
	for _, n := range g.order {
		if isHandlerShaped(n) {
			note(n, "http", true, n.Pkg.Fset.Position(n.Pos()))
		}
	}
	for _, n := range g.order {
		m := marks[n]
		if m == nil {
			continue
		}
		g.roots = append(g.roots, &Root{Node: n, Kind: m.kind, Multi: m.multi || m.count > 1, Pos: m.pos})
	}
}

// isHandlerShaped reports whether n has the http.HandlerFunc signature
// (func(http.ResponseWriter, *http.Request)) — declared handlers, ServeHTTP
// methods, and middleware-wrapped closures alike, which is how handlers
// registered through instrumenting helpers are still recognized.
func isHandlerShaped(n *Node) bool {
	if n.Sig == nil {
		return false
	}
	params := n.Sig.Params()
	if params.Len() != 2 {
		return false
	}
	return lint.IsNamed(params.At(0).Type(), "net/http", "ResponseWriter") &&
		lint.IsNamed(lint.Deref(params.At(1).Type()), "net/http", "Request")
}
