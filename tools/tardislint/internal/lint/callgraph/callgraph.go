// Package callgraph builds a whole-program call graph over the packages a
// lint run loads and computes per-function summaries for interprocedural
// passes (lockorder, ctxflow).
//
// The graph resolves three kinds of call edges:
//
//   - static calls to package-level functions, including cross-package calls
//     (nodes are keyed by stable full names, not types.Object identity,
//     because the source importer re-checks dependencies and produces
//     distinct objects for the same function);
//   - method calls through concrete receiver types (interface dispatch is
//     left unresolved — a dynamic call has no body to summarize);
//   - calls through function values: function literals, literals stored in
//     local or package variables, literals passed as call arguments (bound
//     to the callee's parameter by position), and literals stored in struct
//     fields (bound by declaring struct type + field name, so a callback
//     registered in one function and invoked in another still produces an
//     edge).
//
// Each function — declarations and literals alike — becomes one node.
// Test files and external test packages are excluded: the gate reasons
// about production call chains only.
//
// Summaries (see summary.go) are computed bottom-up over strongly connected
// components with a fixpoint for recursion, and record the locks a function
// may acquire (with a witness call chain per lock), the locks still held
// when it returns, the blocking operations it may reach, whether those
// operations remain cancellable through the function's own context
// parameter, and the struct-field accesses it may perform with the lock set
// held at each (see access.go, which also derives the concurrency roots
// racecheck analyzes).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

// Graph is the whole-program call graph plus the lock-order edges collected
// while summarizing it.
type Graph struct {
	Fset *token.FileSet

	nodes map[string]*Node
	order []*Node // sorted by ID for deterministic iteration

	litNode map[*ast.FuncLit]*Node

	edges     map[[2]LockID]*Edge
	edgeOrder []*Edge

	roots    []*Root // concurrency roots, sorted by node ID
	lockDisp map[LockID]string
}

// Node is one function in the graph: a declaration or a function literal.
type Node struct {
	// ID is the stable identity: types.Func.FullName() for declarations
	// (e.g. "(*pkg/path.Pool).call"), parentID+"$n" for literals.
	ID string
	// Display is the short human-readable name used in call chains,
	// e.g. "rpc.(*Pool).call" or "rpc.DistKNN$1".
	Display string

	Pkg    *lint.Package
	Decl   *ast.FuncDecl
	Lit    *ast.FuncLit
	Parent *Node // enclosing function for literals

	Sig       *types.Signature
	paramVars []*types.Var
	children  []*Node

	Sites  []*Site
	siteOf map[*ast.CallExpr]*Site

	Summary Summary
	root    *rootInfo
	// owned are the function's provably owned locals (see computeAbstract);
	// field accesses through them are exempt from race candidacy.
	owned map[types.Object]bool
	// elemOwned are owned containers whose elements are also provably
	// owned; loads from them stay exempt, including in inheriting literals.
	elemOwned map[types.Object]bool
	// rootedRecv and rootedParam are locals that stably alias the receiver
	// or a parameter (see computeAbstract); accesses through them root there
	// for ownership transfer.
	rootedRecv  map[types.Object]bool
	rootedParam map[types.Object]int
	// onceBody marks literals passed to (*sync.Once).Do: they run exactly
	// once and contribute no accesses.
	onceBody bool
	// constructor marks functions whose every return hands back freshly
	// allocated (or owned) memory in the first result: their call results
	// are owned by the caller (see computeOwnership).
	constructor bool
}

// Body returns the function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// HasCtx reports whether the function's own parameter list includes a
// context.Context.
func (n *Node) HasCtx() bool {
	for _, v := range n.paramVars {
		if v != nil && isCtxType(v.Type()) {
			return true
		}
	}
	return false
}

// Pos returns the function's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Site is one call expression inside a node, with its resolved targets.
type Site struct {
	Call  *ast.CallExpr
	Go    bool // call is the operand of a go statement
	Defer bool // call is the operand of a defer statement
	// InLoop marks sites lexically inside a for/range statement: a go site
	// in a loop spawns multiple instances of its target.
	InLoop bool
	// Joined marks a go site whose goroutine the spawning function waits
	// for before returning (the structured fork-join idiom: the spawned
	// literal defers wg.Done on a WaitGroup the spawner Waits on). Joined
	// goroutines run within the spawner's dynamic extent, so their accesses
	// fold into the spawner's summary instead of forming concurrency roots.
	Joined bool
	// CtxFwd reports whether some context.Context-typed argument derives
	// from the caller's own context parameter.
	CtxFwd bool
	// Callees are the resolved in-graph targets, sorted by ID.
	Callees []*Node
	// Ext holds full names of resolved targets with no body in the graph
	// (stdlib and unanalyzed functions), for blocking-primitive matching.
	Ext []string
}

// rootInfo is shared between a top-level declaration and every literal
// nested inside it: the context-taint set and the known-buffered channels.
type rootInfo struct {
	tainted  map[types.Object]bool
	buffered map[types.Object]bool
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node { return g.order }

// Lookup returns the node with the given ID, or nil.
func (g *Graph) Lookup(id string) *Node { return g.nodes[id] }

// Edges returns the global lock-order edges in deterministic order.
func (g *Graph) Edges() []*Edge { return g.edgeOrder }

// memo caches the last-built graph: lockorder and ctxflow run over the same
// package set in one lint invocation, and the graph is identical for both.
var memo struct {
	sync.Mutex
	pkgs  []*lint.Package
	graph *Graph
}

// Build returns the call graph for pkgs, reusing the previous result when
// called twice with the same slice (as consecutive passes in one run are).
func Build(pkgs []*lint.Package) *Graph {
	memo.Lock()
	defer memo.Unlock()
	if memo.graph != nil && len(memo.pkgs) == len(pkgs) {
		same := true
		for i := range pkgs {
			if memo.pkgs[i] != pkgs[i] {
				same = false
				break
			}
		}
		if same {
			return memo.graph
		}
	}
	g := New(pkgs)
	memo.pkgs = pkgs
	memo.graph = g
	return g
}

// New builds the call graph and its summaries from scratch.
func New(pkgs []*lint.Package) *Graph {
	b := &builder{
		g:          &Graph{nodes: map[string]*Node{}, litNode: map[*ast.FuncLit]*Node{}, edges: map[[2]LockID]*Edge{}},
		objBind:    map[types.Object]map[string]bool{},
		fieldBind:  map[string]map[string]bool{},
		paramBind:  map[string]map[string]bool{},
		paramKeyOf: map[types.Object]string{},
	}
	for _, pkg := range pkgs {
		if pkg == nil || strings.HasSuffix(pkg.PkgPath, "_test") {
			continue
		}
		if b.g.Fset == nil {
			b.g.Fset = pkg.Fset
		}
		b.collectNodes(pkg)
	}
	sort.Slice(b.g.order, func(i, j int) bool { return b.g.order[i].ID < b.g.order[j].ID })
	for _, pkg := range pkgs {
		if pkg == nil || strings.HasSuffix(pkg.PkgPath, "_test") {
			continue
		}
		b.collectBindings(pkg)
	}
	for _, n := range b.g.order {
		b.resolveSites(n)
	}
	b.markOnceBodies()
	b.markJoinedSpawns()
	b.collectRoots()
	for _, n := range b.g.order {
		if n.Parent == nil {
			computeRoot(n)
		}
	}
	b.computeOwnership()
	for _, n := range b.g.order {
		markCtxForwarding(n)
	}
	summarize(b.g)
	return b.g
}

type builder struct {
	g *Graph

	// objBind maps a function-typed variable (local or package-level, by
	// object identity — valid within the directly loaded packages) to the
	// IDs of function values stored into it.
	objBind map[types.Object]map[string]bool
	// fieldBind maps "pkg/path.Type.field" to stored function-value IDs.
	fieldBind map[string]map[string]bool
	// paramBind maps "calleeID#i" to function-value IDs passed as the i-th
	// argument at some call site. Keyed by the callee's stable ID so the
	// binding survives crossing package boundaries.
	paramBind map[string]map[string]bool
	// paramKeyOf maps a parameter variable to its "nodeID#i" key.
	paramKeyOf map[types.Object]string
}

func (b *builder) addNode(n *Node) *Node {
	id := n.ID
	for i := 2; b.g.nodes[id] != nil; i++ {
		id = n.ID + "#" + strconv.Itoa(i)
	}
	n.ID = id
	b.g.nodes[id] = n
	b.g.order = append(b.g.order, n)
	return n
}

// isTestFile reports whether the file a node would come from is a test file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

func (b *builder) collectNodes(pkg *lint.Package) {
	for _, file := range pkg.Files {
		if isTestFile(pkg.Fset, file) {
			continue
		}
		initLits := 0
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := b.addNode(&Node{
					ID:      fn.FullName(),
					Display: displayName(pkg, fn),
					Pkg:     pkg,
					Decl:    d,
					Sig:     fn.Type().(*types.Signature),
				})
				n.paramVars = paramVarsOf(pkg, d.Type)
				b.registerParams(n)
				b.scanLits(pkg, n, d.Body)
			case *ast.GenDecl:
				// Function literals in package-level var initializers.
				parent := &Node{
					ID:      pkg.PkgPath + ".init$" + strconv.Itoa(initLits),
					Display: shortPkg(pkg.PkgPath) + ".init",
					Pkg:     pkg,
				}
				before := len(b.g.order)
				b.scanLitsUnder(pkg, parent, d)
				if len(b.g.order) > before {
					initLits++
				}
			}
		}
	}
}

// scanLits creates nodes for the function literals directly or transitively
// inside body, nesting parents correctly.
func (b *builder) scanLits(pkg *lint.Package, parent *Node, body ast.Node) {
	count := 0
	ast.Inspect(body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		child := b.newLitNode(pkg, parent, lit, count)
		count++
		b.scanLits(pkg, child, lit.Body)
		return false
	})
}

// scanLitsUnder handles literals outside any function declaration: they hang
// off a synthetic parent that is not itself added to the graph.
func (b *builder) scanLitsUnder(pkg *lint.Package, parent *Node, under ast.Node) {
	count := 0
	ast.Inspect(under, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		child := b.newLitNode(pkg, nil, lit, count)
		child.ID = parent.ID + "$" + strconv.Itoa(count)
		child.Display = parent.Display + "$" + strconv.Itoa(count)
		count++
		b.scanLits(pkg, child, lit.Body)
		return false
	})
}

func (b *builder) newLitNode(pkg *lint.Package, parent *Node, lit *ast.FuncLit, idx int) *Node {
	n := &Node{
		Pkg:    pkg,
		Lit:    lit,
		Parent: parent,
	}
	if parent != nil {
		n.ID = parent.ID + "$" + strconv.Itoa(idx)
		n.Display = parent.Display + "$" + strconv.Itoa(idx)
		parent.children = append(parent.children, n)
	}
	if sig, ok := pkg.TypeOf(lit).(*types.Signature); ok {
		n.Sig = sig
	}
	n.paramVars = paramVarsOf(pkg, lit.Type)
	b.addNode(n)
	b.g.litNode[lit] = n
	b.registerParams(n)
	return n
}

// paramVarsOf collects the declared parameter objects of a function type in
// positional order; unnamed parameters contribute a nil placeholder so the
// positions stay aligned.
func paramVarsOf(pkg *lint.Package, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := pkg.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func (b *builder) registerParams(n *Node) {
	for i, v := range n.paramVars {
		if v != nil {
			b.paramKeyOf[v] = n.ID + "#" + strconv.Itoa(i)
		}
	}
}

func displayName(pkg *lint.Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := lint.Deref(sig.Recv().Type())
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = "(*" + named.Obj().Name() + ")." + name
		}
	}
	return shortPkg(pkg.PkgPath) + "." + name
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// --- bindings ---------------------------------------------------------------

func (b *builder) collectBindings(pkg *lint.Package) {
	for _, file := range pkg.Files {
		if isTestFile(pkg.Fset, file) {
			continue
		}
		ast.Inspect(file, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i := range s.Lhs {
					if ids := b.funcValueIDs(pkg, s.Rhs[i]); len(ids) > 0 {
						b.bindTarget(pkg, s.Lhs[i], ids)
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i := range s.Names {
					if ids := b.funcValueIDs(pkg, s.Values[i]); len(ids) > 0 {
						b.bindObj(pkg.Info.Defs[s.Names[i]], ids)
					}
				}
			case *ast.CompositeLit:
				b.bindCompositeLit(pkg, s)
			case *ast.CallExpr:
				b.bindCallArgs(pkg, s)
			}
			return true
		})
	}
}

func (b *builder) bindTarget(pkg *lint.Package, lhs ast.Expr, ids []string) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pkg.Info.Defs[l]
		if obj == nil {
			obj = pkg.Info.Uses[l]
		}
		b.bindObj(obj, ids)
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[l]; sel != nil && sel.Kind() == types.FieldVal {
			if key := fieldKeyOfSelection(sel); key != "" {
				b.bindField(key, ids)
			}
		}
	}
}

func (b *builder) bindObj(obj types.Object, ids []string) {
	if obj == nil {
		return
	}
	set := b.objBind[obj]
	if set == nil {
		set = map[string]bool{}
		b.objBind[obj] = set
	}
	for _, id := range ids {
		set[id] = true
	}
}

func (b *builder) bindField(key string, ids []string) {
	set := b.fieldBind[key]
	if set == nil {
		set = map[string]bool{}
		b.fieldBind[key] = set
	}
	for _, id := range ids {
		set[id] = true
	}
}

func (b *builder) bindCompositeLit(pkg *lint.Package, cl *ast.CompositeLit) {
	t := pkg.TypeOf(cl)
	if t == nil {
		return
	}
	named, ok := types.Unalias(lint.Deref(t)).(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	tid := typeID(named)
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if ids := b.funcValueIDs(pkg, kv.Value); len(ids) > 0 {
				b.bindField(tid+"."+key.Name, ids)
			}
			continue
		}
		if i < st.NumFields() {
			if ids := b.funcValueIDs(pkg, elt); len(ids) > 0 {
				b.bindField(tid+"."+st.Field(i).Name(), ids)
			}
		}
	}
}

// bindCallArgs binds function-valued arguments to the callee's parameters by
// position, keyed by the callee's stable ID so cross-package callbacks (a
// closure handed to another package's function) resolve.
func (b *builder) bindCallArgs(pkg *lint.Package, call *ast.CallExpr) {
	callees := b.directCallees(pkg, call)
	if len(callees) == 0 {
		return
	}
	for _, callee := range callees {
		nparams := len(callee.paramVars)
		if nparams == 0 {
			continue
		}
		for i, arg := range call.Args {
			ids := b.funcValueIDs(pkg, arg)
			if len(ids) == 0 {
				continue
			}
			pi := i
			if pi >= nparams {
				pi = nparams - 1 // variadic tail
			}
			key := callee.ID + "#" + strconv.Itoa(pi)
			set := b.paramBind[key]
			if set == nil {
				set = map[string]bool{}
				b.paramBind[key] = set
			}
			for _, id := range ids {
				set[id] = true
			}
		}
	}
}

// directCallees resolves the statically named targets of a call (package
// function or concrete-receiver method) to in-graph nodes, ignoring
// function-valued variables — this runs during binding collection, before
// variable bindings are complete.
func (b *builder) directCallees(pkg *lint.Package, call *ast.CallExpr) []*Node {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	fun := unwrapFun(ast.Unparen(call.Fun))
	switch f := fun.(type) {
	case *ast.FuncLit:
		if n := b.g.litNode[f]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if fn := funcObjOf(pkg, f.(ast.Expr)); fn != nil {
			if n := b.g.nodes[fn.FullName()]; n != nil {
				return []*Node{n}
			}
		}
	}
	return nil
}

// funcValueIDs resolves an expression used as a function value to node IDs.
func (b *builder) funcValueIDs(pkg *lint.Package, expr ast.Expr) []string {
	e := unwrapFun(ast.Unparen(expr))
	switch e := e.(type) {
	case *ast.FuncLit:
		if n := b.g.litNode[e]; n != nil {
			return []string{n.ID}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if fn := funcObjOf(pkg, e); fn != nil {
			if n := b.g.nodes[fn.FullName()]; n != nil {
				return []string{n.ID}
			}
		}
	}
	return nil
}

// unwrapFun strips generic instantiation syntax from a function expression.
func unwrapFun(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.IndexExpr:
		return x.X
	case *ast.IndexListExpr:
		return x.X
	}
	return e
}

// funcObjOf returns the *types.Func an identifier or selector denotes, or nil.
func funcObjOf(pkg *lint.Package, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[e]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// --- site resolution --------------------------------------------------------

// resolveSites finds every call expression in n's own body (literals are
// their own nodes) and resolves its targets.
func (b *builder) resolveSites(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	n.siteOf = map[*ast.CallExpr]*Site{}
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	// The walk keeps an explicit ancestor stack so sites know whether they
	// sit inside a loop (Inspect reports pops as nil only for nodes whose
	// visit returned true, so skipped literals are never pushed).
	loopDepth := 0
	var stack []ast.Node
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			}
			return false
		}
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			goCalls[s.Call] = true
		case *ast.DeferStmt:
			deferCalls[s.Call] = true
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			if site := b.resolveCall(n, s); site != nil {
				site.Go = goCalls[s]
				site.Defer = deferCalls[s]
				site.InLoop = loopDepth > 0
				n.Sites = append(n.Sites, site)
				n.siteOf[s] = site
			}
		}
		stack = append(stack, x)
		return true
	})
}

func (b *builder) resolveCall(n *Node, call *ast.CallExpr) *Site {
	pkg := n.Pkg
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	site := &Site{Call: call}
	addIDs := func(ids map[string]bool) {
		for id := range ids {
			if t := b.g.nodes[id]; t != nil {
				site.Callees = append(site.Callees, t)
			}
		}
	}
	addFunc := func(fn *types.Func) {
		if fn == nil {
			return
		}
		fn = fn.Origin()
		if t := b.g.nodes[fn.FullName()]; t != nil {
			site.Callees = append(site.Callees, t)
		} else {
			site.Ext = append(site.Ext, fn.FullName())
		}
	}
	fun := unwrapFun(ast.Unparen(call.Fun))
	switch f := fun.(type) {
	case *ast.FuncLit:
		if t := b.g.litNode[f]; t != nil {
			site.Callees = append(site.Callees, t)
		}
	case *ast.Ident:
		switch o := pkg.Info.Uses[f].(type) {
		case *types.Func:
			addFunc(o)
		case *types.Var:
			addIDs(b.objBind[o])
			if key, ok := b.paramKeyOf[o]; ok {
				addIDs(b.paramBind[key])
			}
		default:
			return nil // builtin, type, or unresolved
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[f]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, _ := sel.Obj().(*types.Func)
				if fn != nil && types.IsInterface(lint.Deref(sel.Recv())) {
					site.Ext = append(site.Ext, fn.Origin().FullName())
				} else {
					addFunc(fn)
				}
			case types.FieldVal:
				if key := fieldKeyOfSelection(sel); key != "" {
					addIDs(b.fieldBind[key])
				}
			}
		} else {
			switch o := pkg.Info.Uses[f.Sel].(type) {
			case *types.Func:
				addFunc(o)
			case *types.Var:
				addIDs(b.objBind[o])
			}
		}
	default:
		// Call of an arbitrary expression (map of funcs, call result):
		// unresolved; keep the site so arguments are still walked.
	}
	sort.Slice(site.Callees, func(i, j int) bool { return site.Callees[i].ID < site.Callees[j].ID })
	site.Callees = dedupNodes(site.Callees)
	sort.Strings(site.Ext)
	return site
}

func dedupNodes(ns []*Node) []*Node {
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || ns[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// fieldKeyOfSelection returns "pkg/path.Type.field" for a field selection on
// a named struct type, or "".
func fieldKeyOfSelection(sel *types.Selection) string {
	obj := sel.Obj()
	named, ok := types.Unalias(lint.Deref(sel.Recv())).(*types.Named)
	if !ok {
		return ""
	}
	return typeID(named) + "." + obj.Name()
}

// typeID returns the stable "pkg/path.Name" identity of a named type.
func typeID(named *types.Named) string {
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isCtxType(t types.Type) bool {
	return t != nil && lint.IsNamed(t, "context", "Context")
}

// Dump renders the graph and summaries deterministically, for tests and the
// fuzz determinism check.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, n := range g.order {
		fmt.Fprintf(&sb, "func %s (ctx=%v)\n", n.ID, n.HasCtx())
		for _, site := range n.Sites {
			for _, c := range site.Callees {
				tag := ""
				if site.Go {
					tag = " [go]"
					if site.Joined {
						tag = " [go-joined]"
					}
				}
				if site.Defer {
					tag = " [defer]"
				}
				if site.CtxFwd {
					tag += " [ctx]"
				}
				fmt.Fprintf(&sb, "  call %s%s\n", c.ID, tag)
			}
			for _, e := range site.Ext {
				fmt.Fprintf(&sb, "  ext %s\n", e)
			}
		}
		sb.WriteString(n.Summary.dump())
	}
	for _, e := range g.edgeOrder {
		fmt.Fprintf(&sb, "edge %s -> %s\n", e.From, e.To)
	}
	for _, r := range g.roots {
		fmt.Fprintf(&sb, "root %s kind=%s multi=%v\n", r.Node.ID, r.Kind, r.Multi)
	}
	return sb.String()
}
