package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

// LockID identifies a mutex with per-type granularity: "pkg/path.Type.field"
// for struct-field mutexes (every instance of the type shares the identity,
// which is what lock-order analysis wants), "pkg/path.name" for package-level
// mutexes, and "funcID$name" for function-local ones.
type LockID string

// Edge is one observed lock-acquisition ordering: some goroutine acquires To
// while already holding From. Chain is the witnessing call chain, starting in
// the function that held From and ending at the statement that locks To.
type Edge struct {
	From, To LockID
	// FromDisplay/ToDisplay are the short names used in diagnostics.
	FromDisplay, ToDisplay string
	Chain                  []lint.Step
}

// Block is one blocking operation reachable from a function.
type Block struct {
	// Op describes the operation ("channel receive", "sync.WaitGroup.Wait",
	// "net/rpc synchronous Call", ...).
	Op string
	// Chain leads from the summarized function to the operation; the first
	// step is in the function itself.
	Chain []lint.Step
	// Governed reports that the operation is cancellable through the
	// summarized function's own context (a select with a <-ctx.Done() case,
	// or a context-taking primitive that received a derived context).
	// Governed operations become ungoverned in callers that fail to forward
	// their context.
	Governed bool
}

// Summary is the interprocedural abstract of one function.
type Summary struct {
	// Acquires maps every lock the function may take — directly or through
	// any callee chain, excluding goroutines it spawns — to one witnessing
	// call chain ending at the Lock call.
	Acquires map[LockID][]lint.Step
	// AcquireDisplay maps the same locks to their display names.
	AcquireDisplay map[LockID]string
	// ExitHeld lists locks still held when the function returns (a lock
	// helper pattern), sorted.
	ExitHeld []LockID
	// Blocks lists blocking operations reached without spawning a goroutine,
	// deduplicated by (operation, final position).
	Blocks []Block
	// Accesses maps accessKey (field identity + site + kind) to the
	// struct-field accesses the function may perform, directly or through
	// any callee chain, excluding goroutines it spawns. Iterate via
	// AccessList for deterministic order.
	Accesses map[string]*Access
}

func (s *Summary) dump() string {
	var sb strings.Builder
	for _, id := range sortedLockIDs(s.Acquires) {
		fmt.Fprintf(&sb, "  acquires %s via %s\n", id, RenderChain(s.Acquires[id]))
	}
	for _, id := range s.ExitHeld {
		fmt.Fprintf(&sb, "  exit-held %s\n", id)
	}
	for _, blk := range s.Blocks {
		fmt.Fprintf(&sb, "  blocks %s governed=%v via %s\n", blk.Op, blk.Governed, RenderChain(blk.Chain))
	}
	for _, a := range s.AccessList() {
		kind := "read"
		if a.Write {
			kind = "write"
		}
		locks := make([]string, len(a.Locks))
		for i, l := range a.Locks {
			locks[i] = string(l)
		}
		fmt.Fprintf(&sb, "  access %s %s locks=[%s] via %s\n", kind, a.Field, strings.Join(locks, " "), RenderChain(a.Chain))
	}
	return sb.String()
}

func sortedLockIDs(m map[LockID][]lint.Step) []LockID {
	ids := make([]LockID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RenderChain renders a call chain as "fn (file:line) -> ...".
func RenderChain(chain []lint.Step) string {
	parts := make([]string, len(chain))
	for i, st := range chain {
		parts[i] = fmt.Sprintf("%s (%s:%d)", st.Func, st.Pos.Filename, st.Pos.Line)
	}
	return strings.Join(parts, " -> ")
}

// maxChain bounds witness chains so recursive cycles cannot grow them
// without bound.
const maxChain = 16

// --- root info: context taint and buffered channels -------------------------

// computeRoot computes the shared taint/buffered sets for a top-level
// function and all literals nested in it. Taint seeds from context.Context
// parameters anywhere in the tree and propagates through assignments: any
// value produced from an expression that mentions a tainted object is itself
// tainted. Over-tainting is safe — it only makes the analysis less likely to
// report.
func computeRoot(root *Node) {
	ri := &rootInfo{tainted: map[types.Object]bool{}, buffered: map[types.Object]bool{}}
	var assign func(n *Node)
	assign = func(n *Node) {
		n.root = ri
		for _, v := range n.paramVars {
			if v != nil && isCtxType(v.Type()) {
				ri.tainted[v] = true
			}
		}
		for _, c := range n.children {
			assign(c)
		}
	}
	assign(root)
	body := root.Body()
	if body == nil {
		return
	}
	pkg := root.Pkg
	taintLhs := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				ri.tainted[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				ri.tainted[obj] = true
			}
		}
	}
	for iter := 0; iter < 8; iter++ {
		before := len(ri.tainted)
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						markBuffered(pkg, ri, s.Lhs[i], s.Rhs[i])
						if mentionsTainted(pkg, ri, s.Rhs[i]) {
							taintLhs(s.Lhs[i])
						}
					}
				} else if len(s.Rhs) == 1 && mentionsTainted(pkg, ri, s.Rhs[0]) {
					for _, l := range s.Lhs {
						taintLhs(l)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						markBuffered(pkg, ri, name, s.Values[i])
						if mentionsTainted(pkg, ri, s.Values[i]) {
							taintLhs(name)
						}
					}
				}
			case *ast.RangeStmt:
				if mentionsTainted(pkg, ri, s.X) {
					if s.Key != nil {
						taintLhs(s.Key)
					}
					if s.Value != nil {
						taintLhs(s.Value)
					}
				}
			}
			return true
		})
		if len(ri.tainted) == before {
			break
		}
	}
}

// markBuffered records channels created with a two-argument make (capacity
// expressions are assumed non-zero: the repo never writes make(chan T, 0)),
// so sends on them are not treated as blocking.
func markBuffered(pkg *lint.Package, ri *rootInfo, lhs, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "make" {
		return
	}
	if _, ok := pkg.Info.Uses[fn].(*types.Builtin); !ok {
		return
	}
	if t := pkg.TypeOf(call.Args[0]); t == nil || !isChan(t) {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			ri.buffered[obj] = true
		}
	}
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func mentionsTainted(pkg *lint.Package, ri *rootInfo, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			if obj != nil && ri.tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// markCtxForwarding sets Site.CtxFwd: a context.Context-typed argument whose
// value derives from the caller's own context parameter.
func markCtxForwarding(n *Node) {
	if n.root == nil {
		return
	}
	for _, site := range n.Sites {
		for _, arg := range site.Call.Args {
			if isCtxType(n.Pkg.TypeOf(arg)) && mentionsTainted(n.Pkg, n.root, arg) {
				site.CtxFwd = true
				break
			}
		}
	}
}

// isBuffered reports whether ch is a channel known to have capacity.
func isBuffered(pkg *lint.Package, ri *rootInfo, ch ast.Expr) bool {
	if ri == nil {
		return false
	}
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	return obj != nil && ri.buffered[obj]
}

// isDoneOfTainted reports whether e is <receive-operand> ctx.Done() for a
// derived context — the canonical cancellation wait.
func isDoneOfTainted(pkg *lint.Package, ri *rootInfo, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	if !isCtxType(pkg.TypeOf(sel.X)) {
		return false
	}
	return ri != nil && mentionsTainted(pkg, ri, sel.X)
}

// blockingExt maps full names of well-known blocking primitives outside the
// graph to diagnostic descriptions. Context-taking primitives (DialContext
// and friends) are governed when the site forwards a derived context, so they
// are handled by the CtxFwd check, not listed here. Plain file I/O is
// deliberately absent: disk reads are treated as bounded; the cancellable
// surface is channels, waits, sleeps, dials, and synchronous RPC.
var blockingExt = map[string]string{
	"(*sync.WaitGroup).Wait":    "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":         "sync.Cond.Wait",
	"time.Sleep":                "time.Sleep",
	"(*net/rpc.Client).Call":    "net/rpc synchronous Call",
	"net.Dial":                  "net.Dial",
	"net.DialTimeout":           "net.DialTimeout",
	"(*net.Dialer).Dial":        "net.Dialer.Dial",
	"(*os.Process).Wait":        "os.Process.Wait",
	"(*net.TCPListener).Accept": "net.Listener.Accept",
}

// ctxAwareExt lists external primitives that honor a forwarded context; a
// call that forwards a derived context to one of these is governed (recorded
// so callers that later drop the context inherit the blocking op).
var ctxAwareExt = map[string]string{
	"(*net.Dialer).DialContext": "net.Dialer.DialContext",
}

// --- summarization ----------------------------------------------------------

// summarize computes all node summaries bottom-up over SCCs of the call
// graph, iterating each SCC to a fixpoint (recursion), then leaves the
// collected lock-order edges on the graph.
func summarize(g *Graph) {
	for _, scc := range sccs(g) {
		for iter := 0; iter < 10; iter++ {
			changed := false
			for _, n := range scc {
				before := fingerprint(&n.Summary)
				walkNode(g, n)
				if fingerprint(&n.Summary) != before {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// fingerprint captures the monotone part of a summary for fixpoint
// detection; witness chains are first-wins and never change once set.
// Access lock sets are included: per iteration they are recomputed from
// scratch off the (growing) callee summaries, so they evolve monotonically
// and the fixpoint terminates within the lock universe.
func fingerprint(s *Summary) string {
	var sb strings.Builder
	for _, id := range sortedLockIDs(s.Acquires) {
		sb.WriteString(string(id))
		sb.WriteByte('\n')
	}
	sb.WriteByte('|')
	for _, id := range s.ExitHeld {
		sb.WriteString(string(id))
		sb.WriteByte('\n')
	}
	sb.WriteByte('|')
	for _, b := range s.Blocks {
		fmt.Fprintf(&sb, "%s@%s:%d:%v\n", b.Op, b.Chain[len(b.Chain)-1].Pos.Filename, b.Chain[len(b.Chain)-1].Pos.Line, b.Governed)
	}
	sb.WriteByte('|')
	for _, key := range sortedAccessKeys(s.Accesses) {
		sb.WriteString(key)
		for _, l := range s.Accesses[key].Locks {
			sb.WriteByte(' ')
			sb.WriteString(string(l))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// sccs returns the strongly connected components of the call graph in
// reverse topological order (callees before callers), via iterative Tarjan.
func sccs(g *Graph) [][]*Node {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var out [][]*Node
	next := 0

	type frame struct {
		n  *Node
		ci int // next callee index into succ
	}
	succOf := func(n *Node) []*Node {
		var out []*Node
		for _, site := range n.Sites {
			if site.Go && !site.Joined {
				continue // goroutine bodies are separate roots for ordering
			}
			out = append(out, site.Callees...)
		}
		return out
	}
	for _, start := range g.order {
		if _, seen := index[start]; seen {
			continue
		}
		var frames []frame
		push := func(n *Node) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			frames = append(frames, frame{n: n})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succ := succOf(f.n)
			if f.ci < len(succ) {
				w := succ[f.ci]
				f.ci++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack[w] {
					if index[w] < low[f.n] {
						low[f.n] = index[w]
					}
				}
				continue
			}
			n := f.n
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*Node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == n {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].ID < comp[j].ID })
				out = append(out, comp)
			}
		}
	}
	return out
}

// walker computes one node's summary with a linear source-order walk,
// branch-sensitive for the held-lock set (branches walk on a copy; the sets
// are intersected at the join, so a lock taken on only one path does not
// leak into the fallthrough state — edges observed inside the branch are
// still recorded).
type walker struct {
	g    *Graph
	n    *Node
	held []LockID
	// display names for held locks, parallel to held.
	heldDisp  map[LockID]string
	deferred  map[LockID]bool
	sum       *Summary
	blockSeen map[string]bool
	// noAccess suppresses access collection ((*sync.Once).Do bodies).
	noAccess bool
	// paramIdx maps the node's parameter objects to their index, and
	// recvObj is the method receiver; both root accesses for ownership
	// transfer (see Access.Param).
	paramIdx map[types.Object]int
	recvObj  types.Object
}

func walkNode(g *Graph, n *Node) {
	w := &walker{
		g:        g,
		n:        n,
		heldDisp: map[LockID]string{},
		deferred: map[LockID]bool{},
		sum: &Summary{
			Acquires:       map[LockID][]lint.Step{},
			AcquireDisplay: map[LockID]string{},
			Accesses:       map[string]*Access{},
		},
		blockSeen: map[string]bool{},
		noAccess:  n.onceBody,
		paramIdx:  map[types.Object]int{},
	}
	if n.Sig != nil {
		if recv := n.Sig.Recv(); recv != nil {
			w.recvObj = recv
		}
		for i := 0; i < n.Sig.Params().Len(); i++ {
			w.paramIdx[n.Sig.Params().At(i)] = i
		}
	}
	if body := n.Body(); body != nil {
		w.stmts(body.List)
	}
	var exit []LockID
	for _, id := range w.held {
		if !w.deferred[id] {
			exit = append(exit, id)
		}
	}
	sort.Slice(exit, func(i, j int) bool { return exit[i] < exit[j] })
	w.sum.ExitHeld = exit
	n.Summary = *w.sum
}

func (w *walker) step(pos token.Pos) lint.Step {
	return lint.Step{Func: w.n.Display, Pos: w.n.Pkg.Fset.Position(pos)}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// withHeldCopy runs fn against a copy of the held set and returns the
// resulting set, restoring the original.
func (w *walker) withHeldCopy(fn func()) []LockID {
	saved := append([]LockID(nil), w.held...)
	fn()
	result := w.held
	w.held = saved
	return result
}

// blockTerminates reports whether a block cannot fall through: its last
// statement returns, panics, or jumps unconditionally.
func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return blockTerminates(s)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	case *ast.IfStmt:
		return blockTerminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func intersect(a, b []LockID) []LockID {
	inB := map[LockID]bool{}
	for _, id := range b {
		inB[id] = true
	}
	var out []LockID
	for _, id := range a {
		if inB[id] {
			out = append(out, id)
		}
	}
	return out
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.lvalue(e)
		}
	case *ast.SendStmt:
		w.expr(s.Value)
		w.send(s)
	case *ast.IncDecStmt:
		w.lvalue(s.X)
	case *ast.GoStmt:
		// Arguments are evaluated on the caller's goroutine; the call
		// itself runs elsewhere and is excluded from ordering and blocking.
		// A joined spawn (structured fork-join) runs within this function's
		// dynamic extent, so its field accesses fold into this summary.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		w.liftJoined(s.Call)
	case *ast.DeferStmt:
		if op, id, _ := w.lockOpOf(s.Call); op == "Unlock" || op == "RUnlock" {
			w.deferred[id] = true
			return
		}
		w.call(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		thenHeld := w.withHeldCopy(func() { w.stmts(s.Body.List) })
		elseHeld := w.withHeldCopy(func() { w.stmt(s.Else) })
		// A branch that cannot fall through (ends in return, panic, or an
		// unconditional jump) does not constrain the post-if state — the
		// early-return-with-unlock idiom must not strip locks from the
		// code after the if.
		thenTerm := blockTerminates(s.Body)
		elseTerm := s.Else != nil && stmtTerminates(s.Else)
		switch {
		case thenTerm && !elseTerm:
			w.held = elseHeld
		case elseTerm && !thenTerm:
			w.held = thenHeld
		default:
			w.held = intersect(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		entry := append([]LockID(nil), w.held...)
		bodyHeld := w.withHeldCopy(func() {
			w.stmts(s.Body.List)
			w.stmt(s.Post)
		})
		w.held = intersect(entry, bodyHeld)
	case *ast.RangeStmt:
		w.expr(s.X)
		entry := append([]LockID(nil), w.held...)
		bodyHeld := w.withHeldCopy(func() { w.stmts(s.Body.List) })
		w.held = intersect(entry, bodyHeld)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// caseBodies walks each clause on a copy of the held set and intersects the
// results (with the entry state, since no clause may match).
func (w *walker) caseBodies(body *ast.BlockStmt) {
	merged := append([]LockID(nil), w.held...)
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e)
		}
		after := w.withHeldCopy(func() { w.stmts(cc.Body) })
		merged = intersect(merged, after)
	}
	w.held = merged
}

// expr walks an expression, handling calls, raw channel receives, and
// struct-field reads; nested function literals are separate nodes and are
// not entered.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.recv(x)
				return false
			}
		case *ast.SelectorExpr:
			w.fieldAccess(x, false)
		}
		return true
	})
}

// lvalue walks an assignment target: the topmost field selector (possibly
// behind index, slice, star, or paren wrappers) is a write; index operands
// and the base chain beneath it are reads.
func (w *walker) lvalue(e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			w.expr(x.Index)
			e = x.X
			continue
		case *ast.SliceExpr:
			w.expr(x.Low)
			w.expr(x.High)
			w.expr(x.Max)
			e = x.X
			continue
		}
		break
	}
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		w.fieldAccess(sel, true)
		w.expr(sel.X)
		return
	}
	w.expr(e)
}

// fieldAccess records one direct struct-field access with the current held
// set, applying the collection-time exemptions (see access.go).
func (w *walker) fieldAccess(sel *ast.SelectorExpr, write bool) {
	if w.noAccess {
		return
	}
	pkg := w.n.Pkg
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	obj := selection.Obj()
	if exemptFieldType(obj.Type()) {
		return
	}
	named, ok := types.Unalias(lint.Deref(selection.Recv())).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if ownedBase(w.n, sel.X) {
		return
	}
	locks := append([]LockID(nil), w.held...)
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	param, recvRooted := w.rootOf(sel.X)
	w.mergeAccess(&Access{
		Field:      FieldID(typeID(named) + "." + obj.Name()),
		Display:    named.Obj().Name() + "." + obj.Name(),
		Write:      write,
		Pos:        pkg.Fset.Position(sel.Sel.Pos()),
		Locks:      locks,
		Chain:      []lint.Step{w.step(sel.Sel.Pos())},
		Param:      param,
		RecvRooted: recvRooted,
	})
}

// mergeAccess folds one access (direct or lifted from a callee) into the
// summary: new sites are added; a re-witnessed site intersects its lock set
// and, when that shrinks it, adopts the chain of the less-locked path so the
// witness matches the lock set reported.
func (w *walker) mergeAccess(a *Access) {
	if w.noAccess {
		return
	}
	key := accessKey(a.Field, a.Pos, a.Write)
	prev, ok := w.sum.Accesses[key]
	if !ok {
		w.sum.Accesses[key] = a
		return
	}
	merged := intersect(prev.Locks, a.Locks)
	if len(merged) < len(prev.Locks) {
		prev.Locks = merged
		prev.Chain = a.Chain
	}
}

// unionLocks returns the sorted union of two lock sets.
func unionLocks(a, b []LockID) []LockID {
	seen := map[LockID]bool{}
	var out []LockID
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- channel operations -----------------------------------------------------

func (w *walker) send(s *ast.SendStmt) {
	w.expr(s.Chan)
	if isBuffered(w.n.Pkg, w.n.root, s.Chan) {
		return
	}
	w.addBlock(Block{Op: "channel send", Chain: []lint.Step{w.step(s.Arrow)}})
}

func (w *walker) recv(u *ast.UnaryExpr) {
	if isDoneOfTainted(w.n.Pkg, w.n.root, u.X) {
		// Waiting for cancellation is itself governed.
		w.addBlock(Block{Op: "wait for ctx.Done", Chain: []lint.Step{w.step(u.OpPos)}, Governed: true})
		return
	}
	w.expr(u.X)
	w.addBlock(Block{Op: "channel receive", Chain: []lint.Step{w.step(u.OpPos)}})
}

// selectStmt classifies a select: a default case makes it non-blocking; a
// <-ctx.Done() case for a derived context makes it governed; otherwise it is
// an ungoverned blocking point. Communication operands inside the clauses
// are not reported individually.
func (w *walker) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	hasCancel := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if recvExpr := commRecvOperand(cc.Comm); recvExpr != nil && isDoneOfTainted(w.n.Pkg, w.n.root, recvExpr) {
			hasCancel = true
		}
	}
	switch {
	case hasDefault:
	case hasCancel:
		w.addBlock(Block{Op: "select with cancellation case", Chain: []lint.Step{w.step(s.Select)}, Governed: true})
	default:
		w.addBlock(Block{Op: "select with no cancellation case", Chain: []lint.Step{w.step(s.Select)}})
	}
	merged := append([]LockID(nil), w.held...)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		after := w.withHeldCopy(func() { w.stmts(cc.Body) })
		merged = intersect(merged, after)
	}
	w.held = merged
}

// commRecvOperand extracts the channel-producing expression of a receive
// comm clause statement, or nil.
func commRecvOperand(s ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil
	}
	return u.X
}

// --- calls and locks --------------------------------------------------------

// lockOpOf recognizes <expr>.Lock / RLock / Unlock / RUnlock on sync.Mutex
// or sync.RWMutex (directly or through an embedded field) and returns the
// operation name, the per-type lock identity, and its display name.
func (w *walker) lockOpOf(call *ast.CallExpr) (op string, id LockID, display string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", ""
	}
	pkg := w.n.Pkg
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", "", ""
	}
	fn, _ := selection.Obj().(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", ""
	}
	id, display = w.lockIdentity(sel.X)
	return op, id, display
}

// lockIdentity derives the per-type identity of a mutex expression.
func (w *walker) lockIdentity(mu ast.Expr) (LockID, string) {
	pkg := w.n.Pkg
	switch m := ast.Unparen(mu).(type) {
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[m]; sel != nil && sel.Kind() == types.FieldVal {
			if key := fieldKeyOfSelection(sel); key != "" {
				if named, ok := types.Unalias(lint.Deref(sel.Recv())).(*types.Named); ok {
					return LockID(key), named.Obj().Name() + "." + sel.Obj().Name()
				}
				return LockID(key), key
			}
		}
		// Qualified package-level mutex (pkg.mu).
		if obj := pkg.Info.Uses[m.Sel]; obj != nil && obj.Pkg() != nil {
			return LockID(obj.Pkg().Path() + "." + obj.Name()), shortPkg(obj.Pkg().Path()) + "." + obj.Name()
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[m]
		if obj == nil {
			obj = pkg.Info.Defs[m]
		}
		if obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return LockID(obj.Pkg().Path() + "." + obj.Name()), shortPkg(obj.Pkg().Path()) + "." + obj.Name()
			}
			// Function-local mutex: scope the identity to the root function
			// so closures sharing the variable agree on it.
			root := w.n
			for root.Parent != nil {
				root = root.Parent
			}
			return LockID(root.ID + "$" + obj.Name()), root.Display + "/" + obj.Name()
		}
	}
	// Embedded mutex (x.Lock() with x not itself a mutex) or an exotic
	// expression: fall back to the receiver's type identity.
	if t := pkg.TypeOf(mu); t != nil {
		if named, ok := types.Unalias(lint.Deref(t)).(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return LockID(typeID(named) + ".Mutex"), named.Obj().Name() + ".Mutex"
		}
	}
	return LockID("mutex@" + w.n.ID), w.n.Display + "/mutex"
}

func (w *walker) acquire(id LockID, display string, pos token.Pos) {
	w.g.noteLockDisplay(id, display)
	st := w.step(pos)
	for _, h := range w.held {
		w.addEdge(h, id, display, []lint.Step{st})
	}
	if _, ok := w.sum.Acquires[id]; !ok {
		w.sum.Acquires[id] = []lint.Step{st}
		w.sum.AcquireDisplay[id] = display
	}
	for _, h := range w.held {
		if h == id {
			return
		}
	}
	w.held = append(w.held, id)
	w.heldDisp[id] = display
}

func (w *walker) release(id LockID) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == id {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *walker) addEdge(from, to LockID, toDisplay string, chain []lint.Step) {
	if from == to {
		// Same per-type identity re-acquired while held: intraprocedural
		// self-deadlock is lockflow's domain, and across instances of one
		// type this is usually two distinct mutexes; skip.
		return
	}
	key := [2]LockID{from, to}
	if _, ok := w.g.edges[key]; ok {
		return
	}
	e := &Edge{From: from, To: to, FromDisplay: w.heldDisp[from], ToDisplay: toDisplay, Chain: chain}
	if e.FromDisplay == "" {
		e.FromDisplay = string(from)
	}
	w.g.edges[key] = e
	w.g.edgeOrder = append(w.g.edgeOrder, e)
}

func (w *walker) addBlock(b Block) {
	last := b.Chain[len(b.Chain)-1]
	key := fmt.Sprintf("%s@%s:%d", b.Op, last.Pos.Filename, last.Pos.Line)
	if w.blockSeen[key] {
		return
	}
	w.blockSeen[key] = true
	w.sum.Blocks = append(w.sum.Blocks, b)
}

func (w *walker) call(call *ast.CallExpr) {
	if op, id, display := w.lockOpOf(call); op != "" {
		w.expr(funReceiver(call))
		switch op {
		case "Lock", "RLock":
			w.acquire(id, display, call.Lparen)
		case "Unlock", "RUnlock":
			w.release(id)
		}
		return
	}
	if isAtomicCall(w.n.Pkg, call) {
		// sync/atomic operands are accessed atomically: walk the base
		// chains but do not record the &field operands themselves.
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					w.expr(sel.X)
					continue
				}
			}
			w.expr(a)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if _, isBuiltin := w.n.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			// delete mutates the map: a write on the field holding it.
			w.lvalue(call.Args[0])
			w.expr(call.Args[1])
			return
		}
	}
	// Arguments and the function expression may contain nested calls; a
	// call through a function-valued field also reads that field.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.fieldAccess(sel, false)
		w.expr(sel.X)
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	site := w.n.siteOf[call]
	if site == nil || site.Go {
		return
	}
	st := w.step(call.Lparen)
	w.liftSite(site, st)
	for _, callee := range site.Callees {
		cs := &callee.Summary
		// Lock-order edges and transitive acquires.
		for _, id := range sortedLockIDs(cs.Acquires) {
			chain := prefixChain(st, cs.Acquires[id])
			for _, h := range w.held {
				w.addEdge(h, id, cs.AcquireDisplay[id], chain)
			}
			if _, ok := w.sum.Acquires[id]; !ok {
				w.sum.Acquires[id] = chain
				w.sum.AcquireDisplay[id] = cs.AcquireDisplay[id]
			}
		}
		// Lock helpers: locks the callee leaves held are held here now.
		for _, id := range cs.ExitHeld {
			already := false
			for _, h := range w.held {
				if h == id {
					already = true
					break
				}
			}
			if !already {
				w.held = append(w.held, id)
				w.heldDisp[id] = cs.AcquireDisplay[id]
			}
		}
		// Blocking operations. Forwarding a derived context to a
		// context-aware callee delegates responsibility to it (it reports
		// its own ungoverned operations); any other call inherits them,
		// and the callee's governed operations lose their governance when
		// the context is dropped.
		if callee.HasCtx() && site.CtxFwd {
			continue
		}
		for _, blk := range cs.Blocks {
			w.addBlock(Block{Op: blk.Op, Chain: prefixChain(st, blk.Chain)})
		}
	}
	for _, ext := range site.Ext {
		if desc, ok := blockingExt[ext]; ok {
			w.addBlock(Block{Op: desc, Chain: []lint.Step{st}})
		} else if desc, ok := ctxAwareExt[ext]; ok {
			w.addBlock(Block{Op: desc, Chain: []lint.Step{st}, Governed: site.CtxFwd})
		}
	}
}

// liftSite folds the field accesses of a call site's callees into this
// summary with the caller's held set added (the callee's exit-held locks
// were not yet held when its accesses ran, so callers must invoke this
// before merging ExitHeld). Ownership transfers through the call: an access
// rooted at a callee parameter is dropped when the matching argument is
// memory this caller owns, and re-rooted when the argument chains to one of
// this caller's own parameters.
func (w *walker) liftSite(site *Site, st lint.Step) {
	for _, callee := range site.Callees {
		cs := &callee.Summary
		for _, key := range sortedAccessKeys(cs.Accesses) {
			ca := cs.Accesses[key]
			param, recvRooted, drop := w.transferRoot(site.Call, callee, ca)
			if drop {
				continue
			}
			w.mergeAccess(&Access{
				Field:      ca.Field,
				Display:    ca.Display,
				Write:      ca.Write,
				Pos:        ca.Pos,
				Locks:      unionLocks(ca.Locks, w.held),
				Chain:      prefixChain(st, ca.Chain),
				Param:      param,
				RecvRooted: recvRooted,
			})
		}
	}
}

// liftJoined folds a joined spawn's accesses into the spawner (structured
// fork-join, see markJoinedSpawns): the goroutine runs within the spawner's
// dynamic extent, so for lock-set purposes its accesses behave like a call.
// Only field accesses lift — the goroutine's lock acquisitions and blocking
// operations happen on its own stack, not the spawner's statement flow.
func (w *walker) liftJoined(call *ast.CallExpr) {
	site := w.n.siteOf[call]
	if site == nil || !site.Joined {
		return
	}
	w.liftSite(site, w.step(call.Lparen))
}

// transferRoot maps a callee access's root into this caller's frame. It
// returns the caller-relative rooting of the lifted access, or drop=true
// when the argument bound to the access's root is memory the caller owns —
// the ownership transfer that keeps per-call structures (reply objects,
// stats sinks) exempt arbitrarily deep in the call tree.
func (w *walker) transferRoot(call *ast.CallExpr, callee *Node, ca *Access) (param int, recvRooted bool, drop bool) {
	var arg ast.Expr
	switch {
	case ca.RecvRooted:
		// The receiver argument is the selector base of a direct method
		// call; method values and rebound callbacks leave it unknown.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := w.n.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				arg = sel.X
			}
		}
	case ca.Param >= 0:
		// Positional mapping holds only when the call shape matches the
		// callee signature exactly (no variadic spreading or arity
		// mismatch from callback rebinding).
		if callee.Sig != nil && call.Ellipsis == token.NoPos &&
			!callee.Sig.Variadic() && len(call.Args) == callee.Sig.Params().Len() &&
			ca.Param < len(call.Args) {
			arg = call.Args[ca.Param]
		}
	default:
		return -1, false, false
	}
	if arg == nil {
		return -1, false, false
	}
	if exprOwned(w.n, arg) {
		return 0, false, true
	}
	param, recvRooted = w.rootOf(arg)
	return param, recvRooted, false
}

// rootOf classifies an expression's base in this function's frame: the
// receiver, a parameter (by index), or — through computeRooting's alias
// analysis — a local that stably aliases one of them.
func (w *walker) rootOf(e ast.Expr) (param int, recvRooted bool) {
	base := baseObject(w.n, e)
	if base == nil {
		return -1, false
	}
	if base == w.recvObj || w.n.rootedRecv[base] {
		return -1, true
	}
	if i, ok := w.paramIdx[base]; ok {
		return i, false
	}
	if i, ok := w.n.rootedParam[base]; ok {
		return i, false
	}
	return -1, false
}

// funReceiver returns the receiver expression of a method call, or nil.
func funReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			return inner.X
		}
	}
	return nil
}

func prefixChain(st lint.Step, chain []lint.Step) []lint.Step {
	out := make([]lint.Step, 0, len(chain)+1)
	out = append(out, st)
	out = append(out, chain...)
	if len(out) > maxChain {
		out = out[:maxChain]
	}
	return out
}
