// Package resolve exercises every call-resolution mode of the callgraph
// builder: static calls, concrete-receiver methods, closures through local
// variables, callbacks stored in struct fields, and callbacks passed as
// arguments.
package resolve

type handler struct {
	fn func()
}

func target() {}

func caller() { target() }

type T struct{ n int }

func (t *T) m() { t.n++ }

func methodCall(t *T) { t.m() }

func closureCall() {
	f := func() {}
	f()
}

func storeField(h *handler) { h.fn = target }

func callField(h *handler) { h.fn() }

func takesCb(cb func()) { cb() }

func passesCb() { takesCb(target) }

func immediate() {
	func() { target() }()
}
