package resolve

// chainTop adds a second file to the package so the determinism test can
// permute file order.
func chainTop(h *handler) {
	caller()
	callField(h)
}
