// Package recurse seeds mutual recursion with lock acquisitions on both
// sides, so the SCC fixpoint must propagate each function's locks into the
// other's summary.
package recurse

import "sync"

type left struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type right struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func ping(l *left, r *right, n int) {
	if n == 0 {
		return
	}
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
	pong(l, r, n-1)
}

func pong(l *left, r *right, n int) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	ping(l, r, n-1)
}

// helper returns with the lock held; callers inherit it.
func (l *left) acquireHeld() {
	l.mu.Lock()
}

func holdsAcross(l *left, r *right) {
	l.acquireHeld()
	defer l.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}
