package guards_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/guards"
)

const fixture = `package fix

import "sync"

type Canonical struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type Legacy struct {
	mu sync.RWMutex
	// guardedby: mu
	m map[string]int
}

type Broken struct {
	mu sync.Mutex
	x  int // guarded by nosuch
}
`

// TestBothDialects proves the one parser accepts the canonical "guarded by"
// form and the legacy "guardedby:" shorthand, resolves the owning type, and
// reports annotations naming a missing mutex.
func TestBothDialects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.go")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.NewLoader().LoadFiles("fix", path)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	gs, bad := guards.Collect(pkg, "testpass")

	byField := map[string]guards.Guard{}
	for _, g := range gs {
		byField[g.Field.Name()] = g
	}
	for _, want := range []struct{ field, owner string }{
		{"n", "Canonical"},
		{"m", "Legacy"},
	} {
		g, ok := byField[want.field]
		if !ok {
			t.Errorf("field %s: no guard collected", want.field)
			continue
		}
		if g.Owner == nil || g.Owner.Obj().Name() != want.owner {
			t.Errorf("field %s: owner = %v, want %s", want.field, g.Owner, want.owner)
		}
		if g.Name != "mu" || g.Mutex == nil || g.Mutex.Name() != "mu" {
			t.Errorf("field %s: mutex = %q/%v, want mu", want.field, g.Name, g.Mutex)
		}
	}
	if _, ok := byField["x"]; ok {
		t.Errorf("broken annotation on x produced a guard")
	}
	if len(bad) != 1 {
		t.Fatalf("bad findings = %v, want exactly one for Broken.x", bad)
	}
	if bad[0].Pass != "testpass" {
		t.Errorf("bad finding pass = %q, want testpass", bad[0].Pass)
	}
}
