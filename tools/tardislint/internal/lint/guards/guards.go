// Package guards is the single parser for the project's guarded-by field
// annotations, shared by every pass that consumes them (lockflow's
// path-sensitive intraprocedural check and racecheck's interprocedural
// lock-set inference).
//
// The canonical syntax is a field comment — trailing or in the field's doc
// comment — containing
//
//	guarded by <mu>
//
// where <mu> names a sync.Mutex or sync.RWMutex field of the same struct.
// The sigslice-era shorthand "guardedby: <mu>" is accepted by the same
// regular expression so historical annotations keep working, but new code
// should write the spaced canonical form. An annotation that names no mutex
// field of its struct is reported as a finding by whichever pass collects
// it first (lockflow, in the default pass order).
package guards

import (
	"go/ast"
	"go/types"
	"regexp"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

// re accepts both dialects: "guarded by mu", "guarded-by mu", and the old
// "guardedby: mu". The mutex name is the first capture group.
var re = regexp.MustCompile(`guarded[ -]?by:?\s+([A-Za-z_]\w*)`)

// Guard ties one annotated struct field to the mutex field that protects it.
type Guard struct {
	// Owner is the named struct type declaring the field, or nil when the
	// annotation sits in an anonymous struct (object-granular consumers
	// still work; type-granular ones skip it).
	Owner *types.Named
	// Field is the annotated field.
	Field *types.Var
	// Mutex is the sync.Mutex/RWMutex field of the same struct.
	Mutex *types.Var
	// Name is the mutex field name as written in the annotation.
	Name string
}

// Collect scans every struct type in the package for guarded-by annotations.
// It returns the resolved guards and, attributed to pass, a finding for each
// annotation that names no mutex field of its struct.
func Collect(p *lint.Package, pass string) ([]Guard, []lint.Finding) {
	owner := map[*ast.StructType]*types.Named{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					owner[st] = named
				}
			}
			return true
		})
	}
	var guards []Guard
	var out []lint.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			g, bad := collectStruct(p, st, owner[st], pass)
			guards = append(guards, g...)
			out = append(out, bad...)
			return true
		})
	}
	return guards, out
}

// collectStruct resolves the annotations of one struct literal.
func collectStruct(p *lint.Package, st *ast.StructType, named *types.Named, pass string) ([]Guard, []lint.Finding) {
	mutexByName := map[string]*types.Var{}
	for _, field := range st.Fields.List {
		for _, fname := range field.Names {
			obj, ok := p.Info.Defs[fname].(*types.Var)
			if !ok {
				continue
			}
			if IsMutex(obj.Type()) {
				mutexByName[fname.Name] = obj
			}
		}
	}
	var guards []Guard
	var out []lint.Finding
	for _, field := range st.Fields.List {
		text := ""
		if field.Doc != nil {
			text += field.Doc.Text()
		}
		if field.Comment != nil {
			text += field.Comment.Text()
		}
		m := re.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		mu := mutexByName[m[1]]
		if mu == nil {
			out = append(out, p.Findingf(pass, field.Pos(),
				"'guarded by %s' names no sync.Mutex/RWMutex field of this struct", m[1]))
			continue
		}
		for _, fname := range field.Names {
			if obj, ok := p.Info.Defs[fname].(*types.Var); ok {
				guards = append(guards, Guard{Owner: named, Field: obj, Mutex: mu, Name: m[1]})
			}
		}
	}
	return guards, out
}

// IsMutex reports whether t is sync.Mutex or sync.RWMutex (possibly behind a
// pointer).
func IsMutex(t types.Type) bool {
	t = lint.Deref(t)
	return lint.IsNamed(t, "sync", "Mutex") || lint.IsNamed(t, "sync", "RWMutex")
}

// IsRWMutex reports whether t is sync.RWMutex (possibly behind a pointer).
func IsRWMutex(t types.Type) bool {
	return lint.IsNamed(lint.Deref(t), "sync", "RWMutex")
}
