// Package errflow implements the errflow pass: a path-sensitive dead-store
// analysis for error-typed locals. A definition of an error variable is
// flagged when no use of the variable is reachable on ANY path before the
// variable is overwritten or falls out of scope — the classic shapes being
//
//	f, err := os.Open(a)
//	g, err := os.Open(b) // first err silently overwritten
//
// an inner err := ... shadowing an outer error that is then never checked,
// and an error assigned on the last line of a function that simply falls off
// the end.
//
// The "any path" quantifier is what keeps the pass quiet on correct code:
// a retry loop that overwrites err on the back edge but checks it after the
// loop has a use reachable on the loop-exit path, so nothing is reported.
//
// The analysis is deliberately conservative about aliasing: variables whose
// address is taken or that are captured by a function literal are exempt,
// as are assignments of the nil literal (err = nil resets are idiomatic).
// Only variables declared inside the function body with type exactly
// `error` participate; named result parameters are out of scope (a bare
// return uses them implicitly).
package errflow

import (
	"go/ast"
	"go/types"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/cfg"
)

const passName = "errflow"

// Pass is the errflow analyzer.
var Pass = lint.Pass{
	Name: passName,
	Doc:  "error-typed definition is never checked on any path before being overwritten or dropped",
	Run:  run,
}

func run(p *lint.Package) []lint.Finding {
	var out []lint.Finding
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &analysis{pkg: p, errType: errType}
			out = append(out, a.check(fd)...)
		}
	}
	return out
}

type analysis struct {
	pkg     *lint.Package
	errType types.Type
}

// objOf resolves an identifier to its object, whether the occurrence
// declares it or uses it.
func (a *analysis) objOf(id *ast.Ident) types.Object {
	if o := a.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return a.pkg.Info.Defs[id]
}

// candidates returns the error-typed variables declared in the body that
// the analysis can reason about: address never taken, never captured by a
// function literal.
func (a *analysis) candidates(body *ast.BlockStmt) map[*types.Var]bool {
	cand := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := a.pkg.Info.Defs[id].(*types.Var)
		if !ok || v.Name() == "_" {
			return true
		}
		if types.Identical(v.Type(), a.errType) {
			cand[v] = true
		}
		return true
	})
	if len(cand) == 0 {
		return nil
	}
	disqualify := func(id *ast.Ident) {
		if v, ok := a.objOf(id).(*types.Var); ok {
			delete(cand, v)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if id, ok := n.X.(*ast.Ident); ok {
					disqualify(id)
				}
			}
		case *ast.FuncLit:
			// Captured variables can be read at any time (goroutines,
			// deferred closures); give up on them entirely.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					disqualify(id)
				}
				return true
			})
			return false
		}
		return true
	})
	return cand
}

// def is one definition site of a candidate variable.
type def struct {
	v    *types.Var
	id   *ast.Ident
	blk  *cfg.Block
	idx  int // index of the defining node in blk.Nodes
	decl bool
}

func (a *analysis) check(fd *ast.FuncDecl) []lint.Finding {
	cand := a.candidates(fd.Body)
	if len(cand) == 0 {
		return nil
	}
	g := cfg.Build(fd.Body)
	var defs []def
	for _, b := range g.Blocks {
		if !b.Live {
			continue // go vet already reports unreachable code
		}
		for i, n := range b.Nodes {
			defs = append(defs, a.defsIn(cand, b, i, n)...)
		}
	}
	var out []lint.Finding
	for _, d := range defs {
		live, overwritten := a.useReachable(d)
		if live {
			continue
		}
		what := "goes out of scope"
		if overwritten {
			what = "is overwritten"
		}
		out = append(out, a.pkg.Findingf(passName, d.id.Pos(),
			"error assigned to %q %s without being checked on any path", d.v.Name(), what))
	}
	return out
}

// defsIn extracts the candidate-variable definitions made by one block node:
// assignment statements (including := and the assignments synthesized for
// range headers) and var declarations with initializers. Assignments of the
// nil literal are skipped.
func (a *analysis) defsIn(cand map[*types.Var]bool, b *cfg.Block, idx int, n ast.Node) []def {
	var out []def
	addIfCand := func(id *ast.Ident, val ast.Expr) {
		v, ok := a.objOf(id).(*types.Var)
		if !ok || !cand[v] {
			return
		}
		if val != nil {
			if tv, ok := a.pkg.Info.Types[val]; ok && tv.IsNil() {
				return
			}
		}
		out = append(out, def{v: v, id: id, blk: b, idx: idx})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var val ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				val = n.Rhs[i]
			}
			addIfCand(id, val)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			for i, name := range vs.Names {
				var val ast.Expr
				if len(vs.Values) == len(vs.Names) {
					val = vs.Values[i]
				}
				addIfCand(name, val)
			}
		}
	}
	return out
}

// useReachable reports whether any use of d.v is reachable from the
// definition before the variable is redefined, and whether some path
// redefines it (for the diagnostic wording). The search walks the remainder
// of the defining block and then the successor blocks breadth-first; a block
// whose scan hits a redefinition kills that path.
func (a *analysis) useReachable(d def) (live, overwritten bool) {
	used, killed := a.scanBlock(d.blk, d.idx+1, d.v)
	if used {
		return true, false
	}
	if killed {
		return false, true
	}
	visited := map[*cfg.Block]bool{}
	queue := append([]*cfg.Block{}, d.blk.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if visited[b] {
			continue
		}
		visited[b] = true
		used, killed := a.scanBlock(b, 0, d.v)
		if used {
			return true, false
		}
		if killed {
			overwritten = true
			continue
		}
		queue = append(queue, b.Succs...)
	}
	return false, overwritten
}

// scanBlock scans blk.Nodes[from:] in execution order for the first use or
// redefinition of v.
func (a *analysis) scanBlock(blk *cfg.Block, from int, v *types.Var) (used, killed bool) {
	for i := from; i < len(blk.Nodes); i++ {
		u, k := a.scanNode(blk.Nodes[i], v)
		if u {
			return true, false
		}
		if k {
			return false, true
		}
	}
	return false, false
}

// scanNode classifies one node's effect on v: a read anywhere (including
// assignment right-hand sides and non-identifier left-hand sides like
// m[err] = x) is a use; v appearing as a bare left-hand-side identifier of
// an assignment is a kill. Reads take priority — err = wrap(err) uses the
// old value before overwriting it.
func (a *analysis) scanNode(n ast.Node, v *types.Var) (used, killed bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return a.exprUses(n, v), false
	}
	for _, r := range as.Rhs {
		if a.exprUses(r, v) {
			used = true
		}
	}
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if a.objOf(id) == v {
				killed = true
			}
			continue
		}
		if a.exprUses(l, v) {
			used = true
		}
	}
	if used {
		killed = false
	}
	return used, killed
}

func (a *analysis) exprUses(n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && a.pkg.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}
