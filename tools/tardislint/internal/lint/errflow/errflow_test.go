package errflow_test

import (
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/errflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/linttest"
)

func TestErrflow(t *testing.T) {
	linttest.Check(t, errflow.Pass, "fixture", "testdata/fixture.go")
}
