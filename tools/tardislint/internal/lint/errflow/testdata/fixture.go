// Package fixture seeds errflow violations — error values overwritten,
// shadowed, or dropped without ever being checked — next to the correct
// forms that must stay clean, including the retry loop whose error is only
// checked after the loop.
package fixture

import "errors"

func open(string) (int, error)  { return 0, nil }
func open2(string) (int, error) { return 0, nil }
func attempt() error            { return nil }
func wrap(error) error          { return nil }
func sink(int)                  {}
func keep(*error)               {}

// goodChecked is the baseline correct form.
func goodChecked() error {
	f, err := open("a")
	if err != nil {
		return err
	}
	sink(f)
	return nil
}

// goodCheckedInLoop overwrites err on every back edge but checks it right
// after each assignment.
func goodCheckedInLoop() error {
	var err error
	for i := 0; i < 3; i++ {
		err = attempt()
		if err == nil {
			break
		}
	}
	return err
}

// goodCheckedAfterLoop assigns inside the loop and only checks after it:
// the loop-exit path reaches the use, so the per-iteration definitions are
// live even though the back edge overwrites them. Only a path-sensitive
// analysis gets this right.
func goodCheckedAfterLoop(keys []string) error {
	var err error
	for _, k := range keys {
		if _, e := open(k); e != nil {
			err = e
		}
	}
	if err != nil {
		return err
	}
	return nil
}

// goodRewrap reads the old value while overwriting it.
func goodRewrap() error {
	err := attempt()
	err = wrap(err)
	return err
}

// goodEscapes takes the address; the analysis must leave it alone.
func goodEscapes() {
	err := attempt()
	keep(&err)
}

// goodCaptured is read by a deferred closure.
func goodCaptured() {
	err := attempt()
	defer func() { _ = err }()
}

// goodDiscarded documents intent with a blank assignment.
func goodDiscarded() {
	err := attempt()
	_ = err
}

// badOverwrite drops the first error on the floor: the classic copy-paste.
func badOverwrite() error {
	f, err := open("a") // WANT
	g, err := open2("b")
	if err != nil {
		return err
	}
	sink(f + g)
	return nil
}

// badShadow writes := where = was meant: the inner err shadows the outer
// one, so the first error can never reach the final return — every path
// overwrites the outer variable before reading it.
func badShadow(retry bool) error {
	err := attempt() // WANT
	if retry {
		err := attempt()
		if err != nil {
			return err
		}
	}
	err = nil
	return err
}

// badFallsOff checks the first error but lets the second fall off the end
// of the function.
func badFallsOff() {
	err := attempt()
	if err != nil {
		return
	}
	err = attempt() // WANT
}

// badBothBranches overwrites the first error on every branch before the
// check, so no path ever observes it.
func badBothBranches(fast bool) error {
	err := attempt() // WANT
	if fast {
		err = attempt()
	} else {
		err = wrap(errors.New("slow"))
	}
	return err
}

// badLoopClobbered collects an error per iteration, then the final
// assignment clobbers whatever the loop produced: no path reads the
// per-iteration value.
func badLoopClobbered(keys []string) error {
	var err error
	for _, k := range keys {
		_, err = open(k) // WANT
	}
	err = attempt()
	return err
}

// badDeclInit seeds the violation through a var declaration with an
// initializer rather than an assignment.
func badDeclInit() {
	var err error = attempt() // WANT
	err = nil
	_ = err
}

// underReview is allowed to drop its error while the API settles; the
// suppression is the sanctioned escape hatch.
func underReview() error {
	err := attempt() //tardislint:ignore errflow prototype; retry policy lands later
	err = attempt()
	return err
}
