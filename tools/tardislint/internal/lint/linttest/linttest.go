// Package linttest is the shared harness for analyzer fixture tests. A
// fixture is a compilable Go file seeded with violations; every line that
// must be flagged carries a trailing "// WANT" marker. Check runs one pass
// over the fixture and diffs the reported lines against the markers, so each
// test proves both directions: seeded violations are flagged and the
// corrected forms are not.
package linttest

import (
	"os"
	"strings"
	"testing"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
)

const wantMarker = "// WANT"

// Check loads the fixture files as one package named pkgPath, runs the pass,
// and compares flagged lines against the fixtures' WANT markers.
func Check(t *testing.T, pass lint.Pass, pkgPath string, files ...string) {
	t.Helper()
	ld := lint.NewLoader()
	pkg, err := ld.LoadFiles(pkgPath, files...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := lint.Run([]lint.Pass{pass}, []*lint.Package{pkg})

	type site struct {
		file string
		line int
	}
	got := map[site][]string{}
	for _, f := range findings {
		s := site{f.Pos.Filename, f.Pos.Line}
		got[s] = append(got[s], f.Message)
	}
	want := map[site]bool{}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, wantMarker) {
				want[site{file, i + 1}] = true
			}
		}
	}
	for s := range want {
		if len(got[s]) == 0 {
			t.Errorf("%s:%d: marked WANT but %s reported nothing", s.file, s.line, pass.Name)
		}
	}
	for s, msgs := range got {
		if !want[s] {
			t.Errorf("%s:%d: unexpected %s finding: %s", s.file, s.line, pass.Name, strings.Join(msgs, "; "))
		}
	}
}
