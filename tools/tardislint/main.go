// Command tardislint is the project's static-analysis gate. It loads
// packages with the standard library's source importer (no external
// dependencies) and runs eleven project-specific passes:
//
//	sigslice   raw slicing/indexing/concatenation of isaxt.Signature
//	lockflow   path-sensitive misuse of mutexes guarding annotated fields
//	errflow    error values never checked on any path
//	hotalloc   allocation patterns in //tardis:hotpath functions
//	closecheck discarded Close/Flush/Sync errors on writable sinks
//	goroleak   loop-variable capture and unsupervised goroutine fan-out
//	ctxfirst   cluster RPC entry points missing a leading context.Context
//	metricname telemetry metric naming and label-cardinality discipline
//	lockorder  lock-acquisition-order cycles across call chains
//	ctxflow    blocking operations reached without forwarding a ctx
//	racecheck  data races via lock-set inference over concurrency roots
//
// lockflow, errflow, and hotalloc run on a control-flow graph with a
// forward dataflow solver (internal/lint/cfg), so they reason per path.
// lockorder, ctxflow, and racecheck are interprocedural: they run once over
// the whole program on a call graph with per-function summaries (internal/
// lint/callgraph) that resolves static calls, concrete-receiver methods,
// and stored callbacks, and their diagnostics spell out the witnessing call
// chain (racecheck cites two — one per racing access).
//
// Every run also audits suppressions: a //tardislint:ignore directive that
// names a pass that ran but suppressed nothing is reported by suppresscheck
// and fails the run — stale suppressions rot the gate.
//
// Run it from inside the module (the source importer resolves imports
// relative to the working directory):
//
//	go run ./tools/tardislint ./...
//
// It prints findings as file:line:col: pass: message (or as a JSON array
// with -format json: objects with file, line, col, pass, message, and the
// witnessing call chain) and exits non-zero if any survive
// //tardislint:ignore suppression. -timing reports per-pass wall time on
// stderr so analyzer-cost regressions are visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/closecheck"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/ctxfirst"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/ctxflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/errflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/goroleak"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/hotalloc"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockorder"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/metricname"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/racecheck"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/sigslice"
)

var allPasses = []lint.Pass{
	sigslice.Pass,
	lockflow.Pass,
	errflow.Pass,
	hotalloc.Pass,
	closecheck.Pass,
	goroleak.Pass,
	ctxfirst.Pass,
	metricname.Pass,
	lockorder.Pass,
	ctxflow.Pass,
	racecheck.Pass,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the stable -format json schema. Field set and names are a
// contract: CI annotations and downstream tooling parse this.
type jsonFinding struct {
	File    string     `json:"file"`
	Line    int        `json:"line"`
	Col     int        `json:"col"`
	Pass    string     `json:"pass"`
	Message string     `json:"message"`
	Chain   []jsonStep `json:"chain,omitempty"`
}

type jsonStep struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

func toJSON(fs []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		jf := jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Pass:    f.Pass,
			Message: f.Message,
		}
		for _, st := range f.Chain {
			jf.Chain = append(jf.Chain, jsonStep{Func: st.Func, File: st.Pos.Filename, Line: st.Pos.Line})
		}
		out = append(out, jf)
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tardislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available passes and exit")
	passNames := fs.String("passes", "", "comma-separated subset of passes to run (default: $TARDISLINT_PASSES, else all)")
	format := fs.String("format", "text", `output format: "text" or "json"`)
	timing := fs.Bool("timing", false, "report per-pass wall time on stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: tardislint [-list] [-passes p1,p2] [-format text|json] [-timing] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, p := range allPasses {
			fmt.Fprintf(stdout, "%-10s %s\n", p.Name, p.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "tardislint: unknown format %q (want text or json)\n", *format)
		return 2
	}

	// The flag wins over the environment so a one-off invocation can narrow
	// a CI-wide TARDISLINT_PASSES default. Unknown names fail loudly in
	// either spelling — a typo must not silently run zero passes.
	if *passNames == "" {
		*passNames = os.Getenv("TARDISLINT_PASSES")
	}
	passes := allPasses
	if *passNames != "" {
		byName := map[string]lint.Pass{}
		for _, p := range allPasses {
			byName[p.Name] = p
		}
		passes = nil
		for _, name := range strings.Split(*passNames, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tardislint: unknown pass %q (use -list)\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.NewLoader().LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "tardislint:", err)
		return 2
	}
	res := lint.Analyze(passes, pkgs)
	// Stale-suppression findings print after the regular ones: they are an
	// audit of the gate itself, not of the code under it.
	findings := append(res.Findings, res.Stale...)

	if *timing {
		for _, pt := range res.Timings {
			fmt.Fprintf(stderr, "tardislint: pass %-10s %s\n", pt.Pass, pt.Duration.Round(time.Millisecond))
		}
	}

	switch *format {
	case "json":
		enc, err := json.MarshalIndent(toJSON(findings), "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "tardislint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", enc)
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tardislint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
