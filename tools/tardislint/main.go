// Command tardislint is the project's static-analysis gate. It loads
// packages with the standard library's source importer (no external
// dependencies) and runs eight project-specific passes:
//
//	sigslice   raw slicing/indexing/concatenation of isaxt.Signature
//	lockflow   path-sensitive misuse of mutexes guarding annotated fields
//	errflow    error values never checked on any path
//	hotalloc   allocation patterns in //tardis:hotpath functions
//	closecheck discarded Close/Flush/Sync errors on writable sinks
//	goroleak   loop-variable capture and unsupervised goroutine fan-out
//	ctxfirst   cluster RPC entry points missing a leading context.Context
//	metricname telemetry metric naming and label-cardinality discipline
//
// lockflow, errflow, and hotalloc run on a control-flow graph with a
// forward dataflow solver (internal/lint/cfg), so they reason per path:
// an access under the branch that holds the lock is clean, an error that
// is only checked after a retry loop is clean, and the diagnostics name
// the path that breaks.
//
// Run it from inside the module (the source importer resolves imports
// relative to the working directory):
//
//	go run ./tools/tardislint ./...
//
// It prints findings as file:line:col: pass: message and exits non-zero if
// any survive //tardislint:ignore suppression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/tardisdb/tardis/tools/tardislint/internal/lint"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/closecheck"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/ctxfirst"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/errflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/goroleak"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/hotalloc"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/lockflow"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/metricname"
	"github.com/tardisdb/tardis/tools/tardislint/internal/lint/sigslice"
)

var allPasses = []lint.Pass{
	sigslice.Pass,
	lockflow.Pass,
	errflow.Pass,
	hotalloc.Pass,
	closecheck.Pass,
	goroleak.Pass,
	ctxfirst.Pass,
	metricname.Pass,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tardislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available passes and exit")
	passNames := fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: tardislint [-list] [-passes p1,p2] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, p := range allPasses {
			fmt.Fprintf(stdout, "%-10s %s\n", p.Name, p.Doc)
		}
		return 0
	}

	passes := allPasses
	if *passNames != "" {
		byName := map[string]lint.Pass{}
		for _, p := range allPasses {
			byName[p.Name] = p
		}
		passes = nil
		for _, name := range strings.Split(*passNames, ",") {
			p, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tardislint: unknown pass %q (use -list)\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.NewLoader().LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "tardislint:", err)
		return 2
	}
	findings := lint.Run(passes, pkgs)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tardislint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
