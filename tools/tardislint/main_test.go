package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenFindings locks the CLI contract: diagnostic format and order on
// stdout, the summary line on stderr, exit code 1, and //tardislint:ignore
// suppression (the demo package seeds a fourth, suppressed violation that
// must not appear).
func TestGoldenFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "demo.golden"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("stdout does not match testdata/demo.golden\ngot:\n%s\nwant:\n%s", &stdout, golden)
	}
	if got, want := stderr.String(), "tardislint: 4 finding(s)\n"; got != want {
		t.Errorf("stderr = %q, want %q", got, want)
	}
}

// TestGoldenJSON locks the -format json schema: file, line, col, pass,
// message, and the witnessing call chain where a pass produces one.
func TestGoldenJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "json", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "demo.json.golden"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("stdout does not match testdata/demo.json.golden\ngot:\n%s\nwant:\n%s", &stdout, golden)
	}
}

func TestUnknownFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "yaml", "./testdata/src/demo"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), `unknown format "yaml"`) {
		t.Errorf("stderr = %q, want mention of the unknown format", stderr.String())
	}
}

// TestTiming checks the -timing flag reports one stderr line per pass that
// ran, without disturbing stdout findings.
func TestTiming(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-timing", "-passes", "sigslice,errflow", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	for _, pass := range []string{"sigslice", "errflow"} {
		if !strings.Contains(stderr.String(), "pass "+pass) {
			t.Errorf("-timing stderr missing entry for %s:\n%s", pass, &stderr)
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "sigslice", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 || stderr.Len() != 0 {
		t.Errorf("clean run produced output\nstdout:\n%s\nstderr:\n%s", &stdout, &stderr)
	}
}

func TestListPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	want := []string{"sigslice", "lockflow", "errflow", "hotalloc", "closecheck", "goroleak", "ctxfirst", "metricname", "lockorder", "ctxflow", "racecheck"}
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(want), &stdout)
	}
	for i, name := range want {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], name)
		}
	}
}

func TestUnknownPass(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-passes", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown pass "nosuch"`) {
		t.Errorf("stderr = %q, want mention of the unknown pass", stderr.String())
	}
}

// TestGoldenRaceJSON locks racecheck's CLI output: the racedemo package
// seeds one deliberate race, and the JSON finding must carry both witnessing
// chains — root to the offending write and root to the conflicting write.
func TestGoldenRaceJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "racecheck", "-format", "json", "./testdata/src/racedemo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "racedemo.json.golden"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("stdout does not match testdata/racedemo.json.golden\ngot:\n%s\nwant:\n%s", &stdout, golden)
	}
	for _, fn := range []string{"racedemo.(*queue).serve", "racedemo.(*queue).flush"} {
		if !strings.Contains(stdout.String(), `"func": "`+fn+`"`) {
			t.Errorf("JSON chain missing witnessing step %q:\n%s", fn, &stdout)
		}
	}
}

// TestEnvPasses covers the TARDISLINT_PASSES fallback: the environment
// selects passes when -passes is absent, the flag wins when both are set,
// and an unknown name in the environment fails as loudly as on the flag.
func TestEnvPasses(t *testing.T) {
	t.Setenv("TARDISLINT_PASSES", "errflow")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./testdata/src/demo"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if out := stdout.String(); !strings.Contains(out, "errflow:") || strings.Contains(out, "lockflow:") {
		t.Errorf("TARDISLINT_PASSES=errflow ran the wrong passes:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-passes", "sigslice", "./testdata/src/demo"}, &stdout, &stderr); code != 0 {
		t.Fatalf("flag should override env: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}

	t.Setenv("TARDISLINT_PASSES", "nosuch")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./testdata/src/demo"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown env pass: exit code = %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), `unknown pass "nosuch"`) {
		t.Errorf("stderr = %q, want mention of the unknown pass", stderr.String())
	}
}

func TestPassSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "errflow", "./testdata/src/demo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "errflow:") || strings.Contains(out, "lockflow:") {
		t.Errorf("-passes errflow ran the wrong passes:\n%s", out)
	}
}
