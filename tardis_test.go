package tardis

import (
	"os"
	"path/filepath"
	"testing"
)

// End-to-end smoke test of the public API: generate, build, save, load,
// query all three kNN strategies and exact match.
func TestPublicAPIEndToEnd(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(RandomWalk, 64)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateStore(gen, 7, 3000, filepath.Join(t.TempDir(), "src"), 500, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GMaxSize = 500
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25
	ix, err := Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Query with a stored record.
	rec := GenerateRecord(gen, 7, 123)
	q := ZNormalize(rec.Values)
	rids, _, err := ix.ExactMatch(q, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rid := range rids {
		if rid == 123 {
			found = true
		}
	}
	if !found {
		t.Fatal("stored record not found via public API")
	}

	res, _, err := ix.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 || res[0].RID != 123 || res[0].Dist != 0 {
		t.Fatalf("kNN self query wrong: %+v", res[0])
	}
	gt, err := GroundTruthKNN(cl, ix.Store, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(gt, res); r <= 0 {
		t.Errorf("recall = %v", r)
	}
	if er := ErrorRatio(gt, res); er < 1-1e-9 {
		t.Errorf("error ratio = %v", er)
	}

	// Persistence.
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := re.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 10 || res2[0].RID != 123 {
		t.Fatal("reloaded index answers differently")
	}

	// Distance helper.
	d, err := EuclideanDistance(q, q)
	if err != nil || d != 0 {
		t.Errorf("self distance = %v, %v", d, err)
	}
	if DefaultSeriesLen(RandomWalk) != 256 {
		t.Error("default series length wrong")
	}
}

// The extension API surface: DTW, subsequences, batch queries, compression,
// repair — exercised through the public package to lock the API.
func TestPublicAPIExtensions(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Subsequence extraction from one long stream.
	gen, _ := NewGenerator(RandomWalk, 512)
	long := GenerateRecord(gen, 9, 0).Values
	recs, err := Subsequences(long, 64, 16, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != (512-64)/16+1 {
		t.Fatalf("windows = %d", len(recs))
	}
	if SubsequencePosition(recs[3].RID, 0, 16) != 48 {
		t.Error("position inversion wrong")
	}
	// Store them compressed and index them.
	dir := filepath.Join(t.TempDir(), "subseq")
	st, err := CreateStoreCompressed(dir, 64, Flate)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(0, recs[:len(recs)/2]); err != nil {
		t.Fatal(err)
	}
	if err := st.WritePartition(1, recs[len(recs)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GMaxSize = 200
	cfg.SamplePct = 1.0
	cfg.Compression = Flate
	ix, err := Build(cl, st, filepath.Join(t.TempDir(), "idx"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DTW distance helper and DTW query.
	q := recs[5].Values
	if d, err := DTWDistance(q, q, 4); err != nil || d != 0 {
		t.Errorf("self DTW = %v, %v", d, err)
	}
	res, _, err := ix.KNNDTW(q, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RID != recs[5].RID || res[0].Dist != 0 {
		t.Fatalf("DTW self query: %+v", res[0])
	}
	// Batch query through the public Strategy constants.
	batch, _, err := ix.KNNBatch([]Series{q, recs[6].Values}, 2, MultiPartitionsAccess)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].Neighbors[0].RID != recs[5].RID {
		t.Fatalf("batch results wrong: %+v", batch)
	}
	// Save, damage, LoadWithRepair.
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(ix.Store.Dir(), "_index", "local-000000.sigtree")); err != nil {
		t.Fatal(err)
	}
	re, repaired, err := LoadWithRepair(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Errorf("repaired = %d", repaired)
	}
	res2, _, err := re.KNNExact(q, 3)
	if err != nil || res2[0].Dist != 0 {
		t.Fatalf("post-repair query: %+v, %v", res2, err)
	}
}
