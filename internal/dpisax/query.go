package dpisax

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tardisdb/tardis/internal/ibt"
	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/ts"
)

// Neighbor is re-exported from the shared knn package.
type Neighbor = knn.Neighbor

// QueryStats profiles one baseline query.
type QueryStats struct {
	// PartitionsLoaded counts partition data accesses; CacheHits and
	// CacheMisses split them into cache-served and disk-decoded.
	PartitionsLoaded int
	// CacheHits counts accesses served from the resident partition cache.
	CacheHits int
	// CacheMisses counts accesses that decoded the partition from disk.
	CacheMisses int
	// Candidates counts series whose true distance was computed.
	Candidates int
	// Conversions counts character-level cardinality demotions paid during
	// the query (table lookup + tree descent) — the cost TARDIS's iSAX-T
	// removes.
	Conversions int64
	// Duration is the query wall time.
	Duration time.Duration
}

// queryWord converts a query to its full-cardinality iSAX word.
func (ix *Index) queryWord(q ts.Series) (isax.Word, ts.Series, error) {
	if len(q) != ix.seriesLen {
		return isax.Word{}, nil, fmt.Errorf("dpisax: query length %d != indexed length %d", len(q), ix.seriesLen)
	}
	paa, err := ts.PAA(q, ix.cfg.WordLen)
	if err != nil {
		return isax.Word{}, nil, err
	}
	return isax.FromPAA(paa, ix.cfg.InitialBits), paa, nil
}

// loadPartition returns one clustered partition's decoded data, serving from
// the resident cache when possible.
func (ix *Index) loadPartition(pid int, st *QueryStats) (*pcache.Partition, error) {
	st.PartitionsLoaded++
	// Local queries are synchronous with no cancellation surface yet, so the
	// join-wait is unbounded here.
	p, hit, err := ix.cache.Get(context.Background(), pid, func() (*pcache.Partition, error) {
		rids, values, err := ix.Store.ReadPartitionArena(pid)
		if err != nil {
			return nil, err
		}
		return pcache.NewPartition(rids, values, ix.seriesLen)
	})
	if err != nil {
		return nil, err
	}
	if hit {
		st.CacheHits++
	} else {
		st.CacheMisses++
	}
	return p, nil
}

// ExactMatch answers an exact-match query: partition-table lookup, partition
// load, local iBT descent, verification. The baseline has no Bloom filter,
// so the identified partition is always loaded (the cost Fig. 14 shows).
func (ix *Index) ExactMatch(q ts.Series) ([]int64, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	w, _, err := ix.queryWord(q)
	if err != nil {
		return nil, st, err
	}
	convBefore := ix.Table.Conversions.Load()
	pid := ix.Route(w)
	st.Conversions += ix.Table.Conversions.Load() - convBefore
	local := ix.Locals[pid]
	if local == nil {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	treeConvBefore := local.Conversions
	leaf := local.FindLeaf(w)
	st.Conversions += local.Conversions - treeConvBefore
	if leaf == nil {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	data, err := ix.loadPartition(pid, &st)
	if err != nil {
		return nil, st, err
	}
	var matches []int64
	for _, e := range leaf.Entries {
		if !e.Word.Equal(w) {
			continue
		}
		s, ok := data.Series(e.RID)
		if !ok {
			return nil, st, fmt.Errorf("dpisax: partition %d missing record %d", pid, e.RID)
		}
		st.Candidates++
		if ts.Equal(s, q) {
			matches = append(matches, e.RID)
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	st.Duration = time.Since(start)
	return matches, st, nil
}

// KNNApprox answers a kNN-approximate query the DPiSAX way: route to the
// single matching partition, descend the local iBT to the target node, and
// refine its candidates. The narrow character-level candidate scope is what
// drives the baseline's low recall in the paper's Figs. 15-16.
func (ix *Index) KNNApprox(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("dpisax: k must be positive, got %d", k)
	}
	w, _, err := ix.queryWord(q)
	if err != nil {
		return nil, st, err
	}
	convBefore := ix.Table.Conversions.Load()
	pid := ix.Route(w)
	st.Conversions += ix.Table.Conversions.Load() - convBefore
	local := ix.Locals[pid]
	if local == nil {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	treeConvBefore := local.Conversions
	node, _ := local.TargetNode(w, int64(k))
	st.Conversions += local.Conversions - treeConvBefore
	if node == nil {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	data, err := ix.loadPartition(pid, &st)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	for _, e := range ibt.CollectEntries(node, nil) {
		s, ok := data.Series(e.RID)
		if !ok {
			return nil, st, fmt.Errorf("dpisax: partition %d missing record %d", pid, e.RID)
		}
		st.Candidates++
		bound := h.Bound()
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, bound*bound); ok2 {
			h.Offer(Neighbor{RID: e.RID, Dist: math.Sqrt(d2)})
		}
	}
	st.Duration = time.Since(start)
	return h.Sorted(), st, nil
}
