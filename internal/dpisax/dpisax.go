// Package dpisax implements the baseline system of the paper's evaluation:
// DPiSAX (Yagoubi et al., ICDM'17), the distributed partitioned iSAX index,
// extended — as the paper's authors did — to support a clustered layout,
// Exact-Match queries, and kNN-Approximate queries (§VI-A).
//
// DPiSAX samples the dataset, builds an iSAX binary tree on the master, and
// flattens its leaves into a global *partition table* of character-level
// variable-cardinality signatures. Every record is then converted at a large
// initial cardinality (512 by default) and routed by matching against the
// table — the per-character cardinality conversions and the repetitive
// table scan are the "high matching overhead" TARDIS eliminates. Each
// partition is locally indexed with an iBT.
package dpisax

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/ibt"
	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Config carries the baseline's parameters (paper Table II: initial
// cardinality 512, i.e. 9 bits).
type Config struct {
	// WordLen is the iSAX word length.
	WordLen int
	// InitialBits is the per-character cardinality budget; the baseline
	// needs it large to guarantee split headroom (Table II: 9 → 512).
	InitialBits int
	// GMaxSize is the partition capacity in records.
	GMaxSize int64
	// LMaxSize is the local iBT leaf split threshold.
	LMaxSize int64
	// SamplePct is the block-level sampling percentage.
	SamplePct float64
	// SampleSeed seeds the block sample.
	SampleSeed int64
	// Policy selects the iBT split policy (iSAX 2.0 statistics by default).
	Policy ibt.SplitPolicy
}

// DefaultConfig returns the paper's baseline configuration.
func DefaultConfig() Config {
	return Config{
		WordLen:     8,
		InitialBits: 9, // cardinality 512
		GMaxSize:    10_000,
		LMaxSize:    1_000,
		SamplePct:   0.10,
		SampleSeed:  1,
		Policy:      ibt.StatisticsBased,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WordLen < 1 {
		return fmt.Errorf("dpisax: word length must be positive, got %d", c.WordLen)
	}
	if c.InitialBits < 1 || c.InitialBits > ts.MaxCardinalityBits {
		return fmt.Errorf("dpisax: initial bits %d out of range [1, %d]", c.InitialBits, ts.MaxCardinalityBits)
	}
	if c.GMaxSize < 1 || c.LMaxSize < 1 {
		return fmt.Errorf("dpisax: split thresholds must be positive (G=%d, L=%d)", c.GMaxSize, c.LMaxSize)
	}
	if c.SamplePct <= 0 || c.SamplePct > 1 {
		return fmt.Errorf("dpisax: sampling percentage must be in (0,1], got %v", c.SamplePct)
	}
	return nil
}

// TableEntry is one partition-table row: a leaf signature and its partition.
type TableEntry struct {
	Word isax.Word
	PID  int
}

// PartitionTable is the flattened global index: the leaf signatures of the
// sampled iBT, each owning one partition. Lookups scan the table and match
// per character — the cost the paper identifies as the baseline bottleneck.
type PartitionTable struct {
	Entries []TableEntry
	// Conversions counts the character demotions performed by lookups.
	Conversions atomic.Int64
}

// Lookup finds the partition whose signature covers the full-cardinality
// word. It reports the partition id and whether any entry matched.
func (t *PartitionTable) Lookup(w isax.Word) (int, bool) {
	var conv int64
	for i := range t.Entries {
		ok, c := t.Entries[i].Word.Covers(w)
		conv += int64(c)
		if ok {
			t.Conversions.Add(conv)
			return t.Entries[i].PID, true
		}
	}
	t.Conversions.Add(conv)
	return 0, false
}

// SizeBytes estimates the serialized table size the way the paper counts the
// baseline's global index (Fig. 13): per entry, symbol and bit width per
// segment plus the partition id.
func (t *PartitionTable) SizeBytes() int64 {
	if len(t.Entries) == 0 {
		return 0
	}
	perEntry := int64(4*len(t.Entries[0].Word.Symbols) + 4)
	return int64(len(t.Entries))*perEntry + 16
}

// BuildStats mirrors core.BuildStats for the baseline.
type BuildStats struct {
	SampleConvert      time.Duration
	BuildTree          time.Duration
	PartitionAssign    time.Duration
	GlobalTotal        time.Duration
	ShuffleReadConvert time.Duration
	LocalConstruct     time.Duration
	LocalTotal         time.Duration
	Total              time.Duration
	SampledBlocks      int
	SampledRecords     int64
	Records            int64
	Partitions         int
	GlobalIndexBytes   int64
	LocalIndexBytes    int64
	// Conversions is the total number of per-character cardinality
	// demotions paid during construction (global + shuffle routing).
	Conversions int64
}

// Index is a built DPiSAX index (clustered variant).
type Index struct {
	cfg       Config
	cl        *cluster.Cluster
	seriesLen int

	// Table is the global partition table.
	Table *PartitionTable
	// Store holds the clustered data partitions.
	Store *storage.Store
	// Locals holds one iBT per partition.
	Locals []*ibt.Tree

	stats BuildStats
	// cache keeps hot decoded partitions resident between queries, matching
	// the caching TARDIS queries get — the comparison stays about index
	// structure, not about who re-decodes partitions.
	cache *pcache.Cache[int]
}

// defaultCacheBytes bounds the baseline's partition cache (matches the
// TARDIS core default).
const defaultCacheBytes int64 = 256 << 20

// CacheStats returns the partition-cache counters.
func (ix *Index) CacheStats() pcache.Stats {
	if ix.cache == nil {
		return pcache.Stats{}
	}
	return ix.cache.Stats()
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// SeriesLen returns the indexed series length.
func (ix *Index) SeriesLen() int { return ix.seriesLen }

// BuildStats returns the construction profile.
func (ix *Index) BuildStats() BuildStats { return ix.stats }

// NumPartitions returns the partition count.
func (ix *Index) NumPartitions() int { return len(ix.Locals) }

type shuffleRec struct {
	pid  int
	word isax.Word
	rec  ts.Record
}

// Build constructs the baseline index over the z-normalized dataset in src,
// writing clustered partitions into a new store at dstDir.
func Build(cl *cluster.Cluster, src *storage.Store, dstDir string, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.SeriesLen() < cfg.WordLen {
		return nil, fmt.Errorf("dpisax: series length %d shorter than word length %d", src.SeriesLen(), cfg.WordLen)
	}
	cache, err := pcache.New(defaultCacheBytes, 0, pcache.HashInt)
	if err != nil {
		return nil, err
	}
	ix := &Index{cfg: cfg, cl: cl, seriesLen: src.SeriesLen(), cache: cache}
	start := time.Now()
	if err := ix.buildGlobal(src); err != nil {
		return nil, fmt.Errorf("dpisax: building global index: %w", err)
	}
	if err := ix.buildLocal(src, dstDir); err != nil {
		return nil, fmt.Errorf("dpisax: building local indices: %w", err)
	}
	ix.stats.Total = time.Since(start)
	ix.stats.GlobalIndexBytes = ix.Table.SizeBytes()
	for _, l := range ix.Locals {
		if l != nil {
			ix.stats.LocalIndexBytes += l.SerializedSize()
			ix.stats.Conversions += l.Conversions
		}
	}
	ix.stats.Conversions += ix.Table.Conversions.Load()
	return ix, nil
}

// buildGlobal samples the dataset, builds the master iBT over the sampled
// words, and flattens its leaves into the partition table.
func (ix *Index) buildGlobal(src *storage.Store) error {
	globalStart := time.Now()
	cfg := ix.cfg

	// Sample and convert (workers).
	stageStart := time.Now()
	sampled, err := src.SampledPartitions(cfg.SamplePct, cfg.SampleSeed)
	if err != nil {
		return err
	}
	ix.stats.SampledBlocks = len(sampled)
	blocks := cluster.Parallelize(ix.cl, sampled, 0)
	wordsDS, err := cluster.MapPartitions("dpisax-sample-convert", blocks,
		func(_ int, pids []int) ([]isax.Word, error) {
			var out []isax.Word
			for _, pid := range pids {
				err := src.ScanPartition(pid, func(r ts.Record) error {
					w, err := isax.FromSeries(r.Values, cfg.WordLen, cfg.InitialBits)
					if err != nil {
						return err
					}
					out = append(out, w)
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	words := wordsDS.Collect()
	ix.stats.SampledRecords = int64(len(words))
	ix.stats.SampleConvert = time.Since(stageStart)

	// Build the master iBT over the sample. Its split threshold is the
	// partition capacity scaled down to the sample size, so leaves estimate
	// capacity-sized partitions.
	stageStart = time.Now()
	threshold := int64(float64(cfg.GMaxSize) * cfg.SamplePct)
	if threshold < 1 {
		threshold = 1
	}
	tree, err := ibt.New(cfg.WordLen, cfg.InitialBits, threshold, cfg.Policy)
	if err != nil {
		return err
	}
	for i, w := range words {
		if err := tree.Insert(ibt.Entry{Word: w, RID: int64(i)}); err != nil {
			return err
		}
	}
	ix.stats.Conversions += tree.Conversions
	ix.stats.BuildTree = time.Since(stageStart)

	// Flatten leaves into the partition table: one partition per leaf
	// (DPiSAX does not pack sibling leaves — TARDIS's advantage).
	stageStart = time.Now()
	table := &PartitionTable{}
	pid := 0
	for _, leaf := range tree.Leaves() {
		table.Entries = append(table.Entries, TableEntry{Word: leaf.Word, PID: pid})
		pid++
	}
	if pid == 0 {
		return fmt.Errorf("dpisax: empty sample produced no partitions")
	}
	ix.Table = table
	ix.stats.Partitions = pid
	ix.stats.PartitionAssign = time.Since(stageStart)
	ix.stats.GlobalTotal = time.Since(globalStart)
	return nil
}

// Route returns the partition for a full-cardinality word: the partition
// table match, or a deterministic hash fallback for words outside every
// table entry (possible because the table only reflects the sample).
func (ix *Index) Route(w isax.Word) int {
	if pid, ok := ix.Table.Lookup(w); ok {
		return pid
	}
	// Deterministic fallback on the 1-bit projection.
	ones := make([]int, len(w.Symbols))
	for i := range ones {
		ones[i] = 1
	}
	demoted, _ := w.DemoteTo(ones)
	h := uint64(14695981039346656037)
	for _, s := range demoted.Symbols {
		h = (h ^ uint64(s)) * 1099511628211
	}
	return int(h % uint64(ix.stats.Partitions))
}

// buildLocal converts every record at the large initial cardinality, routes
// it through the partition table (paying the matching overhead), shuffles,
// and builds one local iBT per partition while writing the clustered data.
func (ix *Index) buildLocal(src *storage.Store, dstDir string) error {
	localStart := time.Now()
	cfg := ix.cfg

	stageStart := time.Now()
	srcPids, err := src.Partitions()
	if err != nil {
		return err
	}
	blocks := cluster.Parallelize(ix.cl, srcPids, 0)
	recs, err := cluster.MapPartitions("dpisax-read-convert", blocks,
		func(_ int, pids []int) ([]shuffleRec, error) {
			var out []shuffleRec
			for _, pid := range pids {
				err := src.ScanPartition(pid, func(r ts.Record) error {
					w, err := isax.FromSeries(r.Values, cfg.WordLen, cfg.InitialBits)
					if err != nil {
						return err
					}
					out = append(out, shuffleRec{pid: ix.Route(w), word: w, rec: r})
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	shuffled, err := cluster.RepartitionBy("dpisax-shuffle", recs, ix.stats.Partitions,
		func(r shuffleRec) (int, error) { return r.pid, nil })
	if err != nil {
		return err
	}
	ix.stats.Records = shuffled.Count()
	ix.stats.ShuffleReadConvert = time.Since(stageStart)

	stageStart = time.Now()
	dst, err := storage.Create(dstDir, src.SeriesLen())
	if err != nil {
		return err
	}
	localsDS, err := cluster.MapPartitions("dpisax-local-build", shuffled,
		func(pid int, items []shuffleRec) ([]*ibt.Tree, error) {
			w, err := dst.NewWriter(pid)
			if err != nil {
				return nil, err
			}
			tree, err := ibt.New(cfg.WordLen, cfg.InitialBits, cfg.LMaxSize, cfg.Policy)
			if err != nil {
				return nil, err
			}
			for _, r := range items {
				if err := w.Write(r.rec); err != nil {
					return nil, err
				}
				if err := tree.Insert(ibt.Entry{Word: r.word, RID: r.rec.RID}); err != nil {
					return nil, err
				}
			}
			if err := w.Close(); err != nil {
				return nil, err
			}
			return []*ibt.Tree{tree}, nil
		})
	if err != nil {
		return err
	}
	if err := dst.Sync(); err != nil {
		return err
	}
	ix.Store = dst
	ix.Locals = make([]*ibt.Tree, ix.stats.Partitions)
	for pid := 0; pid < ix.stats.Partitions; pid++ {
		part := localsDS.Partition(pid)
		if len(part) == 1 {
			ix.Locals[pid] = part[0]
		}
	}
	ix.stats.LocalConstruct = time.Since(stageStart)
	ix.stats.LocalTotal = time.Since(localStart)
	return nil
}
