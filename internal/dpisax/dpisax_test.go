package dpisax

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ibt"
	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

const (
	testSeriesLen = 64
	testRecords   = 4000
	testBlockRecs = 500
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GMaxSize = 600
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25
	return cfg
}

func buildTestIndex(t *testing.T, kind dataset.Kind, cfg Config) (*Index, *storage.Store, *cluster.Cluster) {
	t.Helper()
	g, err := dataset.New(kind, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.WriteStore(g, 42, testRecords, filepath.Join(t.TempDir(), "src"), testBlockRecs, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, src, cl
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.WordLen = 0 },
		func(c *Config) { c.InitialBits = 0 },
		func(c *Config) { c.InitialBits = 99 },
		func(c *Config) { c.GMaxSize = 0 },
		func(c *Config) { c.LMaxSize = 0 },
		func(c *Config) { c.SamplePct = 0 },
		func(c *Config) { c.SamplePct = 2 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBuildBasics(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	st := ix.BuildStats()
	if st.Records != testRecords {
		t.Errorf("records = %d, want %d", st.Records, testRecords)
	}
	if st.Partitions < 2 {
		t.Errorf("partitions = %d", st.Partitions)
	}
	if st.GlobalIndexBytes <= 0 || st.LocalIndexBytes <= 0 {
		t.Errorf("sizes: %+v", st)
	}
	if st.Conversions == 0 {
		t.Error("baseline must pay character conversions")
	}
	total, err := ix.Store.TotalRecords()
	if err != nil || total != testRecords {
		t.Errorf("clustered store total = %d (%v)", total, err)
	}
	if len(ix.Table.Entries) != st.Partitions {
		t.Errorf("table entries %d != partitions %d", len(ix.Table.Entries), st.Partitions)
	}
}

func TestExactMatchFindsStored(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rec := recs[i*11%len(recs)]
		got, st, err := ix.ExactMatch(rec.Values)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d not found (stats %+v)", rec.RID, st)
		}
		if st.Conversions == 0 {
			t.Error("query should pay conversions")
		}
	}
}

func TestExactMatchAbsent(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		q := make(ts.Series, testSeriesLen)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		q = q.ZNormalize()
		got, _, err := ix.ExactMatch(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("random query matched %v", got)
		}
	}
	if _, _, err := ix.ExactMatch(make(ts.Series, 3)); err == nil {
		t.Error("wrong length should fail")
	}
}

func TestKNNApprox(t *testing.T) {
	ix, src, cl := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	q := recs[5].Values
	res, st, err := ix.KNNApprox(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Dist != 0 || res[0].RID != recs[5].RID {
		t.Errorf("self query should return itself first: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if st.PartitionsLoaded != 1 {
		t.Errorf("baseline loads exactly one partition, got %d", st.PartitionsLoaded)
	}
	// Compare against ground truth: the baseline result distances can never
	// beat the truth.
	gt, err := core.GroundTruthKNN(cl, ix.Store, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r := knn.Recall(gt, res); r < 0 || r > 1 {
		t.Errorf("recall out of range: %v", r)
	}
	if er := knn.ErrorRatio(gt, res); er < 1-1e-9 {
		t.Errorf("error ratio below 1: %v", er)
	}
	if _, _, err := ix.KNNApprox(q, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRouteFallbackDeterministic(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	// An extreme word likely not covered by the sampled table.
	syms := make([]int, 8)
	bits := make([]int, 8)
	for i := range syms {
		bits[i] = ix.cfg.InitialBits
		if i%2 == 0 {
			syms[i] = (1 << ix.cfg.InitialBits) - 1
		}
	}
	w := isax.Word{Symbols: syms, Bits: bits}
	a, b := ix.Route(w), ix.Route(w)
	if a != b {
		t.Error("route not deterministic")
	}
	if a < 0 || a >= ix.NumPartitions() {
		t.Errorf("route %d out of range", a)
	}
}

func TestPartitionTableLookup(t *testing.T) {
	entry := isax.Word{Symbols: []int{1, 0}, Bits: []int{1, 1}}
	table := &PartitionTable{Entries: []TableEntry{{Word: entry, PID: 7}}}
	full := isax.Word{Symbols: []int{5, 2}, Bits: []int{3, 3}} // 101, 010
	pid, ok := table.Lookup(full)
	if !ok || pid != 7 {
		t.Errorf("lookup = %d, %v", pid, ok)
	}
	if table.Conversions.Load() == 0 {
		t.Error("lookup should count conversions")
	}
	miss := isax.Word{Symbols: []int{1, 2}, Bits: []int{3, 3}} // 001 → first char mismatch
	if _, ok := table.Lookup(miss); ok {
		t.Error("miss should not match")
	}
	if table.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
	empty := &PartitionTable{}
	if empty.SizeBytes() != 0 {
		t.Error("empty table size should be 0")
	}
}

// The paper's structural claim (Fig. 13): the baseline's partition-table
// global index is smaller than TARDIS's full sigTree, but its local indices
// are bigger due to the large initial cardinality. We check the local-size
// direction against a TARDIS build over the same data.
func TestLocalIndexLargerThanTardis(t *testing.T) {
	g, _ := dataset.New(dataset.RandomWalk, testSeriesLen)
	src, err := dataset.WriteStore(g, 42, testRecords, filepath.Join(t.TempDir(), "src"), testBlockRecs, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := cluster.New(cluster.Config{Workers: 4})
	base, err := Build(cl, src, filepath.Join(t.TempDir(), "b"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tcfg := core.DefaultConfig()
	tcfg.GMaxSize = 600
	tcfg.LMaxSize = 50
	tcfg.SamplePct = 0.25
	tix, err := core.Build(cl, src, filepath.Join(t.TempDir(), "t"), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, ts_ := base.BuildStats(), tix.BuildStats()
	if bs.LocalIndexBytes <= ts_.LocalIndexBytes {
		t.Logf("note: baseline local index %d <= tardis %d at this scale (paper's gap appears at larger scales)",
			bs.LocalIndexBytes, ts_.LocalIndexBytes)
	}
	if bs.Conversions == 0 {
		t.Error("baseline conversions must be counted")
	}
}

func TestBuildValidation(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Workers: 2})
	g, _ := dataset.New(dataset.RandomWalk, testSeriesLen)
	src, err := dataset.WriteStore(g, 1, 100, filepath.Join(t.TempDir(), "s"), 50, true)
	if err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.WordLen = 0
	if _, err := Build(cl, src, t.TempDir(), bad); err == nil {
		t.Error("invalid config should fail")
	}
	g4, _ := dataset.New(dataset.RandomWalk, 4)
	src4, err := dataset.WriteStore(g4, 1, 50, filepath.Join(t.TempDir(), "s4"), 50, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.WordLen = 8
	if _, err := Build(cl, src4, t.TempDir(), cfg); err == nil {
		t.Error("short series should fail")
	}
}

func TestSkewedBuild(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.NOAA, testConfig())
	total, err := ix.Store.TotalRecords()
	if err != nil || total != testRecords {
		t.Fatalf("total = %d (%v)", total, err)
	}
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.ExactMatch(recs[0].Values)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rid := range got {
		if rid == recs[0].RID {
			found = true
		}
	}
	if !found {
		t.Error("skewed record not found")
	}
}

func TestSplitPolicyVariant(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = ibt.RoundRobin
	ix, src, _ := buildTestIndex(t, dataset.DNA, cfg)
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.ExactMatch(recs[7].Values)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("round-robin build should still answer queries")
	}
}
