package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("k=0 should fail")
	}
	f, err := New(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.BitCount() != 128 {
		t.Errorf("m should round up to 128, got %d", f.BitCount())
	}
}

func TestNewWithEstimateValidation(t *testing.T) {
	if _, err := NewWithEstimate(0, 0.01); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewWithEstimate(100, 0); err == nil {
		t.Error("fp=0 should fail")
	}
	if _, err := NewWithEstimate(100, 1); err == nil {
		t.Error("fp=1 should fail")
	}
}

// No false negatives, ever: everything added must be found.
func TestNoFalseNegatives(t *testing.T) {
	f, err := NewWithEstimate(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("sig-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.ContainsString(fmt.Sprintf("sig-%d", i)) {
			t.Fatalf("false negative for sig-%d", i)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", f.Count())
	}
}

// Observed false-positive rate should be near the configured target.
func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	target := 0.01
	f, err := NewWithEstimate(n, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.AddString(fmt.Sprintf("member-%d", i))
	}
	falsePos := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("absent-%d", i)) {
			falsePos++
		}
	}
	rate := float64(falsePos) / probes
	if rate > target*3 {
		t.Errorf("observed fp rate %.4f is more than 3x the target %.4f", rate, target)
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > target*2 {
		t.Errorf("estimated fp rate %.4f out of expected band (target %.4f)", est, target)
	}
}

func TestEstimatedFPRateEmpty(t *testing.T) {
	f, _ := New(1024, 3)
	if f.EstimatedFPRate() != 0 {
		t.Error("empty filter should estimate zero fp rate")
	}
}

func TestUnion(t *testing.T) {
	a, _ := New(1024, 3)
	b, _ := New(1024, 3)
	a.AddString("x")
	b.AddString("y")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.ContainsString("x") || !a.ContainsString("y") {
		t.Error("union should contain members of both")
	}
	if a.Count() != 2 {
		t.Errorf("union count = %d, want 2", a.Count())
	}
	c, _ := New(2048, 3)
	if err := a.Union(c); err == nil {
		t.Error("union of incompatible sizes should fail")
	}
	d, _ := New(1024, 4)
	if err := a.Union(d); err == nil {
		t.Error("union of incompatible k should fail")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f, _ := NewWithEstimate(500, 0.02)
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.BitCount() != f.BitCount() || g.HashCount() != f.HashCount() || g.Count() != f.Count() {
		t.Error("round trip changed parameters")
	}
	for i := 0; i < 500; i++ {
		if !g.ContainsString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("round trip lost member k%d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var f Filter
	if err := f.UnmarshalBinary(nil); err == nil {
		t.Error("nil data should fail")
	}
	if err := f.UnmarshalBinary(make([]byte, 28)); err == nil {
		t.Error("bad magic should fail")
	}
	g, _ := New(64, 2)
	data, _ := g.MarshalBinary()
	if err := f.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated data should fail")
	}
	data[4] = 1 // corrupt m to a non-multiple of 64
	if err := f.UnmarshalBinary(data); err == nil {
		t.Error("corrupt m should fail")
	}
}

func TestSizeBytes(t *testing.T) {
	f, _ := New(1024, 3)
	if f.SizeBytes() != 128 {
		t.Errorf("SizeBytes = %d, want 128", f.SizeBytes())
	}
}

// Property: membership after insertion holds for arbitrary byte strings.
func TestMembershipProperty(t *testing.T) {
	f, _ := NewWithEstimate(10000, 0.01)
	check := func(data []byte) bool {
		f.Add(data)
		return f.Contains(data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round trip preserves membership for random sets.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl, _ := NewWithEstimate(100, 0.05)
		keys := make([]string, 50)
		for i := range keys {
			keys[i] = fmt.Sprintf("%x", rng.Uint64())
			fl.AddString(keys[i])
		}
		data, err := fl.MarshalBinary()
		if err != nil {
			return false
		}
		var g Filter
		if err := g.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if !g.ContainsString(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
