// Package bloom implements the space-efficient probabilistic membership
// filter (Bloom, CACM 1970) that TARDIS attaches to every partition's local
// index (paper §IV-C). Exact-match queries probe the filter with the query's
// iSAX-T signature before paying the high-latency partition load; a negative
// answer proves absence, a positive one may be a false positive.
//
// The implementation uses the standard double-hashing scheme (Kirsch &
// Mitzenmacher): k indexes derived from two 64-bit FNV-1a halves, which
// preserves the asymptotic false-positive behaviour of k independent hashes.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a Bloom filter over byte strings. The zero value is unusable;
// construct with New or NewWithEstimate.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint64 // number of hash functions
	n    uint64 // number of inserted elements
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64.
func New(m, k uint64) (*Filter, error) {
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("bloom: m and k must be positive, got m=%d k=%d", m, k)
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}, nil
}

// NewWithEstimate creates a filter sized for n expected elements at the
// target false-positive rate fp, using the optimal parameters
// m = -n·ln(fp)/ln(2)² and k = m/n·ln(2).
func NewWithEstimate(n uint64, fp float64) (*Filter, error) {
	if n == 0 {
		return nil, errors.New("bloom: expected element count must be positive")
	}
	if fp <= 0 || fp >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate must be in (0,1), got %v", fp)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := uint64(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// hash2 returns the two independent 64-bit hash halves of data.
func hash2(data []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(data)
	a := h1.Sum64()
	// Second hash: FNV-1a over data with a one-byte domain separator, which
	// decorrelates it from the first.
	h2 := fnv.New64a()
	h2.Write([]byte{0x5c})
	h2.Write(data)
	b := h2.Sum64()
	if b == 0 {
		b = 0x9e3779b97f4a7c15 // avoid a degenerate stride of zero
	}
	return a, b
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	a, b := hash2(data)
	for i := uint64(0); i < f.k; i++ {
		idx := (a + i*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// AddString inserts a string into the filter.
func (f *Filter) AddString(s string) { f.Add([]byte(s)) }

// Contains reports whether data may be in the set. False means definitely
// absent; true means present with probability 1-fp.
func (f *Filter) Contains(data []byte) bool {
	a, b := hash2(data)
	for i := uint64(0); i < f.k; i++ {
		idx := (a + i*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsString reports whether a string may be in the set.
func (f *Filter) ContainsString(s string) bool { return f.Contains([]byte(s)) }

// Count returns the number of Add calls so far.
func (f *Filter) Count() uint64 { return f.n }

// BitCount returns the filter size in bits.
func (f *Filter) BitCount() uint64 { return f.m }

// HashCount returns the number of hash functions k.
func (f *Filter) HashCount() uint64 { return f.k }

// SizeBytes returns the in-memory size of the bit array in bytes.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFPRate returns the expected false-positive probability given the
// current fill: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Union merges other into f. Both filters must have identical m and k.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union of incompatible filters (m=%d/%d k=%d/%d)", f.m, other.m, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

const marshalMagic = 0x54424c4d // "TBLM"

// MarshalBinary serializes the filter: magic, m, k, n, then the bit words.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+8*3+len(f.bits)*8)
	binary.LittleEndian.PutUint32(buf[0:], marshalMagic)
	binary.LittleEndian.PutUint64(buf[4:], f.m)
	binary.LittleEndian.PutUint64(buf[12:], f.k)
	binary.LittleEndian.PutUint64(buf[20:], f.n)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(buf[28+i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 28 {
		return errors.New("bloom: truncated filter data")
	}
	if binary.LittleEndian.Uint32(data[0:]) != marshalMagic {
		return errors.New("bloom: bad magic")
	}
	m := binary.LittleEndian.Uint64(data[4:])
	k := binary.LittleEndian.Uint64(data[12:])
	n := binary.LittleEndian.Uint64(data[20:])
	words := int(m / 64)
	if m == 0 || m%64 != 0 || k == 0 {
		return fmt.Errorf("bloom: corrupt header m=%d k=%d", m, k)
	}
	if len(data) != 28+words*8 {
		return fmt.Errorf("bloom: data length %d does not match m=%d", len(data), m)
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[28+i*8:])
	}
	f.bits, f.m, f.k, f.n = bits, m, k, n
	return nil
}
