package bloom

import "testing"

// FuzzUnmarshal ensures arbitrary bytes never panic the filter deserializer
// and that accepted filters marshal back to identical bytes.
func FuzzUnmarshal(f *testing.F) {
	valid, _ := New(128, 3)
	valid.AddString("seed")
	data, _ := valid.MarshalBinary()
	f.Add(data)
	f.Add(data[:10])
	f.Add([]byte{})
	mutated := append([]byte(nil), data...)
	mutated[5] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		var fl Filter
		if err := fl.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := fl.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted filter failed to marshal: %v", err)
		}
		if len(out) != len(data) {
			t.Fatalf("round trip changed length %d -> %d", len(data), len(out))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}
