package ts

import (
	"math"
	"math/rand"
	"testing"
)

func randSeries(rng *rand.Rand, n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// The batched squared-Euclidean kernel must reproduce the scalar kernel bit
// for bit: same mask decisions and identical sums for surviving lanes.
func TestBatchSquaredEuclideanMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bs := NewBatchState()
	var out [BatchLanes]float64
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		lanes := 1 + rng.Intn(BatchLanes)
		q := randSeries(rng, n)
		cands := make([]Series, lanes)
		for l := range cands {
			c := randSeries(rng, n)
			if rng.Intn(3) == 0 {
				// Near-duplicates of the query exercise the "survives" side.
				copy(c, q)
				c[rng.Intn(n)] += rng.NormFloat64() * 0.01
			}
			cands[l] = c
		}
		var boundSq float64
		switch rng.Intn(3) {
		case 0:
			boundSq = math.Inf(1)
		case 1:
			boundSq = 0
		default:
			boundSq = rng.Float64() * float64(n)
		}
		mask := bs.SquaredEuclidean(q, cands, boundSq, out[:])
		for l := 0; l < lanes; l++ {
			want := SquaredDistance(q, cands[l])
			survives := want <= boundSq
			got := mask&(1<<uint(l)) != 0
			if got != survives {
				t.Fatalf("trial %d lane %d: mask bit %v, scalar survives %v (d2=%v bound=%v)",
					trial, l, got, survives, want, boundSq)
			}
			if got && out[l] != want {
				t.Fatalf("trial %d lane %d: batch d2 %v != scalar %v", trial, l, out[l], want)
			}
		}
	}
}

// Whole-batch early abandon: when every lane is hopeless the kernel stops
// early and reports an empty mask.
func TestBatchSquaredEuclideanAbandonsBatch(t *testing.T) {
	bs := NewBatchState()
	n := 256
	q := make(Series, n)
	cands := make([]Series, 4)
	for l := range cands {
		c := make(Series, n)
		for i := range c {
			c[i] = 100 // every lane blows the bound within the first block
		}
		cands[l] = c
	}
	var out [BatchLanes]float64
	if mask := bs.SquaredEuclidean(q, cands, 1.0, out[:]); mask != 0 {
		t.Fatalf("mask = %b, want 0", mask)
	}
}

// The batched LB_Keogh kernel must agree with a direct scalar excursion sum.
func TestBatchLBKeoghMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bs := NewBatchState()
	var out [BatchLanes]float64
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		lanes := 1 + rng.Intn(BatchLanes)
		up := make(Series, n)
		lo := make(Series, n)
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			up[i], lo[i] = math.Max(a, b), math.Min(a, b)
		}
		cands := make([]Series, lanes)
		for l := range cands {
			cands[l] = randSeries(rng, n)
		}
		boundSq := rng.Float64() * float64(n) * 0.1
		if trial%5 == 0 {
			boundSq = math.Inf(1)
		}
		mask := bs.BatchLBKeogh(up, lo, cands, boundSq, out[:])
		for l := 0; l < lanes; l++ {
			var want float64
			for i, v := range cands[l] {
				var d float64
				switch {
				case v > up[i]:
					d = v - up[i]
				case v < lo[i]:
					d = lo[i] - v
				}
				want += d * d
			}
			survives := want <= boundSq
			got := mask&(1<<uint(l)) != 0
			if got != survives {
				t.Fatalf("trial %d lane %d: mask bit %v, scalar survives %v (sum=%v bound=%v)",
					trial, l, got, survives, want, boundSq)
			}
			if got && out[l] != want {
				t.Fatalf("trial %d lane %d: batch sum %v != scalar %v", trial, l, out[l], want)
			}
		}
	}
}

// The batched MINDIST must return exactly what MinDistPAAToWord returns per
// lane — same accumulation order, bit-identical result.
func TestBatchMinDistPAAMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var out [BatchLanes]float64
	for trial := 0; trial < 300; trial++ {
		w := 4 * (1 + rng.Intn(4))
		bits := 1 + rng.Intn(MaxCardinalityBits)
		lanes := 1 + rng.Intn(BatchLanes)
		n := w * (1 + rng.Intn(16))
		paa := randSeries(rng, w)
		words := make([]int, w*lanes)
		lane := make([][]int, lanes)
		for l := range lane {
			lane[l] = make([]int, w)
			for seg := 0; seg < w; seg++ {
				sym := rng.Intn(1 << uint(bits))
				lane[l][seg] = sym
				words[seg*lanes+l] = sym
			}
		}
		BatchMinDistPAA(paa, words, lanes, bits, n, out[:])
		for l := 0; l < lanes; l++ {
			want := MinDistPAAToWord(paa, lane[l], bits, n)
			if out[l] != want {
				t.Fatalf("trial %d lane %d: batch %v != scalar %v", trial, l, out[l], want)
			}
		}
	}
}

func TestBatchKernelsPanicOnMisuse(t *testing.T) {
	bs := NewBatchState()
	var out [BatchLanes]float64
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("lane length mismatch", func() {
		bs.SquaredEuclidean(Series{1, 2}, []Series{{1}}, 1, out[:])
	})
	expectPanic("too many lanes", func() {
		cands := make([]Series, BatchLanes+1)
		for i := range cands {
			cands[i] = Series{1}
		}
		bs.SquaredEuclidean(Series{1}, cands, 1, out[:])
	})
	expectPanic("mindist words length", func() {
		BatchMinDistPAA(Series{0, 0, 0, 0}, make([]int, 3), 1, 3, 8, out[:])
	})
	expectPanic("mindist bits range", func() {
		BatchMinDistPAA(Series{0, 0, 0, 0}, make([]int, 4), 1, 0, 8, out[:])
	})
	expectPanic("lbkeogh envelope mismatch", func() {
		bs.BatchLBKeogh(Series{1, 2}, Series{0}, []Series{{1, 2}}, 1, out[:])
	})
}

// FuzzBatchMinDistPAA cross-checks the batched MINDIST against the scalar
// kernel on fuzzer-chosen inputs.
func FuzzBatchMinDistPAA(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(42), uint8(6), uint8(9))
	f.Add(int64(-7), uint8(1), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, bitsRaw, lanesRaw uint8) {
		bits := 1 + int(bitsRaw)%MaxCardinalityBits
		lanes := 1 + int(lanesRaw)%BatchLanes
		rng := rand.New(rand.NewSource(seed))
		w := 8
		n := 64
		paa := randSeries(rng, w)
		words := make([]int, w*lanes)
		lane := make([][]int, lanes)
		for l := range lane {
			lane[l] = make([]int, w)
			for seg := 0; seg < w; seg++ {
				sym := rng.Intn(1 << uint(bits))
				lane[l][seg] = sym
				words[seg*lanes+l] = sym
			}
		}
		var out [BatchLanes]float64
		BatchMinDistPAA(paa, words, lanes, bits, n, out[:])
		for l := 0; l < lanes; l++ {
			want := MinDistPAAToWord(paa, lane[l], bits, n)
			if math.Abs(out[l]-want) > 1e-9 {
				t.Fatalf("lane %d: batch %v differs from scalar %v", l, out[l], want)
			}
		}
	})
}
