package ts

import "fmt"

// Subsequence extraction: the paper's motivating applications (aircraft
// sensors, weather stations) produce one long stream per source; similarity
// search operates on fixed-length subsequences cut from it. Subsequences
// turns a long series into indexable records with a sliding window, the
// standard preprocessing for whole-matching indexes (the DNA dataset in the
// paper is built exactly this way, §VI-A).

// Subsequences cuts the long series into windows of length `window` every
// `stride` points. Record ids start at ridBase and increase by 1 per window
// (rid i covers long[i*stride : i*stride+window]), so positions are
// recoverable from ids. When normalize is true each window is z-normalized
// independently (the paper's setup; it makes windows comparable regardless
// of local offset and scale).
func Subsequences(long Series, window, stride int, ridBase int64, normalize bool) ([]Record, error) {
	if window < 1 {
		return nil, fmt.Errorf("ts: window must be positive, got %d", window)
	}
	if stride < 1 {
		return nil, fmt.Errorf("ts: stride must be positive, got %d", stride)
	}
	if len(long) < window {
		return nil, fmt.Errorf("ts: series length %d shorter than window %d", len(long), window)
	}
	n := (len(long)-window)/stride + 1
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		start := i * stride
		w := make(Series, window)
		copy(w, long[start:start+window])
		if normalize {
			w.ZNormalizeInPlace()
		}
		out[i] = Record{RID: ridBase + int64(i), Values: w}
	}
	return out, nil
}

// SubsequencePosition inverts Subsequences' rid assignment: the start offset
// in the original series for a record id produced with the given base and
// stride.
func SubsequencePosition(rid, ridBase int64, stride int) int64 {
	return (rid - ridBase) * int64(stride)
}
