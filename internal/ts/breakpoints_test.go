package ts

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBreakpointsCardinality4(t *testing.T) {
	// Classic SAX table for cardinality 4: {-0.67, 0, 0.67} (approx).
	bps, err := Breakpoints(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-0.6745, 0, 0.6745}
	if len(bps) != 3 {
		t.Fatalf("len = %d, want 3", len(bps))
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-3 {
			t.Errorf("bps[%d] = %v, want ~%v", i, bps[i], want[i])
		}
	}
}

func TestBreakpointsCardinality8(t *testing.T) {
	// Classic SAX table for cardinality 8.
	bps, err := Breakpoints(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 5e-3 {
			t.Errorf("bps[%d] = %v, want ~%v", i, bps[i], want[i])
		}
	}
}

func TestBreakpointsInvalid(t *testing.T) {
	for _, c := range []int{0, 1, 3, 6, 1 << 20, -4} {
		if _, err := Breakpoints(c); err == nil {
			t.Errorf("cardinality %d should be rejected", c)
		}
	}
	if _, err := BreakpointsForBits(0); err == nil {
		t.Error("bits=0 should be rejected")
	}
	if _, err := BreakpointsForBits(MaxCardinalityBits + 1); err == nil {
		t.Error("bits beyond max should be rejected")
	}
}

func TestBreakpointsSortedAndSymmetric(t *testing.T) {
	for bits := 1; bits <= MaxCardinalityBits; bits++ {
		bps, err := BreakpointsForBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(bps) != (1<<bits)-1 {
			t.Fatalf("bits=%d: len=%d, want %d", bits, len(bps), (1<<bits)-1)
		}
		if !sort.Float64sAreSorted(bps) {
			t.Errorf("bits=%d: breakpoints not sorted", bits)
		}
		// Symmetry of the normal distribution: bps[i] == -bps[len-1-i].
		for i := 0; i < len(bps)/2; i++ {
			if math.Abs(bps[i]+bps[len(bps)-1-i]) > 1e-9 {
				t.Errorf("bits=%d: asymmetric breakpoints at %d: %v vs %v",
					bits, i, bps[i], bps[len(bps)-1-i])
			}
		}
	}
}

// The nesting property: the breakpoints at cardinality 2^(b-1) are exactly
// the even-indexed breakpoints at 2^b. This is what makes label demotion a
// right shift, the foundation of both iSAX and iSAX-T.
func TestBreakpointsNesting(t *testing.T) {
	for bits := 2; bits <= MaxCardinalityBits; bits++ {
		hi, _ := BreakpointsForBits(bits)
		lo, _ := BreakpointsForBits(bits - 1)
		for i, v := range lo {
			if math.Abs(hi[2*i+1]-v) > 1e-12 {
				t.Fatalf("bits=%d: nesting violated at %d: %v vs %v", bits, i, hi[2*i+1], v)
			}
		}
	}
}

func TestSAXSymbolBasic(t *testing.T) {
	// Cardinality 4: regions (-inf,-0.67) (-0.67,0) (0,0.67) (0.67,inf).
	cases := []struct {
		v    float64
		want int
	}{
		{-2, 0}, {-0.5, 1}, {0.3, 2}, {1.5, 3}, {0, 2}, // 0 is a breakpoint; <= goes up
	}
	for _, c := range cases {
		if got := SAXSymbol(c.v, 2); got != c.want {
			t.Errorf("SAXSymbol(%v, bits=2) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: demoting one bit of cardinality equals a right shift of the label.
func TestSAXSymbolShiftProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := rng.NormFloat64() * 2
		for bits := 2; bits <= 9; bits++ {
			if SAXSymbol(v, bits)>>1 != SAXSymbol(v, bits-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSAXWord(t *testing.T) {
	paa := Series{-1.5, -0.4, 0.3, 1.5}
	w := SAXWord(paa, 2)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("SAXWord[%d] = %d, want %d", i, w[i], want[i])
		}
	}
}

func TestSymbolBounds(t *testing.T) {
	lo, hi := SymbolBounds(0, 2)
	if !math.IsInf(lo, -1) {
		t.Errorf("lowest region lo = %v, want -Inf", lo)
	}
	if math.Abs(hi+0.6745) > 1e-3 {
		t.Errorf("lowest region hi = %v, want ~-0.6745", hi)
	}
	lo, hi = SymbolBounds(3, 2)
	if !math.IsInf(hi, 1) {
		t.Errorf("highest region hi = %v, want +Inf", hi)
	}
	if math.Abs(lo-0.6745) > 1e-3 {
		t.Errorf("highest region lo = %v, want ~0.6745", lo)
	}
}

func TestMinDistSymbols(t *testing.T) {
	if d := MinDistSymbols(1, 1, 2); d != 0 {
		t.Errorf("same region dist = %v, want 0", d)
	}
	if d := MinDistSymbols(1, 2, 2); d != 0 {
		t.Errorf("adjacent region dist = %v, want 0", d)
	}
	d := MinDistSymbols(0, 3, 2)
	want := 2 * 0.6745 // gap from -0.67 to 0.67
	if math.Abs(d-want) > 1e-3 {
		t.Errorf("far region dist = %v, want ~%v", d, want)
	}
	if MinDistSymbols(3, 0, 2) != d {
		t.Error("MinDistSymbols should be symmetric")
	}
}

// The lower-bound property: MINDIST between a query's PAA and a target's SAX
// word never exceeds the true Euclidean distance (paper §II-B). This is the
// invariant the whole index family depends on.
func TestMinDistLowerBoundProperty(t *testing.T) {
	const n, w = 64, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(Series, n), make(Series, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		a = a.ZNormalize()
		b = b.ZNormalize()
		true_, _ := EuclideanDistance(a, b)
		pa := MustPAA(a, w)
		pb := MustPAA(b, w)
		for bits := 1; bits <= 8; bits++ {
			wb := SAXWord(pb, bits)
			if MinDistPAAToWord(pa, wb, bits, n) > true_+1e-9 {
				return false
			}
			wa := SAXWord(pa, bits)
			if MinDistWords(wa, wb, bits, n) > true_+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Word-word MINDIST must never exceed PAA-word MINDIST (it has strictly less
// information about the query).
func TestMinDistWordsWeakerProperty(t *testing.T) {
	const n, w = 64, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(Series, n), make(Series, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		pa, pb := MustPAA(a, w), MustPAA(b, w)
		for bits := 1; bits <= 6; bits++ {
			wa, wb := SAXWord(pa, bits), SAXWord(pb, bits)
			if MinDistWords(wa, wb, bits, n) > MinDistPAAToWord(pa, wb, bits, n)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Higher cardinality gives a tighter (larger or equal) lower bound.
func TestMinDistMonotoneInCardinality(t *testing.T) {
	const n, w = 32, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(Series, n), make(Series, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		pa, pb := MustPAA(a, w), MustPAA(b, w)
		prev := 0.0
		for bits := 1; bits <= 8; bits++ {
			d := MinDistPAAToWord(pa, SAXWord(pb, bits), bits, n)
			if d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	MinDistPAAToWord(Series{1, 2}, []int{0}, 1, 8)
}
