package ts

import "fmt"

// PAA computes the Piecewise Aggregate Approximation of a series: the series
// is divided into w equal-length segments and each segment is represented by
// the mean of its values (paper §II-B). The number of segments w is the
// "word length" and the resulting vector is a "word".
//
// When len(s) is not divisible by w, fractional frame boundaries are handled
// by weighting boundary points proportionally, so PAA remains exact for any
// length (the scheme used by the original PAA paper).
func PAA(s Series, w int) (Series, error) {
	n := len(s)
	if w <= 0 {
		return nil, fmt.Errorf("ts: PAA word length must be positive, got %d", w)
	}
	if n == 0 {
		return nil, fmt.Errorf("ts: PAA of empty series")
	}
	if n < w {
		return nil, fmt.Errorf("ts: PAA word length %d exceeds series length %d", w, n)
	}
	out := make(Series, w)
	if n%w == 0 {
		// Fast path: equal integer-length segments.
		seg := n / w
		idx := 0
		for i := 0; i < w; i++ {
			var sum float64
			for j := 0; j < seg; j++ {
				sum += s[idx]
				idx++
			}
			out[i] = sum / float64(seg)
		}
		return out, nil
	}
	// General path: fractional frames. Each output frame covers n/w input
	// points; input points straddling a frame boundary contribute
	// proportionally to both frames.
	frame := float64(n) / float64(w)
	for i := 0; i < w; i++ {
		start := float64(i) * frame
		end := start + frame
		var sum float64
		j := int(start)
		for float64(j) < end && j < n {
			lo := maxF(float64(j), start)
			hi := minF(float64(j+1), end)
			sum += s[j] * (hi - lo)
			j++
		}
		out[i] = sum / frame
	}
	return out, nil
}

// MustPAA is PAA that panics on error; used where the configuration has
// already been validated.
func MustPAA(s Series, w int) Series {
	p, err := PAA(s, w)
	if err != nil {
		panic(err)
	}
	return p
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
