package ts

import (
	"fmt"
	"math"
	"math/bits"
)

// Batched struct-of-arrays distance kernels (MESSI/ParIS+ style): instead of
// walking one candidate series at a time, the refine phases gather a block
// of up to BatchLanes candidates into a flat position-major layout and
// accumulate all lanes per position. The inner loop is a contiguous
// stride-one sweep the compiler can keep in registers, and early abandoning
// happens per block of positions for the whole batch at once — one branch
// per checkpoint instead of one per point per candidate.
//
// Every kernel accumulates each lane's partial sum in ascending position
// order, exactly like its scalar counterpart, so the computed distances are
// bit-identical to the serial path — the property the parallel == serial
// equivalence tests rely on.

// BatchLanes is the SoA width: the maximum number of candidate series one
// kernel call processes.
const BatchLanes = 16

// batchPositions is the number of positions accumulated between
// early-abandon checkpoints (and the SoA gather block height).
const batchPositions = 64

// BatchState is the reusable scratch for the gathering kernels; callers pool
// it so the hot query paths allocate nothing per batch.
type BatchState struct {
	soa  []float64
	sums []float64
}

// NewBatchState allocates kernel scratch.
func NewBatchState() *BatchState {
	return &BatchState{
		soa:  make([]float64, batchPositions*BatchLanes),
		sums: make([]float64, BatchLanes),
	}
}

// SquaredEuclidean computes the squared Euclidean distance between q and up
// to BatchLanes candidates. out[l] receives lane l's accumulated sum; the
// returned bitmask has bit l set iff the lane's full squared distance is at
// most boundSq. When every lane's partial sum exceeds boundSq at a
// checkpoint the whole batch abandons (mask 0, partial sums in out).
//
//tardis:hotpath
func (b *BatchState) SquaredEuclidean(q Series, cands []Series, boundSq float64, out []float64) uint32 {
	lanes := len(cands)
	if lanes == 0 {
		return 0
	}
	if lanes > BatchLanes {
		panic(fmt.Sprintf("ts: batch of %d exceeds %d lanes", lanes, BatchLanes))
	}
	n := len(q)
	sums := b.sums
	for l := 0; l < lanes; l++ {
		if len(cands[l]) != n {
			panic(fmt.Sprintf("ts: batch lane %d length %d != query length %d", l, len(cands[l]), n))
		}
		sums[l] = 0
	}
	soa := b.soa
	for start := 0; start < n; start += batchPositions {
		end := start + batchPositions
		if end > n {
			end = n
		}
		for l := 0; l < lanes; l++ {
			c := cands[l][start:end]
			for i := range c {
				soa[i*BatchLanes+l] = c[i]
			}
		}
		for p := start; p < end; p++ {
			qv := q[p]
			row := soa[(p-start)*BatchLanes : (p-start)*BatchLanes+lanes]
			for l, cv := range row {
				d := qv - cv
				sums[l] += d * d
			}
		}
		alive := false
		for l := 0; l < lanes; l++ {
			if sums[l] <= boundSq {
				alive = true
				break
			}
		}
		if !alive {
			copy(out[:lanes], sums[:lanes])
			return 0
		}
	}
	var mask uint32
	for l := 0; l < lanes; l++ {
		out[l] = sums[l]
		if sums[l] <= boundSq {
			mask |= 1 << uint(l)
		}
	}
	return mask
}

// BatchEuclidean is SquaredEuclidean with rooted distances: out[l] holds the
// Euclidean distance for every lane in the returned mask (lanes outside the
// mask keep their partial squared sums, which are only meaningful as
// "exceeds bound" evidence).
//
//tardis:hotpath
func (b *BatchState) BatchEuclidean(q Series, cands []Series, bound float64, out []float64) uint32 {
	mask := b.SquaredEuclidean(q, cands, bound*bound, out)
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		out[l] = math.Sqrt(out[l])
	}
	return mask
}

// BatchLBKeogh computes the squared LB_Keogh excursion of up to BatchLanes
// candidates against the envelope [lo, up]. out[l] receives the accumulated
// squared excursion; the mask has bit l set iff lane l's full excursion sum
// is at most boundSq — i.e. the candidate survives the LB_Keogh gate for
// bound sqrt(boundSq). Whole-batch early abandon as in SquaredEuclidean.
//
//tardis:hotpath
func (b *BatchState) BatchLBKeogh(up, lo Series, cands []Series, boundSq float64, out []float64) uint32 {
	lanes := len(cands)
	if lanes == 0 {
		return 0
	}
	if lanes > BatchLanes {
		panic(fmt.Sprintf("ts: batch of %d exceeds %d lanes", lanes, BatchLanes))
	}
	n := len(up)
	if len(lo) != n {
		panic(fmt.Sprintf("ts: envelope lengths differ: %d vs %d", n, len(lo)))
	}
	sums := b.sums
	for l := 0; l < lanes; l++ {
		if len(cands[l]) != n {
			panic(fmt.Sprintf("ts: batch lane %d length %d != envelope length %d", l, len(cands[l]), n))
		}
		sums[l] = 0
	}
	soa := b.soa
	for start := 0; start < n; start += batchPositions {
		end := start + batchPositions
		if end > n {
			end = n
		}
		for l := 0; l < lanes; l++ {
			c := cands[l][start:end]
			for i := range c {
				soa[i*BatchLanes+l] = c[i]
			}
		}
		for p := start; p < end; p++ {
			u, lw := up[p], lo[p]
			row := soa[(p-start)*BatchLanes : (p-start)*BatchLanes+lanes]
			for l, v := range row {
				var d float64
				switch {
				case v > u:
					d = v - u
				case v < lw:
					d = lw - v
				}
				sums[l] += d * d
			}
		}
		alive := false
		for l := 0; l < lanes; l++ {
			if sums[l] <= boundSq {
				alive = true
				break
			}
		}
		if !alive {
			copy(out[:lanes], sums[:lanes])
			return 0
		}
	}
	var mask uint32
	for l := 0; l < lanes; l++ {
		out[l] = sums[l]
		if sums[l] <= boundSq {
			mask |= 1 << uint(l)
		}
	}
	return mask
}

// BatchMinDistPAA computes the SAX MINDIST lower bound between the query's
// PAA and up to BatchLanes candidate SAX words at once. words is the
// position-major SoA of the decoded words: words[seg*lanes+l] is lane l's
// symbol for segment seg, len(words) == len(paa)*lanes. out[l] receives the
// same value MinDistPAAToWord returns for lane l's word — the summation
// order per lane is identical, so the results match bit for bit.
//
//tardis:hotpath
func BatchMinDistPAA(paa Series, words []int, lanes, bits, n int, out []float64) {
	w := len(paa)
	if lanes <= 0 || lanes > BatchLanes {
		panic(fmt.Sprintf("ts: batch of %d lanes outside [1, %d]", lanes, BatchLanes))
	}
	if len(words) != w*lanes {
		panic(fmt.Sprintf("ts: words length %d != %d segments x %d lanes", len(words), w, lanes))
	}
	if bits < 1 || bits > MaxCardinalityBits {
		panic(fmt.Sprintf("ts: cardinality bits %d out of range [1, %d]", bits, MaxCardinalityBits))
	}
	bps := breakpointsForBits(bits)
	for l := 0; l < lanes; l++ {
		out[l] = 0
	}
	for seg := 0; seg < w; seg++ {
		v := paa[seg]
		row := words[seg*lanes : (seg+1)*lanes]
		for l, sym := range row {
			lo := math.Inf(-1)
			if sym > 0 {
				lo = bps[sym-1]
			}
			hi := math.Inf(1)
			if sym < len(bps) {
				hi = bps[sym]
			}
			var d float64
			switch {
			case v < lo:
				d = lo - v
			case v > hi:
				d = v - hi
			}
			out[l] += d * d
		}
	}
	scale := math.Sqrt(float64(n) / float64(w))
	for l := 0; l < lanes; l++ {
		out[l] = scale * math.Sqrt(out[l])
	}
}
