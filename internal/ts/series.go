// Package ts provides the core time-series primitives used throughout
// TARDIS: the series type itself, z-normalization, Euclidean distance,
// Piecewise Aggregate Approximation (PAA), the Gaussian breakpoint tables
// that drive SAX discretization, and the SAX/PAA lower-bound distances
// (MINDIST) that make index pruning sound.
//
// All functions operate on float64 slices; a time series is an ordered
// sequence of real values sampled at a fixed granularity, so timestamps are
// implicit (paper, Definition 1).
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single time series: an ordered sequence of real-valued
// observations at an implicit fixed time granularity.
type Series []float64

// Record pairs a time series with its record id. Record ids are assigned by
// the storage layer and are unique within a dataset.
type Record struct {
	RID    int64
	Values Series
}

// ErrLengthMismatch is returned by pairwise operations (distance, dot
// products) when the two series have different lengths.
var ErrLengthMismatch = errors.New("ts: series length mismatch")

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	c := make(Series, len(s))
	copy(c, s)
	return c
}

// Mean returns the arithmetic mean of the series. It returns 0 for an empty
// series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of the series. It returns 0
// for an empty series.
func (s Series) Std() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)))
}

// epsStd is the standard-deviation floor below which a series is treated as
// constant during z-normalization; normalizing by a near-zero deviation
// would explode numerical noise.
const epsStd = 1e-10

// ZNormalize returns a z-normalized copy of the series: zero mean and unit
// standard deviation. Constant series (std below a small epsilon) normalize
// to all zeros, matching the convention used by the iSAX literature.
func (s Series) ZNormalize() Series {
	out := make(Series, len(s))
	mean := s.Mean()
	std := s.Std()
	if std < epsStd {
		return out // all zeros
	}
	inv := 1 / std
	for i, v := range s {
		out[i] = (v - mean) * inv
	}
	return out
}

// ZNormalizeInPlace z-normalizes the series in place.
func (s Series) ZNormalizeInPlace() {
	mean := s.Mean()
	std := s.Std()
	if std < epsStd {
		for i := range s {
			s[i] = 0
		}
		return
	}
	inv := 1 / std
	for i := range s {
		s[i] = (s[i] - mean) * inv
	}
}

// EuclideanDistance returns the Euclidean distance between two equal-length
// series (paper, Definition 2).
func EuclideanDistance(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	return math.Sqrt(SquaredDistance(a, b)), nil
}

// SquaredDistance returns the squared Euclidean distance between two series.
// It panics if the lengths differ; use EuclideanDistance for a checked
// variant. The unchecked form is the hot path of every refine phase.
func SquaredDistance(a, b Series) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ts: squared distance on mismatched lengths %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// SquaredDistanceEarlyAbandon computes the squared Euclidean distance but
// abandons and returns (bound, false) as soon as the partial sum exceeds
// bound. It returns (distance, true) when the full distance is below bound.
// Early abandoning is the classic optimization for kNN refine phases.
func SquaredDistanceEarlyAbandon(a, b Series, bound float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ts: squared distance on mismatched lengths %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
		if sum > bound {
			return sum, false
		}
	}
	return sum, true
}

// Equal reports whether two series are identical element-wise.
func Equal(a, b Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether two series are element-wise equal within eps.
func AlmostEqual(a, b Series, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}
