package ts

import (
	"fmt"
	"math"
	"sync"
)

// MaxCardinalityBits is the largest supported cardinality exponent: SAX
// symbols may use up to 2^MaxCardinalityBits distinct regions. The baseline
// system (DPiSAX) uses an initial cardinality of 512 = 2^9, so we support a
// little beyond that.
const MaxCardinalityBits = 12

// Breakpoints returns the sorted slice of cardinality-1 breakpoints that
// divide the standard normal N(0,1) value space into `cardinality` regions
// of equal probability (paper §II-B; the SAX discretization stripes).
//
// The returned slice is shared and must not be modified. Cardinality must be
// a power of two between 2 and 2^MaxCardinalityBits.
func Breakpoints(cardinality int) ([]float64, error) {
	b, ok := cardToBits(cardinality)
	if !ok {
		return nil, fmt.Errorf("ts: cardinality must be a power of two in [2, %d], got %d",
			1<<MaxCardinalityBits, cardinality)
	}
	return breakpointsForBits(b), nil
}

// BreakpointsForBits returns the breakpoints for cardinality 2^bits.
func BreakpointsForBits(bits int) ([]float64, error) {
	if bits < 1 || bits > MaxCardinalityBits {
		return nil, fmt.Errorf("ts: cardinality bits must be in [1, %d], got %d", MaxCardinalityBits, bits)
	}
	return breakpointsForBits(bits), nil
}

var (
	bpOnce  sync.Once
	bpTable [MaxCardinalityBits + 1][]float64
)

func initBreakpoints() {
	for bits := 1; bits <= MaxCardinalityBits; bits++ {
		card := 1 << bits
		bps := make([]float64, card-1)
		for i := 1; i < card; i++ {
			bps[i-1] = normalQuantile(float64(i) / float64(card))
		}
		bpTable[bits] = bps
	}
}

func breakpointsForBits(bits int) []float64 {
	bpOnce.Do(initBreakpoints)
	return bpTable[bits]
}

// normalQuantile returns the p-quantile of the standard normal distribution
// using the exact relationship to the inverse error function.
func normalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

func cardToBits(cardinality int) (int, bool) {
	if cardinality < 2 || cardinality > 1<<MaxCardinalityBits {
		return 0, false
	}
	if cardinality&(cardinality-1) != 0 {
		return 0, false
	}
	bits := 0
	for c := cardinality; c > 1; c >>= 1 {
		bits++
	}
	return bits, true
}

// SAXSymbol returns the SAX region index (0 = lowest-valued stripe) of a
// single PAA coefficient at cardinality 2^bits. Region labels are assigned
// bottom-up so that the unsigned binary label increases with the value; this
// makes cardinality demotion a plain right shift (label at 2^(b-1) equals
// label at 2^b >> 1), which is the property both iSAX and iSAX-T rely on.
func SAXSymbol(v float64, bits int) int {
	bps := breakpointsForBits(bits)
	// Binary search: number of breakpoints <= v.
	lo, hi := 0, len(bps)
	for lo < hi {
		mid := (lo + hi) / 2
		if bps[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SAXWord discretizes a PAA word into SAX region indices at cardinality
// 2^bits. The result has one symbol per PAA segment.
func SAXWord(paa Series, bits int) []int {
	out := make([]int, len(paa))
	for i, v := range paa {
		out[i] = SAXSymbol(v, bits)
	}
	return out
}

// SymbolBounds returns the value interval [lo, hi] covered by SAX region
// `sym` at cardinality 2^bits. The lowest region extends to -Inf and the
// highest to +Inf.
func SymbolBounds(sym, bits int) (lo, hi float64) {
	bps := breakpointsForBits(bits)
	if sym <= 0 {
		lo = math.Inf(-1)
	} else {
		lo = bps[sym-1]
	}
	if sym >= len(bps) {
		hi = math.Inf(1)
	} else {
		hi = bps[sym]
	}
	return lo, hi
}

// MinDistPAAToSymbol returns the minimum possible |v - x| for any x inside
// SAX region sym at cardinality 2^bits. Zero when v lies inside the region.
func MinDistPAAToSymbol(v float64, sym, bits int) float64 {
	lo, hi := SymbolBounds(sym, bits)
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// MinDistSymbols returns the minimum possible distance between any value in
// region a and any value in region b at cardinality 2^bits: zero for
// adjacent or identical regions, otherwise the gap between the inner
// breakpoints (the classic SAX MINDIST cell).
func MinDistSymbols(a, b, bits int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if b-a <= 1 {
		return 0
	}
	bps := breakpointsForBits(bits)
	return bps[b-1] - bps[a]
}

// MinDistPAAToWord lower-bounds the Euclidean distance between the original
// series of length n behind `paa` and any series whose SAX word (at
// cardinality 2^bits) is `word`. This is the SAX MINDIST of Lin et al.:
//
//	sqrt(n/w) * sqrt(sum_i d(paa_i, word_i)^2)
//
// The bound is what makes index pruning sound (paper §II-B, lower-bound
// property).
func MinDistPAAToWord(paa Series, word []int, bits, n int) float64 {
	if len(paa) != len(word) {
		panic(fmt.Sprintf("ts: MINDIST word length mismatch %d vs %d", len(paa), len(word)))
	}
	var sum float64
	for i, v := range paa {
		d := MinDistPAAToSymbol(v, word[i], bits)
		sum += d * d
	}
	return math.Sqrt(float64(n)/float64(len(paa))) * math.Sqrt(sum)
}

// MinDistWords lower-bounds the Euclidean distance between any two series of
// length n whose SAX words at cardinality 2^bits are a and b.
func MinDistWords(a, b []int, bits, n int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ts: MINDIST word length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := MinDistSymbols(a[i], b[i], bits)
		sum += d * d
	}
	return math.Sqrt(float64(n)/float64(len(a))) * math.Sqrt(sum)
}
