package ts

import (
	"math"
	"testing"
)

func TestSubsequencesBasic(t *testing.T) {
	long := Series{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	recs, err := Subsequences(long, 4, 2, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // starts 0,2,4,6
		t.Fatalf("windows = %d, want 4", len(recs))
	}
	if recs[0].RID != 100 || recs[3].RID != 103 {
		t.Errorf("rids = %d..%d", recs[0].RID, recs[3].RID)
	}
	if !Equal(recs[1].Values, Series{2, 3, 4, 5}) {
		t.Errorf("window 1 = %v", recs[1].Values)
	}
	// Windows are copies: mutating one must not affect the source.
	recs[0].Values[0] = 99
	if long[0] != 0 {
		t.Error("window aliases the source series")
	}
}

func TestSubsequencesNormalize(t *testing.T) {
	long := make(Series, 64)
	for i := range long {
		long[i] = float64(i) * 3
	}
	recs, err := Subsequences(long, 16, 16, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if math.Abs(r.Values.Mean()) > 1e-9 || math.Abs(r.Values.Std()-1) > 1e-9 {
			t.Fatalf("window %d not normalized", r.RID)
		}
	}
}

func TestSubsequencesExactCover(t *testing.T) {
	long := make(Series, 20)
	recs, err := Subsequences(long, 20, 1, 0, false)
	if err != nil || len(recs) != 1 {
		t.Fatalf("full-window: %d recs, %v", len(recs), err)
	}
	recs, err = Subsequences(long, 5, 5, 0, false)
	if err != nil || len(recs) != 4 {
		t.Fatalf("tumbling: %d recs, %v", len(recs), err)
	}
}

func TestSubsequencesErrors(t *testing.T) {
	long := make(Series, 10)
	if _, err := Subsequences(long, 0, 1, 0, false); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := Subsequences(long, 4, 0, 0, false); err == nil {
		t.Error("stride 0 should fail")
	}
	if _, err := Subsequences(long, 11, 1, 0, false); err == nil {
		t.Error("window beyond series should fail")
	}
}

func TestSubsequencePosition(t *testing.T) {
	long := make(Series, 100)
	recs, _ := Subsequences(long, 10, 3, 50, false)
	for i, r := range recs {
		if got := SubsequencePosition(r.RID, 50, 3); got != int64(i*3) {
			t.Fatalf("position of rid %d = %d, want %d", r.RID, got, i*3)
		}
	}
}
