package ts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	want := math.Sqrt(2) // population std of 1..5
	if got := s.Std(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", got, want)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 {
		t.Errorf("empty series should have zero mean/std")
	}
}

func TestZNormalize(t *testing.T) {
	s := Series{10, 20, 30, 40}
	z := s.ZNormalize()
	if math.Abs(z.Mean()) > 1e-12 {
		t.Errorf("normalized mean = %v, want 0", z.Mean())
	}
	if math.Abs(z.Std()-1) > 1e-12 {
		t.Errorf("normalized std = %v, want 1", z.Std())
	}
	// Original untouched.
	if s[0] != 10 {
		t.Errorf("ZNormalize mutated input")
	}
}

func TestZNormalizeConstant(t *testing.T) {
	s := Series{5, 5, 5, 5}
	z := s.ZNormalize()
	for i, v := range z {
		if v != 0 {
			t.Errorf("constant series should normalize to zeros, got z[%d]=%v", i, v)
		}
	}
}

func TestZNormalizeInPlace(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6}
	s.ZNormalizeInPlace()
	if math.Abs(s.Mean()) > 1e-12 || math.Abs(s.Std()-1) > 1e-12 {
		t.Errorf("in-place normalize: mean=%v std=%v", s.Mean(), s.Std())
	}
}

func TestEuclideanDistance(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{3, 4, 0}
	d, err := EuclideanDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
}

func TestEuclideanDistanceMismatch(t *testing.T) {
	if _, err := EuclideanDistance(Series{1}, Series{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestSquaredDistanceEarlyAbandon(t *testing.T) {
	a := Series{0, 0, 0, 0}
	b := Series{1, 1, 1, 1}
	d, ok := SquaredDistanceEarlyAbandon(a, b, 10)
	if !ok || d != 4 {
		t.Errorf("got (%v,%v), want (4,true)", d, ok)
	}
	d, ok = SquaredDistanceEarlyAbandon(a, b, 2)
	if ok {
		t.Errorf("expected abandon, got full distance %v", d)
	}
	if d <= 2 {
		t.Errorf("abandoned partial sum %v should exceed bound", d)
	}
}

func TestEqualAlmostEqual(t *testing.T) {
	a := Series{1, 2, 3}
	if !Equal(a, a.Clone()) {
		t.Error("clone should be equal")
	}
	if Equal(a, Series{1, 2}) {
		t.Error("different lengths should not be equal")
	}
	b := Series{1 + 1e-9, 2, 3}
	if Equal(a, b) {
		t.Error("tiny perturbation should break exact equality")
	}
	if !AlmostEqual(a, b, 1e-6) {
		t.Error("tiny perturbation should pass AlmostEqual")
	}
	if AlmostEqual(a, Series{1, 2}, 1) {
		t.Error("different lengths should fail AlmostEqual")
	}
}

func TestPAAExact(t *testing.T) {
	s := Series{-2, -1, 0, -0.8, 0.2, 0.4, 0.3, 0.3, 1.4, 1.6}
	p, err := PAA(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{-1.5, -0.4, 0.3, 0.3, 1.5}
	if !AlmostEqual(p, want, 1e-12) {
		t.Errorf("PAA = %v, want %v", p, want)
	}
}

func TestPAAWholeSeriesMean(t *testing.T) {
	s := Series{3, 1, 4, 1, 5, 9}
	p, err := PAA(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-s.Mean()) > 1e-12 {
		t.Errorf("PAA w=1 = %v, want mean %v", p[0], s.Mean())
	}
}

func TestPAAIdentity(t *testing.T) {
	s := Series{3, 1, 4, 1}
	p, err := PAA(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(p, s) {
		t.Errorf("PAA w=n should be identity, got %v", p)
	}
}

func TestPAAFractional(t *testing.T) {
	// n=5, w=2: frames cover 2.5 points each.
	s := Series{1, 1, 1, 3, 3}
	p, err := PAA(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// frame 0: points 0,1 fully + half of point 2 => (1+1+0.5)/2.5 = 1
	// frame 1: half of point 2 + points 3,4 => (0.5+3+3)/2.5 = 2.6
	want := Series{1, 2.6}
	if !AlmostEqual(p, want, 1e-12) {
		t.Errorf("fractional PAA = %v, want %v", p, want)
	}
}

func TestPAAErrors(t *testing.T) {
	if _, err := PAA(Series{1, 2}, 0); err == nil {
		t.Error("expected error for w=0")
	}
	if _, err := PAA(Series{1, 2}, 3); err == nil {
		t.Error("expected error for w>n")
	}
	if _, err := PAA(nil, 1); err == nil {
		t.Error("expected error for empty series")
	}
}

// Property: mean of PAA equals mean of series when n % w == 0.
func TestPAAPreservesMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, w := 64, 8
		s := make(Series, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		p := MustPAA(s, w)
		return math.Abs(p.Mean()-s.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: z-normalized random series has ~0 mean and ~1 std.
func TestZNormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Series, 32)
		for i := range s {
			s[i] = rng.Float64()*100 - 50
		}
		z := s.ZNormalize()
		return math.Abs(z.Mean()) < 1e-9 && math.Abs(z.Std()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
