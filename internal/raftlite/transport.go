package raftlite

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// LocalNet is an in-process transport for tests: nodes registered under their
// ids call each other's handlers directly. Links can be cut per node to
// simulate a killed or partitioned coordinator deterministically.
type LocalNet struct {
	mu    sync.Mutex
	nodes map[string]*Node // guarded by mu
	cut   map[string]bool  // guarded by mu; true = unreachable both ways
}

// NewLocalNet builds an empty in-process network.
func NewLocalNet() *LocalNet {
	return &LocalNet{nodes: map[string]*Node{}, cut: map[string]bool{}}
}

// Register adds a node under its id.
func (l *LocalNet) Register(n *Node) {
	l.mu.Lock()
	l.nodes[n.ID()] = n
	l.mu.Unlock()
}

// Cut makes a node unreachable (and unable to reach others), modeling a
// crashed or partitioned coordinator. Restore reconnects it.
func (l *LocalNet) Cut(id string) {
	l.mu.Lock()
	l.cut[id] = true
	l.mu.Unlock()
}

// Restore reconnects a previously Cut node.
func (l *LocalNet) Restore(id string) {
	l.mu.Lock()
	delete(l.cut, id)
	l.mu.Unlock()
}

var errUnreachable = errors.New("raftlite: peer unreachable")

func (l *LocalNet) lookup(from, to string) (*Node, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cut[from] || l.cut[to] {
		return nil, errUnreachable
	}
	n, ok := l.nodes[to]
	if !ok {
		return nil, fmt.Errorf("raftlite: unknown peer %q", to)
	}
	return n, nil
}

// Transport returns the transport handle for the node with the given id.
func (l *LocalNet) Transport(id string) Transport {
	return &localTransport{net: l, from: id}
}

type localTransport struct {
	net  *LocalNet
	from string
}

func (t *localTransport) RequestVote(peer string, args *VoteArgs, reply *VoteReply) error {
	n, err := t.net.lookup(t.from, peer)
	if err != nil {
		return err
	}
	return n.RequestVote(args, reply)
}

func (t *localTransport) AppendEntries(peer string, args *AppendArgs, reply *AppendReply) error {
	n, err := t.net.lookup(t.from, peer)
	if err != nil {
		return err
	}
	return n.AppendEntries(args, reply)
}

// RPCTransport delivers raft RPCs over net/rpc to peers at known addresses.
// Connections are dialed lazily with a bounded timeout and dropped on error,
// so a dead peer costs one dial timeout per round, not a wedged ensemble.
type RPCTransport struct {
	addrs   map[string]string // peer id -> host:port (immutable after New)
	timeout time.Duration

	mu      sync.Mutex
	clients map[string]*rpc.Client // guarded by mu
}

// NewRPCTransport builds a transport from a peer-id -> address map. timeout
// bounds each dial and call; zero defaults to 2s.
func NewRPCTransport(addrs map[string]string, timeout time.Duration) *RPCTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	cp := make(map[string]string, len(addrs))
	for id, a := range addrs {
		cp[id] = a
	}
	return &RPCTransport{addrs: cp, timeout: timeout, clients: map[string]*rpc.Client{}}
}

func (t *RPCTransport) client(peer string) (*rpc.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.clients[peer]; c != nil {
		return c, nil
	}
	addr, ok := t.addrs[peer]
	if !ok {
		return nil, fmt.Errorf("raftlite: no address for peer %q", peer)
	}
	conn, err := net.DialTimeout("tcp", addr, t.timeout)
	if err != nil {
		return nil, err
	}
	c := rpc.NewClient(conn)
	t.clients[peer] = c
	return c, nil
}

func (t *RPCTransport) drop(peer string, c *rpc.Client) {
	t.mu.Lock()
	if t.clients[peer] == c {
		delete(t.clients, peer)
	}
	t.mu.Unlock()
	_ = c.Close()
}

func (t *RPCTransport) call(peer, method string, args, reply any) error {
	c, err := t.client(peer)
	if err != nil {
		return err
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		if call.Error != nil {
			t.drop(peer, c)
			return call.Error
		}
		return nil
	case <-timer.C:
		t.drop(peer, c)
		return fmt.Errorf("raftlite: %s to %s timed out", method, peer)
	}
}

// RequestVote implements Transport over net/rpc.
func (t *RPCTransport) RequestVote(peer string, args *VoteArgs, reply *VoteReply) error {
	return t.call(peer, "Raft.RequestVote", args, reply)
}

// AppendEntries implements Transport over net/rpc.
func (t *RPCTransport) AppendEntries(peer string, args *AppendArgs, reply *AppendReply) error {
	return t.call(peer, "Raft.AppendEntries", args, reply)
}

// Close closes all cached peer connections.
func (t *RPCTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, c := range t.clients {
		_ = c.Close()
		delete(t.clients, id)
	}
}

// raftService is the server half of RPCTransport: it exposes a node's RPC
// handlers under the "Raft" service name.
type raftService struct {
	n *Node
}

// RequestVote forwards to the node.
func (s *raftService) RequestVote(args *VoteArgs, reply *VoteReply) error {
	return s.n.RequestVote(args, reply)
}

// AppendEntries forwards to the node.
func (s *raftService) AppendEntries(args *AppendArgs, reply *AppendReply) error {
	return s.n.AppendEntries(args, reply)
}
