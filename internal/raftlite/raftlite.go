// Package raftlite is a compact, stdlib-only log-replication core for the
// TARDIS coordinator: leader election with randomized timeouts, a replicated
// log with majority commit, and a heartbeat-based leader lease. The cluster
// uses it to agree on worker membership and on which PartitionMap version is
// current, so replica-aware routing never splits brain.
//
// Scope (and non-goals, by design — see DESIGN.md §10): the ensemble is a
// small fixed set of coordinator nodes named at startup; there is no raft
// membership change, no persistence, no snapshots, and no log compaction. A
// restarted coordinator node rejoins with an empty log and catches up from
// the leader; losing a majority of coordinators loses the (reconstructible)
// membership view, never the index data, which lives on the shared
// filesystem.
package raftlite

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Entry is one replicated log record.
type Entry struct {
	Term  uint64
	Index uint64
	Cmd   []byte
}

// VoteArgs is the RequestVote RPC payload.
type VoteArgs struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

// VoteReply answers RequestVote.
type VoteReply struct {
	Term    uint64
	Granted bool
}

// AppendArgs is the AppendEntries RPC payload (also the heartbeat).
type AppendArgs struct {
	Term         uint64
	Leader       string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
}

// AppendReply answers AppendEntries. On consistency failure ConflictIndex
// tells the leader where to back nextIndex up to.
type AppendReply struct {
	Term          uint64
	Success       bool
	ConflictIndex uint64
}

// Transport delivers RPCs to a peer node by id. Implementations must be safe
// for concurrent use; errors are treated as "peer unreachable this round".
type Transport interface {
	RequestVote(peer string, args *VoteArgs, reply *VoteReply) error
	AppendEntries(peer string, args *AppendArgs, reply *AppendReply) error
}

// ErrNotLeader reports a proposal sent to a non-leader node, with a redirect
// hint when the node knows who leads.
type ErrNotLeader struct {
	Leader string
}

func (e *ErrNotLeader) Error() string {
	if e.Leader == "" {
		return "raftlite: not leader (no known leader)"
	}
	return fmt.Sprintf("raftlite: not leader (leader is %s)", e.Leader)
}

// ErrEntryLost reports that a proposed entry was overwritten by a new
// leader's log before committing; the caller must re-propose.
var ErrEntryLost = errors.New("raftlite: proposed entry lost to a newer leader")

// ErrStopped reports an operation on a stopped node.
var ErrStopped = errors.New("raftlite: node stopped")

// Node states.
const (
	follower = iota
	candidate
	leader
)

// Config configures one ensemble node.
type Config struct {
	// ID names this node; it must appear in Peers.
	ID string
	// Peers lists every ensemble member id, including ID.
	Peers []string
	// ElectionTimeout is the base election timeout; each deadline is drawn
	// uniformly from [ElectionTimeout, 2*ElectionTimeout). It is also the
	// leader-lease window. Zero defaults to 150ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's replication interval. Zero defaults to
	// ElectionTimeout/5.
	Heartbeat time.Duration
	// Seed makes the election-timeout jitter deterministic per node (the
	// node id is mixed in so peers sharing a seed still diverge).
	Seed int64
	// Apply is called with each committed entry, in log order, from a single
	// goroutine. It must not call back into the Node.
	Apply func(Entry)
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.ElectionTimeout / 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Node is one member of the coordination ensemble.
type Node struct {
	cfg Config
	tr  Transport

	mu               sync.Mutex
	state            int                  // guarded by mu
	term             uint64               // guarded by mu
	votedFor         string               // guarded by mu
	log              []Entry              // guarded by mu; log[0] is a sentinel
	commitIndex      uint64               // guarded by mu
	lastApplied      uint64               // guarded by mu
	nextIndex        map[string]uint64    // guarded by mu; leader volatile state
	matchIndex       map[string]uint64    // guarded by mu
	ackTime          map[string]time.Time // guarded by mu; last successful append per peer
	sending          map[string]bool      // guarded by mu; per-peer append in flight
	leaderID         string               // guarded by mu; last observed leader
	electionDeadline time.Time            // guarded by mu
	votes            int                  // guarded by mu; granted votes this election
	rng              *rand.Rand           // guarded by mu
	stopped          bool                 // guarded by mu

	poke chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// NewNode builds a node; call Start to begin participating.
func NewNode(cfg Config, tr Transport) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, errors.New("raftlite: node id required")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.ID {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("raftlite: id %q not in peer list %v", cfg.ID, cfg.Peers)
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.ID))
	n := &Node{
		cfg:        cfg,
		tr:         tr,
		log:        []Entry{{}}, // sentinel at index 0
		nextIndex:  map[string]uint64{},
		matchIndex: map[string]uint64{},
		ackTime:    map[string]time.Time{},
		sending:    map[string]bool{},
		rng:        rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64()))),
		poke:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	n.resetElectionDeadlineLocked()
	return n, nil
}

// Start launches the node's tick loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
}

// Stop halts the node. It blocks until the tick loop exits; in-flight RPC
// handlers may still mutate state afterwards, which is harmless (the node no
// longer initiates anything).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
}

// ID returns the node's id.
func (n *Node) ID() string { return n.cfg.ID }

// run is the single driver goroutine: elections, heartbeats, replication
// rounds, and applying committed entries all happen from here (RPC handlers
// only mutate state).
func (n *Node) run() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
		case <-n.poke:
		}
		n.step()
	}
}

func (n *Node) step() {
	n.mu.Lock()
	now := time.Now()
	switch n.state {
	case leader:
		n.advanceCommitLocked()
		n.broadcastAppendLocked()
	default:
		if now.After(n.electionDeadline) {
			n.startElectionLocked()
		}
	}
	n.applyCommittedLocked()
	n.mu.Unlock()
}

func (n *Node) resetElectionDeadlineLocked() {
	d := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout))) //tardislint:ignore lockflow caller holds mu
	n.electionDeadline = time.Now().Add(d)                                                 //tardislint:ignore lockflow caller holds mu
}

func (n *Node) lastLogLocked() (index, term uint64) {
	last := n.log[len(n.log)-1] //tardislint:ignore lockflow caller holds mu
	return last.Index, last.Term
}

// stepDownLocked moves to follower for a higher term.
func (n *Node) stepDownLocked(term uint64) {
	n.term = term      //tardislint:ignore lockflow caller holds mu
	n.state = follower //tardislint:ignore lockflow caller holds mu
	n.votedFor = ""    //tardislint:ignore lockflow caller holds mu
	n.resetElectionDeadlineLocked()
}

func (n *Node) startElectionLocked() {
	n.state = candidate   //tardislint:ignore lockflow caller holds mu
	n.term++              //tardislint:ignore lockflow caller holds mu
	n.votedFor = n.cfg.ID //tardislint:ignore lockflow caller holds mu
	n.votes = 1           // self //tardislint:ignore lockflow caller holds mu
	n.resetElectionDeadlineLocked()
	term := n.term //tardislint:ignore lockflow caller holds mu
	lastIdx, lastTerm := n.lastLogLocked()
	if n.votes > len(n.cfg.Peers)/2 { //tardislint:ignore lockflow caller holds mu
		// Single-node ensemble: self-vote is already a majority.
		n.becomeLeaderLocked()
		return
	}
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		peer := p
		go func() { //tardislint:ignore goroleak one-shot vote RPC bounded by the transport timeout
			args := VoteArgs{Term: term, Candidate: n.cfg.ID, LastLogIndex: lastIdx, LastLogTerm: lastTerm}
			var reply VoteReply
			if err := n.tr.RequestVote(peer, &args, &reply); err != nil {
				return
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			if reply.Term > n.term {
				n.stepDownLocked(reply.Term)
				return
			}
			if n.state != candidate || n.term != term || !reply.Granted {
				return
			}
			n.votes++
			if n.votes > len(n.cfg.Peers)/2 {
				n.becomeLeaderLocked()
			}
		}()
	}
}

func (n *Node) becomeLeaderLocked() {
	n.state = leader      //tardislint:ignore lockflow caller holds mu
	n.leaderID = n.cfg.ID //tardislint:ignore lockflow caller holds mu
	lastIdx, _ := n.lastLogLocked()
	now := time.Now()
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = lastIdx + 1 //tardislint:ignore lockflow caller holds mu
		n.matchIndex[p] = 0          //tardislint:ignore lockflow caller holds mu
		n.ackTime[p] = now           //tardislint:ignore lockflow caller holds mu
	}
	n.matchIndex[n.cfg.ID] = lastIdx //tardislint:ignore lockflow caller holds mu
	n.broadcastAppendLocked()
}

// broadcastAppendLocked sends one replication round: for each peer without an
// append already in flight, ship everything from its nextIndex (possibly
// nothing — a heartbeat). RPCs run outside the lock.
func (n *Node) broadcastAppendLocked() {
	term := n.term //tardislint:ignore lockflow caller holds mu
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID || n.sending[p] { //tardislint:ignore lockflow caller holds mu
			continue
		}
		next := n.nextIndex[p] //tardislint:ignore lockflow caller holds mu
		if next < 1 {
			next = 1
		}
		prev := n.log[next-1]                       //tardislint:ignore lockflow caller holds mu
		entries := make([]Entry, len(n.log[next:])) //tardislint:ignore lockflow caller holds mu
		copy(entries, n.log[next:])                 //tardislint:ignore lockflow caller holds mu
		args := AppendArgs{
			Term: term, Leader: n.cfg.ID,
			PrevLogIndex: prev.Index, PrevLogTerm: prev.Term,
			Entries: entries, LeaderCommit: n.commitIndex, //tardislint:ignore lockflow caller holds mu
		}
		n.sending[p] = true //tardislint:ignore lockflow caller holds mu
		peer := p
		go func() { //tardislint:ignore goroleak one-shot append RPC bounded by the transport timeout; sending[peer] serializes rounds
			var reply AppendReply
			err := n.tr.AppendEntries(peer, &args, &reply)
			n.mu.Lock()
			defer n.mu.Unlock()
			n.sending[peer] = false
			if err != nil {
				return
			}
			if reply.Term > n.term {
				n.stepDownLocked(reply.Term)
				return
			}
			if n.state != leader || n.term != term {
				return
			}
			if reply.Success {
				m := args.PrevLogIndex + uint64(len(args.Entries))
				if m > n.matchIndex[peer] {
					n.matchIndex[peer] = m
				}
				n.nextIndex[peer] = m + 1
				n.ackTime[peer] = time.Now()
				n.advanceCommitLocked()
			} else {
				ci := reply.ConflictIndex
				if ci < 1 {
					ci = 1
				}
				if ci < n.nextIndex[peer] {
					n.nextIndex[peer] = ci
				} else if n.nextIndex[peer] > 1 {
					n.nextIndex[peer]--
				}
			}
		}()
	}
}

// advanceCommitLocked commits the highest current-term index replicated on a
// majority.
func (n *Node) advanceCommitLocked() {
	lastIdx, _ := n.lastLogLocked()
	n.matchIndex[n.cfg.ID] = lastIdx                 //tardislint:ignore lockflow caller holds mu
	for idx := lastIdx; idx > n.commitIndex; idx-- { //tardislint:ignore lockflow caller holds mu
		if n.log[idx].Term != n.term { //tardislint:ignore lockflow caller holds mu
			break // only current-term entries commit by counting (§5.4.2)
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx { //tardislint:ignore lockflow caller holds mu
				count++
			}
		}
		if count > len(n.cfg.Peers)/2 {
			n.commitIndex = idx //tardislint:ignore lockflow caller holds mu
			break
		}
	}
}

// applyCommittedLocked feeds newly committed entries to cfg.Apply in order.
// Called only from the run goroutine, so applications never interleave.
func (n *Node) applyCommittedLocked() {
	for n.lastApplied < n.commitIndex { //tardislint:ignore lockflow caller holds mu
		n.lastApplied++           //tardislint:ignore lockflow caller holds mu
		e := n.log[n.lastApplied] //tardislint:ignore lockflow caller holds mu
		if n.cfg.Apply != nil {
			n.mu.Unlock()
			n.cfg.Apply(e)
			n.mu.Lock()
		}
	}
}

// RequestVote is the RPC handler for a candidate's vote request.
func (n *Node) RequestVote(args *VoteArgs, reply *VoteReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Term > n.term {
		n.stepDownLocked(args.Term)
	}
	reply.Term = n.term
	if args.Term < n.term {
		return nil
	}
	lastIdx, lastTerm := n.lastLogLocked()
	upToDate := args.LastLogTerm > lastTerm ||
		(args.LastLogTerm == lastTerm && args.LastLogIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == args.Candidate) && upToDate {
		n.votedFor = args.Candidate
		reply.Granted = true
		n.resetElectionDeadlineLocked()
	}
	return nil
}

// AppendEntries is the RPC handler for the leader's replication/heartbeat.
func (n *Node) AppendEntries(args *AppendArgs, reply *AppendReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	reply.Term = n.term
	if args.Term < n.term {
		return nil
	}
	if args.Term > n.term || n.state != follower {
		n.stepDownLocked(args.Term)
		reply.Term = n.term
	}
	n.leaderID = args.Leader
	n.resetElectionDeadlineLocked()
	lastIdx, _ := n.lastLogLocked()
	if args.PrevLogIndex > lastIdx {
		reply.ConflictIndex = lastIdx + 1
		return nil
	}
	if n.log[args.PrevLogIndex].Term != args.PrevLogTerm {
		// Back up to the start of the conflicting term.
		ci := args.PrevLogIndex
		for ci > 1 && n.log[ci-1].Term == n.log[args.PrevLogIndex].Term {
			ci--
		}
		reply.ConflictIndex = ci
		return nil
	}
	// Append, truncating at the first divergence.
	for i, e := range args.Entries {
		idx := args.PrevLogIndex + 1 + uint64(i)
		if idx <= lastIdx && n.log[idx].Term != e.Term {
			n.log = n.log[:idx]
			lastIdx = idx - 1
		}
		if idx > lastIdx {
			n.log = append(n.log, e)
			lastIdx = idx
		}
	}
	if args.LeaderCommit > n.commitIndex {
		n.commitIndex = min(args.LeaderCommit, lastIdx)
	}
	reply.Success = true
	return nil
}

// Propose appends a command to the leader's log and triggers replication. It
// returns the entry's (index, term); commitment is asynchronous — use
// WaitCommitted. Non-leaders return *ErrNotLeader with a redirect hint.
func (n *Node) Propose(cmd []byte) (index, term uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return 0, 0, ErrStopped
	}
	if n.state != leader {
		hint := n.leaderID
		if hint == n.cfg.ID {
			hint = ""
		}
		return 0, 0, &ErrNotLeader{Leader: hint}
	}
	lastIdx, _ := n.lastLogLocked()
	e := Entry{Term: n.term, Index: lastIdx + 1, Cmd: cmd}
	n.log = append(n.log, e)
	select {
	case n.poke <- struct{}{}:
	default:
	}
	return e.Index, e.Term, nil
}

// WaitCommitted blocks until the entry proposed at (index, term) is committed
// and applied, the entry is overwritten by a newer leader (ErrEntryLost), or
// ctx expires.
func (n *Node) WaitCommitted(ctx context.Context, index, term uint64) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		n.mu.Lock()
		lastIdx, _ := n.lastLogLocked()
		switch {
		case index <= lastIdx && n.log[index].Term != term:
			n.mu.Unlock()
			return ErrEntryLost
		case n.lastApplied >= index:
			n.mu.Unlock()
			return nil
		case n.stopped:
			n.mu.Unlock()
			return ErrStopped
		}
		n.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// IsLeader reports whether this node currently leads with a live lease: a
// majority of peers (self included) acked an append within the last election
// timeout, so no other node can have been elected since.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hasLeaseLocked()
}

func (n *Node) hasLeaseLocked() bool {
	if n.state != leader { //tardislint:ignore lockflow caller holds mu
		return false
	}
	if len(n.cfg.Peers) == 1 {
		return true
	}
	cutoff := time.Now().Add(-n.cfg.ElectionTimeout)
	count := 1 // self
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		if n.ackTime[p].After(cutoff) { //tardislint:ignore lockflow caller holds mu
			count++
		}
	}
	return count > len(n.cfg.Peers)/2
}

// LeaderHint returns the last observed leader id ("" when unknown).
func (n *Node) LeaderHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID
}

// Status is a point-in-time snapshot of a node's raft state.
type Status struct {
	ID          string
	Term        uint64
	Leader      bool
	LeaderID    string
	CommitIndex uint64
	LogLength   uint64
}

// Status snapshots the node's state for diagnostics.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	lastIdx, _ := n.lastLogLocked()
	return Status{
		ID:          n.cfg.ID,
		Term:        n.term,
		Leader:      n.hasLeaseLocked(),
		LeaderID:    n.leaderID,
		CommitIndex: n.commitIndex,
		LogLength:   lastIdx,
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
