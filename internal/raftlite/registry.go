package raftlite

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"
)

// Registry is the replicated state machine the ensemble agrees on: which
// workers are members (registered and recently heartbeating) and which
// PartitionMap version is current. Commands are proposed on the leader,
// committed by majority, and applied deterministically on every node — the
// leader stamps wall-clock times into the command itself so replicas never
// consult their own clocks at apply time.
type Registry struct {
	node *Node

	mu         sync.Mutex
	members    map[string]Member // guarded by mu; keyed by worker address
	mapVersion uint64            // guarded by mu
	mapData    []byte            // guarded by mu; opaque committed PartitionMap bytes
}

// Member is one registered worker.
type Member struct {
	Addr string `json:"addr"`
	ID   string `json:"id"`
	// LastSeenUnixMilli is the leader-stamped time of the last heartbeat.
	LastSeenUnixMilli int64 `json:"last_seen_unix_milli"`
}

// command is the wire form of one state-machine operation.
type command struct {
	Op         string `json:"op"` // register | heartbeat | unregister | setmap
	Addr       string `json:"addr,omitempty"`
	ID         string `json:"id,omitempty"`
	UnixMilli  int64  `json:"unix_milli,omitempty"`
	MapVersion uint64 `json:"map_version,omitempty"`
	MapData    []byte `json:"map_data,omitempty"`
}

// NewRegistry builds the registry and its ensemble node. cfg.Apply is
// overwritten; everything else is honored.
func NewRegistry(cfg Config, tr Transport) (*Registry, error) {
	r := &Registry{members: map[string]Member{}}
	cfg.Apply = r.apply
	n, err := NewNode(cfg, tr)
	if err != nil {
		return nil, err
	}
	r.node = n
	return r, nil
}

// Node returns the underlying ensemble node (for Start/Stop and status).
func (r *Registry) Node() *Node { return r.node }

// apply is the deterministic state transition for one committed entry.
func (r *Registry) apply(e Entry) {
	var c command
	if err := json.Unmarshal(e.Cmd, &c); err != nil {
		return // a malformed entry is skipped identically on every replica
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch c.Op {
	case "register", "heartbeat":
		r.members[c.Addr] = Member{Addr: c.Addr, ID: c.ID, LastSeenUnixMilli: c.UnixMilli}
	case "unregister":
		delete(r.members, c.Addr)
	case "setmap":
		// Monotonic guard: a stale proposal (raced with a newer one) is a
		// no-op, so the committed map version only ever moves forward.
		if c.MapVersion > r.mapVersion {
			r.mapVersion = c.MapVersion
			r.mapData = c.MapData
		}
	}
}

// propose submits a command on this node and waits for it to commit.
func (r *Registry) propose(ctx context.Context, c command) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	idx, term, err := r.node.Propose(data)
	if err != nil {
		return err
	}
	return r.node.WaitCommitted(ctx, idx, term)
}

// Register records a worker as a member.
func (r *Registry) Register(ctx context.Context, addr, id string) error {
	return r.propose(ctx, command{Op: "register", Addr: addr, ID: id, UnixMilli: time.Now().UnixMilli()})
}

// Heartbeat refreshes a worker's liveness timestamp.
func (r *Registry) Heartbeat(ctx context.Context, addr, id string) error {
	return r.propose(ctx, command{Op: "heartbeat", Addr: addr, ID: id, UnixMilli: time.Now().UnixMilli()})
}

// Unregister removes a worker from the membership.
func (r *Registry) Unregister(ctx context.Context, addr string) error {
	return r.propose(ctx, command{Op: "unregister", Addr: addr})
}

// ProposeMap commits a new PartitionMap version. Versions must move forward;
// proposing one at or below the committed version fails without a log entry.
func (r *Registry) ProposeMap(ctx context.Context, version uint64, data []byte) error {
	r.mu.Lock()
	cur := r.mapVersion
	r.mu.Unlock()
	if version <= cur {
		return fmt.Errorf("raftlite: map version %d not newer than committed %d", version, cur)
	}
	return r.propose(ctx, command{Op: "setmap", MapVersion: version, MapData: data})
}

// RegistryState is a snapshot of the committed coordinator state.
type RegistryState struct {
	Members    []Member `json:"members"`
	MapVersion uint64   `json:"map_version"`
	MapData    []byte   `json:"map_data,omitempty"`
	LeaderID   string   `json:"leader_id"`
	IsLeader   bool     `json:"is_leader"`
	Term       uint64   `json:"term"`
}

// State snapshots the registry as applied on this node. Followers may lag the
// leader by in-flight entries; the map version is still monotonic.
func (r *Registry) State() RegistryState {
	st := r.node.Status()
	r.mu.Lock()
	defer r.mu.Unlock()
	members := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Addr < members[j].Addr })
	return RegistryState{
		Members:    members,
		MapVersion: r.mapVersion,
		MapData:    append([]byte(nil), r.mapData...),
		LeaderID:   st.LeaderID,
		IsLeader:   st.Leader,
		Term:       st.Term,
	}
}

// --- net/rpc surface -------------------------------------------------------

// CoordArgs carries one coordinator request.
type CoordArgs struct {
	Addr       string
	ID         string
	MapVersion uint64
	MapData    []byte
}

// CoordReply answers a coordinator request. When the receiving node is not
// the leader, OK is false and Redirect names the leader (may be empty during
// an election).
type CoordReply struct {
	OK       bool
	Redirect string
	State    RegistryState
}

// proposeTimeout bounds a coordinator-side commit wait.
const proposeTimeout = 5 * time.Second

// coordService exposes the registry under the "Coord" net/rpc service name.
type coordService struct {
	reg *Registry
}

func (s *coordService) do(fn func(ctx context.Context) error, reply *CoordReply) error {
	ctx, cancel := context.WithTimeout(context.Background(), proposeTimeout)
	defer cancel()
	err := fn(ctx)
	var nl *ErrNotLeader
	if errors.As(err, &nl) {
		reply.OK = false
		reply.Redirect = nl.Leader
		return nil
	}
	if err != nil {
		return err
	}
	reply.OK = true
	reply.State = s.reg.State()
	return nil
}

// Register handles a worker registration.
func (s *coordService) Register(args *CoordArgs, reply *CoordReply) error {
	return s.do(func(ctx context.Context) error {
		return s.reg.Register(ctx, args.Addr, args.ID)
	}, reply)
}

// Heartbeat handles a worker heartbeat.
func (s *coordService) Heartbeat(args *CoordArgs, reply *CoordReply) error {
	return s.do(func(ctx context.Context) error {
		return s.reg.Heartbeat(ctx, args.Addr, args.ID)
	}, reply)
}

// ProposeMap handles a PartitionMap version commit.
func (s *coordService) ProposeMap(args *CoordArgs, reply *CoordReply) error {
	return s.do(func(ctx context.Context) error {
		return s.reg.ProposeMap(ctx, args.MapVersion, args.MapData)
	}, reply)
}

// State returns this node's applied registry state without proposing.
func (s *coordService) State(_ *CoordArgs, reply *CoordReply) error {
	reply.OK = true
	reply.State = s.reg.State()
	return nil
}

// Serve runs a coordinator node's RPC server on the listener: the "Raft"
// service for ensemble peers and the "Coord" service for workers and query
// frontends. It returns when the listener closes, after draining in-flight
// connections.
func Serve(ln net.Listener, reg *Registry) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Raft", &raftService{n: reg.node}); err != nil {
		return err
	}
	if err := srv.RegisterName("Coord", &coordService{reg: reg}); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}
