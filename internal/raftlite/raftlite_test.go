package raftlite

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// testEnsemble starts n registry nodes on a LocalNet and returns them with
// their network. Nodes are stopped on cleanup.
func testEnsemble(t *testing.T, n int) (*LocalNet, []*Registry) {
	t.Helper()
	ln := NewLocalNet()
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("coord-%d", i)
	}
	regs := make([]*Registry, n)
	for i := range regs {
		cfg := Config{
			ID: peers[i], Peers: peers,
			ElectionTimeout: 50 * time.Millisecond,
			Heartbeat:       10 * time.Millisecond,
			Seed:            int64(1000 + i),
		}
		reg, err := NewRegistry(cfg, ln.Transport(peers[i]))
		if err != nil {
			t.Fatal(err)
		}
		ln.Register(reg.Node())
		regs[i] = reg
	}
	for _, r := range regs {
		r.Node().Start()
	}
	t.Cleanup(func() {
		for _, r := range regs {
			r.Node().Stop()
		}
	})
	return ln, regs
}

// waitLeader polls until exactly one live node holds a lease, returning it.
func waitLeader(t *testing.T, regs []*Registry, exclude map[string]bool) *Registry {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var leaders []*Registry
		for _, r := range regs {
			if exclude[r.Node().ID()] {
				continue
			}
			if r.Node().IsLeader() {
				leaders = append(leaders, r)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no single leader elected within 5s")
	return nil
}

func TestElectionAndSingleLeader(t *testing.T) {
	_, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	if leader.Node().Status().Term == 0 {
		t.Fatal("leader term should be positive")
	}
}

func TestSingleNodeEnsemble(t *testing.T) {
	_, regs := testEnsemble(t, 1)
	leader := waitLeader(t, regs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := leader.Register(ctx, "127.0.0.1:7701", "w0"); err != nil {
		t.Fatal(err)
	}
	st := leader.State()
	if len(st.Members) != 1 || st.Members[0].Addr != "127.0.0.1:7701" {
		t.Fatalf("members = %+v", st.Members)
	}
}

func TestReplicationReachesFollowers(t *testing.T) {
	_, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := leader.Register(ctx, "127.0.0.1:7701", "w0"); err != nil {
		t.Fatal(err)
	}
	if err := leader.ProposeMap(ctx, 1, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Followers apply on their next heartbeat; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for _, r := range regs {
		for {
			st := r.State()
			if st.MapVersion == 1 && len(st.Members) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never applied: %+v", r.Node().ID(), st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestProposeOnFollowerRedirects(t *testing.T) {
	_, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, r := range regs {
		if r == leader {
			continue
		}
		err := r.Register(ctx, "127.0.0.1:7702", "w1")
		var nl *ErrNotLeader
		if !errors.As(err, &nl) {
			t.Fatalf("follower propose error = %v; want ErrNotLeader", err)
		}
		if nl.Leader != leader.Node().ID() {
			t.Fatalf("redirect hint = %q; want %q", nl.Leader, leader.Node().ID())
		}
		return
	}
}

func TestLeaderKillReelectsAndStateSurvives(t *testing.T) {
	lnet, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := leader.ProposeMap(ctx, 1, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Let the commit replicate to the followers before the kill, then sever
	// and stop the old leader.
	deadline := time.Now().Add(2 * time.Second)
	for {
		applied := 0
		for _, r := range regs {
			if r.State().MapVersion == 1 {
				applied++
			}
		}
		if applied == len(regs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("map v1 never replicated to all nodes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killed := leader.Node().ID()
	lnet.Cut(killed)
	leader.Node().Stop()

	newLeader := waitLeader(t, regs, map[string]bool{killed: true})
	if newLeader.Node().ID() == killed {
		t.Fatal("killed leader still leading")
	}
	st := newLeader.State()
	if st.MapVersion != 1 {
		t.Fatalf("committed map version lost across failover: %d", st.MapVersion)
	}
	// The new leader keeps making progress.
	if err := newLeader.ProposeMap(ctx, 2, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if v := newLeader.State().MapVersion; v != 2 {
		t.Fatalf("map version after failover propose = %d; want 2", v)
	}
}

func TestMapVersionMonotonic(t *testing.T) {
	_, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := leader.ProposeMap(ctx, 3, []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := leader.ProposeMap(ctx, 3, []byte(`{"v":3b}`)); err == nil {
		t.Fatal("re-proposing the committed version should fail")
	}
	if err := leader.ProposeMap(ctx, 2, []byte(`{"v":2}`)); err == nil {
		t.Fatal("proposing an older version should fail")
	}
	if v := leader.State().MapVersion; v != 3 {
		t.Fatalf("map version = %d; want 3", v)
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	lnet, regs := testEnsemble(t, 3)
	leader := waitLeader(t, regs, nil)
	// Isolate the leader: its lease expires and proposals cannot commit.
	lnet.Cut(leader.Node().ID())
	deadline := time.Now().Add(2 * time.Second)
	for leader.Node().IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("isolated leader kept its lease past the election timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := leader.Register(ctx, "127.0.0.1:7709", "wX"); err == nil {
		t.Fatal("isolated node committed a proposal without a majority")
	}
}

// TestServeAndClient exercises the real net/rpc path end to end: a 3-node
// ensemble served over TCP, a worker registering and heartbeating through
// Client with leader redirect, and a map commit visible via State.
func TestServeAndClient(t *testing.T) {
	const n = 3
	ids := make([]string, n)
	addrs := map[string]string{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("coord-%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[ids[i]] = ln.Addr().String()
	}
	regs := make([]*Registry, n)
	for i := 0; i < n; i++ {
		tr := NewRPCTransport(addrs, time.Second)
		t.Cleanup(tr.Close)
		reg, err := NewRegistry(Config{
			ID: ids[i], Peers: ids,
			ElectionTimeout: 100 * time.Millisecond,
			Heartbeat:       20 * time.Millisecond,
			Seed:            int64(2000 + i),
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = reg
		go Serve(listeners[i], reg) //nolint:errcheck // returns when the listener closes
		reg.Node().Start()
	}
	t.Cleanup(func() {
		for i := range regs {
			listeners[i].Close()
			regs[i].Node().Stop()
		}
	})
	waitLeader(t, regs, nil)

	all := make([]string, 0, n)
	for _, id := range ids {
		all = append(all, addrs[id])
	}
	client, err := NewClient(all, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	if _, err := client.Register("127.0.0.1:7701", "w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Heartbeat("127.0.0.1:7701", "w0"); err != nil {
		t.Fatal(err)
	}
	if err := client.ProposeMap(1, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	st, err := client.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 1 || st.Members[0].Addr != "127.0.0.1:7701" {
		t.Fatalf("members = %+v", st.Members)
	}
	// State may answer from a lagging follower; the commit must appear soon.
	deadline := time.Now().Add(2 * time.Second)
	for st.MapVersion != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("map version = %d; want 1", st.MapVersion)
		}
		time.Sleep(10 * time.Millisecond)
		if st, err = client.State(); err != nil {
			t.Fatal(err)
		}
	}
}
