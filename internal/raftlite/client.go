package raftlite

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// Client talks to the coordinator ensemble from the outside (workers, query
// frontends, the repair loop). It tries the known coordinator addresses,
// follows leader redirects, and caches the address that last answered as
// leader. All methods are safe for concurrent use.
type Client struct {
	addrs   []string // immutable after New
	timeout time.Duration

	mu      sync.Mutex
	leader  string                 // guarded by mu; address that last led
	clients map[string]*rpc.Client // guarded by mu
}

// NewClient builds a coordinator client over the given ensemble addresses.
// timeout bounds each dial and call; zero defaults to 3s.
func NewClient(addrs []string, timeout time.Duration) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("raftlite: no coordinator addresses")
	}
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	return &Client{
		addrs:   append([]string(nil), addrs...),
		timeout: timeout,
		clients: map[string]*rpc.Client{},
	}, nil
}

// Close closes all cached connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, cl := range c.clients {
		_ = cl.Close()
		delete(c.clients, addr)
	}
}

func (c *Client) conn(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	if cl := c.clients[addr]; cl != nil {
		c.mu.Unlock()
		return cl, nil
	}
	c.mu.Unlock()
	nc, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, err
	}
	cl := rpc.NewClient(nc)
	c.mu.Lock()
	if prev := c.clients[addr]; prev != nil {
		c.mu.Unlock()
		_ = cl.Close()
		return prev, nil
	}
	c.clients[addr] = cl
	c.mu.Unlock()
	return cl, nil
}

func (c *Client) drop(addr string, cl *rpc.Client) {
	c.mu.Lock()
	if c.clients[addr] == cl {
		delete(c.clients, addr)
	}
	c.mu.Unlock()
	_ = cl.Close()
}

func (c *Client) callAddr(addr, method string, args *CoordArgs, reply *CoordReply) error {
	cl, err := c.conn(addr)
	if err != nil {
		return err
	}
	call := cl.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		if call.Error != nil {
			c.drop(addr, cl)
			return call.Error
		}
		return nil
	case <-timer.C:
		c.drop(addr, cl)
		return fmt.Errorf("raftlite: %s to %s timed out", method, addr)
	}
}

// call tries the cached leader first, then every ensemble address, following
// one redirect hop per answer, until a node accepts.
func (c *Client) call(method string, args *CoordArgs) (*CoordReply, error) {
	c.mu.Lock()
	cached := c.leader
	c.mu.Unlock()
	order := make([]string, 0, len(c.addrs)+1)
	if cached != "" {
		order = append(order, cached)
	}
	for _, a := range c.addrs {
		if a != cached {
			order = append(order, a)
		}
	}
	var errs []error
	for _, addr := range order {
		var reply CoordReply
		err := c.callAddr(addr, method, args, &reply)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		if reply.OK {
			c.mu.Lock()
			c.leader = addr
			c.mu.Unlock()
			return &reply, nil
		}
		if reply.Redirect != "" && reply.Redirect != addr {
			var redirected CoordReply
			if rerr := c.callAddr(reply.Redirect, method, args, &redirected); rerr == nil && redirected.OK {
				c.mu.Lock()
				c.leader = reply.Redirect
				c.mu.Unlock()
				return &redirected, nil
			}
		}
		errs = append(errs, fmt.Errorf("%s: not leader", addr))
	}
	return nil, fmt.Errorf("raftlite: no coordinator accepted %s: %w", method, errors.Join(errs...))
}

// Register registers a worker with the committed membership.
func (c *Client) Register(addr, id string) (RegistryState, error) {
	reply, err := c.call("Coord.Register", &CoordArgs{Addr: addr, ID: id})
	if err != nil {
		return RegistryState{}, err
	}
	return reply.State, nil
}

// Heartbeat refreshes a worker's membership entry.
func (c *Client) Heartbeat(addr, id string) (RegistryState, error) {
	reply, err := c.call("Coord.Heartbeat", &CoordArgs{Addr: addr, ID: id})
	if err != nil {
		return RegistryState{}, err
	}
	return reply.State, nil
}

// ProposeMap commits a new PartitionMap version through the leader.
func (c *Client) ProposeMap(version uint64, data []byte) error {
	_, err := c.call("Coord.ProposeMap", &CoordArgs{MapVersion: version, MapData: data})
	return err
}

// State reads the registry state from any reachable node (committed state;
// a follower may lag the leader by in-flight entries).
func (c *Client) State() (RegistryState, error) {
	var errs []error
	for _, addr := range c.addrs {
		var reply CoordReply
		if err := c.callAddr(addr, "Coord.State", &CoordArgs{}, &reply); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		return reply.State, nil
	}
	return RegistryState{}, fmt.Errorf("raftlite: no coordinator reachable: %w", errors.Join(errs...))
}
