// Package faultinj is the deterministic fault-injection harness behind the
// cluster layer's robustness tests. Production code is instrumented with
// named failpoints (Inject/InjectAs) and tests arm a Schedule that decides —
// as a pure function of the failpoint name, an optional label, and the
// occurrence counter — whether a given hit returns an injected error, sleeps,
// hangs until released, or (for the net wrappers in listener.go) drops the
// connection mid-body. Nothing in a Schedule consults wall-clock time or a
// shared random stream at decision point, so a failure scenario reproduces
// exactly across runs and under -race in CI.
//
// When no schedule is armed the failpoints cost one atomic load, so the
// instrumentation stays in production builds.
package faultinj

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
)

// mFaultEvents counts every fault actually fired. Points and kinds are
// code-defined constants, so both labels are bounded.
var mFaultEvents = obs.NewCounterVec("tardis_faultinj_events_total",
	"Injected faults fired, by failpoint and fault kind.", "point", "kind")

// ErrInjected is the default error returned by an Err or Drop rule. Callers
// can test for it with errors.Is.
var ErrInjected = errors.New("faultinj: injected fault")

// Kind selects what a matched rule does to the hit.
type Kind uint8

const (
	// KindErr makes the failpoint return an error (rule.Err or ErrInjected).
	KindErr Kind = iota + 1
	// KindDelay sleeps rule.Sleep, then lets the operation proceed.
	KindDelay
	// KindHang blocks until the schedule is released or disabled, then
	// returns an error. It models a stuck worker: the operation never
	// completes on its own, but the test can unstick it for cleanup.
	KindHang
	// KindDrop closes the connection (net wrappers) or returns an error
	// (plain failpoints), modeling an abrupt peer disappearance.
	KindDrop
	// KindCloseMidBody writes roughly half the buffer and then closes the
	// connection — a response truncated on the wire. Only meaningful on the
	// conn wrapper's write path; elsewhere it behaves like KindDrop.
	KindCloseMidBody
)

func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindDelay:
		return "delay"
	case KindHang:
		return "hang"
	case KindDrop:
		return "drop"
	case KindCloseMidBody:
		return "close-mid-body"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule arms one failpoint. A rule matches a hit when the point names are
// equal, the label contains Label (empty matches everything), and the
// per-(point,label) occurrence counter is in Hits (nil matches every hit).
type Rule struct {
	// Point is the failpoint name, e.g. "worker.Spill" or "conn.read".
	Point string
	// Label filters by the hit's label (substring match). Net wrappers label
	// hits with the worker address; storage labels with the file path, so a
	// rule can target one worker or one partition file.
	Label string
	// Hits lists 1-based occurrence numbers the rule fires on; nil fires on
	// every occurrence.
	Hits []int
	// Kind selects the fault.
	Kind Kind
	// Sleep is the KindDelay duration.
	Sleep time.Duration
	// Err overrides ErrInjected for KindErr.
	Err error
}

func (r Rule) matches(point, label string, hit int) bool {
	if r.Point != point {
		return false
	}
	if r.Label != "" && !strings.Contains(label, r.Label) {
		return false
	}
	if r.Hits == nil {
		return true
	}
	for _, h := range r.Hits {
		if h == hit {
			return true
		}
	}
	return false
}

// Event records one fired fault for test assertions.
type Event struct {
	Point string
	Label string
	Hit   int
	Kind  Kind
}

// Schedule is an armed set of rules plus the occurrence counters that make
// firing deterministic. A Schedule is safe for concurrent use.
type Schedule struct {
	mu      sync.Mutex
	rules   []Rule
	counts  map[string]int // guarded by mu
	events  []Event        // guarded by mu
	release chan struct{}
	done    bool // guarded by mu; set once release is closed
}

// NewSchedule builds a schedule from the given rules.
func NewSchedule(rules ...Rule) *Schedule {
	return &Schedule{
		rules:   rules,
		counts:  map[string]int{},
		release: make(chan struct{}),
	}
}

// eval counts one hit of (point, label) and returns the first matching rule
// (by rule order) along with the hit number, or nil.
func (s *Schedule) eval(point, label string) (*Rule, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := point + "|" + label
	s.counts[key]++
	hit := s.counts[key]
	for i := range s.rules {
		if s.rules[i].matches(point, label, hit) {
			s.events = append(s.events, Event{Point: point, Label: label, Hit: hit, Kind: s.rules[i].Kind})
			// Both labels are bounded: points are code-defined constants and
			// kind names the small Kind enum.
			kind := s.rules[i].Kind.String()
			mFaultEvents.With(point, kind).Inc()
			return &s.rules[i], hit
		}
	}
	return nil, hit
}

// Events returns a copy of the faults fired so far.
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Release unblocks every KindHang currently (and subsequently) blocked on
// this schedule. It is idempotent.
func (s *Schedule) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.done = true
		close(s.release)
	}
}

// hang blocks until the schedule is released.
func (s *Schedule) hang() {
	<-s.release
}

// active is the armed schedule; nil means every failpoint is a no-op.
var active atomic.Pointer[Schedule]

// Enable arms s globally. Tests must pair it with Disable (t.Cleanup).
func Enable(s *Schedule) { active.Store(s) }

// Disable releases any hung failpoints of the armed schedule and disarms it.
func Disable() {
	if s := active.Load(); s != nil {
		s.Release()
	}
	active.Store(nil)
}

// Enabled reports whether a schedule is armed.
func Enabled() bool { return active.Load() != nil }

// Inject is InjectAs with an empty label.
func Inject(point string) error { return InjectAs(point, "") }

// InjectAs consults the armed schedule at a named failpoint. It returns nil
// when nothing is armed or no rule fires; otherwise it applies the rule:
// delay sleeps and returns nil, err/drop return an injected error, hang
// blocks until release and then returns an injected error.
func InjectAs(point, label string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	rule, hit := s.eval(point, label)
	if rule == nil {
		return nil
	}
	switch rule.Kind {
	case KindDelay:
		time.Sleep(rule.Sleep)
		return nil
	case KindHang:
		s.hang()
		return fmt.Errorf("%s hit %d (%s %s): %w", point, hit, "hang", label, ErrInjected)
	case KindErr:
		if rule.Err != nil {
			return fmt.Errorf("%s hit %d (%s): %w", point, hit, label, rule.Err)
		}
		return fmt.Errorf("%s hit %d (%s): %w", point, hit, label, ErrInjected)
	default: // KindDrop, KindCloseMidBody degrade to an error at a plain failpoint
		return fmt.Errorf("%s hit %d (%s %s): %w", point, hit, rule.Kind, label, ErrInjected)
	}
}

// RandomSchedule derives a reproducible schedule from a seed: n rules spread
// over the given failpoints with kinds drawn from {err, drop, delay} and
// occurrence numbers in [1, maxHit]. Hang is excluded — random schedules are
// for soak-style matrix tests that must terminate on their own. The same
// (seed, points, n, maxHit) always yields the same schedule.
func RandomSchedule(seed int64, points []string, n, maxHit int) *Schedule {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	kinds := []Kind{KindErr, KindDrop, KindDelay}
	rules := make([]Rule, 0, n)
	for i := 0; i < n && len(points) > 0; i++ {
		r := Rule{
			Point: points[next()%uint64(len(points))],
			Hits:  []int{1 + int(next()%uint64(maxHit))},
			Kind:  kinds[next()%uint64(len(kinds))],
			Sleep: time.Duration(1+next()%10) * time.Millisecond,
		}
		rules = append(rules, r)
	}
	return NewSchedule(rules...)
}
