package faultinj

import (
	"net"
	"time"
)

// Net failpoints consulted by the wrappers below. Labels carry the wrapped
// listener's label (typically the worker address), so a schedule can break
// one worker's wire while the rest stay healthy.
const (
	PointAccept    = "conn.accept"
	PointConnRead  = "conn.read"
	PointConnWrite = "conn.write"
)

// Listener wraps a net.Listener so every accepted connection routes its
// reads and writes through the armed schedule.
type Listener struct {
	net.Listener
	label string
}

// WrapListener labels ln for fault injection. With no schedule armed the
// wrapper adds one atomic load per I/O call.
func WrapListener(ln net.Listener, label string) *Listener {
	return &Listener{Listener: ln, label: label}
}

// Accept accepts the next connection and wraps it. A KindDrop or KindErr
// rule on conn.accept closes the fresh connection and keeps listening —
// from the peer's side the server accepted and immediately hung up.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if ierr := InjectAs(PointAccept, l.label); ierr != nil {
		_ = c.Close()
		// Hand the (closed) conn to the caller anyway: an rpc server will
		// fail its first read and drop it, which is the failure mode we are
		// modeling; returning an error would stop the whole accept loop.
	}
	return &conn{Conn: c, label: l.label}, nil
}

// conn routes Read/Write through the schedule.
type conn struct {
	net.Conn
	label string
}

func (c *conn) Read(p []byte) (int, error) {
	s := active.Load()
	if s == nil {
		return c.Conn.Read(p)
	}
	rule, _ := s.eval(PointConnRead, c.label)
	if rule == nil {
		return c.Conn.Read(p)
	}
	switch rule.Kind {
	case KindDelay:
		time.Sleep(rule.Sleep)
		return c.Conn.Read(p)
	case KindHang:
		s.hang()
		_ = c.Conn.Close()
		return 0, ErrInjected
	default: // err, drop, close-mid-body: tear the wire down
		_ = c.Conn.Close()
		return 0, ErrInjected
	}
}

func (c *conn) Write(p []byte) (int, error) {
	s := active.Load()
	if s == nil {
		return c.Conn.Write(p)
	}
	rule, _ := s.eval(PointConnWrite, c.label)
	if rule == nil {
		return c.Conn.Write(p)
	}
	switch rule.Kind {
	case KindDelay:
		time.Sleep(rule.Sleep)
		return c.Conn.Write(p)
	case KindHang:
		s.hang()
		_ = c.Conn.Close()
		return 0, ErrInjected
	case KindCloseMidBody:
		n, _ := c.Conn.Write(p[:len(p)/2])
		_ = c.Conn.Close()
		return n, ErrInjected
	default: // err, drop
		_ = c.Conn.Close()
		return 0, ErrInjected
	}
}
