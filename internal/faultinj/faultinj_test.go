package faultinj

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("no schedule should be armed at start")
	}
	if err := Inject("anything"); err != nil {
		t.Fatalf("disarmed failpoint returned %v", err)
	}
}

func TestRuleMatching(t *testing.T) {
	s := NewSchedule(
		Rule{Point: "op", Hits: []int{2}, Kind: KindErr},
		Rule{Point: "labeled", Label: "w2", Kind: KindErr},
	)
	Enable(s)
	t.Cleanup(Disable)

	if err := Inject("op"); err != nil {
		t.Fatalf("hit 1 should pass: %v", err)
	}
	if err := Inject("op"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 should fail with ErrInjected, got %v", err)
	}
	if err := Inject("op"); err != nil {
		t.Fatalf("hit 3 should pass: %v", err)
	}
	if err := InjectAs("labeled", "worker-w1"); err != nil {
		t.Fatalf("label w1 should pass: %v", err)
	}
	if err := InjectAs("labeled", "worker-w2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("label w2 should fail, got %v", err)
	}
	ev := s.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %+v, want 2", ev)
	}
	if ev[0].Point != "op" || ev[0].Hit != 2 || ev[1].Label != "worker-w2" {
		t.Fatalf("unexpected events %+v", ev)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	Enable(NewSchedule(Rule{Point: "io", Kind: KindErr, Err: sentinel}))
	t.Cleanup(Disable)
	if err := Inject("io"); !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
}

func TestHangReleases(t *testing.T) {
	s := NewSchedule(Rule{Point: "stuck", Kind: KindHang})
	Enable(s)
	t.Cleanup(Disable)

	done := make(chan error, 1)
	go func() { done <- Inject("stuck") }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang should return ErrInjected, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hang did not release")
	}
	s.Release() // idempotent
}

func TestDeterministicCounters(t *testing.T) {
	run := func() []Event {
		s := NewSchedule(Rule{Point: "op", Hits: []int{2, 4}, Kind: KindErr})
		Enable(s)
		defer Disable()
		for i := 0; i < 5; i++ {
			_ = Inject("op")
		}
		return s.Events()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same schedule diverged:\n%v\n%v", a, b)
	}
	if len(a) != 2 || a[0].Hit != 2 || a[1].Hit != 4 {
		t.Fatalf("unexpected events %v", a)
	}
}

func TestRandomScheduleReproducible(t *testing.T) {
	points := []string{"a", "b", "c"}
	s1 := RandomSchedule(7, points, 5, 10)
	s2 := RandomSchedule(7, points, 5, 10)
	if fmt.Sprint(s1.rules) != fmt.Sprint(s2.rules) {
		t.Fatalf("same seed produced different rules:\n%v\n%v", s1.rules, s2.rules)
	}
	s3 := RandomSchedule(8, points, 5, 10)
	if fmt.Sprint(s1.rules) == fmt.Sprint(s3.rules) {
		t.Fatal("different seeds produced identical rules")
	}
	for _, r := range s1.rules {
		if r.Kind == KindHang {
			t.Fatal("random schedules must not hang")
		}
	}
}

// echoServer accepts connections on ln and echoes bytes until EOF.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				wg.Wait()
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
}

func TestConnWrapperDrop(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close() })
	ln := WrapListener(base, "w1")
	echoServer(t, ln)

	// Healthy round-trip with no schedule armed.
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo failed: %q %v", buf, err)
	}
	_ = c.Close()

	// Drop the server's second read on this worker: the client sees the
	// connection reset instead of an echo.
	Enable(NewSchedule(Rule{Point: PointConnRead, Label: "w1", Hits: []int{2}, Kind: KindDrop}))
	t.Cleanup(Disable)
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("first echo should survive: %q %v", buf, err)
	}
	if _, err := c2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, buf); err == nil {
		t.Fatal("second echo should have died with the dropped connection")
	}
}
