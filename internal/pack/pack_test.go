package pack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func items(sizes ...int64) []Item {
	out := make([]Item, len(sizes))
	for i, s := range sizes {
		out[i] = Item{ID: i, Size: s}
	}
	return out
}

func TestPackValidation(t *testing.T) {
	if _, err := Pack(items(1), 0, FirstFitDecreasing); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := Pack([]Item{{ID: 0, Size: -1}}, 10, FirstFitDecreasing); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := Pack(items(1), 10, Algorithm(99)); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestFFDBasic(t *testing.T) {
	// Sizes 7,5,4,3,1 with capacity 10: FFD gives [7,3], [5,4,1] = 2 bins.
	res, err := Pack(items(7, 5, 4, 3, 1), 10, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 2 {
		t.Fatalf("bins = %d, want 2; %+v", len(res.Bins), res.Bins)
	}
	if res.Bins[0].Used != 10 || res.Bins[1].Used != 10 {
		t.Errorf("bin fills = %d,%d, want 10,10", res.Bins[0].Used, res.Bins[1].Used)
	}
}

func TestOversize(t *testing.T) {
	res, err := Pack(items(15, 5), 10, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Oversize) != 1 || res.Oversize[0].Size != 15 {
		t.Errorf("oversize = %+v, want one item of size 15", res.Oversize)
	}
	if len(res.Bins) != 1 || res.Bins[0].Used != 5 {
		t.Errorf("bins = %+v", res.Bins)
	}
}

func TestEmptyAndZeroSizes(t *testing.T) {
	res, err := Pack(nil, 10, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 0 || len(res.Oversize) != 0 {
		t.Error("empty input should produce nothing")
	}
	res, err = Pack(items(0, 0, 0), 10, FirstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 1 {
		t.Errorf("zero-size items should share one bin, got %d", len(res.Bins))
	}
}

func TestDeterminism(t *testing.T) {
	in := items(3, 3, 3, 7, 7, 2)
	a, _ := Pack(in, 10, FirstFitDecreasing)
	b, _ := Pack(in, 10, FirstFitDecreasing)
	if len(a.Bins) != len(b.Bins) {
		t.Fatal("non-deterministic bin count")
	}
	for i := range a.Bins {
		if len(a.Bins[i].Items) != len(b.Bins[i].Items) {
			t.Fatal("non-deterministic bin contents")
		}
		for j := range a.Bins[i].Items {
			if a.Bins[i].Items[j] != b.Bins[i].Items[j] {
				t.Fatal("non-deterministic item order")
			}
		}
	}
}

func TestAlgorithms(t *testing.T) {
	in := items(6, 5, 4, 3, 2, 1)
	for _, alg := range []Algorithm{FirstFitDecreasing, BestFitDecreasing, NextFitDecreasing} {
		res, err := Pack(in, 7, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkValid(t, in, res, 7, alg)
	}
	// NFD can never do better than FFD on this instance.
	ffd, _ := Pack(in, 7, FirstFitDecreasing)
	nfd, _ := Pack(in, 7, NextFitDecreasing)
	if len(nfd.Bins) < len(ffd.Bins) {
		t.Errorf("NFD (%d bins) beat FFD (%d bins)", len(nfd.Bins), len(ffd.Bins))
	}
}

func TestAlgorithmString(t *testing.T) {
	if FirstFitDecreasing.String() != "FFD" || BestFitDecreasing.String() != "BFD" ||
		NextFitDecreasing.String() != "NFD" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Error("unknown algorithm name wrong")
	}
}

func TestLowerBound(t *testing.T) {
	if lb := LowerBound(items(5, 5, 5), 10); lb != 2 {
		t.Errorf("lower bound = %d, want 2", lb)
	}
	if lb := LowerBound(nil, 10); lb != 0 {
		t.Errorf("lower bound of empty = %d, want 0", lb)
	}
	if lb := LowerBound(items(5), 0); lb != 0 {
		t.Errorf("lower bound with zero capacity = %d, want 0", lb)
	}
}

func TestUtilization(t *testing.T) {
	res, _ := Pack(items(10, 10), 10, FirstFitDecreasing)
	if u := Utilization(res, 10); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
	if u := Utilization(Result{}, 10); u != 0 {
		t.Errorf("utilization of empty = %v, want 0", u)
	}
}

func checkValid(t *testing.T, in []Item, res Result, capacity int64, alg Algorithm) {
	t.Helper()
	sizes := map[int]int64{}
	for _, it := range in {
		sizes[it.ID] = it.Size
	}
	seen := map[int]bool{}
	for _, b := range res.Bins {
		var used int64
		for _, id := range b.Items {
			if seen[id] {
				t.Fatalf("%v: item %d packed twice", alg, id)
			}
			seen[id] = true
			used += sizes[id]
		}
		if used != b.Used {
			t.Fatalf("%v: bin Used=%d but items sum to %d", alg, b.Used, used)
		}
		if used > capacity {
			t.Fatalf("%v: bin overflows capacity: %d > %d", alg, used, capacity)
		}
	}
	for _, it := range res.Oversize {
		if seen[it.ID] {
			t.Fatalf("%v: oversize item %d also packed", alg, it.ID)
		}
		seen[it.ID] = true
	}
	if len(seen) != len(in) {
		t.Fatalf("%v: packed %d items, want %d", alg, len(seen), len(in))
	}
}

// Properties for random instances: every item placed exactly once, no bin
// overflows, FFD stays within 3/2 of the capacity lower bound (its absolute
// worst-case guarantee), and FFD never uses more bins than NFD.
func TestPackingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		capacity := int64(50 + rng.Intn(100))
		in := make([]Item, n)
		for i := range in {
			in[i] = Item{ID: i, Size: int64(rng.Intn(int(capacity)) + 1)}
		}
		ffd, err := Pack(in, capacity, FirstFitDecreasing)
		if err != nil {
			return false
		}
		checkValid(t, in, ffd, capacity, FirstFitDecreasing)
		bfd, err := Pack(in, capacity, BestFitDecreasing)
		if err != nil {
			return false
		}
		checkValid(t, in, bfd, capacity, BestFitDecreasing)
		nfd, err := Pack(in, capacity, NextFitDecreasing)
		if err != nil {
			return false
		}
		checkValid(t, in, nfd, capacity, NextFitDecreasing)
		lb := LowerBound(in, capacity)
		if len(ffd.Bins) > lb*3/2+1 {
			return false
		}
		return len(ffd.Bins) <= len(nfd.Bins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
