// Package pack solves the Leaf Partitions Packing problem of TARDIS's
// partition-assignment phase (paper Definition 5): group the under-utilized
// sibling leaf nodes under one parent into as few fixed-capacity partitions
// as possible. Bin packing is NP-hard, so TARDIS adopts First-Fit-Decreasing
// (FFD), the classic O(n log n) approximation with asymptotic worst-case
// ratio 11/9 (≤ 3/2 absolute). Best-Fit-Decreasing and Next-Fit-Decreasing
// are provided for the ablation benchmarks.
package pack

import (
	"fmt"
	"sort"
)

// Item is one leaf node to pack: an opaque id and its size (record count).
type Item struct {
	ID   int
	Size int64
}

// Bin is one produced partition: the ids of the items placed in it and the
// total occupied size.
type Bin struct {
	Items []int
	Used  int64
}

// Result is the outcome of a packing run.
type Result struct {
	Bins []Bin
	// Oversize lists items whose individual size exceeded the capacity;
	// each is returned alone so callers can split it across dedicated
	// partitions (TARDIS gives such leaves their own partition set).
	Oversize []Item
}

// Algorithm selects the packing heuristic.
type Algorithm int

const (
	// FirstFitDecreasing sorts items by size descending and places each in
	// the first bin with room — the paper's choice.
	FirstFitDecreasing Algorithm = iota
	// BestFitDecreasing places each item in the fullest bin that still has
	// room (ablation).
	BestFitDecreasing
	// NextFitDecreasing only ever considers the most recently opened bin
	// (ablation; cheapest, loosest).
	NextFitDecreasing
)

// String names the algorithm for reports.
func (a Algorithm) String() string {
	switch a {
	case FirstFitDecreasing:
		return "FFD"
	case BestFitDecreasing:
		return "BFD"
	case NextFitDecreasing:
		return "NFD"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Pack groups items into bins of the given capacity using the selected
// algorithm. Items larger than the capacity are reported in
// Result.Oversize instead of being binned. Pack is deterministic: ties are
// broken by item id.
func Pack(items []Item, capacity int64, alg Algorithm) (Result, error) {
	if capacity <= 0 {
		return Result{}, fmt.Errorf("pack: capacity must be positive, got %d", capacity)
	}
	sorted := make([]Item, 0, len(items))
	var res Result
	for _, it := range items {
		if it.Size < 0 {
			return Result{}, fmt.Errorf("pack: negative size %d for item %d", it.Size, it.ID)
		}
		if it.Size > capacity {
			res.Oversize = append(res.Oversize, it)
			continue
		}
		sorted = append(sorted, it)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].ID < sorted[j].ID
	})
	sort.Slice(res.Oversize, func(i, j int) bool { return res.Oversize[i].ID < res.Oversize[j].ID })

	switch alg {
	case FirstFitDecreasing:
		for _, it := range sorted {
			placed := false
			for b := range res.Bins {
				if res.Bins[b].Used+it.Size <= capacity {
					res.Bins[b].Items = append(res.Bins[b].Items, it.ID)
					res.Bins[b].Used += it.Size
					placed = true
					break
				}
			}
			if !placed {
				res.Bins = append(res.Bins, Bin{Items: []int{it.ID}, Used: it.Size})
			}
		}
	case BestFitDecreasing:
		for _, it := range sorted {
			best := -1
			var bestFree int64
			for b := range res.Bins {
				free := capacity - res.Bins[b].Used
				if it.Size <= free && (best == -1 || free < bestFree) {
					best, bestFree = b, free
				}
			}
			if best == -1 {
				res.Bins = append(res.Bins, Bin{Items: []int{it.ID}, Used: it.Size})
			} else {
				res.Bins[best].Items = append(res.Bins[best].Items, it.ID)
				res.Bins[best].Used += it.Size
			}
		}
	case NextFitDecreasing:
		for _, it := range sorted {
			last := len(res.Bins) - 1
			if last >= 0 && res.Bins[last].Used+it.Size <= capacity {
				res.Bins[last].Items = append(res.Bins[last].Items, it.ID)
				res.Bins[last].Used += it.Size
			} else {
				res.Bins = append(res.Bins, Bin{Items: []int{it.ID}, Used: it.Size})
			}
		}
	default:
		return Result{}, fmt.Errorf("pack: unknown algorithm %d", int(alg))
	}
	return res, nil
}

// LowerBound returns the trivial capacity lower bound on the number of bins:
// ceil(total size / capacity). Oversize items count by their ceil share.
func LowerBound(items []Item, capacity int64) int {
	if capacity <= 0 {
		return 0
	}
	var total int64
	for _, it := range items {
		total += it.Size
	}
	return int((total + capacity - 1) / capacity)
}

// Utilization returns the mean fill fraction of the produced bins, a quality
// measure reported by the ablation bench. It returns 0 for no bins.
func Utilization(res Result, capacity int64) float64 {
	if len(res.Bins) == 0 || capacity <= 0 {
		return 0
	}
	var used int64
	for _, b := range res.Bins {
		used += b.Used
	}
	return float64(used) / float64(capacity) / float64(len(res.Bins))
}
