package ibt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/ts"
)

const (
	testWordLen   = 8
	testSeriesLen = 64
	testMaxBits   = 6
)

func randomEntry(t *testing.T, rng *rand.Rand, rid int64) Entry {
	t.Helper()
	s := make(ts.Series, testSeriesLen)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	s = s.ZNormalize()
	w, err := isax.FromSeries(s, testWordLen, testMaxBits)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Word: w, RID: rid, Series: s}
}

func buildRandomTree(t *testing.T, seed int64, n int, threshold int64, policy SplitPolicy) (*Tree, []Entry) {
	t.Helper()
	tree, err := New(testWordLen, testMaxBits, threshold, policy)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = randomEntry(t, rng, int64(i))
		if err := tree.Insert(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tree, entries
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 6, 10, RoundRobin); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := New(8, 0, 10, RoundRobin); err == nil {
		t.Error("maxBits=0 should fail")
	}
	if _, err := New(8, ts.MaxCardinalityBits+1, 10, RoundRobin); err == nil {
		t.Error("maxBits over limit should fail")
	}
	if _, err := New(8, 6, 0, RoundRobin); err == nil {
		t.Error("threshold=0 should fail")
	}
	if _, err := New(8, 6, 10, SplitPolicy(7)); err == nil {
		t.Error("bad policy should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	tree, _ := New(8, 6, 10, RoundRobin)
	short := isax.Word{Symbols: []int{1}, Bits: []int{6}}
	if err := tree.Insert(Entry{Word: short}); err == nil {
		t.Error("short word should fail")
	}
	partial := isax.Word{Symbols: make([]int, 8), Bits: []int{6, 6, 6, 6, 6, 6, 6, 1}}
	if err := tree.Insert(Entry{Word: partial}); err == nil {
		t.Error("non-uniform cardinality should fail")
	}
}

func TestInsertAndFind(t *testing.T) {
	for _, policy := range []SplitPolicy{RoundRobin, StatisticsBased} {
		tree, entries := buildRandomTree(t, 1, 500, 20, policy)
		if tree.Count() != 500 {
			t.Fatalf("%v: count = %d", policy, tree.Count())
		}
		for _, e := range entries {
			leaf := tree.FindLeaf(e.Word)
			if leaf == nil {
				t.Fatalf("%v: FindLeaf returned nil for %v", policy, e.Word)
			}
			found := false
			for _, le := range leaf.Entries {
				if le.RID == e.RID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: entry %d not in its leaf", policy, e.RID)
			}
			if ok, _ := leaf.Word.Covers(e.Word); !ok {
				t.Fatalf("%v: leaf %v does not cover %v", policy, leaf.Word, e.Word)
			}
		}
	}
}

func TestBinaryFanout(t *testing.T) {
	tree, _ := buildRandomTree(t, 2, 1000, 25, StatisticsBased)
	tree.Walk(func(n *Node) {
		if n.IsLeaf() {
			return
		}
		kids := 0
		for _, c := range n.Children {
			if c != nil {
				kids++
			}
		}
		if kids < 1 || kids > 2 {
			t.Fatalf("internal node with %d children", kids)
		}
	})
}

func TestCountsConsistent(t *testing.T) {
	tree, _ := buildRandomTree(t, 3, 800, 30, StatisticsBased)
	tree.Walk(func(n *Node) {
		if n.IsLeaf() {
			if int64(len(n.Entries)) != n.Count {
				t.Fatalf("leaf count %d != entries %d", n.Count, len(n.Entries))
			}
			return
		}
		var sum int64
		for _, c := range n.Children {
			if c != nil {
				sum += c.Count
			}
		}
		if sum != n.Count {
			t.Fatalf("internal count %d != children sum %d", n.Count, sum)
		}
	})
}

func TestSplitThresholdRespected(t *testing.T) {
	tree, _ := buildRandomTree(t, 4, 2000, 50, StatisticsBased)
	for _, leaf := range tree.Leaves() {
		splittable := false
		for _, b := range leaf.Word.Bits {
			if b < testMaxBits {
				splittable = true
				break
			}
		}
		if splittable && int64(len(leaf.Entries)) > 50 {
			t.Fatalf("splittable leaf holds %d entries", len(leaf.Entries))
		}
	}
}

func TestConversionsCounted(t *testing.T) {
	tree, _ := buildRandomTree(t, 5, 200, 10, StatisticsBased)
	if tree.Conversions == 0 {
		t.Error("character conversions should be counted during construction")
	}
	before := tree.Conversions
	tree.FindLeaf(randomEntry(t, rand.New(rand.NewSource(6)), 99999).Word)
	if tree.Conversions <= before {
		t.Error("lookups should also count conversions")
	}
}

func TestTargetNode(t *testing.T) {
	tree, entries := buildRandomTree(t, 7, 1000, 30, StatisticsBased)
	node, ok := tree.TargetNode(entries[0].Word, 10)
	if node == nil {
		t.Fatal("target node should exist: the entry's own first-level node is populated")
	}
	if ok && node.Count < 10 {
		t.Fatalf("ok target node holds only %d < 10", node.Count)
	}
	if !ok && node.Count >= 10 {
		t.Fatalf("!ok but subtree holds %d >= 10", node.Count)
	}
	if _, ok := tree.TargetNode(entries[0].Word, 100000); ok {
		t.Error("k beyond dataset should report !ok")
	}
	// Unseen word with an empty first-level slot.
	empty := isax.Word{Symbols: make([]int, testWordLen), Bits: make([]int, testWordLen)}
	for i := range empty.Bits {
		empty.Bits[i] = testMaxBits
		if i%2 == 0 {
			empty.Symbols[i] = (1 << testMaxBits) - 1
		}
	}
	if n, ok := tree.TargetNode(empty, 10); n != nil && ok {
		t.Log("alternating extreme word unexpectedly present; fine")
	}
}

func TestCollectEntries(t *testing.T) {
	tree, entries := buildRandomTree(t, 8, 300, 20, RoundRobin)
	var total []Entry
	for _, key := range sortedFirstLevelKeys(tree) {
		total = CollectEntries(tree.firstLevel[key], total)
	}
	if len(total) != len(entries) {
		t.Fatalf("collected %d, want %d", len(total), len(entries))
	}
}

func sortedFirstLevelKeys(t *Tree) []string {
	keys := make([]string, 0, len(t.firstLevel))
	for k := range t.firstLevel {
		keys = append(keys, k)
	}
	// order irrelevant for the test; return as-is
	return keys
}

func TestPruneCollectSound(t *testing.T) {
	tree, entries := buildRandomTree(t, 9, 800, 40, StatisticsBased)
	rng := rand.New(rand.NewSource(10))
	q := make(ts.Series, testSeriesLen)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	paa := ts.MustPAA(q, testWordLen)

	// Brute force k nearest.
	k := 10
	type dr struct {
		d   float64
		rid int64
	}
	all := make([]dr, len(entries))
	for i, e := range entries {
		d, _ := ts.EuclideanDistance(q, e.Series)
		all[i] = dr{d, e.RID}
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	got, _ := tree.PruneCollect(paa, testSeriesLen, all[k-1].d)
	in := map[int64]bool{}
	for _, e := range got {
		in[e.RID] = true
	}
	for i := 0; i < k; i++ {
		if !in[all[i].rid] {
			t.Fatalf("true neighbor %d pruned", all[i].rid)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tree, _ := buildRandomTree(t, 11, 600, 25, StatisticsBased)
	s := tree.ComputeStats()
	if s.Nodes != tree.NodeCount() || s.Leaves != tree.LeafCount() {
		t.Errorf("stats nodes/leaves %d/%d != tree %d/%d", s.Nodes, s.Leaves, tree.NodeCount(), tree.LeafCount())
	}
	if s.Internal+s.Leaves != s.Nodes {
		t.Error("internal + leaves != nodes")
	}
	if s.TotalEntries != 600 {
		t.Errorf("total entries %d", s.TotalEntries)
	}
	if s.AvgLeafDepth < 1 {
		t.Errorf("avg leaf depth %v < 1", s.AvgLeafDepth)
	}
}

// The paper's structural claim: the binary iBT is deeper and has more
// internal nodes than the K-ary sigTree at the same threshold. Here we only
// sanity-check that depth grows beyond the first level under load.
func TestDepthGrowsUnderLoad(t *testing.T) {
	tree, _ := buildRandomTree(t, 12, 3000, 20, StatisticsBased)
	s := tree.ComputeStats()
	if s.MaxLeafDepth < 3 {
		t.Errorf("expected depth at least 3 under load, got %d", s.MaxLeafDepth)
	}
}

func TestStatisticsPolicyShallowerThanRoundRobin(t *testing.T) {
	rr, _ := buildRandomTree(t, 13, 3000, 20, RoundRobin)
	st, _ := buildRandomTree(t, 13, 3000, 20, StatisticsBased)
	rrs, sts := rr.ComputeStats(), st.ComputeStats()
	if sts.AvgLeafDepth > rrs.AvgLeafDepth+0.5 {
		t.Errorf("statistics policy (%v) much deeper than round robin (%v)",
			sts.AvgLeafDepth, rrs.AvgLeafDepth)
	}
}

func TestSerializedSizePositiveAndGrows(t *testing.T) {
	small, _ := buildRandomTree(t, 14, 100, 20, StatisticsBased)
	large, _ := buildRandomTree(t, 14, 2000, 20, StatisticsBased)
	if small.SerializedSize() <= 0 {
		t.Error("size should be positive")
	}
	if large.SerializedSize() <= small.SerializedSize() {
		t.Error("larger tree should serialize larger")
	}
}

// Property: every entry is findable regardless of policy and threshold.
func TestFindableProperty(t *testing.T) {
	f := func(seed int64) bool {
		threshold := int64(5 + int(seed%20+20)%20)
		policy := RoundRobin
		if seed%2 == 0 {
			policy = StatisticsBased
		}
		tree, entries := buildRandomTree(t, seed, 200, threshold, policy)
		for _, e := range entries {
			leaf := tree.FindLeaf(e.Word)
			if leaf == nil {
				return false
			}
			ok := false
			for _, le := range leaf.Entries {
				if le.RID == e.RID {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
