// Package ibt implements the baseline iSAX Binary Tree index (Shieh & Keogh
// KDD'08, bulk-loading and statistics-based splitting from iSAX 2.0,
// ICDM'10). The iBT is the building block of the DPiSAX baseline system the
// TARDIS paper compares against; it exhibits the limitations the paper
// analyzes — binary fan-out (deep leaves, many internal nodes),
// character-level variable cardinality (expensive conversions, weak
// proximity preservation), and a large initial cardinality requirement.
package ibt

import (
	"fmt"
	"sort"

	"github.com/tardisdb/tardis/internal/isax"
	"github.com/tardisdb/tardis/internal/ts"
)

// Entry is one indexed element: the full-cardinality iSAX word, record id,
// and (for clustered indices) the raw series.
type Entry struct {
	Word   isax.Word
	RID    int64
	Series ts.Series
}

// SplitPolicy selects which segment (character) gains a bit when a leaf
// splits.
type SplitPolicy int

const (
	// RoundRobin cycles through the segments in order — the original KDD'08
	// policy, known to over-subdivide.
	RoundRobin SplitPolicy = iota
	// StatisticsBased picks the segment whose one-bit refinement divides the
	// leaf's entries most evenly (iSAX 2.0), producing shallower trees.
	StatisticsBased
)

// String names the split policy.
func (p SplitPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case StatisticsBased:
		return "statistics"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", int(p))
	}
}

// Node is one iBT node. The tree is binary below the first level: each
// internal node has split one character by one bit, producing at most two
// children.
type Node struct {
	Word     isax.Word
	Parent   *Node
	Children [2]*Node // indexed by the appended bit
	SplitSeg int      // segment split at this node; -1 for leaves
	Count    int64
	Entries  []Entry
	leaf     bool
	rrNext   int // round-robin cursor
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Tree is an iSAX binary tree with a 2^w-wide first level (one node per
// 1-bit word) and binary splits below it.
type Tree struct {
	w         int // word length
	maxBits   int // initial cardinality bits: the split budget per segment
	threshold int64
	policy    SplitPolicy

	firstLevel map[string]*Node
	count      int64
	nodeCount  int
	leafCount  int

	// Conversions counts single-character cardinality demotions performed
	// during inserts and lookups — the cost iSAX-T eliminates. The paper's
	// construction-time gap is driven by this quantity.
	Conversions int64
}

// New creates an empty iBT. maxBits is the initial cardinality exponent
// (DPiSAX defaults to 9, i.e. cardinality 512); threshold is the leaf split
// threshold.
func New(w, maxBits int, threshold int64, policy SplitPolicy) (*Tree, error) {
	if w < 1 {
		return nil, fmt.Errorf("ibt: word length must be positive, got %d", w)
	}
	if maxBits < 1 || maxBits > ts.MaxCardinalityBits {
		return nil, fmt.Errorf("ibt: maxBits %d out of range [1, %d]", maxBits, ts.MaxCardinalityBits)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("ibt: split threshold must be positive, got %d", threshold)
	}
	if policy != RoundRobin && policy != StatisticsBased {
		return nil, fmt.Errorf("ibt: unknown split policy %d", int(policy))
	}
	return &Tree{
		w: w, maxBits: maxBits, threshold: threshold, policy: policy,
		firstLevel: map[string]*Node{},
	}, nil
}

// WordLength returns the tree's word length.
func (t *Tree) WordLength() int { return t.w }

// MaxBits returns the per-segment cardinality budget in bits.
func (t *Tree) MaxBits() int { return t.maxBits }

// Count returns the number of inserted entries.
func (t *Tree) Count() int64 { return t.count }

// NodeCount returns the number of nodes (first level included).
func (t *Tree) NodeCount() int { return t.nodeCount }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return t.leafCount }

// firstLevelKey demotes a full word to 1 bit per segment and renders the
// first-level key, counting the per-character conversions honestly.
func (t *Tree) firstLevelKey(w isax.Word) string {
	ones := make([]int, t.w)
	for i := range ones {
		ones[i] = 1
	}
	demoted, conv := w.DemoteTo(ones)
	t.Conversions += int64(conv)
	return demoted.Key()
}

// Insert adds an entry, splitting leaves that exceed the threshold. The
// entry's word must be uniform at the tree's full cardinality.
func (t *Tree) Insert(e Entry) error {
	if e.Word.Len() != t.w {
		return fmt.Errorf("ibt: word length %d != tree word length %d", e.Word.Len(), t.w)
	}
	for i, b := range e.Word.Bits {
		if b != t.maxBits {
			return fmt.Errorf("ibt: segment %d has %d bits, want full cardinality %d", i, b, t.maxBits)
		}
	}
	key := t.firstLevelKey(e.Word)
	node := t.firstLevel[key]
	if node == nil {
		ones := make([]int, t.w)
		for i := range ones {
			ones[i] = 1
		}
		sig, _ := e.Word.DemoteTo(ones)
		node = &Node{Word: sig, SplitSeg: -1, leaf: true}
		t.firstLevel[key] = node
		t.nodeCount++
		t.leafCount++
	}
	node.Count++
	t.count++
	for !node.leaf {
		bit := isax.ChildBit(e.Word, node.SplitSeg, node.Word.Bits[node.SplitSeg])
		t.Conversions++ // extracting the routing bit is a character demotion
		child := node.Children[bit]
		if child == nil {
			lo, hi := node.Word.SplitChar(node.SplitSeg)
			cw := lo
			if bit == 1 {
				cw = hi
			}
			child = &Node{Word: cw, Parent: node, SplitSeg: -1, leaf: true}
			node.Children[bit] = child
			t.nodeCount++
			t.leafCount++
		}
		node = child
		node.Count++
	}
	node.Entries = append(node.Entries, e)
	if int64(len(node.Entries)) > t.threshold {
		t.split(node)
	}
	return nil
}

// split promotes a leaf to an internal node, choosing the split segment by
// the tree's policy. If no segment has cardinality budget left the leaf
// stays oversized.
func (t *Tree) split(n *Node) {
	seg := t.chooseSplitSegment(n)
	if seg < 0 {
		return // cardinality exhausted on all segments
	}
	entries := n.Entries
	n.Entries = nil
	n.leaf = false
	n.SplitSeg = seg
	t.leafCount--
	lo, hi := n.Word.SplitChar(seg)
	words := [2]isax.Word{lo, hi}
	for _, e := range entries {
		bit := isax.ChildBit(e.Word, seg, n.Word.Bits[seg])
		t.Conversions++
		child := n.Children[bit]
		if child == nil {
			child = &Node{Word: words[bit], Parent: n, SplitSeg: -1, leaf: true}
			n.Children[bit] = child
			t.nodeCount++
			t.leafCount++
		}
		child.Count++
		child.Entries = append(child.Entries, e)
	}
	for _, child := range n.Children {
		if child != nil && int64(len(child.Entries)) > t.threshold {
			t.split(child)
		}
	}
}

func (t *Tree) chooseSplitSegment(n *Node) int {
	switch t.policy {
	case RoundRobin:
		for tries := 0; tries < t.w; tries++ {
			seg := (n.rrNext + tries) % t.w
			if n.Word.Bits[seg] < t.maxBits {
				n.rrNext = (seg + 1) % t.w
				return seg
			}
		}
		return -1
	case StatisticsBased:
		best, bestBalance := -1, -1.0
		for seg := 0; seg < t.w; seg++ {
			if n.Word.Bits[seg] >= t.maxBits {
				continue
			}
			var ones int
			for _, e := range n.Entries {
				if isax.ChildBit(e.Word, seg, n.Word.Bits[seg]) == 1 {
					ones++
				}
			}
			t.Conversions += int64(len(n.Entries))
			p := float64(ones) / float64(len(n.Entries))
			balance := p * (1 - p) // maximized at an even split
			if balance > bestBalance {
				best, bestBalance = seg, balance
			}
		}
		return best
	}
	return -1
}

// FindLeaf descends to the leaf covering the given full-cardinality word,
// or nil when the path dead-ends (word never seen during construction).
func (t *Tree) FindLeaf(w isax.Word) *Node {
	key := t.firstLevelKey(w)
	node := t.firstLevel[key]
	for node != nil && !node.leaf {
		bit := isax.ChildBit(w, node.SplitSeg, node.Word.Bits[node.SplitSeg])
		t.Conversions++
		node = node.Children[bit]
	}
	return node
}

// TargetNode returns the lowest node on the word's path holding at least k
// entries, mirroring sigtree.Tree.TargetNode for the baseline's kNN
// approximate query. When even the matched first-level subtree holds fewer
// than k entries it returns that subtree with ok=false — the best available
// scope; the caller decides whether to widen the search. It returns
// (nil, false) only when the word's first-level node does not exist.
func (t *Tree) TargetNode(w isax.Word, k int64) (*Node, bool) {
	key := t.firstLevelKey(w)
	node := t.firstLevel[key]
	if node == nil {
		return nil, false
	}
	if node.Count < k {
		return node, false
	}
	for !node.leaf {
		bit := isax.ChildBit(w, node.SplitSeg, node.Word.Bits[node.SplitSeg])
		t.Conversions++
		child := node.Children[bit]
		if child == nil || child.Count < k {
			return node, true
		}
		node = child
	}
	return node, true
}

// Walk visits all nodes in deterministic order (first level sorted by key,
// then children 0 before 1), parents before children.
func (t *Tree) Walk(visit func(*Node)) {
	keys := make([]string, 0, len(t.firstLevel))
	for k := range t.firstLevel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			if c != nil {
				rec(c)
			}
		}
	}
	for _, k := range keys {
		rec(t.firstLevel[k])
	}
}

// Leaves returns all leaves in deterministic order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.leaf {
			out = append(out, n)
		}
	})
	return out
}

// CollectEntries appends every entry under n to out.
func CollectEntries(n *Node, out []Entry) []Entry {
	if n.leaf {
		return append(out, n.Entries...)
	}
	for _, c := range n.Children {
		if c != nil {
			out = CollectEntries(c, out)
		}
	}
	return out
}

// MinDist lower-bounds the distance from a query (PAA and original length)
// to anything under the node, using the node's per-character cardinalities.
func (n *Node) MinDist(paa ts.Series, seriesLen int) float64 {
	return n.Word.MinDistPAA(paa, seriesLen)
}

// PruneCollect gathers entries of leaves whose lower bound does not exceed
// threshold, for the baseline's refine phases.
func (t *Tree) PruneCollect(paa ts.Series, seriesLen int, threshold float64) ([]Entry, int) {
	var out []Entry
	pruned := 0
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.MinDist(paa, seriesLen) > threshold {
			pruned += leafCountUnder(n)
			return
		}
		if n.leaf {
			out = append(out, n.Entries...)
			return
		}
		for _, c := range n.Children {
			if c != nil {
				rec(c)
			}
		}
	}
	keys := make([]string, 0, len(t.firstLevel))
	for k := range t.firstLevel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec(t.firstLevel[k])
	}
	return out, pruned
}

func leafCountUnder(n *Node) int {
	if n.leaf {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		if c != nil {
			total += leafCountUnder(c)
		}
	}
	return total
}

// Stats summarizes the tree shape for the ablation comparisons against the
// sigTree.
type Stats struct {
	Nodes        int
	Internal     int
	Leaves       int
	MaxLeafDepth int     // depth in split steps below the first level + 1
	AvgLeafDepth float64 // mean leaf depth
	AvgLeafSize  float64
	TotalEntries int64
}

// ComputeStats walks the tree and returns shape statistics. Depth is
// measured in tree levels: first-level nodes are at depth 1, each binary
// split adds 1.
func (t *Tree) ComputeStats() Stats {
	s := Stats{TotalEntries: t.count}
	var depthSum, sizeSum int64
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		s.Nodes++
		if n.leaf {
			s.Leaves++
			depthSum += int64(depth)
			sizeSum += int64(len(n.Entries))
			if depth > s.MaxLeafDepth {
				s.MaxLeafDepth = depth
			}
			return
		}
		s.Internal++
		for _, c := range n.Children {
			if c != nil {
				rec(c, depth+1)
			}
		}
	}
	for _, n := range t.firstLevel {
		rec(n, 1)
	}
	if s.Leaves > 0 {
		s.AvgLeafDepth = float64(depthSum) / float64(s.Leaves)
		s.AvgLeafSize = float64(sizeSum) / float64(s.Leaves)
	}
	return s
}

// SerializedSize estimates the index size in bytes the way the paper counts
// it for the baseline (Fig. 13): per node, the variable-cardinality word
// (symbol and bit width per segment), counters, and child pointers; leaf
// entries contribute their record ids.
func (t *Tree) SerializedSize() int64 {
	var size int64
	size += 16 // header
	t.Walk(func(n *Node) {
		size += int64(4 * t.w) // symbols (u16) + bits (u16) per segment
		size += 8 + 1 + 4      // count, leaf flag, split segment
		size += int64(8 * len(n.Entries))
	})
	return size
}
