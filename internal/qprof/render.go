package qprof

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// StageJSON is one execution stage in a profile snapshot.
type StageJSON struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// ScanJSON is one partition scan in a profile snapshot.
type ScanJSON struct {
	PID          int     `json:"pid"`
	Bound        float64 `json:"bound,omitempty"`
	PrunedLeaves int     `json:"pruned_leaves"`
	Scanned      int     `json:"scanned"`
	Refined      int     `json:"refined"`
	Cache        string  `json:"cache,omitempty"`
	Worker       int     `json:"worker"` // qpar worker id; -1 = serial
	Addr         string  `json:"addr,omitempty"`
	WorkerID     string  `json:"worker_id,omitempty"`
	Steals       int     `json:"steals,omitempty"`
	Retried      bool    `json:"retried,omitempty"`
	StartMS      float64 `json:"start_ms"`
	DurMS        float64 `json:"dur_ms"`
	Err          string  `json:"err,omitempty"`
}

// RPCJSON is one transport attempt in a profile snapshot.
type RPCJSON struct {
	Method  string  `json:"method"`
	Addr    string  `json:"addr"`
	PID     int     `json:"pid"`
	Attempt int     `json:"attempt"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	Err     string  `json:"err,omitempty"`
}

// Snapshot is the immutable, JSON-ready form of a finished profile. It is
// what the rings retain, /debug/queries serves, and -explain renders.
type Snapshot struct {
	ID         string      `json:"id,omitempty"`
	TraceID    string      `json:"trace_id,omitempty"`
	Strategy   string      `json:"strategy"`
	Detail     string      `json:"detail,omitempty"`
	Node       string      `json:"node,omitempty"` // filled by cluster aggregation
	Start      string      `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Error      string      `json:"error,omitempty"`
	QPar       *QPar       `json:"qpar,omitempty"`
	Stages     []StageJSON `json:"stages,omitempty"`
	Scans      []ScanJSON  `json:"scans,omitempty"`
	RPCs       []RPCJSON   `json:"rpcs,omitempty"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func hexID(id uint64) string { return strconv.FormatUint(id, 16) }

// Snapshot freezes the profile into its JSON-ready form. The profile
// remains usable (and poolable) afterwards; the snapshot shares nothing
// with it.
func (p *Profile) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{
		ID:         hexID(p.id),
		Strategy:   p.strategy,
		Detail:     p.detail,
		Start:      p.begin.Format(time.RFC3339Nano),
		DurationMS: durMS(p.dur),
		Error:      p.err,
	}
	if tid := atomic.LoadUint64(&p.traceID); tid != 0 {
		s.TraceID = hexID(tid)
	}
	if p.hasQP {
		q := p.qpar
		s.QPar = &q
	}
	for _, st := range p.stages {
		s.Stages = append(s.Stages, StageJSON{Name: st.Name, StartMS: durMS(st.Start), DurMS: durMS(st.Dur)})
	}
	for _, sc := range p.scans {
		s.Scans = append(s.Scans, ScanJSON{
			PID: sc.PID, Bound: sc.Bound, PrunedLeaves: sc.PrunedLeaves,
			Scanned: sc.Scanned, Refined: sc.Refined, Cache: sc.Cache.String(),
			Worker: sc.Worker, Addr: sc.Addr, WorkerID: sc.WorkerID,
			Steals: sc.Steals, Retried: sc.Retried,
			StartMS: durMS(sc.Start), DurMS: durMS(sc.Dur), Err: sc.Err,
		})
	}
	for _, rc := range p.rpcs {
		s.RPCs = append(s.RPCs, RPCJSON{
			Method: rc.Method, Addr: rc.Addr, PID: rc.PID, Attempt: rc.Attempt,
			StartMS: durMS(rc.Start), DurMS: durMS(rc.Dur), Err: rc.Err,
		})
	}
	return s
}

// pruneRatio is the fraction of collected candidates the lower bounds
// discarded before true-distance refinement.
func pruneRatio(sc ScanJSON) float64 {
	if sc.Scanned <= 0 || sc.Refined >= sc.Scanned {
		return 0
	}
	return float64(sc.Scanned-sc.Refined) / float64(sc.Scanned)
}

func scanLoc(sc ScanJSON) string {
	if sc.Addr != "" {
		if sc.WorkerID != "" {
			return sc.Addr + "/" + sc.WorkerID
		}
		return sc.Addr
	}
	if sc.Worker >= 0 {
		return fmt.Sprintf("w%d", sc.Worker)
	}
	return "serial"
}

// WriteText renders the snapshot as the annotated plan tree printed by
// `tardis-query -explain`.
func WriteText(w io.Writer, s *Snapshot) {
	if s == nil {
		fmt.Fprintln(w, "no profile")
		return
	}
	fmt.Fprintf(w, "query %s  strategy=%s", s.ID, s.Strategy)
	if s.Detail != "" {
		fmt.Fprintf(w, "  %s", s.Detail)
	}
	if s.TraceID != "" {
		fmt.Fprintf(w, "  trace=%s", s.TraceID)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "├─ total %.3fms", s.DurationMS)
	if s.Error != "" {
		fmt.Fprintf(w, "  ERROR: %s", s.Error)
	}
	if s.QPar != nil {
		fmt.Fprintf(w, "  qpar: %d workers, %d tasks stolen, %d bound updates",
			s.QPar.Workers, s.QPar.TasksStolen, s.QPar.BoundUpdates)
	}
	fmt.Fprintln(w)
	if len(s.Stages) > 0 {
		fmt.Fprintln(w, "├─ stages")
		for _, st := range s.Stages {
			fmt.Fprintf(w, "│    %-12s %8.3fms  @%.3fms\n", st.Name, st.DurMS, st.StartMS)
		}
	}
	if len(s.Scans) > 0 {
		retried := 0
		for _, sc := range s.Scans {
			if sc.Retried {
				retried++
			}
		}
		fmt.Fprintf(w, "├─ partitions (%d scanned", len(s.Scans))
		if retried > 0 {
			fmt.Fprintf(w, ", %d retried", retried)
		}
		fmt.Fprintln(w, ")")
		for _, sc := range s.Scans {
			fmt.Fprintf(w, "│    p%04d", sc.PID)
			if sc.Bound > 0 {
				fmt.Fprintf(w, "  bound=%.4f", sc.Bound)
			}
			fmt.Fprintf(w, "  pruned=%d scanned=%d refined=%d", sc.PrunedLeaves, sc.Scanned, sc.Refined)
			if r := pruneRatio(sc); r > 0 {
				fmt.Fprintf(w, " (%.1f%% pruned)", r*100)
			}
			if sc.Cache != "" && sc.Cache != "-" {
				fmt.Fprintf(w, "  cache=%s", sc.Cache)
			}
			fmt.Fprintf(w, "  %s", scanLoc(sc))
			if sc.Steals > 0 {
				fmt.Fprintf(w, "  steals=%d", sc.Steals)
			}
			fmt.Fprintf(w, "  %.3fms @%.3fms", sc.DurMS, sc.StartMS)
			if sc.Retried {
				fmt.Fprint(w, "  RETRIED")
			}
			if sc.Err != "" {
				fmt.Fprintf(w, "  ERR: %s", sc.Err)
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.RPCs) > 0 {
		fmt.Fprintf(w, "├─ rpc attempts (%d)\n", len(s.RPCs))
		for _, rc := range s.RPCs {
			fmt.Fprintf(w, "│    %-22s %s  p%04d  attempt %d  %.3fms @%.3fms",
				rc.Method, rc.Addr, rc.PID, rc.Attempt, rc.DurMS, rc.StartMS)
			if rc.Err != "" {
				fmt.Fprintf(w, "  ERR: %s", rc.Err)
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Scans) > 1 {
		top := append([]ScanJSON(nil), s.Scans...)
		sort.SliceStable(top, func(i, j int) bool { return top[i].DurMS > top[j].DurMS })
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Fprint(w, "└─ slowest partitions: ")
		for i, sc := range top {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "p%04d %.3fms (%s)", sc.PID, sc.DurMS, scanLoc(sc))
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "└─ end")
	}
}
