// Package qprof is the per-query flight recorder: a structured execution
// profile that rides the query's context through planning, partition scans,
// the qpar work-stealing pool, and cross-worker RPC fan-out, then surfaces
// as `tardis-query -explain`, the `/debug/queries` slow-query log, and the
// cluster-wide `tardis-inspect -queries` report.
//
// The design mirrors internal/obs tracing: every recording entry point is
// nil-safe, the disabled path allocates nothing (enforced by an alloc-count
// test), and profiles captured on remote workers are serialized back inside
// RPC replies and grafted into the coordinator's tree, so one profile spans
// the whole cluster the way one trace does.
package qprof

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// CacheOutcome records whether a partition scan was served from the
// partition cache. Unknown means caching was disabled or not observed.
type CacheOutcome int8

const (
	CacheUnknown CacheOutcome = iota
	CacheMiss
	CacheHit
)

func (c CacheOutcome) String() string {
	switch c {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	default:
		return "-"
	}
}

// Stage is one named phase of query execution (plan, seed, scan, delta...).
// Offsets are relative to the profile's start so stages serialize compactly.
type Stage struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Scan is one partition-scan observation: which partition, the admissible
// lower bound that admitted it, how much the index pruned versus how many
// candidate series were actually refined, cache behaviour, and which qpar
// worker (or remote node) ran it.
type Scan struct {
	PID          int
	Bound        float64 // admissible lower bound when the scan was scheduled
	PrunedLeaves int
	Scanned      int // candidate entries collected from surviving leaves
	Refined      int // series whose true distance was computed
	Cache        CacheOutcome
	Worker       int    // qpar worker id; -1 when run serially
	Addr         string // remote worker address; "" when local
	WorkerID     string // remote worker process id; "" when local
	Steals       int    // refine chunks executed by a non-owner qpar worker
	Retried      bool   // a failed RPC attempt for this task preceded the scan
	Start        time.Duration
	Dur          time.Duration
	Err          string
}

// RPCCall is one transport-level attempt against a worker, including the
// failed attempts that the failover executor retried elsewhere.
type RPCCall struct {
	Method  string
	Addr    string
	PID     int
	Attempt int // 1-based attempt number for this task
	Start   time.Duration
	Dur     time.Duration
	Err     string
}

// QPar summarizes the intra-query work-stealing pool's behaviour for one
// query: pool width, how many tasks ran on a worker other than the one that
// spawned them, and how often the shared kNN bound tightened.
type QPar struct {
	Workers      int `json:"workers"`
	TasksStolen  int `json:"tasks_stolen"`
	BoundUpdates int `json:"bound_updates"`
}

// WireScan is the gob-friendly form of a worker-side Scan, carried back to
// the coordinator inside RPC replies and grafted into its profile.
type WireScan struct {
	PID          int
	WorkerID     string
	PrunedLeaves int
	Scanned      int
	Refined      int
	CacheHit     bool
	CacheKnown   bool
	LoadUS       int64 // partition load (cache fill) portion, microseconds
	DurUS        int64 // total scan duration, microseconds
}

// Profile is one query's flight record. All methods are safe on a nil
// receiver so call sites never branch on whether profiling is enabled.
// Profiles are pooled; after Observe/Release the caller must drop its
// reference.
type Profile struct {
	id       uint64
	traceID  uint64
	strategy string
	detail   string
	begin    time.Time
	dur      time.Duration
	err      string

	mu     sync.Mutex
	stages []Stage
	scans  []Scan
	rpcs   []RPCCall
	qpar   QPar
	hasQP  bool
}

var profilePool = sync.Pool{New: func() any { return new(Profile) }}

// idState seeds a process-unique splitmix64 stream for profile ids, the
// same construction obs uses for span ids.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

func nextID() uint64 {
	z := idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a pooled profile for one query. Callers that do not hand the
// profile to a Recorder must call Release when done.
func New(strategy string) *Profile {
	p := profilePool.Get().(*Profile)
	p.id = nextID()
	p.strategy = strategy
	p.begin = time.Now()
	return p
}

// Release zeroes the profile and returns it to the pool.
func (p *Profile) Release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stages, scans, rpcs := p.stages[:0], p.scans[:0], p.rpcs[:0]
	p.mu.Unlock()
	*p = Profile{stages: stages, scans: scans, rpcs: rpcs}
	profilePool.Put(p)
}

// ID returns the profile's process-unique id (0 on nil).
func (p *Profile) ID() uint64 {
	if p == nil {
		return 0
	}
	return p.id
}

// TraceID returns the linked trace id, if tracing stamped one.
func (p *Profile) TraceID() uint64 {
	if p == nil {
		return 0
	}
	return atomic.LoadUint64(&p.traceID)
}

// SetTrace links the profile to a trace tree. Zero ids (tracing disabled)
// are ignored so call sites can stamp unconditionally.
func (p *Profile) SetTrace(traceID uint64) {
	if p == nil || traceID == 0 {
		return
	}
	atomic.StoreUint64(&p.traceID, traceID)
}

// SetDetail attaches a short free-form description (query shape, k, eps).
func (p *Profile) SetDetail(d string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.detail = d
	p.mu.Unlock()
}

// Strategy returns the strategy label the profile was started with.
func (p *Profile) Strategy() string {
	if p == nil {
		return ""
	}
	return p.strategy
}

// Now returns the elapsed offset since the profile began; 0 on nil, so
// callers may compute offsets unconditionally.
func (p *Profile) Now() time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(p.begin)
}

// StageStart opens a named stage and returns its index (-1 on nil).
func (p *Profile) StageStart(name string) int {
	if p == nil {
		return -1
	}
	p.mu.Lock()
	p.stages = append(p.stages, Stage{Name: name, Start: time.Since(p.begin)})
	i := len(p.stages) - 1
	p.mu.Unlock()
	return i
}

// StageEnd closes the stage opened by StageStart.
func (p *Profile) StageEnd(i int) {
	if p == nil || i < 0 {
		return
	}
	p.mu.Lock()
	if i < len(p.stages) {
		p.stages[i].Dur = time.Since(p.begin) - p.stages[i].Start
	}
	p.mu.Unlock()
}

// AddScan records one partition scan and returns its index so asynchronous
// refine chunks can accumulate into it later (-1 on nil).
func (p *Profile) AddScan(s Scan) int {
	if p == nil {
		return -1
	}
	p.mu.Lock()
	p.scans = append(p.scans, s)
	i := len(p.scans) - 1
	p.mu.Unlock()
	return i
}

// ScanAdd folds an asynchronously-refined chunk into scan i: refined series
// count, and whether the chunk ran on a worker other than the scan's owner.
func (p *Profile) ScanAdd(i, refined int, stolen bool) {
	if p == nil || i < 0 {
		return
	}
	p.mu.Lock()
	if i < len(p.scans) {
		p.scans[i].Refined += refined
		if stolen {
			p.scans[i].Steals++
		}
	}
	p.mu.Unlock()
}

// ScanFinish stamps scan i's duration as now-minus-start.
func (p *Profile) ScanFinish(i int) {
	if p == nil || i < 0 {
		return
	}
	now := time.Since(p.begin)
	p.mu.Lock()
	if i < len(p.scans) {
		p.scans[i].Dur = now - p.scans[i].Start
	}
	p.mu.Unlock()
}

// AddRPC records one transport attempt.
func (p *Profile) AddRPC(r RPCCall) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.rpcs = append(p.rpcs, r)
	p.mu.Unlock()
}

// Graft appends a worker-side sub-profile received in an RPC reply,
// stamping the transport address and whether a prior attempt failed.
func (p *Profile) Graft(ws *WireScan, addr string, attempt int, start, dur time.Duration) {
	if p == nil || ws == nil {
		return
	}
	cache := CacheUnknown
	if ws.CacheKnown {
		cache = CacheMiss
		if ws.CacheHit {
			cache = CacheHit
		}
	}
	p.AddScan(Scan{
		PID:          ws.PID,
		PrunedLeaves: ws.PrunedLeaves,
		Scanned:      ws.Scanned,
		Refined:      ws.Refined,
		Cache:        cache,
		Worker:       -1,
		Addr:         addr,
		WorkerID:     ws.WorkerID,
		Retried:      attempt > 1,
		Start:        start,
		Dur:          dur,
	})
}

// SetQPar records the work-stealing pool summary. Multiple calls accumulate
// (a query may run several pooled phases); Workers keeps the maximum.
func (p *Profile) SetQPar(q QPar) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if q.Workers > p.qpar.Workers {
		p.qpar.Workers = q.Workers
	}
	p.qpar.TasksStolen += q.TasksStolen
	p.qpar.BoundUpdates += q.BoundUpdates
	p.hasQP = true
	p.mu.Unlock()
}

// Finish stamps the query's total duration and terminal error.
func (p *Profile) Finish(dur time.Duration, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dur = dur
	if err != nil {
		p.err = err.Error()
	}
	p.mu.Unlock()
}

type ctxKey struct{}

// NewContext returns ctx carrying p. A nil profile returns ctx unchanged,
// so the disabled path allocates nothing.
func NewContext(ctx context.Context, p *Profile) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// FromContext returns the profile carried by ctx, or nil. The nil return
// composes with the nil-safe Profile methods: unprofiled queries thread a
// nil pointer through every recording site at zero cost.
func FromContext(ctx context.Context) *Profile {
	p, _ := ctx.Value(ctxKey{}).(*Profile)
	return p
}
