package qprof

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(0.5, 42)
	b := NewSampler(0.5, 42)
	for i := 0; i < 4096; i++ {
		if a.Sample() != b.Sample() {
			t.Fatalf("samplers with the same seed diverged at decision %d", i)
		}
	}

	// Re-seeding replays the identical decision stream.
	s := NewSampler(0.25, 7)
	first := make([]bool, 64)
	for i := range first {
		first[i] = s.Sample()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Sample(); got != first[i] {
			t.Fatalf("re-seeded sampler diverged at decision %d: %v != %v", i, got, first[i])
		}
	}
}

func TestSamplerRateBounds(t *testing.T) {
	never := NewSampler(0, 1)
	always := NewSampler(1, 1)
	for i := 0; i < 1000; i++ {
		if never.Sample() {
			t.Fatal("rate-0 sampler elected a query")
		}
		if !always.Sample() {
			t.Fatal("rate-1 sampler skipped a query")
		}
	}
	half := NewSampler(0.5, 99)
	hits := 0
	for i := 0; i < 10000; i++ {
		if half.Sample() {
			hits++
		}
	}
	if hits < 4000 || hits > 6000 {
		t.Fatalf("rate-0.5 sampler elected %d of 10000", hits)
	}
}

func TestProfileLifecycle(t *testing.T) {
	p := New("exact")
	p.SetDetail("k=5")
	p.SetTrace(0xabc)
	plan := p.StageStart("plan")
	p.StageEnd(plan)
	si := p.AddScan(Scan{PID: 3, Bound: 1.5, PrunedLeaves: 7, Scanned: 100, Worker: 2})
	p.ScanAdd(si, 40, true)
	p.ScanAdd(si, 10, false)
	p.ScanFinish(si)
	p.AddRPC(RPCCall{Method: "Worker.KNNPartition", Addr: "a:1", PID: 3, Attempt: 1})
	p.Graft(&WireScan{PID: 9, WorkerID: "w2", Scanned: 5, Refined: 2, CacheKnown: true, CacheHit: true}, "a:2", 2, 0, time.Millisecond)
	p.SetQPar(QPar{Workers: 4, TasksStolen: 1, BoundUpdates: 6})
	p.SetQPar(QPar{Workers: 2, TasksStolen: 2, BoundUpdates: 1})
	p.Finish(5*time.Millisecond, errors.New("boom"))

	s := p.Snapshot()
	if s.Strategy != "exact" || s.Detail != "k=5" || s.TraceID != "abc" || s.Error != "boom" {
		t.Fatalf("snapshot header mismatch: %+v", s)
	}
	if s.DurationMS != 5 {
		t.Fatalf("duration = %v, want 5ms", s.DurationMS)
	}
	if len(s.Stages) != 1 || s.Stages[0].Name != "plan" {
		t.Fatalf("stages = %+v", s.Stages)
	}
	if len(s.Scans) != 2 {
		t.Fatalf("scans = %+v", s.Scans)
	}
	if sc := s.Scans[0]; sc.Refined != 50 || sc.Steals != 1 || sc.Worker != 2 {
		t.Fatalf("chunk accumulation wrong: %+v", sc)
	}
	if g := s.Scans[1]; g.PID != 9 || g.Addr != "a:2" || g.WorkerID != "w2" || !g.Retried || g.Cache != "hit" {
		t.Fatalf("grafted scan wrong: %+v", g)
	}
	if s.QPar == nil || s.QPar.Workers != 4 || s.QPar.TasksStolen != 3 || s.QPar.BoundUpdates != 7 {
		t.Fatalf("qpar accumulation wrong: %+v", s.QPar)
	}
	p.Release()
}

func TestRecorderRingsAndDigests(t *testing.T) {
	r := NewRecorder()
	r.SetSampleRate(1)
	r.SeedSampler(1)
	r.SetSlowThreshold(0) // every profiled query is "slow"

	p := r.Start("mpa")
	if p == nil {
		t.Fatal("rate-1 recorder did not elect the query")
	}
	p.AddScan(Scan{PID: 1, Scanned: 10, Refined: 4, Worker: -1})
	r.Observe(p, "mpa", 3*time.Millisecond, nil)

	pay := r.Payload()
	if len(pay.Recent) != 1 || len(pay.Slowest) != 1 {
		t.Fatalf("rings: recent=%d slowest=%d, want 1/1", len(pay.Recent), len(pay.Slowest))
	}
	if pay.Recent[0].ID == "" || len(pay.Recent[0].Scans) != 1 {
		t.Fatalf("recent snapshot lost its tree: %+v", pay.Recent[0])
	}
	d, ok := pay.Digests["mpa"]
	if !ok || d.Count != 1 {
		t.Fatalf("digest missing or wrong count: %+v", pay.Digests)
	}
	var exemplar string
	for _, b := range d.Buckets {
		if b.Exemplar != "" {
			exemplar = b.Exemplar
		}
	}
	if exemplar != pay.Recent[0].ID {
		t.Fatalf("exemplar %q does not link back to profile %q", exemplar, pay.Recent[0].ID)
	}

	// A slow query that was not sampled still earns a skeleton slow entry.
	r2 := NewRecorder()
	r2.SetSlowThreshold(time.Millisecond)
	r2.Observe(nil, "range", 2*time.Millisecond, nil)
	r2.Observe(nil, "range", time.Microsecond, nil) // fast: digest only
	pay2 := r2.Payload()
	if len(pay2.Slowest) != 1 || pay2.Slowest[0].Strategy != "range" || pay2.Slowest[0].ID != "" {
		t.Fatalf("skeleton slow entry wrong: %+v", pay2.Slowest)
	}
	if pay2.Digests["range"].Count != 2 {
		t.Fatalf("digest count = %d, want 2", pay2.Digests["range"].Count)
	}

	// Rings stay bounded and the slowest view is capped and sorted.
	r3 := NewRecorder()
	r3.SetSampleRate(1)
	r3.SetSlowThreshold(0)
	for i := 0; i < 200; i++ {
		p := r3.Start("exact")
		r3.Observe(p, "exact", time.Duration(i)*time.Millisecond, nil)
	}
	pay3 := r3.Payload()
	if len(pay3.Recent) > recentRingSize {
		t.Fatalf("recent ring grew to %d", len(pay3.Recent))
	}
	if len(pay3.Slowest) > topSlowest {
		t.Fatalf("slowest view has %d entries, cap is %d", len(pay3.Slowest), topSlowest)
	}
	for i := 1; i < len(pay3.Slowest); i++ {
		if pay3.Slowest[i].DurationMS > pay3.Slowest[i-1].DurationMS {
			t.Fatal("slowest view not sorted descending")
		}
	}
	if pay3.Slowest[0].DurationMS != 199 {
		t.Fatalf("slowest query is %vms, want 199ms", pay3.Slowest[0].DurationMS)
	}
}

// TestDisabledPathZeroAlloc enforces the flight recorder's core contract:
// with sampling off, threading a nil profile through every recording entry
// point allocates nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	r := NewRecorder()
	r.Observe(nil, "exact", time.Millisecond, nil) // warm the digest map
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		p := FromContext(ctx)
		_ = NewContext(ctx, p)
		p.SetTrace(1)
		p.SetDetail("x")
		i := p.StageStart("plan")
		p.StageEnd(i)
		si := p.AddScan(Scan{PID: 1})
		p.ScanAdd(si, 3, true)
		p.ScanFinish(si)
		p.AddRPC(RPCCall{})
		p.Graft(nil, "", 1, 0, 0)
		p.SetQPar(QPar{Workers: 2})
		p.Finish(0, nil)
		_ = p.Now()
		if q := r.Start("exact"); q != nil {
			t.Error("disabled recorder elected a query")
		}
		r.Observe(nil, "exact", time.Millisecond, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled profiling path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDisabledProfile is the perf guard for the sampling-off fast path.
func BenchmarkDisabledProfile(b *testing.B) {
	r := NewRecorder()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := r.Start("exact")
		pctx := NewContext(ctx, p)
		p2 := FromContext(pctx)
		si := p2.AddScan(Scan{PID: 1})
		p2.ScanAdd(si, 1, false)
		p2.ScanFinish(si)
		r.Observe(p2, "exact", 0, nil)
	}
}
