package qprof

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
)

const (
	recentRingSize = 64
	slowRingSize   = 64
	topSlowest     = 16
)

var (
	mProfiles = obs.NewCounter("tardis_qprof_profiles_total",
		"Query flight-recorder profiles captured (sampled or forced).")
	mSlowQueries = obs.NewCounter("tardis_qprof_slow_queries_total",
		"Queries whose duration crossed the slow-query threshold.")
)

// digestBuckets are the latency bucket bounds (seconds) for the streaming
// per-strategy digests served at /debug/queries.
var digestBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// digest is a streaming latency histogram for one strategy, with the last
// profiled query id per bucket as an exemplar linking the aggregate back to
// a concrete flight record.
type digest struct {
	counts    []int64
	exemplars []string // hex profile id of the last sampled query per bucket
	count     int64
	sum       float64
}

func newDigest() *digest {
	return &digest{
		counts:    make([]int64, len(digestBuckets)+1),
		exemplars: make([]string, len(digestBuckets)+1),
	}
}

func bucketIdx(sec float64) int {
	for i, b := range digestBuckets {
		if sec <= b {
			return i
		}
	}
	return len(digestBuckets)
}

func (d *digest) observe(sec float64, exemplar string) {
	i := bucketIdx(sec)
	d.counts[i]++
	if exemplar != "" {
		d.exemplars[i] = exemplar
	}
	d.count++
	d.sum += sec
}

// quantile interpolates within the owning bucket, like obs.Histogram.
func (d *digest) quantile(q float64) float64 {
	if d.count == 0 {
		return math.NaN()
	}
	rank := q * float64(d.count)
	var cum int64
	for i, c := range d.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(digestBuckets) {
			return digestBuckets[len(digestBuckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = digestBuckets[i-1]
		}
		hi := digestBuckets[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return digestBuckets[len(digestBuckets)-1]
}

// Recorder owns the always-on sampled profiler for one process: the
// sampling gate, the recent-query and slow-query rings, and the
// per-strategy latency digests. One default recorder per process backs
// /debug/queries on daemons; tests build their own.
type Recorder struct {
	sampler *Sampler
	on      atomic.Bool // fast gate: true iff sample rate > 0
	slowNS  atomic.Int64

	mu         sync.Mutex
	recent     []*Snapshot        // ring, newest at recentNext-1; guarded by mu
	recentNext int                // guarded by mu
	slow       []*Snapshot        // slow-query ring; guarded by mu
	slowNext   int                // guarded by mu
	digests    map[string]*digest // guarded by mu
}

// NewRecorder returns a recorder with sampling disabled and the slow-query
// ring off.
func NewRecorder() *Recorder {
	r := &Recorder{
		sampler: NewSampler(0, 0x7a2d15),
		digests: make(map[string]*digest),
	}
	r.slowNS.Store(-1)
	return r
}

var defaultRecorder = NewRecorder()

// Default returns the process-wide recorder that daemons expose at
// /debug/queries.
func Default() *Recorder { return defaultRecorder }

// SetSampleRate sets the fraction of queries that get full profiles.
func (r *Recorder) SetSampleRate(rate float64) {
	r.sampler.SetRate(rate)
	r.on.Store(rate > 0)
}

// SampleRate returns the current sampling rate.
func (r *Recorder) SampleRate() float64 { return r.sampler.Rate() }

// SeedSampler makes the sampling decision stream deterministic.
func (r *Recorder) SeedSampler(seed uint64) { r.sampler.Seed(seed) }

// SetSlowThreshold enables the slow-query ring for queries at or above d;
// zero records every profiled query as slow, negative disables the ring.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slowNS.Store(int64(d)) }

// SlowThreshold returns the slow-query threshold.
func (r *Recorder) SlowThreshold() time.Duration { return time.Duration(r.slowNS.Load()) }

// Start returns a profile for the next query if the sampler elects it, nil
// otherwise. The nil path is a single atomic load and allocates nothing.
func (r *Recorder) Start(strategy string) *Profile {
	if !r.on.Load() {
		return nil
	}
	if !r.sampler.Sample() {
		return nil
	}
	return New(strategy)
}

// Observe records one finished query. It must be called for every query —
// with the profile from Start (which it finishes, snapshots, and releases)
// or with nil, in which case only the strategy digest is updated.
func (r *Recorder) Observe(p *Profile, strategy string, dur time.Duration, err error) {
	slowNS := r.slowNS.Load()
	slow := slowNS >= 0 && int64(dur) >= slowNS
	if slow {
		mSlowQueries.Inc()
	}
	var snap *Snapshot
	var exemplar string
	if p != nil {
		p.Finish(dur, err)
		snap = p.Snapshot()
		exemplar = snap.ID
		p.Release()
		mProfiles.Inc()
	} else if slow {
		// A slow query that wasn't sampled still earns a skeleton entry in
		// the slow ring: no execution tree, but strategy and duration.
		snap = &Snapshot{Strategy: strategy, DurationMS: durMS(dur)}
		if err != nil {
			snap.Error = err.Error()
		}
	}
	r.mu.Lock()
	d := r.digests[strategy]
	if d == nil {
		d = newDigest()
		r.digests[strategy] = d
	}
	d.observe(dur.Seconds(), exemplar)
	if snap != nil {
		if r.recent == nil {
			r.recent = make([]*Snapshot, recentRingSize)
		}
		r.recent[r.recentNext%recentRingSize] = snap
		r.recentNext++
		if slow {
			if r.slow == nil {
				r.slow = make([]*Snapshot, slowRingSize)
			}
			r.slow[r.slowNext%slowRingSize] = snap
			r.slowNext++
		}
	}
	r.mu.Unlock()
}

// DigestJSON is one strategy's latency digest in the /debug/queries payload.
type DigestJSON struct {
	Count   int64        `json:"count"`
	MeanMS  float64      `json:"mean_ms"`
	P50MS   float64      `json:"p50_ms"`
	P95MS   float64      `json:"p95_ms"`
	P99MS   float64      `json:"p99_ms"`
	Buckets []BucketJSON `json:"buckets"`
}

// BucketJSON is one digest bucket with its exemplar profile id. LeMS is -1
// for the overflow (+Inf) bucket: JSON cannot carry infinities.
type BucketJSON struct {
	LeMS     float64 `json:"le_ms"`
	Count    int64   `json:"count"`
	Exemplar string  `json:"exemplar,omitempty"`
}

// DebugPayload is the JSON document served at /debug/queries.
type DebugPayload struct {
	Node       string                `json:"node,omitempty"`
	SampleRate float64               `json:"sample_rate"`
	SlowMS     float64               `json:"slow_ms"`
	Recent     []*Snapshot           `json:"recent"`
	Slowest    []*Snapshot           `json:"slowest"`
	Digests    map[string]DigestJSON `json:"digests"`
}

func ringSlice(ring []*Snapshot, next int) []*Snapshot {
	if ring == nil {
		return nil
	}
	out := make([]*Snapshot, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		// Oldest-first: walk forward from the slot after the newest.
		s := ring[(next+i)%len(ring)]
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Payload snapshots the recorder state: recent queries oldest-first, the
// slow ring sorted slowest-first (capped), and per-strategy digests.
func (r *Recorder) Payload() *DebugPayload {
	p := &DebugPayload{
		SampleRate: r.SampleRate(),
		SlowMS:     float64(r.SlowThreshold()) / float64(time.Millisecond),
		Digests:    make(map[string]DigestJSON),
	}
	r.mu.Lock()
	p.Recent = ringSlice(r.recent, r.recentNext)
	p.Slowest = ringSlice(r.slow, r.slowNext)
	for name, d := range r.digests {
		dj := DigestJSON{
			Count: d.count,
			P50MS: d.quantile(0.50) * 1e3,
			P95MS: d.quantile(0.95) * 1e3,
			P99MS: d.quantile(0.99) * 1e3,
		}
		if d.count > 0 {
			dj.MeanMS = d.sum / float64(d.count) * 1e3
		}
		for i, c := range d.counts {
			le := -1.0 // overflow bucket: no finite upper bound
			if i < len(digestBuckets) {
				le = digestBuckets[i] * 1e3
			}
			dj.Buckets = append(dj.Buckets, BucketJSON{LeMS: le, Count: c, Exemplar: d.exemplars[i]})
		}
		p.Digests[name] = dj
	}
	r.mu.Unlock()
	sort.SliceStable(p.Slowest, func(i, j int) bool { return p.Slowest[i].DurationMS > p.Slowest[j].DurationMS })
	if len(p.Slowest) > topSlowest {
		p.Slowest = p.Slowest[:topSlowest]
	}
	return p
}

// Handler serves the recorder state as JSON at /debug/queries.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Payload())
	})
}

// Every daemon that mounts obs.DebugHandler (via -debug-addr) gets the
// default recorder's /debug/queries for free — workers included, which is
// what tardis-inspect -queries aggregates across the cluster.
func init() {
	obs.RegisterDebugHandler("/debug/queries", Default().Handler())
}
