package qprof

import (
	"math"
	"sync/atomic"
)

// Sampler decides which queries get a full flight record. The decision is a
// single atomic load plus a splitmix64 step — no locks, no allocation — so
// an always-on sampled profiler costs nothing on the queries it skips.
//
// The stream is deterministic for a given seed: two samplers seeded alike
// make identical decisions in sequence, which is what the determinism test
// (and reproducible profiling in benchmarks) relies on.
type Sampler struct {
	rateBits atomic.Uint64 // math.Float64bits of the sample rate
	state    atomic.Uint64 // splitmix64 state
}

// NewSampler returns a sampler with the given rate in [0,1] and seed.
func NewSampler(rate float64, seed uint64) *Sampler {
	s := &Sampler{}
	s.SetRate(rate)
	s.Seed(seed)
	return s
}

// SetRate updates the sample rate; ≤0 disables, ≥1 samples everything.
func (s *Sampler) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.rateBits.Store(math.Float64bits(rate))
}

// Rate returns the current sample rate.
func (s *Sampler) Rate() float64 { return math.Float64frombits(s.rateBits.Load()) }

// Seed resets the decision stream; useful for deterministic tests.
func (s *Sampler) Seed(seed uint64) { s.state.Store(seed | 1) }

// Sample reports whether the next query should be profiled.
func (s *Sampler) Sample() bool {
	rate := math.Float64frombits(s.rateBits.Load())
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	z := s.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Top 53 bits → uniform float in [0,1).
	return float64(z>>11)/(1<<53) < rate
}
