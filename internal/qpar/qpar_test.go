package qpar

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tardisdb/tardis/internal/knn"
)

func TestJobExecutesAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		j := New(Config{Parallelism: workers, Name: "test"}, nil)
		var ran atomic.Int64
		for i := 0; i < 50; i++ {
			j.Spawn(float64(i), func(w *Worker) error {
				ran.Add(1)
				return nil
			})
		}
		if err := j.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d tasks, want 50", workers, ran.Load())
		}
		st := j.Stats()
		if st.ScanTasks != 50 || st.Executed != 50 {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
	}
}

func TestSingleWorkerDrainsBestFirst(t *testing.T) {
	j := New(Config{Parallelism: 1}, nil)
	var order []float64
	for _, b := range []float64{5, 1, 3, 2, 4} {
		bound := b
		j.Spawn(bound, func(w *Worker) error {
			order = append(order, bound)
			return nil
		})
	}
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("not best-first: %v", order)
		}
	}
}

func TestSharedHeapBoundPublishes(t *testing.T) {
	h := knn.NewHeap(2)
	j := New(Config{Parallelism: 4}, h)
	if !math.IsInf(j.Bound(), 1) {
		t.Fatal("empty heap bound should be +Inf")
	}
	for i := 0; i < 100; i++ {
		rid, d := int64(i), float64(i)
		j.Spawn(0, func(w *Worker) error {
			w.Offer(knn.Neighbor{RID: rid, Dist: d})
			return nil
		})
	}
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	if got := j.Bound(); got != 1 {
		t.Fatalf("final bound %v, want 1", got)
	}
	res := h.Sorted()
	if len(res) != 2 || res[0].RID != 0 || res[1].RID != 1 {
		t.Fatalf("heap kept %+v", res)
	}
}

// Refine chunks spawned by one worker must be picked up (stolen) by others
// when the spawner is busy.
func TestWorkStealing(t *testing.T) {
	j := New(Config{Parallelism: 4, Name: "steal"}, nil)
	var mu sync.Mutex
	byWorker := map[int]int{}
	block := make(chan struct{})
	j.Spawn(0, func(w *Worker) error {
		for i := 0; i < 32; i++ {
			w.Spawn(0, func(w2 *Worker) error {
				mu.Lock()
				byWorker[w2.ID()]++
				mu.Unlock()
				return nil
			})
		}
		// Hold the spawning worker until every chunk is taken by someone.
		<-block
		return nil
	})
	go func() {
		for {
			j.mu.Lock()
			drained := len(j.queue) == 0
			j.mu.Unlock()
			if drained {
				close(block)
				return
			}
			runtime.Gosched()
		}
	}()
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.RefineTasks != 32 {
		t.Fatalf("refine tasks %d, want 32", st.RefineTasks)
	}
	if st.Stolen == 0 {
		t.Fatal("expected at least one stolen chunk with the spawner blocked")
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, n := range byWorker {
		total += n
	}
	if total != 32 {
		t.Fatalf("chunks executed %d, want 32", total)
	}
}

// Tasks whose bound exceeds the shared kth distance at pop time must be
// dropped, never executed.
func TestPruneAtPop(t *testing.T) {
	h := knn.NewHeap(1)
	h.Offer(knn.Neighbor{RID: 1, Dist: 5})
	j := New(Config{Parallelism: 1, Prune: true}, h)
	var ran atomic.Int64
	j.Spawn(2, func(w *Worker) error { ran.Add(1); return nil })  // admissible
	j.Spawn(10, func(w *Worker) error { ran.Add(1); return nil }) // prunable
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("ran %d tasks, want 1", ran.Load())
	}
	if st := j.Stats(); st.Pruned != 1 || st.Executed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorPropagatesAndStops(t *testing.T) {
	sentinel := errors.New("boom")
	j := New(Config{Parallelism: 2}, nil)
	var after atomic.Int64
	j.Spawn(0, func(w *Worker) error { return sentinel })
	for i := 0; i < 100; i++ {
		j.Spawn(1, func(w *Worker) error {
			after.Add(1)
			return nil
		})
	}
	if err := j.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Some tasks may race past the failure, but the queue must not fully
	// drain: the error stops the workers.
	if after.Load() == 100 {
		t.Fatal("all tasks ran despite the error")
	}
}

func TestNilHeapJobHasInfiniteBound(t *testing.T) {
	j := New(Config{Parallelism: 1}, nil)
	done := false
	j.Spawn(123, func(w *Worker) error {
		if !math.IsInf(w.Bound(), 1) {
			t.Error("nil-heap bound should be +Inf")
		}
		done = true
		return nil
	})
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("task did not run")
	}
}

// Concurrent offers from many workers must keep the heap canonical: the k
// smallest (Dist, RID) pairs of everything offered.
func TestConcurrentOffersStayCanonical(t *testing.T) {
	h := knn.NewHeap(8)
	j := New(Config{Parallelism: 8}, h)
	const n = 512
	for i := 0; i < n; i++ {
		rid := int64(i)
		d := float64((i * 37) % 64) // plenty of distance ties
		j.Spawn(0, func(w *Worker) error {
			w.Offer(knn.Neighbor{RID: rid, Dist: d})
			return nil
		})
	}
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	got := h.Sorted()
	if len(got) != 8 {
		t.Fatalf("got %d results", len(got))
	}
	// The 8 canonically smallest pairs: Dist 0 first (rids where i*37%64==0),
	// ties broken by RID ascending.
	prev := got[0]
	for _, nb := range got[1:] {
		if nb.Dist < prev.Dist || (nb.Dist == prev.Dist && nb.RID < prev.RID) {
			t.Fatalf("results not canonically ordered: %+v", got)
		}
		prev = nb
	}
	for _, nb := range got {
		if nb.Dist != 0 && got[7].Dist == 0 {
			t.Fatalf("non-minimal member %+v with zero-distance eighth", nb)
		}
	}
}
