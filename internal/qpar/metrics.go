package qpar

import "github.com/tardisdb/tardis/internal/obs"

// Task kind label values (bounded cardinality for metricname).
const (
	kindScan   = "scan"
	kindRefine = "refine"
)

var (
	mJobs = obs.NewCounter("tardis_qpar_jobs_total",
		"Parallel query jobs executed.")
	mJobDuration = obs.NewHistogram("tardis_qpar_job_duration_seconds",
		"Wall time of one parallel query job (spawn to drain).", nil)
	mTasks = obs.NewCounterVec("tardis_qpar_tasks_total",
		"Tasks spawned, by kind (scan = driver partition/node tasks, refine = stealable chunks).", "kind")
	mStolen = obs.NewCounter("tardis_qpar_tasks_stolen_total",
		"Refine chunks executed by a worker other than their spawner.")
	mPruned = obs.NewCounter("tardis_qpar_tasks_pruned_total",
		"Queued tasks dropped because their lower bound exceeded the shared kth distance.")
	mBusyWorkers = obs.NewGauge("tardis_qpar_busy_workers_count",
		"Workers currently executing a task.")
	mBatchRecords = obs.NewHistogram("tardis_qpar_batch_records",
		"Candidates per batched distance-kernel call.",
		[]float64{1, 2, 4, 8, 16})
)

// ObserveBatch records the lane count of one batched distance-kernel call —
// the batch-size distribution of the refine hot path.
func ObserveBatch(lanes int) {
	mBatchRecords.Observe(float64(lanes))
}
