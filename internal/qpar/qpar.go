// Package qpar is the per-query intra-node parallel execution layer
// (ROADMAP open item: MESSI/ParIS+-style intra-query parallelism). One Job
// is one query: a bounded pool of workers drains a best-first priority queue
// of partition-scan tasks ordered by lower bound, all workers share a single
// kNN result heap whose pruning bound is published atomically (heap updates
// take a short lock; bound snapshots are lock-free), and scan tasks split
// their refinement into chunks that idle workers steal.
//
// Results stay exact and deterministic: the shared knn.Heap keeps the
// canonical k smallest (Dist, RID) pairs regardless of offer order, and a
// task is only pruned when its lower bound exceeds the current kth distance
// — which is always ≥ the final kth distance, so a pruned task can never
// hold a member of the canonical answer. The serial and parallel paths
// therefore return identical IDs and distances.
package qpar

import (
	"math"
	"runtime"
	"strconv"
	"time"

	"sync"
	"sync/atomic"

	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/obs"
)

// Config parameterizes one query's execution.
type Config struct {
	// Parallelism is the worker goroutine count; values ≤ 0 select
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// Prune drops queued tasks whose lower bound exceeds the shared heap's
	// current kth distance at pop time (best-first search). Leave false for
	// fixed-threshold scans (range queries, the approximate strategies).
	Prune bool
	// Name labels the job's worker spans.
	Name string
}

// Task is one unit of work. It runs on exactly one worker and may spawn
// stealable follow-up tasks through it.
type Task func(w *Worker) error

// task is a queued Task with its best-first ordering key.
type task struct {
	bound  float64
	seq    uint64
	owner  int // spawning worker id, -1 for driver spawns
	refine bool
	run    Task
}

// Stats summarizes one finished job.
type Stats struct {
	ScanTasks    int // tasks spawned by the driver
	RefineTasks  int // stealable chunks spawned by running tasks
	Executed     int
	Stolen       int // refine chunks executed by a worker other than their spawner
	Pruned       int // tasks dropped because their bound exceeded the kth distance
	BoundUpdates int // offers that tightened the shared kth-distance bound
}

// Job is one query's work queue plus the shared result heap.
type Job struct {
	cfg     Config
	workers int
	heap    *knn.Heap

	// heapMu serializes Offer on the shared heap; Bound reads bypass it via
	// the heap's atomic snapshot.
	heapMu sync.Mutex

	// boundUpdates counts offers that tightened the shared bound; atomic so
	// the hot Offer path never touches mu.
	boundUpdates atomic.Int64

	// mu guards the queue, the running-task count, the first error, and the
	// counters below.
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	seq     uint64
	running int
	err     error
	st      Stats // guarded by mu; read via Stats() only after Run returns
}

// New creates a job over the shared result heap. h may be nil for queries
// that accumulate results elsewhere (range scans); such jobs see an infinite
// bound and must not Offer.
func New(cfg Config, h *knn.Heap) *Job {
	w := cfg.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	j := &Job{cfg: cfg, workers: w, heap: h}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Workers returns the resolved worker count.
func (j *Job) Workers() int { return j.workers }

// Bound returns the shared heap's current kth distance without locking
// (+Inf while underfull or when the job has no heap). The snapshot may lag a
// concurrent Offer by one update, which only loosens pruning.
func (j *Job) Bound() float64 {
	if j.heap == nil {
		return math.Inf(1)
	}
	return j.heap.BoundAtomic()
}

// Offer feeds one refined neighbor into the shared heap under the short
// heap lock, counting offers that tightened the shared kth-distance bound.
func (j *Job) Offer(n knn.Neighbor) {
	j.heapMu.Lock()
	before := j.heap.Bound()
	j.heap.Offer(n)
	changed := j.heap.Bound() != before
	j.heapMu.Unlock()
	if changed {
		j.boundUpdates.Add(1)
	}
}

// Spawn enqueues a driver-level task (one partition or node scan) keyed by
// its lower bound. Call before Run; tasks spawned mid-run belong to workers
// (Worker.Spawn).
func (j *Job) Spawn(bound float64, fn Task) {
	j.spawn(bound, -1, false, fn)
}

func (j *Job) spawn(bound float64, owner int, refine bool, fn Task) {
	j.mu.Lock()
	j.seq++
	j.push(task{bound: bound, seq: j.seq, owner: owner, refine: refine, run: fn})
	if refine {
		j.st.RefineTasks++
	} else {
		j.st.ScanTasks++
	}
	j.mu.Unlock()
	j.cond.Signal()
	if refine {
		mTasks.With(kindRefine).Inc()
	} else {
		mTasks.With(kindScan).Inc()
	}
}

// Run drains the queue with the configured worker pool and returns the first
// task error (remaining work is dropped on error). Stats are final after it
// returns.
func (j *Job) Run() error {
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < j.workers; i++ {
		wg.Add(1)
		go j.work(i, &wg)
	}
	wg.Wait()
	mJobs.Inc()
	mJobDuration.Observe(time.Since(start).Seconds())
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats returns the job's counters; call after Run.
func (j *Job) Stats() Stats {
	j.mu.Lock()
	st := j.st
	j.mu.Unlock()
	st.BoundUpdates = int(j.boundUpdates.Load())
	return st
}

// work is one worker goroutine: pop best-first, execute, repeat until the
// queue is empty with no task still running (or a task failed).
func (j *Job) work(id int, wg *sync.WaitGroup) {
	defer wg.Done()
	w := &Worker{j: j, id: id}
	start := time.Now()
	executed, stolen := 0, 0
	for {
		t, ok := j.next()
		if !ok {
			break
		}
		if t.refine && t.owner != id {
			stolen++
			mStolen.Inc()
			j.mu.Lock()
			j.st.Stolen++ //tardislint:ignore racecheck cross-instance pairing: the conflicting read is a value copy Stats() takes under mu after Run's fork-join completes; this write holds j.mu
			j.mu.Unlock()
		}
		mBusyWorkers.Add(1)
		err := t.run(w)
		mBusyWorkers.Add(-1)
		executed++
		j.finish(err)
	}
	if executed > 0 && obs.TracingEnabled() {
		obs.RecordSpan("qpar.worker", start, time.Now(),
			obs.Attr{Key: "job", Value: j.cfg.Name},
			obs.Attr{Key: "worker", Value: strconv.Itoa(id)},
			obs.Attr{Key: "tasks", Value: strconv.Itoa(executed)},
			obs.Attr{Key: "stolen", Value: strconv.Itoa(stolen)})
	}
}

// next pops the best task, dropping prunable ones. It blocks while the queue
// is empty but tasks are still running (they may spawn chunks), and returns
// false when the job is drained or failed.
func (j *Job) next() (task, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.err != nil {
			return task{}, false
		}
		for len(j.queue) > 0 {
			t := j.pop()
			if j.cfg.Prune && j.heap != nil && t.bound > j.heap.BoundAtomic() {
				j.st.Pruned++
				mPruned.Inc()
				continue
			}
			j.running++
			j.st.Executed++
			return t, true
		}
		if j.running == 0 {
			return task{}, false
		}
		j.cond.Wait()
	}
}

// finish retires a running task, recording its error and waking waiters.
func (j *Job) finish(err error) {
	j.mu.Lock()
	j.running--
	if err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.cond.Broadcast()
}

// push/pop maintain the min-heap over (bound, seq) — best-first with FIFO
// tie-break, so equal-bound tasks run in spawn order.
func (j *Job) push(t task) {
	j.queue = append(j.queue, t)
	i := len(j.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !taskLess(j.queue[i], j.queue[parent]) {
			break
		}
		j.queue[parent], j.queue[i] = j.queue[i], j.queue[parent]
		i = parent
	}
}

func (j *Job) pop() task {
	t := j.queue[0]
	last := len(j.queue) - 1
	j.queue[0] = j.queue[last]
	j.queue[last] = task{}
	j.queue = j.queue[:last]
	n := len(j.queue)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && taskLess(j.queue[right], j.queue[left]) {
			small = right
		}
		if !taskLess(j.queue[small], j.queue[i]) {
			break
		}
		j.queue[i], j.queue[small] = j.queue[small], j.queue[i]
		i = small
	}
	return t
}

func taskLess(a, b task) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.seq < b.seq
}

// Worker is a task's handle onto its executing goroutine.
type Worker struct {
	j  *Job
	id int
}

// ID returns the worker index in [0, Workers()) — the key for per-worker
// stats fragments.
func (w *Worker) ID() int { return w.id }

// Bound returns the shared pruning bound (lock-free snapshot).
func (w *Worker) Bound() float64 { return w.j.Bound() }

// Offer feeds one neighbor into the shared heap.
func (w *Worker) Offer(n knn.Neighbor) { w.j.Offer(n) }

// Spawn enqueues a stealable refine chunk: any idle worker may pick it up.
// The chunk inherits best-first ordering by the given bound.
func (w *Worker) Spawn(bound float64, fn Task) {
	w.j.spawn(bound, w.id, true, fn)
}
