package storage

import (
	"hash/crc32"
	"math"
)

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

func crcOf(data []byte) uint32 { return crc32.Checksum(data, crc32.IEEETable) }
