// Package storage provides the disk substrate TARDIS runs on: fixed-format
// binary partition files (the stand-in for HDFS blocks), streaming readers
// and writers, block-level sampling, and I/O accounting.
//
// The paper's query cost model is dominated by partition loads ("the
// distributed infrastructures prefer to store data in large files ... the
// loading of such file is high latency", §V-A). This package therefore
// counts every partition load and byte read, so benchmarks can report the
// same quantities the paper argues about.
package storage

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/ts"
)

// File format (little endian):
//
//	magic "TPRT", version u16, seriesLen u32, recordCount u64,
//	compression u8 (0 = none, 1 = flate),
//	payload: records (rid i64, values float64 × seriesLen) followed by the
//	crc32 (IEEE) of the raw record bytes. With compression, the payload
//	(records + crc) is one flate stream.
//
// Version 1 files (no compression byte, raw payload) remain readable.

const (
	fileMagic     = "TPRT"
	fileVersionV1 = 1
	fileVersion   = 2
)

// ErrChecksum reports that a partition's bytes do not match their recorded
// checksum: either the in-file CRC32 trailer (torn or bit-flipped frames) or
// the manifest's CRC32C content checksum (a diverged replica). Callers that
// replicate partitions test for it with errors.Is and fail over to another
// copy.
var ErrChecksum = errors.New("storage: checksum mismatch")

// castagnoli is the CRC32C table used for content checksums. Unlike the
// in-file IEEE trailer (which covers one file's frames), the content checksum
// is a property of the decoded record stream, so it is comparable across
// replicas regardless of each file's compression setting.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Compression selects the partition payload encoding.
type Compression uint8

const (
	// NoCompression stores raw records (fastest reads).
	NoCompression Compression = 0
	// Flate compresses the record payload with DEFLATE — the trade HDFS
	// deployments make for cold data: smaller blocks, slower loads.
	Flate Compression = 1
)

// IOStats counts the physical work done against a store. All fields are
// updated atomically; read them with the accessor methods.
type IOStats struct {
	partitionsRead atomic.Int64
	bytesRead      atomic.Int64
	partitionsWrit atomic.Int64
	bytesWritten   atomic.Int64
}

// PartitionsRead returns the number of partition loads so far.
func (s *IOStats) PartitionsRead() int64 { return s.partitionsRead.Load() }

// BytesRead returns the total bytes read.
func (s *IOStats) BytesRead() int64 { return s.bytesRead.Load() }

// PartitionsWritten returns the number of partitions written.
func (s *IOStats) PartitionsWritten() int64 { return s.partitionsWrit.Load() }

// BytesWritten returns the total bytes written.
func (s *IOStats) BytesWritten() int64 { return s.bytesWritten.Load() }

// Reset zeroes all counters.
func (s *IOStats) Reset() {
	s.partitionsRead.Store(0)
	s.bytesRead.Store(0)
	s.partitionsWrit.Store(0)
	s.bytesWritten.Store(0)
}

// Store is a directory of numbered partition files holding fixed-length
// time-series records, plus a JSON manifest.
type Store struct {
	dir         string
	seriesLen   int
	latency     LatencyModel
	compression Compression
	Stats       IOStats

	cmu       sync.Mutex
	checksums map[int]uint32 // guarded by cmu; CRC32C content checksum per partition
}

// Compression returns the store's payload encoding for new partitions.
func (s *Store) Compression() Compression { return s.compression }

// LatencyModel injects synthetic I/O latency into partition reads, emulating
// the cost profile of a distributed filesystem (the paper's HDFS blocks cost
// seconds to load; a laptop page-cache read costs microseconds). PerLoad is
// charged once per partition read, PerByte per byte scanned. The zero value
// injects nothing.
type LatencyModel struct {
	PerLoad time.Duration
	PerByte time.Duration
}

// SetLatency installs a synthetic latency model for subsequent reads. It is
// not safe to call concurrently with reads.
func (s *Store) SetLatency(m LatencyModel) { s.latency = m }

// Latency returns the current latency model.
func (s *Store) Latency() LatencyModel { return s.latency }

func (s *Store) chargeLatency(bytes int64) {
	d := s.latency.PerLoad + time.Duration(bytes)*s.latency.PerByte
	if d > 0 {
		time.Sleep(d)
	}
}

// Manifest describes a store on disk.
type Manifest struct {
	SeriesLen   int    `json:"series_len"`
	Name        string `json:"name,omitempty"`
	Partitions  []int  `json:"partitions"`
	Records     int64  `json:"records"`
	Compression uint8  `json:"compression,omitempty"`
	// Checksums maps partition id (as a decimal string, JSON object keys) to
	// the CRC32C of the partition's decoded record stream. Absent for stores
	// written before content checksums existed; entries are filled in lazily
	// by PartitionChecksum and on Sync.
	Checksums map[string]uint32 `json:"checksums,omitempty"`
}

const manifestName = "manifest.json"

// Create initializes a new store in dir (created if absent). An existing
// manifest is an error: stores are write-once by partition.
func Create(dir string, seriesLen int) (*Store, error) {
	return CreateCompressed(dir, seriesLen, NoCompression)
}

// CreateCompressed is Create with an explicit payload encoding for the
// store's partitions.
func CreateCompressed(dir string, seriesLen int, c Compression) (*Store, error) {
	if seriesLen < 1 {
		return nil, fmt.Errorf("storage: series length must be positive, got %d", seriesLen)
	}
	if c != NoCompression && c != Flate {
		return nil, fmt.Errorf("storage: unknown compression %d", c)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("storage: %s already contains a store", dir)
	}
	s := &Store{dir: dir, seriesLen: seriesLen, compression: c, checksums: map[int]uint32{}}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open opens an existing store.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("storage: opening manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: parsing manifest: %w", err)
	}
	if m.SeriesLen < 1 {
		return nil, fmt.Errorf("storage: manifest has invalid series length %d", m.SeriesLen)
	}
	sums := make(map[int]uint32, len(m.Checksums))
	for key, sum := range m.Checksums {
		pid, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("storage: manifest checksum key %q: %w", key, err)
		}
		sums[pid] = sum
	}
	return &Store{dir: dir, seriesLen: m.SeriesLen, compression: Compression(m.Compression), checksums: sums}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SeriesLen returns the fixed record length.
func (s *Store) SeriesLen() int { return s.seriesLen }

func (s *Store) partitionPath(pid int) string {
	return filepath.Join(s.dir, fmt.Sprintf("part-%06d.bin", pid))
}

// Partitions lists the partition ids present on disk, sorted.
func (s *Store) Partitions() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing %s: %w", s.dir, err)
	}
	var pids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "part-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "part-"), ".bin"))
		if err != nil {
			continue
		}
		pids = append(pids, id)
	}
	sort.Ints(pids)
	return pids, nil
}

func (s *Store) writeManifest() error {
	pids, err := s.Partitions()
	if err != nil {
		return err
	}
	var total int64
	for _, pid := range pids {
		n, err := s.PartitionCount(pid)
		if err != nil {
			return err
		}
		total += n
	}
	m := Manifest{SeriesLen: s.seriesLen, Partitions: pids, Records: total, Compression: uint8(s.compression)}
	s.cmu.Lock()
	for _, pid := range pids {
		if sum, ok := s.checksums[pid]; ok {
			if m.Checksums == nil {
				m.Checksums = map[string]uint32{}
			}
			m.Checksums[strconv.Itoa(pid)] = sum
		}
	}
	s.cmu.Unlock()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.dir, manifestName), data, 0o644)
}

// noteChecksum records a partition's freshly computed content checksum; it is
// persisted into the manifest on the next Sync.
func (s *Store) noteChecksum(pid int, sum uint32) {
	s.cmu.Lock()
	if s.checksums == nil {
		s.checksums = map[int]uint32{}
	}
	s.checksums[pid] = sum
	s.cmu.Unlock()
}

// SetChecksum seeds a partition's content checksum from an external source —
// a distributed build's coordinator learns checksums from worker replies and
// records them here before Sync persists the manifest.
func (s *Store) SetChecksum(pid int, sum uint32) { s.noteChecksum(pid, sum) }

// expectedChecksum returns the known content checksum for pid, if any.
func (s *Store) expectedChecksum(pid int) (uint32, bool) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	sum, ok := s.checksums[pid]
	return sum, ok
}

func (s *Store) dropChecksum(pid int) {
	s.cmu.Lock()
	delete(s.checksums, pid)
	s.cmu.Unlock()
}

// Sync rewrites the manifest from the current on-disk partitions. Call after
// finishing a batch of partition writes.
func (s *Store) Sync() error { return s.writeManifest() }

// WritePartition writes a full partition in one call.
func (s *Store) WritePartition(pid int, recs []ts.Record) error {
	w, err := s.NewWriter(pid)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			w.abort()
			return err
		}
	}
	return w.Close()
}

// Writer streams records into one partition file. Close finalizes the
// header and checksum.
type Writer struct {
	store   *Store
	pid     int
	f       *os.File
	bw      *bufio.Writer
	payload io.Writer     // bw or the flate compressor on top of it
	fl      *flate.Writer // non-nil when compressing
	crc     uint32
	crcc    uint32 // CRC32C content checksum over the same frames
	count   uint64
	bytes   int64
}

// NewWriter opens a streaming writer for partition pid. The partition must
// not already exist.
func (s *Store) NewWriter(pid int) (*Writer, error) {
	path := s.partitionPath(pid)
	if err := faultinj.InjectAs("storage.write", path); err != nil {
		return nil, fmt.Errorf("storage: partition %d: %w", pid, err)
	}
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("storage: partition %d already exists", pid)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating partition %d: %w", pid, err)
	}
	w := &Writer{store: s, pid: pid, f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	// Reserve the header; recordCount is patched on Close.
	header := make([]byte, headerSize)
	copy(header, fileMagic)
	binary.LittleEndian.PutUint16(header[4:], fileVersion)
	binary.LittleEndian.PutUint32(header[6:], uint32(s.seriesLen))
	header[headerSize-1] = byte(s.compression)
	if _, err := w.bw.Write(header); err != nil {
		return nil, errors.Join(err, f.Close(), os.Remove(path))
	}
	w.bytes += headerSize
	if s.compression == Flate {
		fl, err := flate.NewWriter(w.bw, flate.DefaultCompression)
		if err != nil {
			return nil, errors.Join(err, f.Close(), os.Remove(path))
		}
		w.fl = fl
		w.payload = fl
	} else {
		w.payload = w.bw
	}
	return w, nil
}

const (
	headerSizeV1 = 4 + 2 + 4 + 8
	headerSize   = headerSizeV1 + 1 // + compression byte
)

// Write appends one record.
func (w *Writer) Write(r ts.Record) error {
	if len(r.Values) != w.store.seriesLen {
		return fmt.Errorf("storage: record %d length %d != store length %d", r.RID, len(r.Values), w.store.seriesLen)
	}
	buf := make([]byte, 8+8*w.store.seriesLen)
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.RID))
	for i, v := range r.Values {
		binary.LittleEndian.PutUint64(buf[8+i*8:], mathFloat64bits(v))
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, buf)
	w.crcc = crc32.Update(w.crcc, castagnoli, buf)
	if _, err := w.payload.Write(buf); err != nil {
		return err
	}
	w.count++
	w.bytes += int64(len(buf))
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// ContentChecksum returns the CRC32C of the record frames written so far.
// After Close it is the partition's content checksum.
func (w *Writer) ContentChecksum() uint32 { return w.crcc }

// Close writes the checksum, patches the header, and closes the file.
func (w *Writer) Close() error {
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], w.crc)
	if _, err := w.payload.Write(tail[:]); err != nil {
		return errors.Join(err, w.abort())
	}
	w.bytes += 4
	if w.fl != nil {
		if err := w.fl.Close(); err != nil {
			return errors.Join(err, w.abort())
		}
	}
	if err := w.bw.Flush(); err != nil {
		return errors.Join(err, w.abort())
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.f.WriteAt(cnt[:], 10); err != nil {
		return errors.Join(err, w.abort())
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.store.noteChecksum(w.pid, w.crcc)
	w.store.Stats.partitionsWrit.Add(1)
	w.store.Stats.bytesWritten.Add(w.bytes)
	return nil
}

// abort tears the half-written partition down; a failed close or remove is
// joined onto the primary error by the caller.
func (w *Writer) abort() error {
	return errors.Join(w.f.Close(), os.Remove(w.store.partitionPath(w.pid)))
}

// partitionReader is the streaming decode state shared by ScanPartition,
// ReadPartition, and ReadPartitionArena: header parsing, record framing,
// checksum verification, and I/O accounting live here once.
type partitionReader struct {
	store   *Store
	pid     int
	f       *os.File
	fl      io.ReadCloser // flate reader when compressed
	payload io.Reader
	slen    int
	count   uint64
	buf     []byte // one record frame, reused across next() calls
	crc     uint32
	crcc    uint32 // CRC32C content checksum over the decoded frames
	bytes   int64
}

// openPartition opens a partition file and parses its header. The caller
// must close the reader, and call finish after consuming count records to
// verify the checksum and charge the load to Stats.
func (s *Store) openPartition(pid int) (*partitionReader, error) {
	path := s.partitionPath(pid)
	if err := faultinj.InjectAs("storage.read", path); err != nil {
		return nil, fmt.Errorf("storage: partition %d: %w", pid, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening partition %d: %w", pid, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	header := make([]byte, headerSizeV1)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, errors.Join(fmt.Errorf("storage: partition %d header: %w", pid, err), f.Close())
	}
	if string(header[:4]) != fileMagic {
		return nil, errors.Join(fmt.Errorf("storage: partition %d: bad magic", pid), f.Close())
	}
	version := binary.LittleEndian.Uint16(header[4:])
	compression := NoCompression
	switch version {
	case fileVersionV1:
		// no compression byte
	case fileVersion:
		var cb [1]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return nil, errors.Join(fmt.Errorf("storage: partition %d header: %w", pid, err), f.Close())
		}
		compression = Compression(cb[0])
		if compression != NoCompression && compression != Flate {
			return nil, errors.Join(fmt.Errorf("storage: partition %d: unknown compression %d", pid, cb[0]), f.Close())
		}
	default:
		return nil, errors.Join(fmt.Errorf("storage: partition %d: unsupported version %d", pid, version), f.Close())
	}
	slen := int(binary.LittleEndian.Uint32(header[6:]))
	if slen != s.seriesLen {
		return nil, errors.Join(fmt.Errorf("storage: partition %d series length %d != store %d", pid, slen, s.seriesLen), f.Close())
	}
	r := &partitionReader{
		store: s,
		pid:   pid,
		f:     f,
		slen:  slen,
		count: binary.LittleEndian.Uint64(header[10:]),
		buf:   make([]byte, 8+8*slen),
		bytes: headerSize,
	}
	if compression == Flate {
		r.fl = flate.NewReader(br)
		r.payload = r.fl
	} else {
		r.payload = br
	}
	return r, nil
}

// next reads the next record frame into the shared buffer and returns the
// record id. The values remain encoded in r.buf[8:]; decode them with
// valueAt before the following next call.
func (r *partitionReader) next(i uint64) (int64, error) {
	if _, err := io.ReadFull(r.payload, r.buf); err != nil {
		return 0, fmt.Errorf("storage: partition %d record %d: %w", r.pid, i, err)
	}
	// Bit-flip failpoint: models silent media corruption on this replica's
	// disk. The flipped frame fails both checksum verifications in finish.
	if faultinj.InjectAs("storage.corrupt", r.store.partitionPath(r.pid)) != nil {
		r.buf[len(r.buf)/2] ^= 0x01
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, r.buf)
	r.crcc = crc32.Update(r.crcc, castagnoli, r.buf)
	r.bytes += int64(len(r.buf))
	return int64(binary.LittleEndian.Uint64(r.buf[0:])), nil
}

// valueAt decodes value j of the record currently framed in buf.
func (r *partitionReader) valueAt(j int) float64 {
	return mathFloat64frombits(binary.LittleEndian.Uint64(r.buf[8+j*8:]))
}

// finish verifies the trailing checksum — and, when the manifest records a
// content checksum for this partition, the CRC32C of the decoded frames —
// then charges the completed load to the store's latency model and Stats.
func (r *partitionReader) finish() error {
	var tail [4]byte
	if _, err := io.ReadFull(r.payload, tail[:]); err != nil {
		return fmt.Errorf("storage: partition %d checksum: %w", r.pid, err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != r.crc {
		return fmt.Errorf("storage: partition %d: %w", r.pid, ErrChecksum)
	}
	if want, ok := r.store.expectedChecksum(r.pid); ok && want != r.crcc {
		return fmt.Errorf("storage: partition %d content crc32c %08x != manifest %08x: %w",
			r.pid, r.crcc, want, ErrChecksum)
	}
	r.bytes += 4
	r.store.chargeLatency(r.bytes)
	r.store.Stats.partitionsRead.Add(1)
	r.store.Stats.bytesRead.Add(r.bytes)
	return nil
}

func (r *partitionReader) close() error {
	var flErr error
	if r.fl != nil {
		flErr = r.fl.Close()
	}
	return errors.Join(flErr, r.f.Close())
}

// ReadPartition loads a whole partition, verifying the checksum, and counts
// the load in Stats. The output slice is presized from the header record
// count.
func (s *Store) ReadPartition(pid int) ([]ts.Record, error) {
	r, err := s.openPartition(pid)
	if err != nil {
		return nil, err
	}
	defer r.close()
	out := make([]ts.Record, 0, r.count)
	for i := uint64(0); i < r.count; i++ {
		rid, err := r.next(i)
		if err != nil {
			return nil, err
		}
		rec := ts.Record{RID: rid, Values: make(ts.Series, r.slen)}
		for j := 0; j < r.slen; j++ {
			rec.Values[j] = r.valueAt(j)
		}
		out = append(out, rec)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPartitionArena loads a whole partition into one contiguous arena:
// record ids in file order and their values packed record-major into a
// single []float64 of len(rids)*SeriesLen(). Two allocations replace the
// one-Series-per-record layout of ReadPartition, and slices into the arena
// stay cache-friendly for sequential refinement scans.
func (s *Store) ReadPartitionArena(pid int) (rids []int64, values []float64, err error) {
	r, err := s.openPartition(pid)
	if err != nil {
		return nil, nil, err
	}
	defer r.close()
	rids = make([]int64, r.count)
	values = make([]float64, int(r.count)*r.slen)
	for i := uint64(0); i < r.count; i++ {
		rid, err := r.next(i)
		if err != nil {
			return nil, nil, err
		}
		rids[i] = rid
		off := int(i) * r.slen
		for j := 0; j < r.slen; j++ {
			values[off+j] = r.valueAt(j)
		}
	}
	if err := r.finish(); err != nil {
		return nil, nil, err
	}
	return rids, values, nil
}

// ScanPartition streams a partition's records through fn, verifying the
// checksum at the end.
func (s *Store) ScanPartition(pid int, fn func(ts.Record) error) error {
	r, err := s.openPartition(pid)
	if err != nil {
		return err
	}
	defer r.close()
	for i := uint64(0); i < r.count; i++ {
		rid, err := r.next(i)
		if err != nil {
			return err
		}
		rec := ts.Record{RID: rid, Values: make(ts.Series, r.slen)}
		for j := 0; j < r.slen; j++ {
			rec.Values[j] = r.valueAt(j)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return r.finish()
}

// PartitionCount returns the record count of a partition from its header
// without reading the records.
func (s *Store) PartitionCount(pid int) (int64, error) {
	f, err := os.Open(s.partitionPath(pid))
	if err != nil {
		return 0, fmt.Errorf("storage: opening partition %d: %w", pid, err)
	}
	defer f.Close()
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(f, header); err != nil {
		return 0, fmt.Errorf("storage: partition %d header: %w", pid, err)
	}
	if string(header[:4]) != fileMagic {
		return 0, fmt.Errorf("storage: partition %d: bad magic", pid)
	}
	return int64(binary.LittleEndian.Uint64(header[10:])), nil
}

// SampledPartitions returns the deterministic block-level sample: a fraction
// pct of the partition ids chosen under the given seed, sorted. At least one
// block is chosen when any exist.
func (s *Store) SampledPartitions(pct float64, seed int64) ([]int, error) {
	if pct <= 0 || pct > 1 {
		return nil, fmt.Errorf("storage: sampling percentage must be in (0,1], got %v", pct)
	}
	pids, err := s.Partitions()
	if err != nil {
		return nil, err
	}
	if len(pids) == 0 {
		return nil, errors.New("storage: no partitions to sample")
	}
	n := int(float64(len(pids)) * pct)
	if n < 1 {
		n = 1
	}
	return samplePIDs(pids, n, seed), nil
}

// SampleBlocks performs the paper's block-level sampling (§IV-B): a fraction
// pct of the partition files is chosen with the given deterministic seed and
// every record inside the chosen blocks is streamed through fn. It returns
// the number of blocks chosen.
func (s *Store) SampleBlocks(pct float64, seed int64, fn func(ts.Record) error) (int, error) {
	chosen, err := s.SampledPartitions(pct, seed)
	if err != nil {
		return 0, err
	}
	for _, pid := range chosen {
		if err := s.ScanPartition(pid, fn); err != nil {
			return 0, err
		}
	}
	return len(chosen), nil
}

// samplePIDs deterministically picks n of the given pids using a seeded
// Fisher-Yates prefix shuffle.
func samplePIDs(pids []int, n int, seed int64) []int {
	cp := make([]int, len(pids))
	copy(cp, pids)
	// xorshift64* keeps the package free of math/rand while deterministic.
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	if n > len(cp) {
		n = len(cp)
	}
	for i := 0; i < n; i++ {
		j := i + int(next()%uint64(len(cp)-i))
		cp[i], cp[j] = cp[j], cp[i]
	}
	out := cp[:n]
	sort.Ints(out)
	return out
}

// DeletePartition removes a partition file (used by tests and rebuilds).
func (s *Store) DeletePartition(pid int) error {
	s.dropChecksum(pid)
	return os.Remove(s.partitionPath(pid))
}

// PartitionChecksum returns the CRC32C content checksum of a partition's
// decoded record stream. The manifest value is served when present; otherwise
// the partition is scanned once and the result cached (persisted on the next
// Sync). Replicas of the same partition agree on this value regardless of
// their compression settings.
func (s *Store) PartitionChecksum(pid int) (uint32, error) {
	if sum, ok := s.expectedChecksum(pid); ok {
		return sum, nil
	}
	r, err := s.openPartition(pid)
	if err != nil {
		return 0, err
	}
	defer r.close()
	for i := uint64(0); i < r.count; i++ {
		if _, err := r.next(i); err != nil {
			return 0, err
		}
	}
	if err := r.finish(); err != nil {
		return 0, err
	}
	s.noteChecksum(pid, r.crcc)
	return r.crcc, nil
}

// VerifyPartitionChecksum recomputes pid's content checksum from the bytes on
// disk, never trusting the manifest cache. The anti-entropy loop uses it so a
// replica whose bytes rotted after a clean write is still caught: a torn or
// bit-flipped file fails its own trailer or manifest check here, and an
// internally consistent but stale replica returns a checksum that disagrees
// with the partition map.
func (s *Store) VerifyPartitionChecksum(pid int) (uint32, error) {
	r, err := s.openPartition(pid)
	if err != nil {
		return 0, err
	}
	defer r.close()
	for i := uint64(0); i < r.count; i++ {
		if _, err := r.next(i); err != nil {
			return 0, err
		}
	}
	if err := r.finish(); err != nil {
		return 0, err
	}
	return r.crcc, nil
}

// QuarantinePartition renames a partition file detected as corrupt to
// part-NNNNNN.bin.quarantined so it stops serving reads, and drops its
// checksum entry. The quarantined bytes are kept for postmortem inspection;
// anti-entropy repair re-replicates a good copy in its place.
func (s *Store) QuarantinePartition(pid int) error {
	path := s.partitionPath(pid)
	if err := os.Rename(path, path+".quarantined"); err != nil {
		return fmt.Errorf("storage: quarantining partition %d: %w", pid, err)
	}
	s.dropChecksum(pid)
	return nil
}

// TotalRecords sums the record counts of all partitions from their headers.
func (s *Store) TotalRecords() (int64, error) {
	pids, err := s.Partitions()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, pid := range pids {
		n, err := s.PartitionCount(pid)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// SizeBytes returns the total on-disk size of all partition files.
func (s *Store) SizeBytes() (int64, error) {
	pids, err := s.Partitions()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, pid := range pids {
		st, err := os.Stat(s.partitionPath(pid))
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}
