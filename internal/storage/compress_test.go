package storage

import (
	"encoding/binary"
	"math/rand"
	"os"
	"testing"

	"github.com/tardisdb/tardis/internal/ts"
)

func TestCreateCompressedValidation(t *testing.T) {
	if _, err := CreateCompressed(t.TempDir(), 8, Compression(9)); err == nil {
		t.Error("unknown compression should fail")
	}
	s, err := CreateCompressed(t.TempDir(), 8, Flate)
	if err != nil {
		t.Fatal(err)
	}
	if s.Compression() != Flate {
		t.Error("compression not recorded")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateCompressed(dir, 16, Flate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	recs := randomRecords(rng, 200, 16, 0)
	if err := s.WritePartition(0, recs); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i].RID != recs[i].RID || !ts.Equal(got[i].Values, recs[i].Values) {
			t.Fatalf("record %d differs", i)
		}
	}
	// Manifest round trip restores the compression setting.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Compression() != Flate {
		t.Error("compression lost on reopen")
	}
	got2, err := re.ReadPartition(0)
	if err != nil || len(got2) != 200 {
		t.Fatalf("reopened read: %d, %v", len(got2), err)
	}
	if n, err := re.PartitionCount(0); err != nil || n != 200 {
		t.Errorf("PartitionCount on compressed = %d, %v", n, err)
	}
}

// Compressible data (a repetitive pattern) must actually shrink on disk.
func TestCompressionShrinksRepetitiveData(t *testing.T) {
	pattern := make(ts.Series, 64)
	for i := range pattern {
		pattern[i] = float64(i % 4)
	}
	recs := make([]ts.Record, 500)
	for i := range recs {
		recs[i] = ts.Record{RID: int64(i), Values: pattern}
	}
	plain, err := Create(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WritePartition(0, recs); err != nil {
		t.Fatal(err)
	}
	comp, err := CreateCompressed(t.TempDir(), 64, Flate)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.WritePartition(0, recs); err != nil {
		t.Fatal(err)
	}
	ps, _ := plain.SizeBytes()
	cs, _ := comp.SizeBytes()
	if cs >= ps/10 {
		t.Errorf("compressed %d bytes vs plain %d; expected >10x shrink on repetitive data", cs, ps)
	}
}

func TestCompressedChecksumDetectsCorruption(t *testing.T) {
	s, err := CreateCompressed(t.TempDir(), 8, Flate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := s.WritePartition(0, randomRecords(rng, 100, 8, 0)); err != nil {
		t.Fatal(err)
	}
	path := s.partitionPath(0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := s.ReadPartition(0); err == nil {
		t.Error("corrupted compressed partition should fail")
	}
}

// Version-1 files (headerSizeV1, no compression byte) remain readable.
func TestV1Compatibility(t *testing.T) {
	s := newStore(t, 2)
	// Hand-craft a v1 partition: header without compression byte, two
	// records, CRC.
	recs := []ts.Record{{RID: 1, Values: ts.Series{1, 2}}, {RID: 2, Values: ts.Series{3, 4}}}
	var payload []byte
	for _, r := range recs {
		buf := make([]byte, 8+16)
		binary.LittleEndian.PutUint64(buf, uint64(r.RID))
		for i, v := range r.Values {
			binary.LittleEndian.PutUint64(buf[8+i*8:], mathFloat64bits(v))
		}
		payload = append(payload, buf...)
	}
	crc := crcOf(payload)
	header := make([]byte, headerSizeV1)
	copy(header, fileMagic)
	binary.LittleEndian.PutUint16(header[4:], fileVersionV1)
	binary.LittleEndian.PutUint32(header[6:], 2)
	binary.LittleEndian.PutUint64(header[10:], 2)
	file := append(header, payload...)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	file = append(file, tail[:]...)
	if err := os.WriteFile(s.partitionPath(0), file, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].RID != 1 || got[1].Values[1] != 4 {
		t.Fatalf("v1 read wrong: %+v", got)
	}
}
