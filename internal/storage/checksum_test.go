package storage

import (
	"errors"
	"math/rand"
	"os"
	"testing"

	"github.com/tardisdb/tardis/internal/faultinj"
)

// TestContentChecksumRoundTrip verifies that the CRC32C content checksum is
// recorded on write, persisted through Sync, reloaded by Open, and equal for
// compressed and uncompressed copies of the same records.
func TestContentChecksumRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(rng, 50, 16, 0)

	plain := newStore(t, 16)
	if err := plain.WritePartition(3, recs); err != nil {
		t.Fatal(err)
	}
	sum, err := plain.PartitionChecksum(3)
	if err != nil {
		t.Fatal(err)
	}
	if sum == 0 {
		t.Fatal("content checksum should be non-zero for random data")
	}
	if err := plain.Sync(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(plain.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.expectedChecksum(3)
	if !ok || got != sum {
		t.Fatalf("manifest checksum = %08x, %v; want %08x, true", got, ok, sum)
	}

	compressed, err := CreateCompressed(t.TempDir(), 16, Flate)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressed.WritePartition(9, recs); err != nil {
		t.Fatal(err)
	}
	csum, err := compressed.PartitionChecksum(9)
	if err != nil {
		t.Fatal(err)
	}
	if csum != sum {
		t.Fatalf("compressed checksum %08x != plain %08x; content checksum must ignore encoding", csum, sum)
	}
}

// TestPartitionChecksumComputedLazily verifies the by-scan fallback for
// stores whose manifest predates content checksums.
func TestPartitionChecksumComputedLazily(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := newStore(t, 8)
	if err := s.WritePartition(0, randomRecords(rng, 20, 8, 0)); err != nil {
		t.Fatal(err)
	}
	want, _ := s.expectedChecksum(0)
	s.dropChecksum(0) // simulate a legacy manifest with no checksum entry
	got, err := s.PartitionChecksum(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("scanned checksum %08x != written %08x", got, want)
	}
	if _, ok := s.expectedChecksum(0); !ok {
		t.Fatal("scanned checksum should be cached")
	}
}

// TestVerifyOnReadDetectsContentMismatch plants a wrong manifest checksum and
// asserts reads fail with ErrChecksum.
func TestVerifyOnReadDetectsContentMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := newStore(t, 8)
	if err := s.WritePartition(0, randomRecords(rng, 10, 8, 0)); err != nil {
		t.Fatal(err)
	}
	s.noteChecksum(0, 0xdeadbeef)
	if _, err := s.ReadPartition(0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPartition error = %v; want ErrChecksum", err)
	}
	if _, _, err := s.ReadPartitionArena(0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPartitionArena error = %v; want ErrChecksum", err)
	}
}

// TestBitFlipFailpoint arms the storage.corrupt failpoint and asserts the
// flipped frame is caught by checksum verification as ErrChecksum.
func TestBitFlipFailpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := newStore(t, 8)
	if err := s.WritePartition(0, randomRecords(rng, 10, 8, 0)); err != nil {
		t.Fatal(err)
	}
	faultinj.Enable(faultinj.NewSchedule(faultinj.Rule{
		Point: "storage.corrupt", Label: s.partitionPath(0), Hits: []int{1}, Kind: faultinj.KindErr,
	}))
	t.Cleanup(faultinj.Disable)
	if _, err := s.ReadPartition(0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted read error = %v; want ErrChecksum", err)
	}
	// The fault fired once; the next read sees clean bytes again.
	if _, err := s.ReadPartition(0); err != nil {
		t.Fatalf("second read after one-shot corruption: %v", err)
	}
}

// TestQuarantinePartition verifies the corrupt file is renamed out of the
// serving set but kept on disk.
func TestQuarantinePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newStore(t, 8)
	if err := s.WritePartition(4, randomRecords(rng, 5, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.QuarantinePartition(4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.partitionPath(4)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partition file should be gone, stat err = %v", err)
	}
	if _, err := os.Stat(s.partitionPath(4) + ".quarantined"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	pids, err := s.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 0 {
		t.Fatalf("quarantined partition still listed: %v", pids)
	}
	if _, ok := s.expectedChecksum(4); ok {
		t.Fatal("quarantine should drop the checksum entry")
	}
}
