package storage

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestImportCSVBasic(t *testing.T) {
	s := newStore(t, 4)
	csvData := "1,2,3,4\n5,6,7,8\n9,10,11,12\n"
	n, err := s.ImportCSV(strings.NewReader(csvData), CSVOptions{BlockRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d, want 3", n)
	}
	pids, err := s.Partitions()
	if err != nil || len(pids) != 2 {
		t.Fatalf("partitions = %v (%v), want 2 blocks", pids, err)
	}
	recs, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].RID != 0 || recs[0].Values[0] != 1 || recs[1].Values[3] != 8 {
		t.Errorf("imported content wrong: %+v", recs)
	}
}

func TestImportCSVWithRIDAndNormalize(t *testing.T) {
	s := newStore(t, 4)
	csvData := "100,1,2,3,4\n200,5,5,5,5\n"
	n, err := s.ImportCSV(strings.NewReader(csvData), CSVOptions{HasRID: true, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d", n)
	}
	recs, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].RID != 100 || recs[1].RID != 200 {
		t.Errorf("rids = %d, %d", recs[0].RID, recs[1].RID)
	}
	if m := recs[0].Values.Mean(); math.Abs(m) > 1e-12 {
		t.Errorf("normalized mean = %v", m)
	}
	// Constant row normalizes to zeros.
	for _, v := range recs[1].Values {
		if v != 0 {
			t.Errorf("constant row should normalize to zeros, got %v", recs[1].Values)
		}
	}
}

func TestImportCSVErrors(t *testing.T) {
	s := newStore(t, 4)
	if _, err := s.ImportCSV(strings.NewReader("1,2,3\n"), CSVOptions{}); err == nil {
		t.Error("wrong column count should fail")
	}
	s2 := newStore(t, 4)
	if _, err := s2.ImportCSV(strings.NewReader("1,2,x,4\n"), CSVOptions{}); err == nil {
		t.Error("non-numeric value should fail")
	}
	s3 := newStore(t, 4)
	if _, err := s3.ImportCSV(strings.NewReader("x,1,2,3,4\n"), CSVOptions{HasRID: true}); err == nil {
		t.Error("non-numeric rid should fail")
	}
	// Non-empty store rejected.
	s4 := newStore(t, 4)
	if _, err := s4.ImportCSV(strings.NewReader("1,2,3,4\n"), CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s4.ImportCSV(strings.NewReader("1,2,3,4\n"), CSVOptions{}); err == nil {
		t.Error("import into non-empty store should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := newStore(t, 3)
	var in bytes.Buffer
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&in, "%d,%g,%g,%g\n", i*10, float64(i), float64(i)*1.5, float64(i)*-0.25)
	}
	n, err := s.ImportCSV(&in, CSVOptions{HasRID: true, BlockRecords: 10})
	if err != nil || n != 25 {
		t.Fatalf("import: %d, %v", n, err)
	}
	var out bytes.Buffer
	if err := s.ExportCSV(&out, CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("exported %d lines", len(lines))
	}
	if lines[0] != "0,0,0,-0" && lines[0] != "0,0,0,0" {
		// -0.0 formatting is platform-stable with strconv: expect "-0".
		t.Logf("first line: %q", lines[0])
	}
	// Reimport the export into a fresh store and compare.
	s2 := newStore(t, 3)
	n2, err := s2.ImportCSV(strings.NewReader(out.String()), CSVOptions{HasRID: true, BlockRecords: 10})
	if err != nil || n2 != 25 {
		t.Fatalf("reimport: %d, %v", n2, err)
	}
	a, _ := s.ReadPartition(0)
	b, _ := s2.ReadPartition(0)
	for i := range a {
		if a[i].RID != b[i].RID {
			t.Fatalf("round trip rid mismatch at %d", i)
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("round trip value mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestCSVCustomSeparator(t *testing.T) {
	s := newStore(t, 2)
	n, err := s.ImportCSV(strings.NewReader("1;2\n3;4\n"), CSVOptions{Comma: ';'})
	if err != nil || n != 2 {
		t.Fatalf("semicolon import: %d, %v", n, err)
	}
	var out bytes.Buffer
	if err := s.ExportCSV(&out, CSVOptions{Comma: '\t'}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\t") {
		t.Error("tab export missing tabs")
	}
}
