package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tardisdb/tardis/internal/ts"
)

func newStore(t *testing.T, seriesLen int) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), seriesLen)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomRecords(rng *rand.Rand, n, slen int, ridBase int64) []ts.Record {
	out := make([]ts.Record, n)
	for i := range out {
		v := make(ts.Series, slen)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = ts.Record{RID: ridBase + int64(i), Values: v}
	}
	return out
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(t.TempDir(), 0); err == nil {
		t.Error("series length 0 should fail")
	}
	dir := t.TempDir()
	if _, err := Create(dir, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, 8); err == nil {
		t.Error("double create should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("open without manifest should fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("{bad json"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt manifest should fail")
	}
	os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"series_len":0}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("invalid series length should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, 16)
	rng := rand.New(rand.NewSource(1))
	recs := randomRecords(rng, 100, 16, 0)
	if err := s.WritePartition(0, recs); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].RID != recs[i].RID || !ts.Equal(got[i].Values, recs[i].Values) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWriterValidation(t *testing.T) {
	s := newStore(t, 8)
	w, err := s.NewWriter(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ts.Record{RID: 1, Values: make(ts.Series, 4)}); err == nil {
		t.Error("wrong record length should fail")
	}
	if err := w.Write(ts.Record{RID: 1, Values: make(ts.Series, 8)}); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewWriter(0); err == nil {
		t.Error("rewriting existing partition should fail")
	}
}

func TestPartitionCountAndTotal(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(2))
	for pid, n := range []int{10, 20, 30} {
		if err := s.WritePartition(pid, randomRecords(rng, n, 8, int64(pid*1000))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.PartitionCount(1)
	if err != nil || n != 20 {
		t.Errorf("PartitionCount = %d, %v; want 20", n, err)
	}
	total, err := s.TotalRecords()
	if err != nil || total != 60 {
		t.Errorf("TotalRecords = %d, %v; want 60", total, err)
	}
	pids, err := s.Partitions()
	if err != nil || len(pids) != 3 {
		t.Errorf("Partitions = %v, %v", pids, err)
	}
	size, err := s.SizeBytes()
	if err != nil || size <= 0 {
		t.Errorf("SizeBytes = %d, %v", size, err)
	}
}

func TestManifestSyncAndOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := s.WritePartition(0, randomRecords(rng, 5, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.SeriesLen() != 8 {
		t.Errorf("reopened series length = %d", re.SeriesLen())
	}
	got, err := re.ReadPartition(0)
	if err != nil || len(got) != 5 {
		t.Errorf("reopened read: %d records, %v", len(got), err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(4))
	if err := s.WritePartition(0, randomRecords(rng, 50, 8, 0)); err != nil {
		t.Fatal(err)
	}
	path := s.partitionPath(0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+100] ^= 0xFF // flip a byte inside record data
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPartition(0); err == nil {
		t.Error("corrupted partition should fail checksum")
	}
}

func TestReadErrors(t *testing.T) {
	s := newStore(t, 8)
	if _, err := s.ReadPartition(42); err == nil {
		t.Error("missing partition should fail")
	}
	// Truncated file.
	rng := rand.New(rand.NewSource(5))
	if err := s.WritePartition(0, randomRecords(rng, 10, 8, 0)); err != nil {
		t.Fatal(err)
	}
	path := s.partitionPath(0)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-10], 0o644)
	if _, err := s.ReadPartition(0); err == nil {
		t.Error("truncated partition should fail")
	}
	// Bad magic.
	copy(data, "XXXX")
	os.WriteFile(path, data, 0o644)
	if _, err := s.ReadPartition(0); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := s.PartitionCount(0); err == nil {
		t.Error("bad magic should fail PartitionCount")
	}
}

func TestIOStats(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(6))
	if err := s.WritePartition(0, randomRecords(rng, 20, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if s.Stats.PartitionsWritten() != 1 || s.Stats.BytesWritten() == 0 {
		t.Error("write stats not counted")
	}
	if _, err := s.ReadPartition(0); err != nil {
		t.Fatal(err)
	}
	if s.Stats.PartitionsRead() != 1 || s.Stats.BytesRead() == 0 {
		t.Error("read stats not counted")
	}
	s.Stats.Reset()
	if s.Stats.PartitionsRead() != 0 || s.Stats.BytesRead() != 0 ||
		s.Stats.PartitionsWritten() != 0 || s.Stats.BytesWritten() != 0 {
		t.Error("reset did not zero stats")
	}
}

func TestSampleBlocks(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(7))
	const parts = 10
	for pid := 0; pid < parts; pid++ {
		if err := s.WritePartition(pid, randomRecords(rng, 10, 8, int64(pid*100))); err != nil {
			t.Fatal(err)
		}
	}
	var count int
	n, err := s.SampleBlocks(0.3, 42, func(r ts.Record) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("sampled %d blocks, want 3", n)
	}
	if count != 30 {
		t.Errorf("visited %d records, want 30", count)
	}
	// Determinism: same seed, same blocks.
	var rids1, rids2 []int64
	s.SampleBlocks(0.3, 42, func(r ts.Record) error { rids1 = append(rids1, r.RID); return nil })
	s.SampleBlocks(0.3, 42, func(r ts.Record) error { rids2 = append(rids2, r.RID); return nil })
	if len(rids1) != len(rids2) {
		t.Fatal("sampling not deterministic")
	}
	for i := range rids1 {
		if rids1[i] != rids2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	// Tiny percentage still samples one block.
	n, err = s.SampleBlocks(0.001, 1, func(ts.Record) error { return nil })
	if err != nil || n != 1 {
		t.Errorf("tiny pct: n=%d err=%v, want 1 block", n, err)
	}
	// Full sampling covers everything.
	count = 0
	n, err = s.SampleBlocks(1.0, 1, func(ts.Record) error { count++; return nil })
	if err != nil || n != parts || count != parts*10 {
		t.Errorf("full sample: n=%d count=%d err=%v", n, count, err)
	}
	// Invalid percentages.
	if _, err := s.SampleBlocks(0, 1, nil); err == nil {
		t.Error("pct=0 should fail")
	}
	if _, err := s.SampleBlocks(1.5, 1, nil); err == nil {
		t.Error("pct>1 should fail")
	}
}

func TestSampleBlocksEmptyStore(t *testing.T) {
	s := newStore(t, 8)
	if _, err := s.SampleBlocks(0.5, 1, nil); err == nil {
		t.Error("sampling empty store should fail")
	}
}

func TestDeletePartition(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(8))
	if err := s.WritePartition(0, randomRecords(rng, 5, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeletePartition(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPartition(0); err == nil {
		t.Error("deleted partition should not read")
	}
}

func TestScanPartitionCallbackError(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(9))
	if err := s.WritePartition(0, randomRecords(rng, 10, 8, 0)); err != nil {
		t.Fatal(err)
	}
	wantErr := os.ErrClosed
	err := s.ScanPartition(0, func(ts.Record) error { return wantErr })
	if err != wantErr {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestEmptyPartition(t *testing.T) {
	s := newStore(t, 8)
	if err := s.WritePartition(0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty partition read %d records", len(got))
	}
}

func TestLatencyModel(t *testing.T) {
	s := newStore(t, 8)
	rng := rand.New(rand.NewSource(10))
	if err := s.WritePartition(0, randomRecords(rng, 10, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if s.Latency() != (LatencyModel{}) {
		t.Error("fresh store should have zero latency model")
	}
	start := time.Now()
	if _, err := s.ReadPartition(0); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)
	s.SetLatency(LatencyModel{PerLoad: 20 * time.Millisecond})
	start = time.Now()
	if _, err := s.ReadPartition(0); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 20*time.Millisecond {
		t.Errorf("latency model not applied: %v", slow)
	}
	if slow < fast {
		t.Errorf("injected read (%v) not slower than raw read (%v)", slow, fast)
	}
}

func TestReadPartitionArena(t *testing.T) {
	for _, comp := range []Compression{NoCompression, Flate} {
		s, err := CreateCompressed(t.TempDir(), 6, comp)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		recs := randomRecords(rng, 40, 6, 100)
		if err := s.WritePartition(0, recs); err != nil {
			t.Fatal(err)
		}
		rids, values, err := s.ReadPartitionArena(0)
		if err != nil {
			t.Fatalf("compression %d: %v", comp, err)
		}
		if len(rids) != len(recs) || len(values) != len(recs)*6 {
			t.Fatalf("arena shapes: %d rids, %d values", len(rids), len(values))
		}
		for i, rec := range recs {
			if rids[i] != rec.RID {
				t.Fatalf("rid[%d] = %d, want %d", i, rids[i], rec.RID)
			}
			for j, v := range rec.Values {
				if values[i*6+j] != v {
					t.Fatalf("value[%d][%d] = %v, want %v", i, j, values[i*6+j], v)
				}
			}
		}
		if got := s.Stats.PartitionsRead(); got != 1 {
			t.Fatalf("partitions read = %d, want 1", got)
		}
	}
}

func TestReadPartitionArenaErrors(t *testing.T) {
	s := newStore(t, 4)
	if _, _, err := s.ReadPartitionArena(7); err == nil {
		t.Error("missing partition should fail")
	}
	rng := rand.New(rand.NewSource(4))
	if err := s.WritePartition(0, randomRecords(rng, 5, 4, 0)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the arena read must detect the checksum mismatch.
	path := s.partitionPath(0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadPartitionArena(0); err == nil {
		t.Error("corrupted partition should fail checksum")
	}
}

func TestReadPartitionArenaEmpty(t *testing.T) {
	s := newStore(t, 4)
	if err := s.WritePartition(0, nil); err != nil {
		t.Fatal(err)
	}
	rids, values, err := s.ReadPartitionArena(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 0 || len(values) != 0 {
		t.Fatalf("empty partition arena: %d rids, %d values", len(rids), len(values))
	}
}
