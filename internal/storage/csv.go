package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/tardisdb/tardis/internal/ts"
)

// CSV interchange: downstream users bring their own time series as CSV (one
// series per row) rather than using the synthetic generators. ImportCSV
// fills a fresh store in block-sized partitions; ExportCSV dumps a store
// back out.

// CSVOptions configures CSV import/export.
type CSVOptions struct {
	// HasRID marks the first column as the record id; otherwise ids are
	// assigned sequentially from 0 in row order.
	HasRID bool
	// Normalize z-normalizes each imported series (the paper's setup).
	Normalize bool
	// BlockRecords is the records-per-partition capacity for import
	// (default 10 000).
	BlockRecords int64
	// Comma is the field separator (default ',').
	Comma rune
}

func (o CSVOptions) withDefaults() CSVOptions {
	if o.BlockRecords <= 0 {
		o.BlockRecords = 10_000
	}
	if o.Comma == 0 {
		o.Comma = ','
	}
	return o
}

// ImportCSV reads series rows from r into the store, which must be freshly
// created and empty. Every row must have exactly the store's series length
// of value columns (plus the id column when HasRID). It returns the number
// of records imported.
func (s *Store) ImportCSV(r io.Reader, opts CSVOptions) (int64, error) {
	opts = opts.withDefaults()
	pids, err := s.Partitions()
	if err != nil {
		return 0, err
	}
	if len(pids) != 0 {
		return 0, fmt.Errorf("storage: ImportCSV requires an empty store, found %d partitions", len(pids))
	}
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.ReuseRecord = true
	wantCols := s.seriesLen
	if opts.HasRID {
		wantCols++
	}
	cr.FieldsPerRecord = wantCols

	var (
		imported int64
		pid      int
		w        *Writer
	)
	closeW := func() error {
		if w == nil {
			return nil
		}
		err := w.Close()
		w = nil
		return err
	}
	for row := int64(1); ; row++ {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			closeW()
			return imported, fmt.Errorf("storage: csv row %d: %w", row, err)
		}
		rec := ts.Record{RID: imported}
		vals := fields
		if opts.HasRID {
			rid, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				closeW()
				return imported, fmt.Errorf("storage: csv row %d: bad record id %q", row, fields[0])
			}
			rec.RID = rid
			vals = fields[1:]
		}
		rec.Values = make(ts.Series, s.seriesLen)
		for i, f := range vals {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				closeW()
				return imported, fmt.Errorf("storage: csv row %d column %d: %q is not a number", row, i+1, f)
			}
			rec.Values[i] = v
		}
		if opts.Normalize {
			rec.Values.ZNormalizeInPlace()
		}
		if w == nil {
			w, err = s.NewWriter(pid)
			if err != nil {
				return imported, err
			}
			pid++
		}
		if err := w.Write(rec); err != nil {
			closeW()
			return imported, err
		}
		imported++
		if int64(w.Count()) >= opts.BlockRecords {
			if err := closeW(); err != nil {
				return imported, err
			}
		}
	}
	if err := closeW(); err != nil {
		return imported, err
	}
	if err := s.Sync(); err != nil {
		return imported, err
	}
	return imported, nil
}

// ExportCSV writes every record (rid first, then values) in partition order.
func (s *Store) ExportCSV(w io.Writer, opts CSVOptions) error {
	opts = opts.withDefaults()
	cw := csv.NewWriter(w)
	cw.Comma = opts.Comma
	pids, err := s.Partitions()
	if err != nil {
		return err
	}
	row := make([]string, s.seriesLen+1)
	for _, pid := range pids {
		err := s.ScanPartition(pid, func(r ts.Record) error {
			row[0] = strconv.FormatInt(r.RID, 10)
			for i, v := range r.Values {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			return cw.Write(row)
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
