package core

import (
	"fmt"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/sigtree"
)

// Router is the shuffle partitioner derived from Tardis-G: given a record's
// full-cardinality iSAX-T signature it decides the target partition. The
// driver broadcasts the global tree to workers and each worker routes
// records through a Router (paper §IV-C); queries use the same Router so
// lookup and placement always agree. Index embeds a Router, and the RPC
// build mode constructs standalone Routers from serialized global trees.
type Router struct {
	Tree *sigtree.Tree
}

// NewRouter wraps a global sigTree (leaves must carry partition ids, i.e.
// partition assignment has run) as a shuffle partitioner.
func NewRouter(tree *sigtree.Tree) *Router { return &Router{Tree: tree} }

// Route returns the target partition for a full-cardinality signature and
// record id. Signatures unseen during sampling dead-end at an internal node;
// they are routed deterministically by signature hash within that node's id
// list, so queries recompute the same choice.
func (r *Router) Route(sig isaxt.Signature, rid int64) (int, error) {
	node := r.Tree.FindDeepest(sig)
	pids := node.PIDs
	if len(pids) == 0 {
		return 0, fmt.Errorf("core: node %q carries no partition ids", node.Sig)
	}
	if node.IsLeaf() {
		if len(pids) == 1 {
			return pids[0], nil
		}
		// Oversized leaf split across several partitions: spread by rid.
		return pids[hashInt64(rid)%uint64(len(pids))], nil
	}
	// Unseen path: deterministic by signature only.
	return pids[hashString(string(sig))%uint64(len(pids))], nil
}

// CandidatePIDs returns every partition that could hold series with the
// given signature — the query-side counterpart of Route. A leaf returns its
// full id list (an oversized leaf spreads records by rid, which queries
// cannot recompute); an internal dead-end returns the single hash-chosen id
// Route would have used.
func (r *Router) CandidatePIDs(sig isaxt.Signature) []int {
	node := r.Tree.FindDeepest(sig)
	pids := node.PIDs
	if len(pids) == 0 {
		return nil
	}
	if node.IsLeaf() {
		return pids
	}
	return []int{pids[hashString(string(sig))%uint64(len(pids))]}
}

// SiblingPIDs returns the partition id list of the parent of the node
// covering sig — the candidate pool of the Multi-Partitions Access strategy
// (Algorithm 1, fetchFromParent).
func (r *Router) SiblingPIDs(sig isaxt.Signature) []int {
	node := r.Tree.FindDeepest(sig)
	if node.Parent != nil {
		return node.Parent.PIDs
	}
	return node.PIDs // node is the root
}
