package core

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Index is a built TARDIS index: the global sigTree on the driver, the
// clustered data partitions on disk, and per-partition local indices with
// optional Bloom filters.
//
// Local indices hold signatures and record ids only; the raw series stay in
// the partition files, so every query that needs actual values pays the
// partition-load cost the paper's latency analysis is built on (§V-A).
type Index struct {
	cfg       Config
	codec     *isaxt.Codec
	cl        *cluster.Cluster
	seriesLen int

	// Global is Tardis-G. Its leaves carry partition ids; internal nodes
	// carry the union of their descendants' ids.
	Global *sigtree.Tree
	// Store holds the clustered (re-partitioned) data.
	Store *storage.Store
	// Locals holds one Tardis-L per partition, indexed by pid.
	Locals []*Local

	// routerMu guards routerCache: query paths running on concurrent RPC
	// goroutines materialize the router lazily, and a rebuild replaces it.
	routerMu    sync.Mutex
	routerCache *Router
	delta       *deltaStore
	stats       BuildStats
	// cache keeps hot decoded partitions resident between queries; nil when
	// caching is disabled (Config.CacheBytes < 0).
	cache *pcache.Cache[int]
}

// Local is one partition's Tardis-L plus its Bloom filter (nil when Bloom
// construction is disabled).
type Local struct {
	Tree  *sigtree.Tree
	Bloom *bloom.Filter
}

// BuildStats records the construction-time breakdown matching the paper's
// Figures 10-12 (global stages, local stages, Bloom overhead) and the
// index-size figures of Fig. 13.
type BuildStats struct {
	// Global index stages (Fig. 11).
	SampleConvert   time.Duration
	NodeStatistics  time.Duration
	SkeletonBuild   time.Duration
	PartitionAssign time.Duration
	GlobalTotal     time.Duration
	// Local index stages (Fig. 10).
	ShuffleReadConvert time.Duration
	LocalConstruct     time.Duration
	BloomConstruct     time.Duration
	LocalTotal         time.Duration
	Total              time.Duration
	// Volumes.
	SampledBlocks  int
	SampledRecords int64
	Records        int64
	Partitions     int
	// Sizes (Fig. 13).
	GlobalIndexBytes int64
	LocalIndexBytes  int64
	BloomBytes       int64
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Codec returns the iSAX-T codec.
func (ix *Index) Codec() *isaxt.Codec { return ix.codec }

// SeriesLen returns the indexed series length.
func (ix *Index) SeriesLen() int { return ix.seriesLen }

// BuildStats returns the construction profile.
func (ix *Index) BuildStats() BuildStats { return ix.stats }

// NumPartitions returns the partition count.
func (ix *Index) NumPartitions() int { return len(ix.Locals) }

// Cluster returns the execution substrate the index runs on, exposing its
// per-stage metrics (including skipped tasks from aborted stages).
func (ix *Index) Cluster() *cluster.Cluster { return ix.cl }

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func hashInt64(v int64) uint64 {
	h := uint64(v) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}

// shuffleRec is the record shape flowing through the shuffle: the converted
// signature plus the original record (paper §IV-C: (isaxt(b), ts, rid)).
type shuffleRec struct {
	pid int
	sig isaxt.Signature
	rec ts.Record
}

// Build constructs a TARDIS index over the z-normalized dataset in src,
// writing the clustered partitions into a new store at dstDir. The cluster
// provides the execution substrate; cfg carries Table II parameters.
func Build(cl *cluster.Cluster, src *storage.Store, dstDir string, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		return nil, err
	}
	if src.SeriesLen() < cfg.WordLen {
		return nil, fmt.Errorf("core: series length %d shorter than word length %d", src.SeriesLen(), cfg.WordLen)
	}
	cache, err := newPartitionCache(cfg)
	if err != nil {
		return nil, err
	}
	ix := &Index{cfg: cfg, codec: codec, cl: cl, seriesLen: src.SeriesLen(), cache: cache}
	buildStart := time.Now()

	if err := ix.buildGlobal(src); err != nil {
		return nil, fmt.Errorf("core: building global index: %w", err)
	}
	if err := ix.buildLocal(src, dstDir); err != nil {
		return nil, fmt.Errorf("core: building local indices: %w", err)
	}

	ix.stats.Total = time.Since(buildStart)
	ix.stats.GlobalIndexBytes = ix.Global.SerializedSize()
	for _, l := range ix.Locals {
		if l == nil {
			continue
		}
		ix.stats.LocalIndexBytes += l.Tree.SerializedSize()
		if l.Bloom != nil {
			ix.stats.BloomBytes += int64(l.Bloom.SizeBytes())
		}
	}
	return ix, nil
}

// buildGlobal runs the four Tardis-G stages: data preprocessing (sample and
// convert), node statistics, skeleton building, partition assignment
// (paper §IV-B).
func (ix *Index) buildGlobal(src *storage.Store) error {
	globalStart := time.Now()
	cfg, codec := ix.cfg, ix.codec

	// --- Stage 1: block-level sampling + conversion (map-reduce). ---
	stageStart := time.Now()
	sampled, err := src.SampledPartitions(cfg.SamplePct, cfg.SampleSeed)
	if err != nil {
		return err
	}
	ix.stats.SampledBlocks = len(sampled)
	blocks := cluster.Parallelize(ix.cl, sampled, 0)
	pairs, err := cluster.MapPartitions("sample-convert", blocks,
		func(_ int, pids []int) ([]cluster.Pair[string, int64], error) {
			local := map[string]int64{}
			for _, pid := range pids {
				err := src.ScanPartition(pid, func(r ts.Record) error {
					sig, err := codec.FromSeries(r.Values, cfg.InitialBits)
					if err != nil {
						return err
					}
					local[string(sig)]++
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			out := make([]cluster.Pair[string, int64], 0, len(local))
			for k, v := range local {
				out = append(out, cluster.Pair[string, int64]{Key: k, Value: v})
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	reduced, err := cluster.ReduceByKey("sample-reduce", pairs, 0, hashString,
		func(a, b int64) int64 { return a + b })
	if err != nil {
		return err
	}
	base := map[isaxt.Signature]int64{}
	for _, p := range reduced.Collect() {
		base[isaxt.Signature(p.Key)] += p.Value
		ix.stats.SampledRecords += p.Value
	}
	ix.stats.SampleConvert = time.Since(stageStart)

	// --- Stages 2-4: node statistics, skeleton building, partition
	// assignment (shared with the RPC build mode). ---
	tree, partitions, bd, err := BuildGlobalFromSample(codec, cfg, base)
	if err != nil {
		return err
	}
	ix.Global = tree
	ix.routerMu.Lock()
	ix.routerCache = NewRouter(tree)
	ix.routerMu.Unlock()
	ix.stats.Partitions = partitions
	ix.stats.NodeStatistics = bd.NodeStatistics
	ix.stats.SkeletonBuild = bd.SkeletonBuild
	ix.stats.PartitionAssign = bd.PartitionAssign
	ix.stats.GlobalTotal = time.Since(globalStart)
	return nil
}

// layerStat is one node-statistics entry: a node signature at some layer and
// its (scaled) series count.
type layerStat struct {
	sig   isaxt.Signature
	count int64
}

// GlobalBreakdown times the driver-side stages of the global-index build.
type GlobalBreakdown struct {
	NodeStatistics  time.Duration
	SkeletonBuild   time.Duration
	PartitionAssign time.Duration
}

// BuildGlobalFromSample runs the driver-side Tardis-G stages over sampled
// signature frequencies (paper §IV-B): the layer-by-layer node statistics
// with the G-MaxSize judge, skeleton building via tree insertion, and the
// FFD partition assignment. Sampled frequencies are scaled by
// 1/cfg.SamplePct before comparison with G-MaxSize. It returns the global
// tree with partition ids assigned, the partition count, and stage timings.
// The RPC build mode calls this directly with frequencies gathered from
// remote workers.
func BuildGlobalFromSample(codec *isaxt.Codec, cfg Config, base map[isaxt.Signature]int64) (*sigtree.Tree, int, GlobalBreakdown, error) {
	var bd GlobalBreakdown

	// Node statistics, layer by layer (map/reduce/judge loop).
	stageStart := time.Now()
	scale := 1.0 / cfg.SamplePct
	layers := make([][]layerStat, 0, cfg.InitialBits)
	remaining := base
	for layer := 1; layer <= cfg.InitialBits && len(remaining) > 0; layer++ {
		agg := map[isaxt.Signature]int64{}
		for sig, freq := range remaining {
			agg[codec.Prefix(sig, layer)] += freq
		}
		stats := make([]layerStat, 0, len(agg))
		maxScaled := int64(0)
		scaledOf := func(freq int64) int64 {
			v := int64(float64(freq)*scale + 0.5)
			if v < 1 {
				v = 1
			}
			return v
		}
		for sig, freq := range agg {
			sc := scaledOf(freq)
			stats = append(stats, layerStat{sig: sig, count: sc})
			if sc > maxScaled {
				maxScaled = sc
			}
		}
		layers = append(layers, stats)
		// Judge: stop when every node fits in a partition, or depth is out.
		if maxScaled <= cfg.GMaxSize || layer == cfg.InitialBits {
			break
		}
		// Filter: signatures under still-oversized nodes continue deeper.
		next := map[isaxt.Signature]int64{}
		for sig, freq := range remaining {
			if scaledOf(agg[codec.Prefix(sig, layer)]) > cfg.GMaxSize {
				next[sig] = freq
			}
		}
		remaining = next
	}
	bd.NodeStatistics = time.Since(stageStart)

	// Skeleton building (tree insertion, ascending layers).
	stageStart = time.Now()
	tree, err := sigtree.New(codec, cfg.InitialBits, cfg.GMaxSize)
	if err != nil {
		return nil, 0, bd, err
	}
	for _, layer := range layers {
		sortLayerStats(layer)
		for _, st := range layer {
			if err := tree.InsertNodeStat(st.sig, st.count); err != nil {
				return nil, 0, bd, err
			}
		}
	}
	bd.SkeletonBuild = time.Since(stageStart)

	// Partition assignment (FFD packing of sibling leaves).
	stageStart = time.Now()
	partitions, err := assignPartitions(tree, cfg.GMaxSize)
	if err != nil {
		return nil, 0, bd, err
	}
	bd.PartitionAssign = time.Since(stageStart)
	return tree, partitions, bd, nil
}

// SetPartitionThreshold adjusts pth — the Multi-Partitions Access cap on
// loaded partitions — at query time. The paper fixes pth = 40 (Table II);
// exposing it lets the ablation bench sweep the accuracy/latency trade.
func (ix *Index) SetPartitionThreshold(pth int) error {
	if pth < 1 {
		return fmt.Errorf("core: partition threshold must be positive, got %d", pth)
	}
	ix.cfg.PartitionThreshold = pth
	return nil
}
