package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

const (
	testSeriesLen = 64
	testRecords   = 4000
	testBlockRecs = 500
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GMaxSize = 600
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25
	cfg.PartitionThreshold = 8
	return cfg
}

func buildTestIndex(t *testing.T, kind dataset.Kind, cfg Config) (*Index, *storage.Store, *cluster.Cluster) {
	t.Helper()
	g, err := dataset.New(kind, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.WriteStore(g, 42, testRecords, filepath.Join(t.TempDir(), "src"), testBlockRecs, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, src, cl
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.WordLen = 6 },
		func(c *Config) { c.WordLen = 0 },
		func(c *Config) { c.InitialBits = 0 },
		func(c *Config) { c.InitialBits = 99 },
		func(c *Config) { c.GMaxSize = 0 },
		func(c *Config) { c.LMaxSize = 0 },
		func(c *Config) { c.SamplePct = 0 },
		func(c *Config) { c.SamplePct = 1.2 },
		func(c *Config) { c.PartitionThreshold = 0 },
		func(c *Config) { c.BloomFP = 0 },
		func(c *Config) { c.BloomFP = 1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBuildBasics(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	st := ix.BuildStats()
	if st.Records != testRecords {
		t.Errorf("records = %d, want %d", st.Records, testRecords)
	}
	if st.Partitions < 2 {
		t.Errorf("partitions = %d, want several", st.Partitions)
	}
	if st.SampledBlocks != 2 { // 25% of 8 blocks
		t.Errorf("sampled blocks = %d, want 2", st.SampledBlocks)
	}
	if st.GlobalIndexBytes <= 0 || st.LocalIndexBytes <= 0 || st.BloomBytes <= 0 {
		t.Errorf("sizes not recorded: %+v", st)
	}
	if st.GlobalTotal <= 0 || st.LocalTotal <= 0 || st.Total < st.GlobalTotal {
		t.Errorf("timings not recorded: %+v", st)
	}
	// All records accounted for in the clustered store.
	total, err := ix.Store.TotalRecords()
	if err != nil || total != testRecords {
		t.Errorf("clustered store holds %d records, want %d (%v)", total, testRecords, err)
	}
	// Partition count matches locals.
	if ix.NumPartitions() != st.Partitions {
		t.Errorf("NumPartitions=%d stats=%d", ix.NumPartitions(), st.Partitions)
	}
	srcTotal, _ := src.TotalRecords()
	if srcTotal != testRecords {
		t.Errorf("source store mutated: %d", srcTotal)
	}
}

func TestBuildValidation(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Workers: 2})
	g, _ := dataset.New(dataset.RandomWalk, testSeriesLen)
	src, err := dataset.WriteStore(g, 1, 100, filepath.Join(t.TempDir(), "s"), 50, true)
	if err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.WordLen = 6
	if _, err := Build(cl, src, t.TempDir(), bad); err == nil {
		t.Error("invalid config should fail")
	}
	// Series shorter than word length.
	g4, _ := dataset.New(dataset.RandomWalk, 4)
	src4, err := dataset.WriteStore(g4, 1, 50, filepath.Join(t.TempDir(), "s4"), 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(cl, src4, t.TempDir(), testConfig()); err == nil {
		t.Error("series shorter than word length should fail")
	}
}

// Every record routed to a partition must be findable by exact match — the
// clustered-index correctness invariant.
func TestExactMatchFindsAllStored(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	// Probe a sample of stored records.
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec := recs[i*7%len(recs)]
		got, st, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d not found by exact match (stats %+v)", rec.RID, st)
		}
	}
}

func TestExactMatchAbsent(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(7777))
	bloomSaves := 0
	for i := 0; i < 30; i++ {
		q := make(ts.Series, testSeriesLen)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		q = q.ZNormalize()
		got, st, err := ix.ExactMatch(q, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("random query matched records %v", got)
		}
		if st.BloomRejected || st.PartitionsLoaded == 0 {
			bloomSaves++
		}
	}
	if bloomSaves == 0 {
		t.Error("bloom filter (or local traversal) never saved a partition load for absent queries")
	}
	// Non-bloom variant agrees on the answer.
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	withBF, _, err := ix.ExactMatch(q, true)
	if err != nil {
		t.Fatal(err)
	}
	withoutBF, _, err := ix.ExactMatch(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(withBF) != len(withoutBF) {
		t.Error("bloom and non-bloom variants disagree")
	}
}

func TestExactMatchQueryValidation(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if _, _, err := ix.ExactMatch(make(ts.Series, 3), true); err == nil {
		t.Error("wrong query length should fail")
	}
	cfg := testConfig()
	cfg.BuildBloom = false
	ix2, _, _ := buildTestIndex(t, dataset.RandomWalk, cfg)
	if _, _, err := ix2.ExactMatch(make(ts.Series, testSeriesLen), true); err == nil {
		t.Error("bloom query against bloom-less index should fail")
	}
	if _, _, err := ix2.ExactMatch(make(ts.Series, testSeriesLen), false); err != nil {
		t.Errorf("non-bloom query should work: %v", err)
	}
}

func knnStrategies(ix *Index) map[string]func(ts.Series, int) ([]Neighbor, QueryStats, error) {
	return map[string]func(ts.Series, int) ([]Neighbor, QueryStats, error){
		"TNA": ix.KNNTargetNode,
		"OPA": ix.KNNOnePartition,
		"MPA": ix.KNNMultiPartition,
	}
}

func TestKNNStrategiesReturnK(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(5))
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	for name, knn := range knnStrategies(ix) {
		res, st, err := knn(q, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) != 10 {
			t.Fatalf("%s: returned %d results, want 10", name, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Fatalf("%s: results not sorted", name)
			}
		}
		if st.PartitionsLoaded == 0 {
			t.Errorf("%s: no partition loads counted", name)
		}
		if st.Duration <= 0 {
			t.Errorf("%s: duration not recorded", name)
		}
		// k validation.
		if _, _, err := knn(q, 0); err == nil {
			t.Errorf("%s: k=0 should fail", name)
		}
	}
}

// Widening the candidate scope can only improve (not worsen) the kth
// distance: OPA's kth distance <= TNA's, and MPA's <= OPA's.
func TestKNNScopeMonotone(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		q := make(ts.Series, testSeriesLen)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		q = q.ZNormalize()
		const k = 10
		tna, _, err := ix.KNNTargetNode(q, k)
		if err != nil {
			t.Fatal(err)
		}
		opa, _, err := ix.KNNOnePartition(q, k)
		if err != nil {
			t.Fatal(err)
		}
		mpa, _, err := ix.KNNMultiPartition(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(tna) < k || len(opa) < k || len(mpa) < k {
			continue // tiny target scope; nothing to compare
		}
		if opa[k-1].Dist > tna[k-1].Dist+1e-9 {
			t.Fatalf("OPA kth dist %v worse than TNA %v", opa[k-1].Dist, tna[k-1].Dist)
		}
		if mpa[k-1].Dist > opa[k-1].Dist+1e-9 {
			t.Fatalf("MPA kth dist %v worse than OPA %v", mpa[k-1].Dist, opa[k-1].Dist)
		}
	}
}

// The soundness anchor: ground truth via full scan, and OPA/MPA results must
// all be true dataset members with correct distances.
func TestGroundTruthAndDistances(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(8))
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	const k = 20
	gt, err := ix.GroundTruthKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != k {
		t.Fatalf("ground truth returned %d", len(gt))
	}
	for i := 1; i < k; i++ {
		if gt[i].Dist < gt[i-1].Dist {
			t.Fatal("ground truth not sorted")
		}
	}
	// Every strategy's answers have distance >= the true kth NN distance
	// position-wise is not guaranteed, but each reported distance must be
	// >= the true nearest distance and correctly computed. Verify against
	// loaded data by recomputation through another full scan membership.
	res, _, err := ix.KNNMultiPartition(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res {
		if n.Dist < gt[0].Dist-1e-9 {
			t.Fatalf("result %d closer than true NN: %v < %v", i, n.Dist, gt[0].Dist)
		}
	}
	// MPA's first result is usually the true NN on clustered random walks;
	// require at least that its distance is within 2x of the truth.
	if res[0].Dist > gt[0].Dist*2+1e-9 {
		t.Logf("warning: MPA first distance %v vs truth %v", res[0].Dist, gt[0].Dist)
	}
}

func TestGroundTruthPruned(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rng := rand.New(rand.NewSource(9))
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	const k = 10
	exact, err := ix.GroundTruthKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := ix.GroundTruthPruned(q, k, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != k {
		t.Fatalf("pruned ground truth returned %d", len(pruned))
	}
	// The pruned oracle with the lower-bound property must agree with the
	// exact scan (thresholds only cut candidates farther than themselves).
	for i := range exact {
		if pruned[i].RID != exact[i].RID && pruned[i].Dist != exact[i].Dist {
			t.Fatalf("pruned oracle diverges at %d: (%d,%v) vs (%d,%v)",
				i, pruned[i].RID, pruned[i].Dist, exact[i].RID, exact[i].Dist)
		}
	}
	if _, _, err := ix.GroundTruthPruned(q, 0, 7.5); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := ix.GroundTruthPruned(q, 5, 0); err == nil {
		t.Error("threshold=0 should fail")
	}
}

// kNN queries with a stored series as the query must return that series
// first at distance 0.
func TestKNNSelfQuery(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	rec := recs[3]
	for name, knn := range knnStrategies(ix) {
		res, _, err := knn(rec.Values, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) == 0 || res[0].Dist != 0 || res[0].RID != rec.RID {
			t.Fatalf("%s: self query should return itself first, got %+v", name, res[:min(1, len(res))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Skewed datasets (NOAA-like) still build and answer queries: the oversized
// leaf path (count beyond G-MaxSize at max depth) is exercised.
func TestSkewedDatasetBuild(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.NOAA, testConfig())
	total, err := ix.Store.TotalRecords()
	if err != nil || total != testRecords {
		t.Fatalf("clustered store holds %d records (%v)", total, err)
	}
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := recs[i*13%len(recs)]
		got, _, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("skewed record %d not found", rec.RID)
		}
	}
	res, _, err := ix.KNNMultiPartition(recs[0].Values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("kNN on skewed data returned %d", len(res))
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := testConfig()
	a, _, _ := buildTestIndex(t, dataset.DNA, cfg)
	b, _, _ := buildTestIndex(t, dataset.DNA, cfg)
	if a.NumPartitions() != b.NumPartitions() {
		t.Fatalf("nondeterministic partitions: %d vs %d", a.NumPartitions(), b.NumPartitions())
	}
	as, bs := a.BuildStats(), b.BuildStats()
	if as.GlobalIndexBytes != bs.GlobalIndexBytes {
		t.Errorf("nondeterministic global index size: %d vs %d", as.GlobalIndexBytes, bs.GlobalIndexBytes)
	}
	if as.LocalIndexBytes != bs.LocalIndexBytes {
		t.Errorf("nondeterministic local index size: %d vs %d", as.LocalIndexBytes, bs.LocalIndexBytes)
	}
}

// A compressed index builds, saves, loads, and answers identically.
func TestCompressedIndex(t *testing.T) {
	cfg := testConfig()
	cfg.Compression = storage.Flate
	ix, src, cl := buildTestIndex(t, dataset.RandomWalk, cfg)
	plain, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())

	cSize, err := ix.Store.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	pSize, err := plain.Store.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if cSize >= pSize {
		t.Errorf("compressed store %d not smaller than plain %d", cSize, pSize)
	}
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	q := recs[9].Values
	a, _, err := ix.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := plain.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("compressed and plain indexes disagree at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := re.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("reloaded compressed index disagrees at %d", i)
		}
	}
	bad := testConfig()
	bad.Compression = storage.Compression(7)
	if err := bad.Validate(); err == nil {
		t.Error("unknown compression should fail validation")
	}
}

// Heavily skewed data with a small partition capacity forces global leaves
// whose estimated count exceeds the capacity even at max depth: those leaves
// receive multiple partition ids, records spread across them by rid hash,
// and queries must check the whole id list.
func TestOversizedLeafMultiplePartitions(t *testing.T) {
	// A store where one exact shape dominates: 600 near-identical copies
	// (identical signature at full cardinality) plus 400 random walks.
	g, err := dataset.New(dataset.RandomWalk, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	base := dataset.Record(g, 4242, 0).Values.ZNormalize()
	dir := filepath.Join(t.TempDir(), "src")
	src, err := storage.Create(dir, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	var block []ts.Record
	pid := 0
	flush := func() {
		if len(block) == 0 {
			return
		}
		if err := src.WritePartition(pid, block); err != nil {
			t.Fatal(err)
		}
		pid++
		block = nil
	}
	for rid := int64(0); rid < 600; rid++ {
		block = append(block, ts.Record{RID: rid, Values: base.Clone()})
		if len(block) == 200 {
			flush()
		}
	}
	rng := rand.New(rand.NewSource(4242))
	for rid := int64(600); rid < 1000; rid++ {
		v := make(ts.Series, testSeriesLen)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		block = append(block, ts.Record{RID: rid, Values: v.ZNormalize()})
		if len(block) == 200 {
			flush()
		}
	}
	flush()
	if err := src.Sync(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.GMaxSize = 120 // far below the duplicate mass
	cfg.SamplePct = 0.6
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
	if err != nil {
		t.Fatal(err)
	}

	multiPID := 0
	for _, leaf := range ix.Global.Leaves() {
		if len(leaf.PIDs) > 1 {
			multiPID++
		}
	}
	if multiPID == 0 {
		t.Fatal("expected at least one oversized leaf with multiple partitions")
	}
	// Exact match still finds every probed record (query checks all pids of
	// the leaf).
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rec := recs[i*29%len(recs)]
		got, _, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d lost in multi-partition leaf routing", rec.RID)
		}
	}
	// kNN across the spread partitions still self-matches.
	res, _, err := ix.KNNMultiPartition(recs[3].Values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Dist != 0 {
		t.Fatalf("kNN self query wrong: %+v", res)
	}
}
