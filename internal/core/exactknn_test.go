package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

func randomQuery(seed int64) ts.Series {
	rng := rand.New(rand.NewSource(seed))
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q.ZNormalize()
}

// KNNExact must agree with the brute-force ground truth on every query —
// identical distance sequences (record ids may differ only on exact ties).
func TestKNNExactMatchesGroundTruth(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	for i := int64(0); i < 10; i++ {
		q := randomQuery(100 + i)
		const k = 15
		exact, st, err := ix.KNNExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := ix.GroundTruthKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) != len(truth) {
			t.Fatalf("query %d: %d results, want %d", i, len(exact), len(truth))
		}
		for j := range truth {
			if math.Abs(exact[j].Dist-truth[j].Dist) > 1e-9 {
				t.Fatalf("query %d result %d: dist %v, truth %v", i, j, exact[j].Dist, truth[j].Dist)
			}
		}
		// Pruning must actually happen: fewer partitions than the total.
		if st.PartitionsLoaded >= ix.NumPartitions() {
			t.Logf("query %d: loaded all %d partitions (no pruning possible)", i, st.PartitionsLoaded)
		}
	}
}

func TestKNNExactSelfQuery(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.DNA, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.KNNExact(recs[11].Values, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].RID != recs[11].RID || res[0].Dist != 0 {
		t.Fatalf("self query wrong: %+v", res)
	}
}

func TestKNNExactValidation(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if _, _, err := ix.KNNExact(randomQuery(1), 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := ix.KNNExact(make(ts.Series, 3), 5); err == nil {
		t.Error("bad query length should fail")
	}
}

// RangeQuery must return exactly the records within eps: verified against a
// brute-force scan.
func TestRangeQueryExact(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	q := randomQuery(7)

	// Brute force over the source store.
	pids, err := src.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{}
	var maxSeen float64
	for _, pid := range pids {
		err := src.ScanPartition(pid, func(r ts.Record) error {
			d, err := ts.EuclideanDistance(q, r.Values)
			if err != nil {
				return err
			}
			if d > maxSeen {
				maxSeen = d
			}
			want[r.RID] = d
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Choose eps so that a modest but nonempty subset qualifies.
	var dists []float64
	for _, d := range want {
		dists = append(dists, d)
	}
	eps := percentile(dists, 0.02)

	got, st, err := ix.RangeQuery(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, d := range want {
		if d <= eps {
			wantCount++
		}
	}
	if len(got) != wantCount {
		t.Fatalf("range query returned %d records, brute force says %d", len(got), wantCount)
	}
	for _, n := range got {
		d, ok := want[n.RID]
		if !ok || math.Abs(d-n.Dist) > 1e-9 || d > eps+1e-12 {
			t.Fatalf("bad result %+v (true dist %v)", n, d)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if st.PartitionsLoaded == 0 && wantCount > 0 {
		t.Error("no partition loads counted")
	}
	// Empty range.
	none, _, err := ix.RangeQuery(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("eps=0 returned %d results", len(none))
	}
	// Validation.
	if _, _, err := ix.RangeQuery(q, -1); err == nil {
		t.Error("negative eps should fail")
	}
	if _, _, err := ix.RangeQuery(q, math.NaN()); err == nil {
		t.Error("NaN eps should fail")
	}
}

func percentile(v []float64, p float64) float64 {
	cp := make([]float64, len(v))
	copy(cp, v)
	// insertion-free selection: simple sort
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(float64(len(cp)) * p)
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Self range query at eps=0 returns exactly the identical record(s).
func TestRangeQuerySelf(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.NOAA, testConfig())
	recs, err := src.ReadPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.RangeQuery(recs[4].Values, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range got {
		if n.RID == recs[4].RID {
			found = true
		}
		if n.Dist != 0 {
			t.Fatalf("eps=0 returned nonzero distance %v", n.Dist)
		}
	}
	if !found {
		t.Error("self record not in eps=0 range result")
	}
}
