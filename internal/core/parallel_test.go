package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

// testQueries derives reproducible z-normalized queries off the indexed
// distribution.
func testQueries(t *testing.T, count int, seed int64) []ts.Series {
	t.Helper()
	g, err := dataset.New(dataset.RandomWalk, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]ts.Series, count)
	for i := range qs {
		qs[i] = g.Generate(rng).ZNormalize()
	}
	return qs
}

func sameNeighbors(t *testing.T, label string, want, got []Neighbor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].RID != got[i].RID || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result[%d] = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// Every query type must return bit-identical results whatever the worker
// count — the tentpole's exactness guarantee. Runs under -race in CI, so it
// also proves the shared-heap and work-stealing paths are race-free.
func TestParallelMatchesSerialAllQueryTypes(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	queries := testQueries(t, 4, 99)
	const k, band = 10, 4
	eps := 6.5

	type result struct {
		name string
		run  func(q ts.Series) ([]Neighbor, error)
	}
	runs := []result{
		{"exact", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.KNNExact(q, k); return r, err }},
		{"range", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.RangeQuery(q, eps); return r, err }},
		{"dtw", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.KNNDTW(q, k, band); return r, err }},
		{"tna", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.KNNTargetNode(q, k); return r, err }},
		{"opa", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.KNNOnePartition(q, k); return r, err }},
		{"mpa", func(q ts.Series) ([]Neighbor, error) { r, _, err := ix.KNNMultiPartition(q, k); return r, err }},
	}
	workerCounts := []int{1, 2, 4}
	if np := runtime.GOMAXPROCS(0); np > 4 {
		workerCounts = append(workerCounts, np)
	}
	for qi, q := range queries {
		for _, r := range runs {
			var want []Neighbor
			for wi, workers := range workerCounts {
				if err := ix.SetQueryParallelism(workers); err != nil {
					t.Fatal(err)
				}
				got, err := r.run(q)
				if err != nil {
					t.Fatalf("%s q%d workers=%d: %v", r.name, qi, workers, err)
				}
				if wi == 0 {
					want = got
					continue
				}
				sameNeighbors(t, fmt.Sprintf("%s q%d workers=%d", r.name, qi, workers), want, got)
			}
		}
	}
	if err := ix.SetQueryParallelism(0); err != nil {
		t.Fatal(err)
	}
}

// The parallel exact path must stay correct against brute-force ground
// truth, including with delta inserts and deletes in play.
func TestParallelExactWithDelta(t *testing.T) {
	ix, _, cl := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if err := ix.SetQueryParallelism(4); err != nil {
		t.Fatal(err)
	}
	// Mutate: insert fresh records, delete a few indexed ones.
	g, err := dataset.New(dataset.RandomWalk, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		rec := ts.Record{RID: int64(1_000_000 + i), Values: g.Generate(rng).ZNormalize()}
		if err := ix.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	for rid := int64(0); rid < 20; rid++ {
		if err := ix.Delete(rid); err != nil {
			t.Fatal(err)
		}
	}
	const k = 8
	for _, q := range testQueries(t, 3, 123) {
		truth, err := ix.GroundTruthKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ix.KNNExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "exact-vs-truth", truth, got)
	}
	_ = cl
}

// SetQueryParallelism rejects negatives; 0 resolves to GOMAXPROCS.
func TestSetQueryParallelism(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if err := ix.SetQueryParallelism(-1); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if err := ix.SetQueryParallelism(0); err != nil {
		t.Fatal(err)
	}
	if got := ix.queryParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolved parallelism %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if err := ix.SetQueryParallelism(3); err != nil {
		t.Fatal(err)
	}
	if got := ix.queryParallelism(); got != 3 {
		t.Fatalf("resolved parallelism %d, want 3", got)
	}
}

// The batched refine path must behave identically with and without the
// signature pre-filter fallback: indexes reloaded from disk drop per-entry
// signatures, so a reloaded index must return the same answers.
func TestParallelAfterReload(t *testing.T) {
	ix, _, cl := buildTestIndex(t, dataset.RandomWalk, testConfig())
	queries := testQueries(t, 2, 7)
	const k = 5
	type ans struct{ exact, tna []Neighbor }
	want := make([]ans, len(queries))
	for i, q := range queries {
		e, _, err := ix.KNNExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := ix.KNNTargetNode(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans{exact: e, tna: a}
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if err := re.SetQueryParallelism(4); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		e, _, err := re.KNNExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "reloaded exact", want[i].exact, e)
		a, _, err := re.KNNTargetNode(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "reloaded tna", want[i].tna, a)
	}
}
