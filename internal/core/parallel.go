package core

import (
	"fmt"
	"math"
	mbits "math/bits"
	"runtime"
	"sync"

	"github.com/tardisdb/tardis/internal/dtw"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/qpar"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Intra-query parallelism: when the effective query parallelism is above 1,
// each query becomes one qpar.Job — partition/node scans enter a best-first
// priority queue keyed by lower bound, every worker shares the query's
// result heap through the job (Offer under a short lock, bound snapshots
// lock-free via knn.Heap.BoundAtomic), and scan tasks split their
// refinement into chunks idle workers steal. Results are identical to the
// serial path: the heap keeps the canonical k smallest (Dist, RID) pairs
// whatever the offer order, and every pruning decision compares a lower
// bound against a bound that is always ≥ the final kth distance.
//
// Both paths refine through the same batched SoA kernels (internal/ts), so
// distances are computed bit-identically serial and parallel.

// refineChunk is the stealable refinement granularity: candidate entries per
// spawned chunk. Large enough to amortize task overhead, small enough to
// spread one big leaf across workers.
const refineChunk = 256

// queryParallelism resolves the effective per-query worker count: the
// configured value, or GOMAXPROCS when unset.
func (ix *Index) queryParallelism() int {
	if p := ix.cfg.QueryParallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetQueryParallelism adjusts the per-query worker count at runtime: 0
// selects GOMAXPROCS, 1 forces the serial path. Not safe to call
// concurrently with queries.
func (ix *Index) SetQueryParallelism(p int) error {
	if p < 0 {
		return fmt.Errorf("core: query parallelism must be non-negative, got %d", p)
	}
	ix.cfg.QueryParallelism = p
	return nil
}

// refineScratch bundles the per-task scratch of the batched refine paths:
// kernel state, the candidate gather arrays, and the word SoA for the
// signature-level MINDIST pre-filter. Pooled so the hot loops allocate
// nothing per batch.
type refineScratch struct {
	bs    *ts.BatchState
	cands [ts.BatchLanes]ts.Series
	rids  [ts.BatchLanes]int64
	sigs  [ts.BatchLanes]isaxt.Signature
	lbs   [ts.BatchLanes]float64
	dists [ts.BatchLanes]float64
	words []int // position-major SoA, capacity BatchLanes * WordLen
	row   []int // one decoded word
	qword []int // the query's own SAX word — the lower-bound-0 fallback
}

var refinePool sync.Pool

// getScratch returns pooled refine scratch sized for this index's word
// length.
func (ix *Index) getScratch() *refineScratch {
	w := ix.cfg.WordLen
	if v := refinePool.Get(); v != nil {
		sc := v.(*refineScratch)
		if len(sc.row) == w {
			return sc
		}
	}
	return &refineScratch{
		bs:    ts.NewBatchState(),
		words: make([]int, ts.BatchLanes*w),
		row:   make([]int, w),
		qword: make([]int, w),
	}
}

// putScratch returns scratch to the pool, dropping series references so a
// pooled scratch does not pin partition arenas in memory.
func putScratch(sc *refineScratch) {
	for i := range sc.cands {
		sc.cands[i] = nil
	}
	refinePool.Put(sc)
}

// refineEntriesBatch refines candidate entries against the query through
// the batched SoA kernels: survivors of the cheap per-record filters gather
// into lanes, a BatchMinDistPAA signature filter drops lanes whose lower
// bound already exceeds the current kth distance, and one SquaredEuclidean
// call computes the remaining true distances with whole-batch early
// abandon. Stats accumulate into lst only — per-candidate bookkeeping stays
// out of the loop, the caller merges once per task.
//
// Exactness: a lane is dropped only when a lower bound of its true distance
// exceeds the current kth distance, which is always ≥ the final kth
// distance — so no member of the canonical answer is ever dropped,
// regardless of when the bound was snapshotted.
//
//tardis:hotpath
func (ix *Index) refineEntriesBatch(h heapLike, q, paa ts.Series, entries []sigtree.Entry, data PartitionData, skip map[int64]struct{}, sc *refineScratch, lst *QueryStats) error {
	w := ix.cfg.WordLen
	cbits := ix.cfg.InitialBits
	for i := 0; i < w; i++ {
		sc.qword[i] = ts.SAXSymbol(paa[i], cbits)
	}
	idx := 0
	for idx < len(entries) {
		lanes := 0
		for idx < len(entries) && lanes < ts.BatchLanes {
			e := entries[idx]
			idx++
			if _, dup := skip[e.RID]; dup {
				continue // already refined by an earlier step
			}
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return fmt.Errorf("core: candidate record %d missing from loaded partition", e.RID)
			}
			sc.cands[lanes] = s
			sc.rids[lanes] = e.RID
			sc.sigs[lanes] = e.Sig
			lanes++
		}
		if lanes == 0 {
			continue
		}
		bound := h.Bound()
		if !math.IsInf(bound, 1) {
			// Signature-level MINDIST pre-filter: decode each lane's
			// full-cardinality word into the SoA (entries reloaded from disk
			// carry no signature — they fall back to the query's own word,
			// whose MINDIST is 0, and always survive).
			words := sc.words[:w*lanes]
			for l := 0; l < lanes; l++ {
				src := sc.qword
				if sig := sc.sigs[l]; sig != "" {
					if b, err := ix.codec.DecodeInto(sig, sc.row); err == nil && b == cbits {
						src = sc.row
					}
				}
				for seg := 0; seg < w; seg++ {
					words[seg*lanes+l] = src[seg]
				}
			}
			ts.BatchMinDistPAA(paa, words, lanes, cbits, ix.seriesLen, sc.lbs[:lanes])
			kept := 0
			for l := 0; l < lanes; l++ {
				if sc.lbs[l] <= bound {
					sc.cands[kept] = sc.cands[l]
					sc.rids[kept] = sc.rids[l]
					kept++
				}
			}
			lanes = kept
			if lanes == 0 {
				continue
			}
		}
		qpar.ObserveBatch(lanes)
		lst.Candidates += lanes
		mask := sc.bs.SquaredEuclidean(q, sc.cands[:lanes], bound*bound, sc.dists[:])
		for m := mask; m != 0; m &= m - 1 {
			l := mbits.TrailingZeros32(m)
			h.Offer(Neighbor{RID: sc.rids[l], Dist: sqrt(sc.dists[l])})
		}
	}
	return nil
}

// refineDTWBatch is the DTW analogue: lanes gate through one BatchLBKeogh
// call against the query envelope, and only surviving lanes pay the full
// banded dynamic program.
//
//tardis:hotpath
func (ix *Index) refineDTWBatch(h heapLike, q ts.Series, env *dtw.Envelope, band int, entries []sigtree.Entry, data PartitionData, skip map[int64]struct{}, sc *refineScratch, lst *QueryStats) error {
	idx := 0
	for idx < len(entries) {
		lanes := 0
		for idx < len(entries) && lanes < ts.BatchLanes {
			e := entries[idx]
			idx++
			if _, dup := skip[e.RID]; dup {
				continue
			}
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return fmt.Errorf("core: candidate record %d missing from loaded partition", e.RID)
			}
			sc.cands[lanes] = s
			sc.rids[lanes] = e.RID
			lanes++
		}
		if lanes == 0 {
			continue
		}
		bound := h.Bound()
		qpar.ObserveBatch(lanes)
		lst.Candidates += lanes
		mask := sc.bs.BatchLBKeogh(env.U, env.L, sc.cands[:lanes], bound*bound, sc.lbs[:])
		for m := mask; m != 0; m &= m - 1 {
			l := mbits.TrailingZeros32(m)
			d, err := dtw.Distance(q, sc.cands[l], band)
			if err != nil {
				return err
			}
			h.Offer(Neighbor{RID: sc.rids[l], Dist: d})
		}
	}
	return nil
}

// parJob couples one query's qpar.Job with per-worker QueryStats fragments
// and the refinement inputs every task shares.
type parJob struct {
	ix    *Index
	job   *qpar.Job
	stats []QueryStats
	q     ts.Series
	paa   ts.Series
	skip  map[int64]struct{}
	// hits collects range-query results per worker (tasks on the same worker
	// run serially, so fragments need no lock).
	hits [][]Neighbor
}

// newParJob builds a job over the shared heap. prune enables best-first
// task dropping against the live kth distance (exact search); leave it off
// for fixed-threshold scans. skip pre-filters candidates already refined by
// a serial seeding step.
func (ix *Index) newParJob(name string, h *knn.Heap, prune bool, q, paa ts.Series, skip map[int64]struct{}) *parJob {
	job := qpar.New(qpar.Config{Parallelism: ix.queryParallelism(), Prune: prune, Name: name}, h)
	return &parJob{ix: ix, job: job, stats: make([]QueryStats, job.Workers()), q: q, paa: paa, skip: skip}
}

// run drains the job and merges the per-worker stats fragments into st.
func (p *parJob) run(st *QueryStats) error {
	if err := p.job.Run(); err != nil {
		return err
	}
	for i := range p.stats {
		st.merge(p.stats[i])
	}
	return nil
}

// splitChunks refines the first chunk of entries inline on w and spawns the
// rest as stealable tasks: when this scan runs dry, idle workers pick the
// chunks up. Spawned chunks carry bound 0 — their partition already passed
// admission, their data is resident, and finishing them first tightens the
// shared bound fastest.
func (p *parJob) splitChunks(w *qpar.Worker, entries []sigtree.Entry, data PartitionData,
	refine func(w *qpar.Worker, entries []sigtree.Entry, data PartitionData) error) error {
	for start := refineChunk; start < len(entries); start += refineChunk {
		end := start + refineChunk
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		w.Spawn(0, func(w2 *qpar.Worker) error {
			return refine(w2, chunk, data)
		})
	}
	if len(entries) > refineChunk {
		entries = entries[:refineChunk]
	}
	return refine(w, entries, data)
}

// refineEntries is the Euclidean chunk refiner.
func (p *parJob) refineEntries(w *qpar.Worker, entries []sigtree.Entry, data PartitionData) error {
	sc := p.ix.getScratch()
	err := p.ix.refineEntriesBatch(p.job, p.q, p.paa, entries, data, p.skip, sc, &p.stats[w.ID()])
	putScratch(sc)
	return err
}

// spawnExactScan enqueues one best-first partition scan: the local tree is
// pruned with the shared bound snapshotted at execution time (always at
// least as tight as any earlier snapshot), and survivors refine in
// stealable chunks.
func (p *parJob) spawnExactScan(pb PartitionBound) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pb.PID]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pb.PID)
		}
		entries, pruned, err := local.Tree.PruneCollect(p.paa, p.ix.seriesLen, w.Bound())
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		data, err := p.ix.loadPartition(pb.PID, lst)
		if err != nil {
			return err
		}
		return p.splitChunks(w, entries, data, p.refineEntries)
	})
}

// spawnThresholdScan enqueues a fixed-threshold partition scan (the
// Multi-Partitions strategy): the local tree prunes with th exactly as the
// serial path does, so the candidate set is identical; the shared bound
// still tightens refinement. data passes an already-resident partition.
func (p *parJob) spawnThresholdScan(order float64, pid int, th float64, data PartitionData) {
	p.job.Spawn(order, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pid]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pid)
		}
		entries, pruned, err := local.Tree.PruneCollect(p.paa, p.ix.seriesLen, th)
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		d := data
		if d == nil {
			if d, err = p.ix.loadPartition(pid, lst); err != nil {
				return err
			}
		}
		return p.splitChunks(w, entries, d, p.refineEntries)
	})
}

// spawnRefineEntries chunks an already-collected entry list straight onto
// the queue (target-node and one-partition refinement).
func (p *parJob) spawnRefineEntries(entries []sigtree.Entry, data PartitionData) {
	for start := 0; start < len(entries); start += refineChunk {
		end := start + refineChunk
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		p.job.Spawn(0, func(w *qpar.Worker) error {
			return p.refineEntries(w, chunk, data)
		})
	}
}

// spawnDTWScan enqueues one best-first DTW partition scan: nodes prune with
// the region envelope bound, survivors gate through BatchLBKeogh chunks.
func (p *parJob) spawnDTWScan(pb PartitionBound, b *dtwBounder, band int) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pb.PID]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pb.PID)
		}
		entries, pruned, err := local.Tree.PruneCollectFunc(b.nodeBound, w.Bound())
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		data, err := p.ix.loadPartition(pb.PID, lst)
		if err != nil {
			return err
		}
		refine := func(w2 *qpar.Worker, chunk []sigtree.Entry, d PartitionData) error {
			sc := p.ix.getScratch()
			err := p.ix.refineDTWBatch(p.job, p.q, b.env, band, chunk, d, p.skip, sc, &p.stats[w2.ID()])
			putScratch(sc)
			return err
		}
		return p.splitChunks(w, entries, data, refine)
	})
}

// spawnRangeScan enqueues one range-partition scan; hits collect per worker
// and the caller concatenates + sorts, so the answer is order-independent.
func (p *parJob) spawnRangeScan(pb PartitionBound, eps, epsSq float64) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		sc := p.ix.getScratch()
		hits, err := p.ix.rangeScanPartition(p.q, p.paa, pb.PID, eps, epsSq, sc, lst)
		putScratch(sc)
		if err != nil {
			return err
		}
		p.hits[w.ID()] = append(p.hits[w.ID()], hits...)
		return nil
	})
}
