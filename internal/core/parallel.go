package core

import (
	"context"
	"fmt"
	"math"
	mbits "math/bits"
	"runtime"
	"sync"
	"time"

	"github.com/tardisdb/tardis/internal/dtw"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/qpar"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Intra-query parallelism: when the effective query parallelism is above 1,
// each query becomes one qpar.Job — partition/node scans enter a best-first
// priority queue keyed by lower bound, every worker shares the query's
// result heap through the job (Offer under a short lock, bound snapshots
// lock-free via knn.Heap.BoundAtomic), and scan tasks split their
// refinement into chunks idle workers steal. Results are identical to the
// serial path: the heap keeps the canonical k smallest (Dist, RID) pairs
// whatever the offer order, and every pruning decision compares a lower
// bound against a bound that is always ≥ the final kth distance.
//
// Both paths refine through the same batched SoA kernels (internal/ts), so
// distances are computed bit-identically serial and parallel.

// refineChunk is the stealable refinement granularity: candidate entries per
// spawned chunk. Large enough to amortize task overhead, small enough to
// spread one big leaf across workers.
const refineChunk = 256

// queryParallelism resolves the effective per-query worker count: the
// configured value, or GOMAXPROCS when unset.
func (ix *Index) queryParallelism() int {
	if p := ix.cfg.QueryParallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetQueryParallelism adjusts the per-query worker count at runtime: 0
// selects GOMAXPROCS, 1 forces the serial path. Not safe to call
// concurrently with queries.
func (ix *Index) SetQueryParallelism(p int) error {
	if p < 0 {
		return fmt.Errorf("core: query parallelism must be non-negative, got %d", p)
	}
	ix.cfg.QueryParallelism = p
	return nil
}

// refineScratch bundles the per-task scratch of the batched refine paths:
// kernel state, the candidate gather arrays, and the word SoA for the
// signature-level MINDIST pre-filter. Pooled so the hot loops allocate
// nothing per batch.
type refineScratch struct {
	bs    *ts.BatchState
	cands [ts.BatchLanes]ts.Series
	rids  [ts.BatchLanes]int64
	sigs  [ts.BatchLanes]isaxt.Signature
	lbs   [ts.BatchLanes]float64
	dists [ts.BatchLanes]float64
	words []int // position-major SoA, capacity BatchLanes * WordLen
	row   []int // one decoded word
	qword []int // the query's own SAX word — the lower-bound-0 fallback
}

var refinePool sync.Pool

// getScratch returns pooled refine scratch sized for this index's word
// length.
func (ix *Index) getScratch() *refineScratch {
	w := ix.cfg.WordLen
	if v := refinePool.Get(); v != nil {
		sc := v.(*refineScratch)
		if len(sc.row) == w {
			return sc
		}
	}
	return &refineScratch{
		bs:    ts.NewBatchState(),
		words: make([]int, ts.BatchLanes*w),
		row:   make([]int, w),
		qword: make([]int, w),
	}
}

// putScratch returns scratch to the pool, dropping series references so a
// pooled scratch does not pin partition arenas in memory.
func putScratch(sc *refineScratch) {
	for i := range sc.cands {
		sc.cands[i] = nil
	}
	refinePool.Put(sc)
}

// refineEntriesBatch refines candidate entries against the query through
// the batched SoA kernels: survivors of the cheap per-record filters gather
// into lanes, a BatchMinDistPAA signature filter drops lanes whose lower
// bound already exceeds the current kth distance, and one SquaredEuclidean
// call computes the remaining true distances with whole-batch early
// abandon. Stats accumulate into lst only — per-candidate bookkeeping stays
// out of the loop, the caller merges once per task.
//
// Exactness: a lane is dropped only when a lower bound of its true distance
// exceeds the current kth distance, which is always ≥ the final kth
// distance — so no member of the canonical answer is ever dropped,
// regardless of when the bound was snapshotted.
//
//tardis:hotpath
func (ix *Index) refineEntriesBatch(h heapLike, q, paa ts.Series, entries []sigtree.Entry, data PartitionData, skip map[int64]struct{}, sc *refineScratch, lst *QueryStats) error {
	w := ix.cfg.WordLen
	cbits := ix.cfg.InitialBits
	for i := 0; i < w; i++ {
		sc.qword[i] = ts.SAXSymbol(paa[i], cbits)
	}
	idx := 0
	for idx < len(entries) {
		lanes := 0
		for idx < len(entries) && lanes < ts.BatchLanes {
			e := entries[idx]
			idx++
			if _, dup := skip[e.RID]; dup {
				continue // already refined by an earlier step
			}
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return fmt.Errorf("core: candidate record %d missing from loaded partition", e.RID)
			}
			sc.cands[lanes] = s
			sc.rids[lanes] = e.RID
			sc.sigs[lanes] = e.Sig
			lanes++
		}
		if lanes == 0 {
			continue
		}
		bound := h.Bound()
		if !math.IsInf(bound, 1) {
			// Signature-level MINDIST pre-filter: decode each lane's
			// full-cardinality word into the SoA (entries reloaded from disk
			// carry no signature — they fall back to the query's own word,
			// whose MINDIST is 0, and always survive).
			words := sc.words[:w*lanes]
			for l := 0; l < lanes; l++ {
				src := sc.qword
				if sig := sc.sigs[l]; sig != "" {
					if b, err := ix.codec.DecodeInto(sig, sc.row); err == nil && b == cbits {
						src = sc.row
					}
				}
				for seg := 0; seg < w; seg++ {
					words[seg*lanes+l] = src[seg]
				}
			}
			ts.BatchMinDistPAA(paa, words, lanes, cbits, ix.seriesLen, sc.lbs[:lanes])
			kept := 0
			for l := 0; l < lanes; l++ {
				if sc.lbs[l] <= bound {
					sc.cands[kept] = sc.cands[l]
					sc.rids[kept] = sc.rids[l]
					kept++
				}
			}
			lanes = kept
			if lanes == 0 {
				continue
			}
		}
		qpar.ObserveBatch(lanes)
		lst.Candidates += lanes
		mask := sc.bs.SquaredEuclidean(q, sc.cands[:lanes], bound*bound, sc.dists[:])
		for m := mask; m != 0; m &= m - 1 {
			l := mbits.TrailingZeros32(m)
			h.Offer(Neighbor{RID: sc.rids[l], Dist: sqrt(sc.dists[l])})
		}
	}
	return nil
}

// refineDTWBatch is the DTW analogue: lanes gate through one BatchLBKeogh
// call against the query envelope, and only surviving lanes pay the full
// banded dynamic program.
//
//tardis:hotpath
func (ix *Index) refineDTWBatch(h heapLike, q ts.Series, env *dtw.Envelope, band int, entries []sigtree.Entry, data PartitionData, skip map[int64]struct{}, sc *refineScratch, lst *QueryStats) error {
	idx := 0
	for idx < len(entries) {
		lanes := 0
		for idx < len(entries) && lanes < ts.BatchLanes {
			e := entries[idx]
			idx++
			if _, dup := skip[e.RID]; dup {
				continue
			}
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return fmt.Errorf("core: candidate record %d missing from loaded partition", e.RID)
			}
			sc.cands[lanes] = s
			sc.rids[lanes] = e.RID
			lanes++
		}
		if lanes == 0 {
			continue
		}
		bound := h.Bound()
		qpar.ObserveBatch(lanes)
		lst.Candidates += lanes
		mask := sc.bs.BatchLBKeogh(env.U, env.L, sc.cands[:lanes], bound*bound, sc.lbs[:])
		for m := mask; m != 0; m &= m - 1 {
			l := mbits.TrailingZeros32(m)
			d, err := dtw.Distance(q, sc.cands[l], band)
			if err != nil {
				return err
			}
			h.Offer(Neighbor{RID: sc.rids[l], Dist: d})
		}
	}
	return nil
}

// parJob couples one query's qpar.Job with per-worker QueryStats fragments
// and the refinement inputs every task shares.
type parJob struct {
	ix    *Index
	job   *qpar.Job
	stats []QueryStats
	q     ts.Series
	paa   ts.Series
	skip  map[int64]struct{}
	prof  *qprof.Profile // nil when the query is unprofiled
	// hits collects range-query results per worker (tasks on the same worker
	// run serially, so fragments need no lock).
	hits [][]Neighbor
}

// newParJob builds a job over the shared heap. prune enables best-first
// task dropping against the live kth distance (exact search); leave it off
// for fixed-threshold scans. skip pre-filters candidates already refined by
// a serial seeding step. prof, when non-nil, receives per-partition scan
// observations from the task bodies.
func (ix *Index) newParJob(name string, h *knn.Heap, prune bool, q, paa ts.Series, skip map[int64]struct{}, prof *qprof.Profile) *parJob {
	job := qpar.New(qpar.Config{Parallelism: ix.queryParallelism(), Prune: prune, Name: name}, h)
	return &parJob{ix: ix, job: job, stats: make([]QueryStats, job.Workers()), q: q, paa: paa, skip: skip, prof: prof}
}

// run drains the job, merges the per-worker stats fragments into st, and
// folds the pool's scheduling summary into st.QPar (and the profile).
func (p *parJob) run(ctx context.Context, st *QueryStats) error {
	if err := p.job.Run(); err != nil { //tardislint:ignore ctxflow qpar workers drain the queue to completion by design: the shared bound makes abandoning in-flight tasks unsound
		return err
	}
	for i := range p.stats {
		st.merge(p.stats[i])
	}
	qs := p.job.Stats()
	if w := p.job.Workers(); w > st.QPar.Workers {
		st.QPar.Workers = w
	}
	st.QPar.TasksStolen += qs.Stolen
	st.QPar.BoundUpdates += qs.BoundUpdates
	p.prof.SetQPar(qprof.QPar{Workers: p.job.Workers(), TasksStolen: qs.Stolen, BoundUpdates: qs.BoundUpdates})
	return nil
}

// scanStart opens one profile scan observation from a task body; pruned and
// scanned are known up front, refined accumulates chunk by chunk through
// splitChunks. Returns -1 when the query is unprofiled.
func (p *parJob) scanStart(w *qpar.Worker, pid int, bound float64, pruned, scanned, hits, misses int, t0 time.Duration) int {
	if p.prof == nil {
		return -1
	}
	return p.prof.AddScan(qprof.Scan{
		PID:          pid,
		Bound:        bound,
		PrunedLeaves: pruned,
		Scanned:      scanned,
		Cache:        cacheOutcome(hits, misses),
		Worker:       w.ID(),
		Start:        t0,
	})
}

// splitChunks refines the first chunk of entries inline on w and spawns the
// rest as stealable tasks: when this scan runs dry, idle workers pick the
// chunks up. Spawned chunks carry bound 0 — their partition already passed
// admission, their data is resident, and finishing them first tightens the
// shared bound fastest. si is the profile scan observation opened by the
// owning task (-1 when unprofiled): each chunk folds its refined count into
// it, marking chunks that ran on a worker other than the owner as steals.
func (p *parJob) splitChunks(w *qpar.Worker, si int, entries []sigtree.Entry, data PartitionData,
	refine func(w *qpar.Worker, entries []sigtree.Entry, data PartitionData) error) error {
	run := refine
	if p.prof != nil && si >= 0 {
		owner := w.ID()
		run = func(w2 *qpar.Worker, chunk []sigtree.Entry, d PartitionData) error {
			// Tasks on one worker run serially, so the fragment delta below
			// is mutated only by this chunk.
			before := p.stats[w2.ID()].Candidates
			err := refine(w2, chunk, d)
			p.prof.ScanAdd(si, p.stats[w2.ID()].Candidates-before, w2.ID() != owner)
			return err
		}
	}
	for start := refineChunk; start < len(entries); start += refineChunk {
		end := start + refineChunk
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		w.Spawn(0, func(w2 *qpar.Worker) error {
			return run(w2, chunk, data)
		})
	}
	if len(entries) > refineChunk {
		entries = entries[:refineChunk]
	}
	return run(w, entries, data)
}

// refineEntries is the Euclidean chunk refiner.
func (p *parJob) refineEntries(w *qpar.Worker, entries []sigtree.Entry, data PartitionData) error {
	sc := p.ix.getScratch()
	err := p.ix.refineEntriesBatch(p.job, p.q, p.paa, entries, data, p.skip, sc, &p.stats[w.ID()])
	putScratch(sc)
	return err
}

// spawnExactScan enqueues one best-first partition scan: the local tree is
// pruned with the shared bound snapshotted at execution time (always at
// least as tight as any earlier snapshot), and survivors refine in
// stealable chunks.
func (p *parJob) spawnExactScan(pb PartitionBound) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pb.PID]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pb.PID)
		}
		t0 := p.prof.Now()
		entries, pruned, err := local.Tree.PruneCollect(p.paa, p.ix.seriesLen, w.Bound())
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		lst.Scanned += len(entries)
		h0, m0 := lst.CacheHits, lst.CacheMisses
		data, err := p.ix.loadPartition(context.Background(), pb.PID, lst)
		if err != nil {
			return err
		}
		si := p.scanStart(w, pb.PID, pb.Bound, pruned, len(entries), lst.CacheHits-h0, lst.CacheMisses-m0, t0)
		err = p.splitChunks(w, si, entries, data, p.refineEntries)
		p.prof.ScanFinish(si)
		return err
	})
}

// spawnThresholdScan enqueues a fixed-threshold partition scan (the
// Multi-Partitions strategy): the local tree prunes with th exactly as the
// serial path does, so the candidate set is identical; the shared bound
// still tightens refinement. data passes an already-resident partition.
func (p *parJob) spawnThresholdScan(order float64, pid int, th float64, data PartitionData) {
	p.job.Spawn(order, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pid]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pid)
		}
		t0 := p.prof.Now()
		entries, pruned, err := local.Tree.PruneCollect(p.paa, p.ix.seriesLen, th)
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		lst.Scanned += len(entries)
		h0, m0 := lst.CacheHits, lst.CacheMisses
		d := data
		if d == nil {
			if d, err = p.ix.loadPartition(context.Background(), pid, lst); err != nil {
				return err
			}
		}
		si := p.scanStart(w, pid, th, pruned, len(entries), lst.CacheHits-h0, lst.CacheMisses-m0, t0)
		err = p.splitChunks(w, si, entries, d, p.refineEntries)
		p.prof.ScanFinish(si)
		return err
	})
}

// spawnRefineEntries chunks an already-collected entry list straight onto
// the queue (target-node and one-partition refinement).
func (p *parJob) spawnRefineEntries(entries []sigtree.Entry, data PartitionData) {
	for start := 0; start < len(entries); start += refineChunk {
		end := start + refineChunk
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		p.job.Spawn(0, func(w *qpar.Worker) error {
			return p.refineEntries(w, chunk, data)
		})
	}
}

// spawnDTWScan enqueues one best-first DTW partition scan: nodes prune with
// the region envelope bound, survivors gate through BatchLBKeogh chunks.
func (p *parJob) spawnDTWScan(pb PartitionBound, b *dtwBounder, band int) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		local := p.ix.Locals[pb.PID]
		if local == nil {
			return fmt.Errorf("core: partition %d has no local index", pb.PID)
		}
		t0 := p.prof.Now()
		entries, pruned, err := local.Tree.PruneCollectFunc(b.nodeBound, w.Bound())
		if err != nil {
			return err
		}
		lst.PrunedLeaves += pruned
		if len(entries) == 0 {
			return nil
		}
		lst.Scanned += len(entries)
		h0, m0 := lst.CacheHits, lst.CacheMisses
		data, err := p.ix.loadPartition(context.Background(), pb.PID, lst)
		if err != nil {
			return err
		}
		refine := func(w2 *qpar.Worker, chunk []sigtree.Entry, d PartitionData) error {
			sc := p.ix.getScratch()
			err := p.ix.refineDTWBatch(p.job, p.q, b.env, band, chunk, d, p.skip, sc, &p.stats[w2.ID()])
			putScratch(sc)
			return err
		}
		si := p.scanStart(w, pb.PID, pb.Bound, pruned, len(entries), lst.CacheHits-h0, lst.CacheMisses-m0, t0)
		err = p.splitChunks(w, si, entries, data, refine)
		p.prof.ScanFinish(si)
		return err
	})
}

// spawnRangeScan enqueues one range-partition scan; hits collect per worker
// and the caller concatenates + sorts, so the answer is order-independent.
func (p *parJob) spawnRangeScan(pb PartitionBound, eps, epsSq float64) {
	p.job.Spawn(pb.Bound, func(w *qpar.Worker) error {
		lst := &p.stats[w.ID()]
		t0, before := p.prof.Now(), profBefore(p.prof, lst)
		sc := p.ix.getScratch()
		hits, err := p.ix.rangeScanPartition(context.Background(), p.q, p.paa, pb.PID, eps, epsSq, sc, lst)
		putScratch(sc)
		if err != nil {
			return err
		}
		if p.prof != nil {
			s := qprof.Scan{
				PID:          pb.PID,
				Bound:        pb.Bound,
				PrunedLeaves: lst.PrunedLeaves - before.PrunedLeaves,
				Scanned:      lst.Scanned - before.Scanned,
				Refined:      lst.Candidates - before.Candidates,
				Cache:        cacheOutcome(lst.CacheHits-before.CacheHits, lst.CacheMisses-before.CacheMisses),
				Worker:       w.ID(),
				Start:        t0,
				Dur:          p.prof.Now() - t0,
			}
			p.prof.AddScan(s)
		}
		p.hits[w.ID()] = append(p.hits[w.ID()], hits...)
		return nil
	})
}
