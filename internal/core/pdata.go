package core

import (
	"context"

	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/ts"
)

// DefaultCacheBytes is the partition-cache budget used when
// Config.CacheBytes is zero: large enough to keep a realistic hot set of
// decoded 10k-record partitions resident, small enough for a laptop.
const DefaultCacheBytes int64 = 256 << 20

// PartitionData is the decoded view of one clustered partition that query
// refinement reads: record-id lookup over the partition's series. It is
// satisfied by the cache's arena-backed *pcache.Partition and by the legacy
// mapPartition used when caching is disabled.
type PartitionData interface {
	// Series returns the series stored under rid.
	Series(rid int64) (ts.Series, bool)
	// Len returns the record count.
	Len() int
}

// mapPartition is the legacy one-allocation-per-record decoded
// representation, kept for the cache-disabled configuration.
type mapPartition map[int64]ts.Series

func (m mapPartition) Series(rid int64) (ts.Series, bool) {
	s, ok := m[rid]
	return s, ok
}

func (m mapPartition) Len() int { return len(m) }

// newPartitionCache builds the index's partition cache from the config:
// nil (caching disabled) when CacheBytes is negative, the default budget
// when zero.
func newPartitionCache(cfg Config) (*pcache.Cache[int], error) {
	if cfg.CacheBytes < 0 {
		return nil, nil
	}
	budget := cfg.CacheBytes
	if budget == 0 {
		budget = DefaultCacheBytes
	}
	return pcache.New(budget, cfg.CacheShards, pcache.HashInt)
}

// loadPartition returns the decoded partition for pid: through the cache
// (arena-backed, deduplicated loads) when caching is enabled, else via the
// legacy per-record LoadPartition decode. All PartitionsLoaded /
// CacheHits / CacheMisses accounting happens here; st may be nil. ctx bounds
// the cache join-wait; qpar task bodies pass Background (the pool drains its
// queue by design).
func (ix *Index) loadPartition(ctx context.Context, pid int, st *QueryStats) (PartitionData, error) {
	if st != nil {
		st.PartitionsLoaded++
	}
	if ix.cache == nil {
		data, err := ix.LoadPartition(pid) //tardislint:ignore ctxflow storage reads are synchronous by design; the simulated disk latency and failpoints deliberately ignore cancellation
		if err != nil {
			return nil, err
		}
		return mapPartition(data), nil
	}
	p, hit, err := ix.cache.Get(ctx, pid, func() (*pcache.Partition, error) {
		rids, values, err := ix.Store.ReadPartitionArena(pid)
		if err != nil {
			return nil, err
		}
		return pcache.NewPartition(rids, values, ix.seriesLen)
	})
	if err != nil {
		return nil, err
	}
	if st != nil {
		if hit {
			st.CacheHits++
		} else {
			st.CacheMisses++
		}
	}
	return p, nil
}

// CacheStats snapshots the partition-cache counters (the zero value when
// caching is disabled).
func (ix *Index) CacheStats() pcache.Stats {
	if ix.cache == nil {
		return pcache.Stats{}
	}
	return ix.cache.Stats()
}

// SetCacheBudget replaces the partition cache with one of the given byte
// budget: negative disables caching (dropping every resident partition),
// zero restores the default budget. Resident entries do not carry over. Not
// safe to call concurrently with queries.
func (ix *Index) SetCacheBudget(budgetBytes int64) error {
	cfg := ix.cfg
	cfg.CacheBytes = budgetBytes
	c, err := newPartitionCache(cfg)
	if err != nil {
		return err
	}
	ix.cfg.CacheBytes = budgetBytes
	ix.cache = c
	return nil
}
