package core

import (
	"math"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/dtw"
	"github.com/tardisdb/tardis/internal/ts"
)

// bruteForceDTW computes the exact DTW k nearest neighbors by scanning the
// source store.
func bruteForceDTW(t *testing.T, ix *Index, q ts.Series, k, band int) []Neighbor {
	t.Helper()
	pids, err := ix.Store.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	type dr struct {
		rid int64
		d   float64
	}
	var all []dr
	for _, pid := range pids {
		err := ix.Store.ScanPartition(pid, func(r ts.Record) error {
			d, err := dtw.Distance(q, r.Values, band)
			if err != nil {
				return err
			}
			all = append(all, dr{rid: r.RID, d: d})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k && i < len(all); i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d || (all[j].d == all[min].d && all[j].rid < all[min].rid) {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	out := make([]Neighbor, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, Neighbor{RID: all[i].rid, Dist: all[i].d})
	}
	return out
}

// KNNDTW must agree with the brute-force DTW scan — the exactness guarantee
// of the lower-bound chain.
func TestKNNDTWMatchesBruteForce(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	for i := int64(0); i < 5; i++ {
		q := randomQuery(300 + i)
		for _, band := range []int{0, 3, 8} {
			const k = 8
			got, st, err := ix.KNNDTW(q, k, band)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceDTW(t, ix, q, k, band)
			if len(got) != len(want) {
				t.Fatalf("band %d query %d: %d results, want %d", band, i, len(got), len(want))
			}
			for j := range want {
				if math.Abs(got[j].Dist-want[j].Dist) > 1e-9 {
					t.Fatalf("band %d query %d result %d: dist %v, want %v",
						band, i, j, got[j].Dist, want[j].Dist)
				}
			}
			if st.Duration <= 0 {
				t.Error("duration missing")
			}
		}
	}
}

// With band 0, DTW kNN equals Euclidean exact kNN.
func TestKNNDTWBandZeroEqualsEuclidean(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.DNA, testConfig())
	q := randomQuery(77)
	const k = 10
	dtwRes, _, err := ix.KNNDTW(q, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	edRes, _, err := ix.KNNExact(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for j := range edRes {
		if math.Abs(dtwRes[j].Dist-edRes[j].Dist) > 1e-9 {
			t.Fatalf("result %d: DTW(0) %v != ED %v", j, dtwRes[j].Dist, edRes[j].Dist)
		}
	}
}

func TestKNNDTWSelfQuery(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.NOAA, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.KNNDTW(recs[2].Values, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Dist != 0 {
		t.Fatalf("self DTW query should return distance 0 first: %+v", res)
	}
}

func TestKNNDTWWithDelta(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs := freshRecords(t, 5, 700)
	if err := ix.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.KNNDTW(recs[1].Values, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].RID != recs[1].RID || res[0].Dist != 0 {
		t.Fatalf("delta record not found by DTW query: %+v", res)
	}
	// Deleted records stay hidden.
	if err := ix.Delete(recs[1].RID); err != nil {
		t.Fatal(err)
	}
	res, _, err = ix.KNNDTW(recs[1].Values, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res {
		if n.RID == recs[1].RID {
			t.Fatal("deleted record returned by DTW query")
		}
	}
}

func TestKNNDTWValidation(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	q := randomQuery(1)
	if _, _, err := ix.KNNDTW(q, 0, 3); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := ix.KNNDTW(q, 5, -1); err == nil {
		t.Error("negative band should fail")
	}
	if _, _, err := ix.KNNDTW(make(ts.Series, 2), 5, 3); err == nil {
		t.Error("bad query length should fail")
	}
}

// Pruning does real work: with a tight band the query must not load every
// partition.
func TestKNNDTWPrunes(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.KNNDTW(recs[0].Values, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsLoaded >= ix.NumPartitions() {
		t.Logf("no partitions pruned (%d loaded of %d) — acceptable on diffuse data, but log it",
			st.PartitionsLoaded, ix.NumPartitions())
	}
	if st.PrunedLeaves == 0 && st.PartitionsLoaded == ix.NumPartitions() {
		t.Error("neither partitions nor leaves pruned; bounds are doing nothing")
	}
}
