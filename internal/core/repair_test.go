package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/dataset"
)

func TestVerifyCleanIndex(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rep, err := ix.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fresh index should verify clean: %+v", rep)
	}
	n, err := ix.Repair(rep)
	if err != nil || n != 0 {
		t.Errorf("clean repair should be a no-op: %d, %v", n, err)
	}
}

func TestLoadWithRepairMissingLocals(t *testing.T) {
	ix, src, cl := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	dir := ix.Store.Dir()
	// Destroy some derived files: two local trees and one bloom filter.
	for _, name := range []string{"local-000000.sigtree", "local-000001.sigtree", "bloom-000002.bin"} {
		if err := os.Remove(filepath.Join(dir, "_index", name)); err != nil {
			t.Fatal(err)
		}
	}
	re, repaired, err := LoadWithRepair(cl, dir)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 3 {
		t.Errorf("repaired %d partitions, want 3", repaired)
	}
	rep, err := re.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("index not clean after repair: %+v", rep)
	}
	// Queries work against the repaired partitions.
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := recs[i*23%len(recs)]
		got, _, err := re.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d lost after repair", rec.RID)
		}
	}
	// The repair was persisted: a plain Load now verifies clean.
	re2, err := Load(cl, dir)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := re2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("repair not persisted: %+v", rep2)
	}
}

func TestVerifyDetectsCountMismatch(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.DNA, testConfig())
	// Sabotage a local tree by dropping an entry count.
	var pid int
	for p, l := range ix.Locals {
		if l != nil && l.Tree.Count() > 0 {
			pid = p
			break
		}
	}
	leaf := ix.Locals[pid].Tree.Leaves()[0]
	leaf.Entries = leaf.Entries[:0]
	leaf.Count = 0
	rep, err := ix.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// The root count no longer matches the file count? Count() reads the
	// root, which we did not touch — so force a detectable mismatch
	// differently: replace the local wholesale.
	if rep.OK() {
		ix.Locals[pid] = nil
		rep, err = ix.Verify()
		if err != nil {
			t.Fatal(err)
		}
	}
	if rep.OK() {
		t.Fatal("verify missed the damage")
	}
	n, err := ix.Repair(rep)
	if err != nil || n == 0 {
		t.Fatalf("repair: %d, %v", n, err)
	}
	rep, err = ix.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("post-repair verify: %+v, %v", rep, err)
	}
}

func TestLoadWithRepairCleanIsNoop(t *testing.T) {
	ix, _, cl := buildTestIndex(t, dataset.NOAA, testConfig())
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	_, repaired, err := LoadWithRepair(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Errorf("clean index repaired %d partitions", repaired)
	}
}

func TestLoadWithRepairMissingDescriptor(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Workers: 2})
	if _, _, err := LoadWithRepair(cl, t.TempDir()); err == nil {
		t.Error("missing index should still fail")
	}
}
