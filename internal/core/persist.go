package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
)

// Index persistence: the built index is stored inside the clustered store's
// directory under _index/ — the global sigTree, one local sigTree and Bloom
// filter per partition, and a JSON descriptor. Loading restores a fully
// queryable Index without rebuilding.
//
// Local sigTrees serialize leaf record ids but not entry signatures (the
// signature of an entry is implied by its leaf prefix only up to the leaf's
// cardinality). Exact-match verification compares raw series from the
// partition file, so queries remain correct; only the per-entry
// full-cardinality signature check becomes a leaf-level check after a
// reload, which can add a few extra candidate comparisons but never misses.

const indexSubdir = "_index"

type indexDescriptor struct {
	Config     Config     `json:"config"`
	SeriesLen  int        `json:"series_len"`
	Partitions int        `json:"partitions"`
	Stats      BuildStats `json:"stats"`
}

// Save persists the index structures into the clustered store's directory.
func (ix *Index) Save() error {
	dir := filepath.Join(ix.Store.Dir(), indexSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating index dir: %w", err)
	}
	desc := indexDescriptor{
		Config:     ix.cfg,
		SeriesLen:  ix.seriesLen,
		Partitions: len(ix.Locals),
		Stats:      ix.stats,
	}
	data, err := json.MarshalIndent(desc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), data, 0o644); err != nil {
		return err
	}
	if err := writeTreeFile(filepath.Join(dir, "global.sigtree"), ix.Global); err != nil {
		return err
	}
	for pid, l := range ix.Locals {
		if l == nil {
			continue
		}
		if err := writeTreeFile(filepath.Join(dir, fmt.Sprintf("local-%06d.sigtree", pid)), l.Tree); err != nil {
			return err
		}
		if l.Bloom != nil {
			bf, err := l.Bloom.MarshalBinary()
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("bloom-%06d.bin", pid)), bf, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTreeFile(path string, t *sigtree.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		return errors.Join(err, f.Close(), os.Remove(path))
	}
	return f.Close()
}

func readTreeFile(path string) (*sigtree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sigtree.ReadTree(f)
}

// Load restores a saved index from a clustered store directory. The cluster
// is used for subsequent parallel operations (ground truth, rebuilds).
func Load(cl *cluster.Cluster, storeDir string) (*Index, error) {
	dir := filepath.Join(storeDir, indexSubdir)
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, fmt.Errorf("core: reading index descriptor: %w", err)
	}
	var desc indexDescriptor
	if err := json.Unmarshal(data, &desc); err != nil {
		return nil, fmt.Errorf("core: parsing index descriptor: %w", err)
	}
	if err := desc.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: saved config invalid: %w", err)
	}
	codec, err := isaxt.NewCodec(desc.Config.WordLen)
	if err != nil {
		return nil, err
	}
	st, err := storage.Open(storeDir)
	if err != nil {
		return nil, fmt.Errorf("core: opening clustered store: %w", err)
	}
	global, err := readTreeFile(filepath.Join(dir, "global.sigtree"))
	if err != nil {
		return nil, fmt.Errorf("core: loading global index: %w", err)
	}
	cache, err := newPartitionCache(desc.Config)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:         desc.Config,
		codec:       codec,
		cl:          cl,
		seriesLen:   desc.SeriesLen,
		Global:      global,
		Store:       st,
		Locals:      make([]*Local, desc.Partitions),
		routerCache: NewRouter(global),
		stats:       desc.Stats,
		cache:       cache,
	}
	for pid := 0; pid < desc.Partitions; pid++ {
		tree, err := readTreeFile(filepath.Join(dir, fmt.Sprintf("local-%06d.sigtree", pid)))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("core: loading local index %d: %w", pid, err)
		}
		l := &Local{Tree: tree}
		bfPath := filepath.Join(dir, fmt.Sprintf("bloom-%06d.bin", pid))
		if bf, err := os.ReadFile(bfPath); err == nil {
			var filter bloom.Filter
			if err := filter.UnmarshalBinary(bf); err != nil {
				return nil, fmt.Errorf("core: loading bloom %d: %w", pid, err)
			}
			l.Bloom = &filter
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		ix.Locals[pid] = l
	}
	return ix, nil
}

// The exported writers below let a distributed builder (the net/rpc build
// mode) produce the same on-disk index layout that Save writes and Load
// reads: workers write their local trees and Bloom filters directly, the
// coordinator writes the global tree and descriptor, and core.Load restores
// the complete index.

// WriteDescriptor writes the index descriptor into a clustered store dir.
func WriteDescriptor(storeDir string, cfg Config, seriesLen, partitions int, stats BuildStats) error {
	dir := filepath.Join(storeDir, indexSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	desc := indexDescriptor{Config: cfg, SeriesLen: seriesLen, Partitions: partitions, Stats: stats}
	data, err := json.MarshalIndent(desc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "index.json"), data, 0o644)
}

// WriteGlobalTree writes the global sigTree into a clustered store dir.
func WriteGlobalTree(storeDir string, t *sigtree.Tree) error {
	dir := filepath.Join(storeDir, indexSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeTreeFile(filepath.Join(dir, "global.sigtree"), t)
}

// ReadGlobalTree reads back a global sigTree written by WriteGlobalTree or
// Save.
func ReadGlobalTree(storeDir string) (*sigtree.Tree, error) {
	return readTreeFile(filepath.Join(storeDir, indexSubdir, "global.sigtree"))
}

// WriteLocal writes one partition's local sigTree and optional Bloom filter
// into a clustered store dir.
func WriteLocal(storeDir string, pid int, tree *sigtree.Tree, bf *bloom.Filter) error {
	dir := filepath.Join(storeDir, indexSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeTreeFile(filepath.Join(dir, fmt.Sprintf("local-%06d.sigtree", pid)), tree); err != nil {
		return err
	}
	if bf != nil {
		data, err := bf.MarshalBinary()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, fmt.Sprintf("bloom-%06d.bin", pid)), data, 0o644)
	}
	return nil
}
