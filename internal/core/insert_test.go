package core

import (
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

func freshRecords(t *testing.T, n int, base int64) []ts.Record {
	t.Helper()
	g, err := dataset.New(dataset.RandomWalk, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]ts.Record, n)
	for i := range out {
		// A generation seed disjoint from the build's 42 keeps these
		// records out of the original dataset.
		rec := dataset.Record(g, 777, base+int64(i))
		rec.RID = 1_000_000 + base + int64(i)
		rec.Values.ZNormalizeInPlace()
		out[i] = rec
	}
	return out
}

func TestInsertVisibleBeforeCompact(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs := freshRecords(t, 20, 0)
	if err := ix.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if ix.DeltaCount() != 20 {
		t.Fatalf("delta count = %d", ix.DeltaCount())
	}
	for _, rec := range recs[:5] {
		// Exact match sees the delta.
		got, _, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[len(got)-1] != rec.RID {
			t.Fatalf("inserted record %d not found before compaction: %v", rec.RID, got)
		}
		// kNN strategies see it at distance 0.
		for name, knnFn := range knnStrategies(ix) {
			res, _, err := knnFn(rec.Values, 3)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res) == 0 || res[0].RID != rec.RID || res[0].Dist != 0 {
				t.Fatalf("%s: inserted record not first result: %+v", name, res)
			}
		}
		// Exact kNN and range too.
		res, _, err := ix.KNNExact(rec.Values, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].RID != rec.RID {
			t.Fatalf("KNNExact missed inserted record: %+v", res[0])
		}
		rr, _, err := ix.RangeQuery(rec.Values, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range rr {
			if n.RID == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatal("RangeQuery missed inserted record")
		}
	}
}

func TestCompactFoldsDelta(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	before, err := ix.Store.TotalRecords()
	if err != nil {
		t.Fatal(err)
	}
	globalBefore := ix.Global.Count()
	recs := freshRecords(t, 30, 100)
	if err := ix.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	nParts, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if nParts < 1 {
		t.Fatalf("compaction touched %d partitions", nParts)
	}
	if ix.DeltaCount() != 0 {
		t.Errorf("delta not emptied: %d", ix.DeltaCount())
	}
	after, err := ix.Store.TotalRecords()
	if err != nil {
		t.Fatal(err)
	}
	if after != before+30 {
		t.Fatalf("store holds %d records, want %d", after, before+30)
	}
	if ix.Global.Count() != globalBefore+30 {
		t.Errorf("global count %d, want %d", ix.Global.Count(), globalBefore+30)
	}
	// Everything still findable from disk.
	for _, rec := range recs {
		got, _, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d lost after compaction", rec.RID)
		}
	}
	// Compacting an empty delta is a no-op.
	n, err := ix.Compact()
	if err != nil || n != 0 {
		t.Errorf("empty compact: %d, %v", n, err)
	}
	// Local-tree invariant: counts still consistent in rewritten partitions.
	for pid, l := range ix.Locals {
		if l == nil {
			continue
		}
		cnt, err := ix.Store.PartitionCount(pid)
		if err != nil {
			t.Fatal(err)
		}
		if l.Tree.Count() != cnt {
			t.Fatalf("partition %d: local tree %d entries, file %d", pid, l.Tree.Count(), cnt)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if err := ix.Insert(ts.Record{RID: 1, Values: make(ts.Series, 3)}); err == nil {
		t.Error("wrong length should fail")
	}
	rec := freshRecords(t, 1, 500)[0]
	if err := ix.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(rec); err == nil {
		t.Error("duplicate rid in delta should fail")
	}
}

// kNN answers agree before and after compaction for queries near the
// inserted records.
func TestQueriesConsistentAcrossCompaction(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs := freshRecords(t, 10, 900)
	if err := ix.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	q := recs[3].Values
	pre, _, err := ix.KNNExact(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	post, _, err := ix.KNNExact(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) != len(post) {
		t.Fatalf("result sizes differ: %d vs %d", len(pre), len(post))
	}
	for i := range pre {
		if pre[i].RID != post[i].RID || pre[i].Dist != post[i].Dist {
			t.Fatalf("result %d differs across compaction: %+v vs %+v", i, pre[i], post[i])
		}
	}
}
