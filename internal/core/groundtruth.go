package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

func sqrt(v float64) float64 { return math.Sqrt(v) }

// GroundTruthKNN computes the exact k nearest neighbors of q by a full
// parallel scan over the clustered store — the evaluation oracle for recall
// and error ratio. Unlike the paper (which uses a pruned approximation with
// a fixed threshold because a full scan over a billion series is
// impractical), our scaled datasets allow the exact answer. Pending delta
// inserts are included and tombstoned records excluded, so the oracle always
// reflects the index's logical contents.
func (ix *Index) GroundTruthKNN(q ts.Series, k int) ([]Neighbor, error) {
	// Over-fetch by the tombstone count: if the true top-k were all
	// deleted, the filtered answer must still reach depth k.
	fetch := k
	if ix.delta != nil {
		fetch += len(ix.delta.tombstones)
	}
	base, err := GroundTruthKNN(ix.cl, ix.Store, q, fetch)
	if err != nil {
		return nil, err
	}
	if ix.delta == nil {
		return base, nil
	}
	h := knn.NewHeap(k)
	for _, n := range base {
		if !ix.delta.deleted(n.RID) {
			h.Offer(n)
		}
	}
	for rid, s := range ix.delta.data {
		if ix.delta.deleted(rid) {
			continue
		}
		bound := h.Bound()
		if d2, ok := ts.SquaredDistanceEarlyAbandon(q, s, bound*bound); ok {
			h.Offer(Neighbor{RID: rid, Dist: sqrt(d2)})
		}
	}
	return h.Sorted(), nil
}

// GroundTruthKNN computes the exact k nearest neighbors of q over any
// store by a full parallel scan.
func GroundTruthKNN(cl *cluster.Cluster, st *storage.Store, q ts.Series, k int) ([]Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if len(q) != st.SeriesLen() {
		return nil, fmt.Errorf("core: query length %d != stored length %d", len(q), st.SeriesLen())
	}
	pids, err := st.Partitions()
	if err != nil {
		return nil, err
	}
	blocks := cluster.Parallelize(cl, pids, 0)
	partials, err := cluster.MapPartitions("ground-truth-scan", blocks,
		func(_ int, ps []int) ([]Neighbor, error) {
			h := knn.NewHeap(k)
			for _, pid := range ps {
				err := st.ScanPartition(pid, func(r ts.Record) error {
					bound := h.Bound()
					if d2, ok := ts.SquaredDistanceEarlyAbandon(q, r.Values, bound*bound); ok {
						h.Offer(Neighbor{RID: r.RID, Dist: sqrt(d2)})
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return h.Sorted(), nil
		})
	if err != nil {
		return nil, err
	}
	merged := knn.NewHeap(k)
	for _, n := range partials.Collect() {
		merged.Offer(n)
	}
	return merged.Sorted(), nil
}

// GroundTruthPruned reproduces the paper's ground-truth procedure (§VI-C2):
// use the Tardis-G lower bound to filter partitions, then each surviving
// partition's Tardis-L lower bound to filter nodes, with a fixed distance
// threshold (7.5 in the paper); refine the survivors. When fewer than k
// candidates survive, the threshold is doubled and the scan retried, so the
// procedure always returns k results when the dataset holds at least k.
func (ix *Index) GroundTruthPruned(q ts.Series, k int, threshold float64) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if threshold <= 0 {
		return nil, st, fmt.Errorf("core: threshold must be positive, got %v", threshold)
	}
	sig, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	_ = sig
	for {
		h := knn.NewHeap(k)
		var candidates int
		// Filter partitions by the global lower bound: a partition may hold
		// answers only if some global leaf pointing at it survives.
		alive := map[int]bool{}
		var walkErr error
		for _, leaf := range ix.Global.Leaves() {
			d, err := ix.Global.MinDist(leaf, paa, ix.seriesLen)
			if err != nil {
				walkErr = err
				break
			}
			if d <= threshold {
				for _, pid := range leaf.PIDs {
					alive[pid] = true
				}
			}
		}
		if walkErr != nil {
			return nil, st, walkErr
		}
		sc := ix.getScratch()
		for pid := range alive {
			preSt := QueryStats{}
			if err := ix.scanPartitionInto(context.Background(), h, q, paa, pid, threshold, nil, nil, sc, &preSt); err != nil {
				putScratch(sc)
				return nil, st, err
			}
			st.PartitionsLoaded += preSt.PartitionsLoaded
			st.PrunedLeaves += preSt.PrunedLeaves
			candidates += preSt.Candidates
		}
		putScratch(sc)
		st.Candidates += candidates
		if res := h.Sorted(); len(res) >= k || threshold > 1e6 {
			st.Duration = time.Since(start)
			return res, st, nil
		}
		threshold *= 2
	}
}
