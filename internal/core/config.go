// Package core implements the TARDIS distributed indexing framework (paper
// §IV-V): the centralized global index (Tardis-G) built from sampled
// signature statistics, the per-partition local indices (Tardis-L) with
// their Bloom filters, and the query algorithms — Exact-Match (with and
// without Bloom filter) and the three kNN-approximate strategies
// (Target-Node, One-Partition, Multi-Partitions access).
package core

import (
	"fmt"

	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Config carries the paper's experimental configuration (Table II) plus the
// knobs of this implementation.
type Config struct {
	// WordLen is the iSAX word length w (Table II: 8). Must be a positive
	// multiple of 4 (iSAX-T hex planes).
	WordLen int
	// InitialBits is TARDIS's initial cardinality exponent (Table II:
	// cardinality 64, i.e. 6 bits). It bounds sigTree depth.
	InitialBits int
	// GMaxSize is the Tardis-G leaf split threshold and partition capacity
	// in records — the stand-in for the HDFS block capacity.
	GMaxSize int64
	// LMaxSize is the Tardis-L leaf split threshold (Table II: 1000).
	LMaxSize int64
	// SamplePct is the block-level sampling percentage for global-index
	// statistics (Table II: 10%).
	SamplePct float64
	// SampleSeed seeds block sampling, making builds reproducible.
	SampleSeed int64
	// PartitionThreshold is pth, the cap on partitions loaded by the
	// Multi-Partitions Access strategy (Table II: 40).
	PartitionThreshold int
	// BloomFP is the per-partition Bloom filter false-positive target.
	BloomFP float64
	// BuildBloom controls whether Bloom filter indices are constructed
	// alongside the local indices (paper Fig. 12 compares both).
	BuildBloom bool
	// Compression selects the clustered partitions' payload encoding
	// (storage.NoCompression or storage.Flate). Compressed partitions trade
	// slower loads for smaller files, like compressed HDFS blocks.
	Compression storage.Compression
	// CacheBytes bounds the decoded-partition cache in bytes. Zero picks
	// DefaultCacheBytes; a negative value disables caching entirely (every
	// query load decodes from disk, the pre-cache behavior).
	CacheBytes int64
	// CacheShards is the partition-cache shard count (0 picks the pcache
	// default).
	CacheShards int
	// QueryParallelism is the per-query worker count of the intra-query
	// parallel execution layer (internal/qpar). 0 selects GOMAXPROCS; 1
	// forces the serial path. Parallel and serial paths return identical
	// results, so this is purely a latency/throughput knob.
	QueryParallelism int
}

// DefaultConfig returns the paper's Table II configuration, scaled: the
// partition capacity defaults to 10k records rather than an HDFS block.
func DefaultConfig() Config {
	return Config{
		WordLen:            8,
		InitialBits:        6, // cardinality 64
		GMaxSize:           10_000,
		LMaxSize:           1_000,
		SamplePct:          0.10,
		SampleSeed:         1,
		PartitionThreshold: 40,
		BloomFP:            0.01,
		BuildBloom:         true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WordLen <= 0 || c.WordLen%4 != 0 {
		return fmt.Errorf("core: word length must be a positive multiple of 4, got %d", c.WordLen)
	}
	if c.InitialBits < 1 || c.InitialBits > ts.MaxCardinalityBits {
		return fmt.Errorf("core: initial cardinality bits %d out of range [1, %d]", c.InitialBits, ts.MaxCardinalityBits)
	}
	if c.GMaxSize < 1 {
		return fmt.Errorf("core: G-MaxSize must be positive, got %d", c.GMaxSize)
	}
	if c.LMaxSize < 1 {
		return fmt.Errorf("core: L-MaxSize must be positive, got %d", c.LMaxSize)
	}
	if c.SamplePct <= 0 || c.SamplePct > 1 {
		return fmt.Errorf("core: sampling percentage must be in (0,1], got %v", c.SamplePct)
	}
	if c.PartitionThreshold < 1 {
		return fmt.Errorf("core: partition threshold pth must be positive, got %d", c.PartitionThreshold)
	}
	if c.BuildBloom && (c.BloomFP <= 0 || c.BloomFP >= 1) {
		return fmt.Errorf("core: bloom false-positive rate must be in (0,1), got %v", c.BloomFP)
	}
	if c.Compression != storage.NoCompression && c.Compression != storage.Flate {
		return fmt.Errorf("core: unknown compression %d", c.Compression)
	}
	if c.CacheShards < 0 {
		return fmt.Errorf("core: cache shard count must be non-negative, got %d", c.CacheShards)
	}
	if c.QueryParallelism < 0 {
		return fmt.Errorf("core: query parallelism must be non-negative, got %d", c.QueryParallelism)
	}
	return nil
}
