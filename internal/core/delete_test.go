package core

import (
	"sync"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
)

func TestDeleteHidesStoredRecord(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	victim := recs[5]

	// Visible before deletion.
	got, _, err := ix.ExactMatch(victim.Values, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("victim not indexed")
	}
	if err := ix.Delete(victim.RID); err != nil {
		t.Fatal(err)
	}
	if ix.TombstoneCount() != 1 {
		t.Errorf("tombstones = %d", ix.TombstoneCount())
	}

	// Hidden from every query path before compaction.
	got, _, err = ix.ExactMatch(victim.Values, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range got {
		if rid == victim.RID {
			t.Fatal("deleted record visible via exact match")
		}
	}
	for name, knnFn := range knnStrategies(ix) {
		res, _, err := knnFn(victim.Values, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, n := range res {
			if n.RID == victim.RID {
				t.Fatalf("%s: deleted record in results", name)
			}
		}
	}
	res, _, err := ix.KNNExact(victim.Values, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res {
		if n.RID == victim.RID {
			t.Fatal("KNNExact returned deleted record")
		}
	}
	rr, _, err := ix.RangeQuery(victim.Values, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rr {
		if n.RID == victim.RID {
			t.Fatal("RangeQuery returned deleted record")
		}
	}
	gt, err := ix.GroundTruthKNN(victim.Values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 5 {
		t.Fatalf("ground truth short: %d", len(gt))
	}
	for _, n := range gt {
		if n.RID == victim.RID {
			t.Fatal("oracle returned deleted record")
		}
	}

	// Compaction reclaims the bytes.
	before, _ := ix.Store.TotalRecords()
	nParts, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if nParts < 1 {
		t.Fatal("compaction should rewrite the victim's partition")
	}
	after, _ := ix.Store.TotalRecords()
	if after != before-1 {
		t.Fatalf("store went %d -> %d, want one fewer", before, after)
	}
	got, _, err = ix.ExactMatch(victim.Values, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range got {
		if rid == victim.RID {
			t.Fatal("deleted record resurfaced after compaction")
		}
	}
}

func TestDeleteDeltaOnlyRecord(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	rec := freshRecords(t, 1, 50)[0]
	if err := ix.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(rec.RID); err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.ExactMatch(rec.Values, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range got {
		if rid == rec.RID {
			t.Fatal("insert-then-delete record still visible")
		}
	}
	before, _ := ix.Store.TotalRecords()
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := ix.Store.TotalRecords()
	if after != before {
		t.Fatalf("insert-then-delete changed the store: %d -> %d", before, after)
	}
}

func TestDeleteAllTopK(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	q := recs[0].Values
	top, err := ix.GroundTruthKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range top {
		if err := ix.Delete(n.RID); err != nil {
			t.Fatal(err)
		}
	}
	// The oracle must still return 3 live records, none of the deleted.
	gt, err := ix.GroundTruthKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 3 {
		t.Fatalf("oracle returned %d after deleting top-3", len(gt))
	}
	deleted := map[int64]bool{}
	for _, n := range top {
		deleted[n.RID] = true
	}
	for _, n := range gt {
		if deleted[n.RID] {
			t.Fatal("oracle returned a deleted record")
		}
	}
	// Exact kNN agrees with the oracle.
	res, _, err := ix.KNNExact(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gt {
		if res[i].Dist != gt[i].Dist {
			t.Fatalf("exact kNN diverges at %d: %v vs %v", i, res[i].Dist, gt[i].Dist)
		}
	}
}

// Queries are safe to run concurrently on an immutable index (the paper's
// deployment: many analysts, one index).
func TestConcurrentQueries(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rec := recs[(g*13+i*7)%len(recs)]
				if _, _, err := ix.ExactMatch(rec.Values, true); err != nil {
					errCh <- err
					return
				}
				if res, _, err := ix.KNNMultiPartition(rec.Values, 5); err != nil {
					errCh <- err
					return
				} else if len(res) == 0 || res[0].RID != rec.RID {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}
