package core

import (
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		TargetNodeAccess:      "target-node",
		OnePartitionAccess:    "one-partition",
		MultiPartitionsAccess: "multi-partitions",
		ExactKNN:              "exact",
		Strategy(9):           "Strategy(9)",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
}

func TestKNNBatchMatchesSequential(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]ts.Series, 12)
	for i := range queries {
		queries[i] = recs[i*9%len(recs)].Values
	}
	for _, strat := range []Strategy{TargetNodeAccess, OnePartitionAccess, MultiPartitionsAccess, ExactKNN} {
		results, agg, err := ix.KNNBatch(queries, 5, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("%v: %d results", strat, len(results))
		}
		if agg.PartitionsLoaded == 0 || agg.Duration <= 0 {
			t.Errorf("%v: aggregate stats empty", strat)
		}
		run, _ := ix.strategyFunc(strat)
		for i, q := range queries {
			seq, _, err := run(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(results[i].Neighbors) {
				t.Fatalf("%v query %d: batch %d vs sequential %d results",
					strat, i, len(results[i].Neighbors), len(seq))
			}
			for j := range seq {
				if seq[j] != results[i].Neighbors[j] {
					t.Fatalf("%v query %d result %d: batch %+v vs sequential %+v",
						strat, i, j, results[i].Neighbors[j], seq[j])
				}
			}
		}
	}
	// Validation.
	if _, _, err := ix.KNNBatch(queries, 0, MultiPartitionsAccess); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := ix.KNNBatch(queries, 5, Strategy(42)); err == nil {
		t.Error("bad strategy should fail")
	}
	if _, _, err := ix.KNNBatch([]ts.Series{make(ts.Series, 2)}, 5, TargetNodeAccess); err == nil {
		t.Error("bad query length should fail")
	}
}

func TestExactMatchBatch(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.DNA, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	queries := []ts.Series{recs[0].Values, recs[5].Values, recs[10].Values}
	results, agg, err := ix.ExactMatchBatch(queries, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, want := range []int64{recs[0].RID, recs[5].RID, recs[10].RID} {
		found := false
		for _, rid := range results[i] {
			if rid == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("query %d missed record %d: %v", i, want, results[i])
		}
	}
	if agg.Duration <= 0 {
		t.Error("aggregate duration missing")
	}
	if _, _, err := ix.ExactMatchBatch([]ts.Series{make(ts.Series, 1)}, true); err == nil {
		t.Error("bad query length should fail")
	}
}

func TestKNNAuto(t *testing.T) {
	ix, src, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	q := recs[0].Values
	// Small k on a populated partition: single-partition strategy suffices.
	res, strat, _, err := ix.KNNAuto(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].RID != recs[0].RID {
		t.Fatalf("auto small-k result wrong: %+v", res)
	}
	if strat != OnePartitionAccess {
		t.Errorf("small k chose %v, want one-partition", strat)
	}
	// k far beyond any partition: must widen to multi-partitions.
	resBig, stratBig, _, err := ix.KNNAuto(q, 500)
	if err != nil {
		t.Fatal(err)
	}
	if stratBig != MultiPartitionsAccess {
		t.Errorf("large k chose %v, want multi-partitions", stratBig)
	}
	if len(resBig) < 400 {
		t.Errorf("large-k result too small: %d", len(resBig))
	}
	if _, _, _, err := ix.KNNAuto(q, 0); err == nil {
		t.Error("k=0 should fail")
	}
}
