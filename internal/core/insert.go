package core

import (
	"fmt"
	"sort"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Incremental maintenance — an extension beyond the paper's batch-only
// design. New records accumulate in an in-memory delta (a sigTree over the
// new entries plus their raw series); every query transparently consults the
// delta alongside the on-disk partitions. Compact folds the delta into the
// clustered partitions: each affected partition file is rewritten with its
// new records and its local sigTree and Bloom filter are rebuilt, after
// which the delta is empty.
//
// The Index is not safe for concurrent mutation; interleave Insert/Compact
// with queries from a single goroutine, or add external synchronization.

// deltaStore is the in-memory memtable of inserted-but-not-compacted
// records.
type deltaStore struct {
	tree *sigtree.Tree
	data map[int64]ts.Series
	// tombstones marks deleted record ids; queries filter them out and
	// Compact drops them from the rewritten partitions.
	tombstones map[int64]struct{}
}

// deleted reports whether rid carries a tombstone.
func (d *deltaStore) deleted(rid int64) bool {
	if d == nil {
		return false
	}
	_, ok := d.tombstones[rid]
	return ok
}

func (ix *Index) ensureDelta() error {
	if ix.delta != nil {
		return nil
	}
	tree, err := sigtree.New(ix.codec, ix.cfg.InitialBits, ix.cfg.LMaxSize)
	if err != nil {
		return err
	}
	ix.delta = &deltaStore{tree: tree, data: map[int64]ts.Series{}, tombstones: map[int64]struct{}{}}
	return nil
}

// DeltaCount returns the number of inserted records awaiting compaction.
func (ix *Index) DeltaCount() int64 {
	if ix.delta == nil {
		return 0
	}
	return ix.delta.tree.Count()
}

// Insert adds one record to the index. The record must be z-normalized like
// the indexed data, have the indexed length, and carry a record id unused by
// both the dataset and the delta.
func (ix *Index) Insert(rec ts.Record) error {
	if len(rec.Values) != ix.seriesLen {
		return fmt.Errorf("core: insert length %d != indexed length %d", len(rec.Values), ix.seriesLen)
	}
	if err := ix.ensureDelta(); err != nil {
		return err
	}
	if _, dup := ix.delta.data[rec.RID]; dup {
		return fmt.Errorf("core: record id %d already in delta", rec.RID)
	}
	sig, err := ix.codec.FromSeries(rec.Values, ix.cfg.InitialBits)
	if err != nil {
		return err
	}
	if err := ix.delta.tree.Insert(sigtree.Entry{Sig: sig, RID: rec.RID}); err != nil {
		return err
	}
	ix.delta.data[rec.RID] = rec.Values.Clone()
	return nil
}

// Delete marks a record id as deleted. The record disappears from query
// results immediately; the bytes are reclaimed at the next Compact. Deleting
// an id that only lives in the delta removes it outright.
func (ix *Index) Delete(rid int64) error {
	if err := ix.ensureDelta(); err != nil {
		return err
	}
	if _, inDelta := ix.delta.data[rid]; inDelta {
		delete(ix.delta.data, rid)
		// The sigTree entry stays (harmless: refinement checks data first),
		// but mark the tombstone so the entry is skipped.
	}
	ix.delta.tombstones[rid] = struct{}{}
	return nil
}

// TombstoneCount returns the number of pending deletions.
func (ix *Index) TombstoneCount() int {
	if ix.delta == nil {
		return 0
	}
	return len(ix.delta.tombstones)
}

// InsertBatch adds a batch of records; it stops at the first error.
func (ix *Index) InsertBatch(recs []ts.Record) error {
	for _, r := range recs {
		if err := ix.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// deltaExactMatch returns the delta record ids exactly equal to q.
func (ix *Index) deltaExactMatch(q ts.Series, sig isaxt.Signature) []int64 {
	if ix.delta == nil {
		return nil
	}
	leaf := ix.delta.tree.FindLeaf(sig)
	if leaf == nil {
		return nil
	}
	var out []int64
	for _, e := range leaf.Entries {
		if e.Sig != sig || ix.delta.deleted(e.RID) {
			continue
		}
		if s, ok := ix.delta.data[e.RID]; ok && ts.Equal(s, q) {
			out = append(out, e.RID)
		}
	}
	return out
}

// deltaRefine feeds delta candidates within threshold into the heap.
func (ix *Index) deltaRefine(h heapLike, q, paa ts.Series, threshold float64, st *QueryStats) error {
	if ix.delta == nil {
		return nil
	}
	entries, pruned, err := ix.delta.tree.PruneCollect(paa, ix.seriesLen, threshold)
	if err != nil {
		return err
	}
	st.PrunedLeaves += pruned
	for _, e := range entries {
		if ix.delta.deleted(e.RID) {
			continue
		}
		s, ok := ix.delta.data[e.RID]
		if !ok {
			// Deleted delta-only record: its tree entry is a husk.
			continue
		}
		st.Candidates++
		bound := h.Bound()
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, bound*bound); ok2 {
			h.Offer(Neighbor{RID: e.RID, Dist: sqrt(d2)})
		}
	}
	return nil
}

// heapLike abstracts the knn heap for delta refinement.
type heapLike interface {
	Offer(Neighbor)
	Bound() float64
}

// Compact folds the delta into the on-disk partitions: every affected
// partition is rewritten with its new records appended and its local
// sigTree and Bloom filter rebuilt; the global tree's counts are updated
// along each routed path. If the index was saved, call Save again afterwards
// to persist the merged state. It returns the number of partitions
// rewritten.
func (ix *Index) Compact() (int, error) {
	if ix.delta == nil || (ix.delta.tree.Count() == 0 && len(ix.delta.tombstones) == 0) {
		return 0, nil
	}
	// Group live delta entries by target partition.
	byPID := map[int][]sigtree.Entry{}
	for _, leaf := range ix.delta.tree.Leaves() {
		for _, e := range leaf.Entries {
			if ix.delta.deleted(e.RID) {
				continue
			}
			if _, ok := ix.delta.data[e.RID]; !ok {
				continue
			}
			pid, err := ix.Route(e.Sig, e.RID)
			if err != nil {
				return 0, err
			}
			byPID[pid] = append(byPID[pid], e)
		}
	}
	// Tombstones for on-disk records force a rewrite of every partition
	// that may hold them; without a rid→pid map, find them via the Bloom
	// filter-free path: scan partitions whose local tree holds the rid. A
	// linear check over local trees is cheap (ids only).
	if len(ix.delta.tombstones) > 0 {
		for pid, l := range ix.Locals {
			if l == nil {
				continue
			}
			if _, scheduled := byPID[pid]; scheduled {
				continue
			}
			if localHoldsAny(l, ix.delta.tombstones) {
				byPID[pid] = nil // rewrite with no additions
			}
		}
	}
	pids := make([]int, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if err := ix.compactPartition(pid, byPID[pid]); err != nil {
			return 0, err
		}
	}
	ix.delta = nil
	return len(pids), nil
}

// localHoldsAny reports whether the local tree indexes any of the given ids.
func localHoldsAny(l *Local, ids map[int64]struct{}) bool {
	found := false
	l.Tree.Walk(func(n *sigtree.Node) {
		if found || !n.IsLeaf() {
			return
		}
		for _, e := range n.Entries {
			if _, ok := ids[e.RID]; ok {
				found = true
				return
			}
		}
	})
	return found
}

// compactPartition rewrites one partition with the new entries appended and
// rebuilds its local structures.
func (ix *Index) compactPartition(pid int, added []sigtree.Entry) error {
	all, err := ix.Store.ReadPartition(pid)
	if err != nil {
		return err
	}
	recs := all[:0]
	for _, r := range all {
		if !ix.delta.deleted(r.RID) {
			recs = append(recs, r)
		}
	}
	for _, e := range added {
		s, ok := ix.delta.data[e.RID]
		if !ok {
			return fmt.Errorf("core: delta missing record %d", e.RID)
		}
		recs = append(recs, ts.Record{RID: e.RID, Values: s})
	}
	// Rewrite the partition file atomically enough for a single-writer
	// store: delete then recreate (the write-once Writer refuses an
	// existing file).
	if err := ix.Store.DeletePartition(pid); err != nil {
		return err
	}
	w, err := ix.Store.NewWriter(pid)
	if err != nil {
		return err
	}
	tree, err := sigtree.New(ix.codec, ix.cfg.InitialBits, ix.cfg.LMaxSize)
	if err != nil {
		return err
	}
	var bf *bloom.Filter
	if ix.cfg.BuildBloom {
		n := uint64(len(recs))
		if n == 0 {
			n = 1
		}
		bf, err = bloom.NewWithEstimate(n, ix.cfg.BloomFP)
		if err != nil {
			return err
		}
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
		sig, err := ix.codec.FromSeries(r.Values, ix.cfg.InitialBits)
		if err != nil {
			return err
		}
		if err := tree.Insert(sigtree.Entry{Sig: sig, RID: r.RID}); err != nil {
			return err
		}
		if bf != nil {
			bf.AddString(string(sig))
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := ix.Store.Sync(); err != nil {
		return err
	}
	// The on-disk bytes changed; a cached decode of the old file must not
	// serve another query. (Tombstone-only deletes need no invalidation —
	// queries filter them at refine time via the delta.)
	if ix.cache != nil {
		ix.cache.Invalidate(pid)
	}
	ix.Locals[pid] = &Local{Tree: tree, Bloom: bf}
	// Update global counts along each added entry's path.
	for _, e := range added {
		bumpGlobalCounts(ix.Global, e.Sig)
	}
	return nil
}

// bumpGlobalCounts increments the subtree counts along the deepest matching
// path for sig, keeping Tardis-G's statistics roughly current as the dataset
// grows.
func bumpGlobalCounts(tree *sigtree.Tree, sig isaxt.Signature) {
	codec := tree.Codec()
	node := tree.Root()
	node.Count++
	for !node.IsLeaf() && node.Layer < tree.MaxBits() {
		child := node.Children[codec.Plane(sig, node.Layer+1)]
		if child == nil {
			return
		}
		child.Count++
		node = child
	}
}
