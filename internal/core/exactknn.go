package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Exact similarity queries. The paper focuses on approximate kNN because
// "exact kNN queries tend to be very expensive" (§II-A) — but the same
// global/local lower-bound machinery supports exact answers with best-first
// partition ordering, so this implementation provides them as an extension:
// KNNExact and RangeQuery are guaranteed-correct, pruning as aggressively as
// the SAX lower bound allows.

// partitionBound is one partition with the tightest lower bound over every
// global leaf mapped to it.
type partitionBound struct {
	pid   int
	bound float64
}

// PartitionBound is the exported shape of a partition's lower bound, used by
// the distributed query layer (internal/cluster/rpc), whose coordinator
// holds the global tree but no loaded Index.
type PartitionBound struct {
	PID   int
	Bound float64
}

// GlobalPartitionBounds computes, for every partition of the global tree,
// the minimum lower-bound distance between the query's PAA and any global
// leaf assigned to it. Partitions are returned in ascending bound order
// (ties by pid), the visit order for exact best-first search.
func GlobalPartitionBounds(global *sigtree.Tree, paa ts.Series, seriesLen int) ([]PartitionBound, error) {
	best := make(map[int]float64)
	for _, leaf := range global.Leaves() {
		d, err := global.MinDist(leaf, paa, seriesLen)
		if err != nil {
			return nil, err
		}
		for _, pid := range leaf.PIDs {
			if cur, ok := best[pid]; !ok || d < cur {
				best[pid] = d
			}
		}
	}
	out := make([]PartitionBound, 0, len(best))
	for pid, d := range best {
		out = append(out, PartitionBound{PID: pid, Bound: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bound != out[j].Bound {
			return out[i].Bound < out[j].Bound
		}
		return out[i].PID < out[j].PID
	})
	return out, nil
}

// partitionBounds is GlobalPartitionBounds against the loaded index.
func (ix *Index) partitionBounds(paa ts.Series) ([]partitionBound, error) {
	bs, err := GlobalPartitionBounds(ix.Global, paa, ix.seriesLen)
	if err != nil {
		return nil, err
	}
	out := make([]partitionBound, len(bs))
	for i, b := range bs {
		out[i] = partitionBound{pid: b.PID, bound: b.Bound}
	}
	return out, nil
}

// KNNExact answers the exact k-nearest-neighbor query: partitions are
// visited in ascending lower-bound order and the search stops as soon as
// the next partition's bound exceeds the current kth distance — at which
// point no unvisited series can improve the answer (the SAX lower-bound
// property, paper §II-B). Within each partition the local sigTree is pruned
// with the running threshold.
func (ix *Index) KNNExact(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	// Seed with the in-memory delta (cheap) so disk partitions can be
	// pruned against its distances.
	if err := ix.deltaRefine(h, q, paa, math.Inf(1), &st); err != nil {
		return nil, st, err
	}
	// Round-based parallel fan-out: each round takes the next batch of
	// bound-ordered partitions admissible under the round-start threshold
	// and scans them concurrently over the cluster pool. The answer matches
	// the serial best-first scan exactly — partitions are disjoint and a
	// threshold from earlier in the search is only looser, so a batch can
	// never miss a candidate the serial order would have refined — and the
	// batch size is capped at the worker count so the threshold re-tightens
	// between rounds.
	fan := ix.cl.Workers()
	for i := 0; i < len(bounds); {
		th := h.Bound()
		n := 0
		for i+n < len(bounds) && n < fan && bounds[i+n].bound <= th {
			n++
		}
		if n == 0 {
			break // no remaining partition can hold a closer series
		}
		batch := bounds[i : i+n]
		i += n
		err := ix.scanRound("exact-scan", batch, k, h, &st,
			func(pid int, lh *knn.Heap, lst *QueryStats) error {
				return ix.scanPartitionInto(lh, q, paa, pid, th, nil, lst)
			})
		if err != nil {
			return nil, st, err
		}
	}
	st.Duration = time.Since(start)
	recordQueryMetrics("exact", &st)
	return h.Sorted(), st, nil
}

// scanRound executes one fan-out round: every partition in batch is scanned
// concurrently into a private heap by scan, and the per-partition results
// are merged into h in partition order. Merge order is a pure function of
// the batch (never of worker scheduling), so rounds are deterministic. A
// single-partition batch runs inline on the driver.
func (ix *Index) scanRound(stage string, batch []partitionBound, k int, h *knn.Heap, st *QueryStats,
	scan func(pid int, lh *knn.Heap, lst *QueryStats) error) error {
	if len(batch) == 1 {
		return scan(batch[0].pid, h, st)
	}
	type scanOut struct {
		neighbors []Neighbor
		stats     QueryStats
	}
	pids := make([]int, len(batch))
	for i, pb := range batch {
		pids[i] = pb.pid
	}
	ds := cluster.Parallelize(ix.cl, pids, len(pids))
	results, err := cluster.MapPartitions(stage, ds,
		func(_ int, ps []int) ([]scanOut, error) {
			out := make([]scanOut, 0, len(ps))
			for _, p := range ps {
				lh := knn.NewHeap(k)
				var lst QueryStats
				if err := scan(p, lh, &lst); err != nil {
					return nil, err
				}
				out = append(out, scanOut{neighbors: lh.Sorted(), stats: lst})
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	for _, r := range results.Collect() {
		for _, n := range r.neighbors {
			h.Offer(n)
		}
		st.merge(r.stats)
	}
	return nil
}

// RangeQuery returns every record whose Euclidean distance to q is at most
// eps, exactly. Partitions and local subtrees whose lower bound exceeds eps
// are pruned; every surviving candidate is verified against the raw series.
func (ix *Index) RangeQuery(q ts.Series, eps float64) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("core: range radius must be non-negative, got %v", eps)
	}
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	if err != nil {
		return nil, st, err
	}
	var out []Neighbor
	// The abandon bound gets a hair of slack: eps² can round below the true
	// squared distance of a record lying exactly on the radius. Membership
	// is verified on the rooted distance, so the slack admits no extras.
	epsSq := eps*eps + 1e-9
	// The threshold eps is fixed, so every in-range partition is known up
	// front and a single fan-out scans them all concurrently. Per-partition
	// hit lists are concatenated in partition order, and the final sort makes
	// the answer independent of scan order anyway.
	inRange := make([]int, 0, len(bounds))
	for _, pb := range bounds {
		if pb.bound > eps {
			break // bounds are sorted; everything beyond is out of range
		}
		inRange = append(inRange, pb.pid)
	}
	if len(inRange) == 1 {
		hits, err := ix.rangeScanPartition(q, paa, inRange[0], eps, epsSq, &st)
		if err != nil {
			return nil, st, err
		}
		out = append(out, hits...)
	} else if len(inRange) > 1 {
		type rangeOut struct {
			hits  []Neighbor
			stats QueryStats
		}
		ds := cluster.Parallelize(ix.cl, inRange, len(inRange))
		results, err := cluster.MapPartitions("range-scan", ds,
			func(_ int, pids []int) ([]rangeOut, error) {
				ro := make([]rangeOut, 0, len(pids))
				for _, pid := range pids {
					var lst QueryStats
					hits, err := ix.rangeScanPartition(q, paa, pid, eps, epsSq, &lst)
					if err != nil {
						return nil, err
					}
					ro = append(ro, rangeOut{hits: hits, stats: lst})
				}
				return ro, nil
			})
		if err != nil {
			return nil, st, err
		}
		for _, r := range results.Collect() {
			out = append(out, r.hits...)
			st.merge(r.stats)
		}
	}
	// Delta records within range.
	if ix.delta != nil {
		entries, pruned, err := ix.delta.tree.PruneCollect(paa, ix.seriesLen, eps)
		if err != nil {
			return nil, st, err
		}
		st.PrunedLeaves += pruned
		for _, e := range entries {
			s, ok := ix.delta.data[e.RID]
			if !ok {
				return nil, st, fmt.Errorf("core: delta missing record %d", e.RID)
			}
			st.Candidates++
			if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, epsSq); ok2 {
				if d := sqrt(d2); d <= eps {
					out = append(out, Neighbor{RID: e.RID, Dist: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	st.Duration = time.Since(start)
	recordQueryMetrics("range", &st)
	return out, st, nil
}

// rangeScanPartition verifies one partition's surviving candidates against
// the raw series, returning every record within eps of q.
//
//tardis:hotpath
func (ix *Index) rangeScanPartition(q, paa ts.Series, pid int, eps, epsSq float64, st *QueryStats) ([]Neighbor, error) {
	local := ix.Locals[pid]
	if local == nil {
		return nil, fmt.Errorf("core: partition %d has no local index", pid)
	}
	entries, pruned, err := local.Tree.PruneCollect(paa, ix.seriesLen, eps)
	if err != nil {
		return nil, err
	}
	st.PrunedLeaves += pruned
	if len(entries) == 0 {
		return nil, nil
	}
	data, err := ix.loadPartition(pid, st)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, len(entries))
	for _, e := range entries {
		if ix.delta.deleted(e.RID) {
			continue
		}
		s, ok := data.Series(e.RID)
		if !ok {
			return nil, fmt.Errorf("core: partition %d missing record %d", pid, e.RID)
		}
		st.Candidates++
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, epsSq); ok2 {
			if d := sqrt(d2); d <= eps {
				out = append(out, Neighbor{RID: e.RID, Dist: d})
			}
		}
	}
	return out, nil
}
