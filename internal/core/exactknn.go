package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/ts"
)

// Exact similarity queries. The paper focuses on approximate kNN because
// "exact kNN queries tend to be very expensive" (§II-A) — but the same
// global/local lower-bound machinery supports exact answers with best-first
// partition ordering, so this implementation provides them as an extension:
// KNNExact and RangeQuery are guaranteed-correct, pruning as aggressively as
// the SAX lower bound allows.

// partitionBound is one partition with the tightest lower bound over every
// global leaf mapped to it.
type partitionBound struct {
	pid   int
	bound float64
}

// partitionBounds computes, for every partition, the minimum lower-bound
// distance between the query and any global leaf assigned to it. Partitions
// are returned in ascending bound order.
func (ix *Index) partitionBounds(paa ts.Series) ([]partitionBound, error) {
	best := make(map[int]float64)
	for _, leaf := range ix.Global.Leaves() {
		d, err := ix.Global.MinDist(leaf, paa, ix.seriesLen)
		if err != nil {
			return nil, err
		}
		for _, pid := range leaf.PIDs {
			if cur, ok := best[pid]; !ok || d < cur {
				best[pid] = d
			}
		}
	}
	out := make([]partitionBound, 0, len(best))
	for pid, d := range best {
		out = append(out, partitionBound{pid: pid, bound: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].bound != out[j].bound {
			return out[i].bound < out[j].bound
		}
		return out[i].pid < out[j].pid
	})
	return out, nil
}

// KNNExact answers the exact k-nearest-neighbor query: partitions are
// visited in ascending lower-bound order and the search stops as soon as
// the next partition's bound exceeds the current kth distance — at which
// point no unvisited series can improve the answer (the SAX lower-bound
// property, paper §II-B). Within each partition the local sigTree is pruned
// with the running threshold.
func (ix *Index) KNNExact(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	// Seed with the in-memory delta (cheap) so disk partitions can be
	// pruned against its distances.
	if err := ix.deltaRefine(h, q, paa, math.Inf(1), &st); err != nil {
		return nil, st, err
	}
	for _, pb := range bounds {
		if pb.bound > h.Bound() {
			break // no remaining partition can hold a closer series
		}
		if err := ix.scanPartitionInto(h, q, paa, pb.pid, h.Bound(), nil, &st); err != nil {
			return nil, st, err
		}
	}
	st.Duration = time.Since(start)
	return h.Sorted(), st, nil
}

// RangeQuery returns every record whose Euclidean distance to q is at most
// eps, exactly. Partitions and local subtrees whose lower bound exceeds eps
// are pruned; every surviving candidate is verified against the raw series.
func (ix *Index) RangeQuery(q ts.Series, eps float64) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("core: range radius must be non-negative, got %v", eps)
	}
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	if err != nil {
		return nil, st, err
	}
	var out []Neighbor
	// The abandon bound gets a hair of slack: eps² can round below the true
	// squared distance of a record lying exactly on the radius. Membership
	// is verified on the rooted distance, so the slack admits no extras.
	epsSq := eps*eps + 1e-9
	for _, pb := range bounds {
		if pb.bound > eps {
			break // bounds are sorted; everything beyond is out of range
		}
		local := ix.Locals[pb.pid]
		if local == nil {
			return nil, st, fmt.Errorf("core: partition %d has no local index", pb.pid)
		}
		entries, pruned, err := local.Tree.PruneCollect(paa, ix.seriesLen, eps)
		if err != nil {
			return nil, st, err
		}
		st.PrunedLeaves += pruned
		if len(entries) == 0 {
			continue
		}
		data, err := ix.LoadPartition(pb.pid)
		if err != nil {
			return nil, st, err
		}
		st.PartitionsLoaded++
		for _, e := range entries {
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data[e.RID]
			if !ok {
				return nil, st, fmt.Errorf("core: partition %d missing record %d", pb.pid, e.RID)
			}
			st.Candidates++
			if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, epsSq); ok2 {
				if d := sqrt(d2); d <= eps {
					out = append(out, Neighbor{RID: e.RID, Dist: d})
				}
			}
		}
	}
	// Delta records within range.
	if ix.delta != nil {
		entries, pruned, err := ix.delta.tree.PruneCollect(paa, ix.seriesLen, eps)
		if err != nil {
			return nil, st, err
		}
		st.PrunedLeaves += pruned
		for _, e := range entries {
			s, ok := ix.delta.data[e.RID]
			if !ok {
				return nil, st, fmt.Errorf("core: delta missing record %d", e.RID)
			}
			st.Candidates++
			if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, epsSq); ok2 {
				if d := sqrt(d2); d <= eps {
					out = append(out, Neighbor{RID: e.RID, Dist: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	st.Duration = time.Since(start)
	return out, st, nil
}
