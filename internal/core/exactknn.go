package core

import (
	"context"
	"fmt"
	"math"
	mbits "math/bits"
	"sort"
	"sync"
	"time"

	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/qpar"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Exact similarity queries. The paper focuses on approximate kNN because
// "exact kNN queries tend to be very expensive" (§II-A) — but the same
// global/local lower-bound machinery supports exact answers with best-first
// partition ordering, so this implementation provides them as an extension:
// KNNExact and RangeQuery are guaranteed-correct, pruning as aggressively as
// the SAX lower bound allows. When query parallelism is enabled the
// best-first order becomes a priority queue drained by the qpar worker pool
// (see parallel.go); the answers are identical either way.

// PartitionBound is one partition with the tightest lower bound over every
// global leaf mapped to it. Exported for the distributed query layer
// (internal/cluster/rpc), whose coordinator holds the global tree but no
// loaded Index.
type PartitionBound struct {
	PID   int
	Bound float64
}

// pbScratch pools the per-query partition-bound map so repeated queries stop
// allocating (and rehashing) it; the output slice still escapes to the
// caller and is presized for a single allocation.
type pbScratch struct {
	best map[int]float64
}

var pbPool sync.Pool

// GlobalPartitionBounds computes, for every partition of the global tree,
// the minimum lower-bound distance between the query's PAA and any global
// leaf assigned to it. Partitions are returned in ascending bound order
// (ties by pid), the visit order for exact best-first search.
func GlobalPartitionBounds(global *sigtree.Tree, paa ts.Series, seriesLen int) ([]PartitionBound, error) {
	return globalBoundsFunc(global, func(leaf *sigtree.Node) (float64, error) {
		return global.MinDist(leaf, paa, seriesLen)
	})
}

// globalBoundsFunc is GlobalPartitionBounds over an arbitrary per-leaf lower
// bound (the DTW path passes its envelope bound).
func globalBoundsFunc(global *sigtree.Tree, boundOf func(*sigtree.Node) (float64, error)) ([]PartitionBound, error) {
	leaves := global.Leaves()
	sc, _ := pbPool.Get().(*pbScratch)
	if sc == nil {
		sc = &pbScratch{best: make(map[int]float64, len(leaves))}
	}
	best := sc.best
	defer func() {
		clear(best)
		pbPool.Put(sc)
	}()
	for _, leaf := range leaves {
		d, err := boundOf(leaf)
		if err != nil {
			return nil, err
		}
		for _, pid := range leaf.PIDs {
			if cur, ok := best[pid]; !ok || d < cur {
				best[pid] = d
			}
		}
	}
	out := make([]PartitionBound, 0, len(best))
	for pid, d := range best {
		out = append(out, PartitionBound{PID: pid, Bound: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bound != out[j].Bound {
			return out[i].Bound < out[j].Bound
		}
		return out[i].PID < out[j].PID
	})
	return out, nil
}

// partitionBounds is GlobalPartitionBounds against the loaded index.
func (ix *Index) partitionBounds(paa ts.Series) ([]PartitionBound, error) {
	return GlobalPartitionBounds(ix.Global, paa, ix.seriesLen)
}

// KNNExact answers the exact k-nearest-neighbor query: partitions are
// visited in ascending lower-bound order and the search stops as soon as
// the next partition's bound exceeds the current kth distance — at which
// point no unvisited series can improve the answer (the SAX lower-bound
// property, paper §II-B). Within each partition the local sigTree is pruned
// with the running threshold.
//
// With query parallelism above 1, every partition becomes a best-first task
// in a qpar job: workers snapshot the shared kth distance when their task
// pops, prune tasks whose bound exceeds it, and steal refine chunks from
// each other. The bound used by any pruning decision is always ≥ the final
// kth distance, so the parallel answer is identical to the serial one.
func (ix *Index) KNNExact(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	return ix.KNNExactCtx(context.Background(), q, k)
}

// KNNExactCtx is KNNExact carrying a context; a qprof.Profile on the
// context records the per-partition execution tree.
func (ix *Index) KNNExactCtx(ctx context.Context, q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	// Seed with the in-memory delta (cheap) so disk partitions can be
	// pruned against its distances.
	seed := prof.StageStart("delta-seed")
	if err := ix.deltaRefine(h, q, paa, math.Inf(1), &st); err != nil {
		return nil, st, err
	}
	prof.StageEnd(seed)
	scan := prof.StageStart("scan")
	if ix.queryParallelism() > 1 && len(bounds) > 0 {
		p := ix.newParJob("exact", h, true, q, paa, nil, prof)
		for _, pb := range bounds {
			p.spawnExactScan(pb)
		}
		if err := p.run(ctx, &st); err != nil {
			return nil, st, err
		}
	} else {
		sc := ix.getScratch()
		for _, pb := range bounds {
			if pb.Bound > h.Bound() {
				break // no remaining partition can hold a closer series
			}
			t0, before := prof.Now(), profBefore(prof, &st)
			if err := ix.scanPartitionInto(ctx, h, q, paa, pb.PID, h.Bound(), nil, nil, sc, &st); err != nil {
				putScratch(sc)
				return nil, st, err
			}
			profScan(prof, &st, before, pb.PID, pb.Bound, t0)
		}
		putScratch(sc)
	}
	prof.StageEnd(scan)
	st.Duration = time.Since(start)
	recordQueryMetrics("exact", &st)
	return h.Sorted(), st, nil
}

// RangeQuery returns every record whose Euclidean distance to q is at most
// eps, exactly. Partitions and local subtrees whose lower bound exceeds eps
// are pruned; every surviving candidate is verified against the raw series.
func (ix *Index) RangeQuery(q ts.Series, eps float64) ([]Neighbor, QueryStats, error) {
	return ix.RangeQueryCtx(context.Background(), q, eps)
}

// RangeQueryCtx is RangeQuery carrying a context; a qprof.Profile on the
// context records the per-partition execution tree.
func (ix *Index) RangeQueryCtx(ctx context.Context, q ts.Series, eps float64) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("core: range radius must be non-negative, got %v", eps)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	_, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	bounds, err := ix.partitionBounds(paa)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}
	var out []Neighbor
	// The abandon bound gets a hair of slack: eps² can round below the true
	// squared distance of a record lying exactly on the radius. Membership
	// is verified on the rooted distance, so the slack admits no extras.
	epsSq := eps*eps + 1e-9
	// The threshold eps is fixed, so every in-range partition is known up
	// front; per-partition hit lists are concatenated and the final sort
	// makes the answer independent of scan order.
	inRange := bounds
	for i, pb := range bounds {
		if pb.Bound > eps {
			inRange = bounds[:i] // bounds are sorted; the rest is out of range
			break
		}
	}
	scan := prof.StageStart("scan")
	if ix.queryParallelism() > 1 && len(inRange) > 1 {
		p := ix.newParJob("range", nil, false, q, paa, nil, prof)
		p.hits = make([][]Neighbor, p.job.Workers())
		for _, pb := range inRange {
			p.spawnRangeScan(pb, eps, epsSq)
		}
		if err := p.run(ctx, &st); err != nil {
			return nil, st, err
		}
		for _, frag := range p.hits {
			out = append(out, frag...)
		}
	} else if len(inRange) > 0 {
		sc := ix.getScratch()
		for _, pb := range inRange {
			t0, before := prof.Now(), profBefore(prof, &st)
			hits, err := ix.rangeScanPartition(ctx, q, paa, pb.PID, eps, epsSq, sc, &st)
			if err != nil {
				putScratch(sc)
				return nil, st, err
			}
			profScan(prof, &st, before, pb.PID, pb.Bound, t0)
			out = append(out, hits...)
		}
		putScratch(sc)
	}
	prof.StageEnd(scan)
	// Delta records within range.
	if ix.delta != nil {
		entries, pruned, err := ix.delta.tree.PruneCollect(paa, ix.seriesLen, eps)
		if err != nil {
			return nil, st, err
		}
		st.PrunedLeaves += pruned
		for _, e := range entries {
			s, ok := ix.delta.data[e.RID]
			if !ok {
				return nil, st, fmt.Errorf("core: delta missing record %d", e.RID)
			}
			st.Candidates++
			if d2, ok2 := ts.SquaredDistanceEarlyAbandon(q, s, epsSq); ok2 {
				if d := sqrt(d2); d <= eps {
					out = append(out, Neighbor{RID: e.RID, Dist: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	st.Duration = time.Since(start)
	recordQueryMetrics("range", &st)
	return out, st, nil
}

// rangeScanPartition verifies one partition's surviving candidates against
// the raw series through the batched kernels, returning every record within
// eps of q.
//
//tardis:hotpath
func (ix *Index) rangeScanPartition(ctx context.Context, q, paa ts.Series, pid int, eps, epsSq float64, sc *refineScratch, st *QueryStats) ([]Neighbor, error) {
	local := ix.Locals[pid]
	if local == nil {
		return nil, fmt.Errorf("core: partition %d has no local index", pid)
	}
	entries, pruned, err := local.Tree.PruneCollect(paa, ix.seriesLen, eps)
	if err != nil {
		return nil, err
	}
	st.PrunedLeaves += pruned
	if len(entries) == 0 {
		return nil, nil
	}
	st.Scanned += len(entries)
	data, err := ix.loadPartition(ctx, pid, st)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, len(entries))
	idx := 0
	for idx < len(entries) {
		lanes := 0
		for idx < len(entries) && lanes < ts.BatchLanes {
			e := entries[idx]
			idx++
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return nil, fmt.Errorf("core: partition %d missing record %d", pid, e.RID)
			}
			sc.cands[lanes] = s
			sc.rids[lanes] = e.RID
			lanes++
		}
		if lanes == 0 {
			continue
		}
		qpar.ObserveBatch(lanes)
		st.Candidates += lanes
		mask := sc.bs.SquaredEuclidean(q, sc.cands[:lanes], epsSq, sc.dists[:])
		for m := mask; m != 0; m &= m - 1 {
			l := mbits.TrailingZeros32(m)
			if d := sqrt(sc.dists[l]); d <= eps {
				out = append(out, Neighbor{RID: sc.rids[l], Dist: d})
			}
		}
	}
	return out, nil
}
