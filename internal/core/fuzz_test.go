package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/dataset"
)

// Config-space fuzz: random (word length, cardinality, thresholds, sampling,
// dataset kind) combinations must all yield a correct index — every probed
// stored record findable by exact match and returned first by kNN self
// queries. This is the end-to-end invariant that holds regardless of tuning.
func TestBuildConfigFuzz(t *testing.T) {
	kinds := dataset.Kinds()
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			cfg := DefaultConfig()
			cfg.WordLen = []int{4, 8, 12}[rng.Intn(3)]
			cfg.InitialBits = 3 + rng.Intn(5) // 3..7
			cfg.GMaxSize = int64(100 + rng.Intn(500))
			cfg.LMaxSize = int64(5 + rng.Intn(100))
			cfg.SamplePct = 0.1 + rng.Float64()*0.9
			cfg.PartitionThreshold = 1 + rng.Intn(10)
			cfg.BuildBloom = rng.Intn(2) == 0
			kind := kinds[rng.Intn(len(kinds))]
			seriesLen := cfg.WordLen * (1 + rng.Intn(6))

			g, err := dataset.New(kind, seriesLen)
			if err != nil {
				t.Fatal(err)
			}
			src, err := dataset.WriteStore(g, int64(trial), 1200, filepath.Join(t.TempDir(), "src"), 200, true)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := cluster.New(cluster.Config{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
			if err != nil {
				t.Fatalf("cfg %+v kind %s len %d: %v", cfg, kind, seriesLen, err)
			}
			total, err := ix.Store.TotalRecords()
			if err != nil || total != 1200 {
				t.Fatalf("store holds %d (%v)", total, err)
			}
			recs, err := src.ReadPartition(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				rec := recs[rng.Intn(len(recs))]
				rids, _, err := ix.ExactMatch(rec.Values, cfg.BuildBloom)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, rid := range rids {
					if rid == rec.RID {
						found = true
					}
				}
				if !found {
					t.Fatalf("record %d not found under cfg %+v", rec.RID, cfg)
				}
				res, _, err := ix.KNNMultiPartition(rec.Values, 3)
				if err != nil {
					t.Fatal(err)
				}
				// Short series can have exact duplicates, so require only a
				// zero-distance first result (the query itself or its twin).
				if len(res) == 0 || res[0].Dist != 0 {
					t.Fatalf("self kNN wrong under cfg %+v: %+v", cfg, res)
				}
			}
			// Exact kNN agrees with the oracle under any config.
			q := recs[0].Values
			exact, _, err := ix.KNNExact(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := ix.GroundTruthKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for j := range truth {
				if exact[j].Dist != truth[j].Dist {
					t.Fatalf("exact kNN diverges at %d under cfg %+v", j, cfg)
				}
			}
		})
	}
}
