package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, src, cl := buildTestIndex(t, dataset.RandomWalk, testConfig())
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumPartitions() != ix.NumPartitions() {
		t.Fatalf("partitions %d != %d", re.NumPartitions(), ix.NumPartitions())
	}
	if re.SeriesLen() != ix.SeriesLen() {
		t.Errorf("series length changed")
	}
	if re.Config() != ix.Config() {
		t.Errorf("config changed")
	}
	if re.BuildStats().Records != ix.BuildStats().Records {
		t.Errorf("stats lost")
	}

	// Exact-match still finds stored records after reload.
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := recs[i*17%len(recs)]
		got, _, err := re.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range got {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d lost after reload", rec.RID)
		}
	}

	// Absent queries still return empty.
	rng := rand.New(rand.NewSource(3))
	q := make(ts.Series, testSeriesLen)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	if got, _, err := re.ExactMatch(q, true); err != nil || len(got) != 0 {
		t.Errorf("absent query after reload: %v, %v", got, err)
	}

	// kNN agrees with the pre-save index.
	before, _, err := ix.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := re.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result size changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].RID != after[i].RID || before[i].Dist != after[i].Dist {
			t.Fatalf("kNN result %d changed after reload: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Workers: 2})
	if _, err := Load(cl, t.TempDir()); err == nil {
		t.Error("missing descriptor should fail")
	}
	// Corrupt descriptor.
	dir := t.TempDir()
	idir := filepath.Join(dir, indexSubdir)
	os.MkdirAll(idir, 0o755)
	os.WriteFile(filepath.Join(idir, "index.json"), []byte("{bad"), 0o644)
	if _, err := Load(cl, dir); err == nil {
		t.Error("corrupt descriptor should fail")
	}
	os.WriteFile(filepath.Join(idir, "index.json"), []byte(`{"config":{},"series_len":0}`), 0o644)
	if _, err := Load(cl, dir); err == nil {
		t.Error("invalid saved config should fail")
	}
}

func TestSaveLoadBloomPreserved(t *testing.T) {
	ix, _, cl := buildTestIndex(t, dataset.DNA, testConfig())
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(cl, ix.Store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	haveBloom := 0
	for _, l := range re.Locals {
		if l != nil && l.Bloom != nil {
			haveBloom++
		}
	}
	if haveBloom == 0 {
		t.Error("no bloom filters restored")
	}
}
