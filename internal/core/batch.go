package core

import (
	"context"
	"fmt"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/ts"
)

// Batch query processing. The paper's workloads are batches of 100 queries
// (§VI-C); running them one at a time leaves the cluster idle. KNNBatch and
// ExactMatchBatch fan a query batch out across the substrate's workers —
// queries are independent, so this is embarrassingly parallel and preserves
// per-query results exactly.

// Strategy selects a kNN-approximate query algorithm for batch runs.
type Strategy int

const (
	// TargetNodeAccess is the paper's basic strategy (§V-B).
	TargetNodeAccess Strategy = iota
	// OnePartitionAccess extends the scope to the whole primary partition.
	OnePartitionAccess
	// MultiPartitionsAccess extends the scope to sibling partitions
	// (Algorithm 1); the most accurate.
	MultiPartitionsAccess
	// ExactKNN is the exact search extension (not in the paper).
	ExactKNN
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TargetNodeAccess:
		return "target-node"
	case OnePartitionAccess:
		return "one-partition"
	case MultiPartitionsAccess:
		return "multi-partitions"
	case ExactKNN:
		return "exact"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (ix *Index) strategyFunc(s Strategy) (func(ts.Series, int) ([]Neighbor, QueryStats, error), error) {
	switch s {
	case TargetNodeAccess:
		return ix.KNNTargetNode, nil
	case OnePartitionAccess:
		return ix.KNNOnePartition, nil
	case MultiPartitionsAccess:
		return ix.KNNMultiPartition, nil
	case ExactKNN:
		return ix.KNNExact, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", int(s))
	}
}

// BatchResult is one query's outcome within a batch.
type BatchResult struct {
	Neighbors []Neighbor
	Stats     QueryStats
}

// KNNBatch answers a batch of kNN queries concurrently across the cluster's
// workers. Results are positionally aligned with the queries; aggregate
// stats (total partition loads, wall time) come back in the summary.
func (ix *Index) KNNBatch(queries []ts.Series, k int, strategy Strategy) ([]BatchResult, QueryStats, error) {
	start := time.Now()
	var agg QueryStats
	run, err := ix.strategyFunc(strategy)
	if err != nil {
		return nil, agg, err
	}
	if k < 1 {
		return nil, agg, fmt.Errorf("core: k must be positive, got %d", k)
	}
	type indexed struct {
		i   int
		res BatchResult
	}
	idxs := make([]int, len(queries))
	for i := range idxs {
		idxs[i] = i
	}
	ds := cluster.Parallelize(ix.cl, idxs, 0)
	out, err := cluster.MapErr("knn-batch", ds, func(i int) (indexed, error) {
		nb, st, err := run(queries[i], k)
		if err != nil {
			return indexed{}, fmt.Errorf("query %d: %w", i, err)
		}
		return indexed{i: i, res: BatchResult{Neighbors: nb, Stats: st}}, nil
	})
	if err != nil {
		return nil, agg, err
	}
	results := make([]BatchResult, len(queries))
	for _, r := range out.Collect() {
		results[r.i] = r.res
		agg.PartitionsLoaded += r.res.Stats.PartitionsLoaded
		agg.Candidates += r.res.Stats.Candidates
		agg.PrunedLeaves += r.res.Stats.PrunedLeaves
	}
	agg.Duration = time.Since(start)
	return results, agg, nil
}

// ExactMatchBatch answers a batch of exact-match queries concurrently.
// Matches are positionally aligned with the queries.
func (ix *Index) ExactMatchBatch(queries []ts.Series, useBloom bool) ([][]int64, QueryStats, error) {
	start := time.Now()
	var agg QueryStats
	type indexed struct {
		i    int
		rids []int64
		st   QueryStats
	}
	idxs := make([]int, len(queries))
	for i := range idxs {
		idxs[i] = i
	}
	ds := cluster.Parallelize(ix.cl, idxs, 0)
	out, err := cluster.MapErr("exact-batch", ds, func(i int) (indexed, error) {
		rids, st, err := ix.ExactMatch(queries[i], useBloom)
		if err != nil {
			return indexed{}, fmt.Errorf("query %d: %w", i, err)
		}
		return indexed{i: i, rids: rids, st: st}, nil
	})
	if err != nil {
		return nil, agg, err
	}
	results := make([][]int64, len(queries))
	for _, r := range out.Collect() {
		results[r.i] = r.rids
		agg.PartitionsLoaded += r.st.PartitionsLoaded
		agg.Candidates += r.st.Candidates
		if r.st.BloomRejected {
			agg.BloomRejected = true
		}
	}
	agg.Duration = time.Since(start)
	return results, agg, nil
}

// KNNAuto picks a query strategy from the index's shape and runs it: when k
// is large relative to the primary partition's population, the single-
// partition strategies cannot reach past their candidate scope (the paper's
// Fig. 16 analysis — TNA and OPA converge and recall collapses as k grows),
// so Multi-Partitions access is chosen; otherwise One-Partition access gives
// the best accuracy per partition load. It returns the strategy used.
func (ix *Index) KNNAuto(q ts.Series, k int) ([]Neighbor, Strategy, QueryStats, error) {
	return ix.KNNAutoCtx(context.Background(), q, k)
}

// KNNAutoCtx is KNNAuto carrying a context; a qprof.Profile on the context
// records the chosen strategy's execution tree.
func (ix *Index) KNNAutoCtx(ctx context.Context, q ts.Series, k int) ([]Neighbor, Strategy, QueryStats, error) {
	var st QueryStats
	if k < 1 {
		return nil, 0, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	sig, _, err := ix.querySig(q)
	if err != nil {
		return nil, 0, st, err
	}
	strategy := OnePartitionAccess
	pid, err := ix.primaryPID(sig)
	if err == nil {
		var primaryCount int64
		if local := ix.Locals[pid]; local != nil {
			primaryCount = local.Tree.Count()
		}
		// The single-partition scope caps the answer set at primaryCount;
		// demand a healthy margin before trusting it.
		if int64(k)*4 > primaryCount {
			strategy = MultiPartitionsAccess
		}
	} else {
		strategy = MultiPartitionsAccess
	}
	var res []Neighbor
	if strategy == OnePartitionAccess {
		res, st, err = ix.KNNOnePartitionCtx(ctx, q, k)
	} else {
		res, st, err = ix.KNNMultiPartitionCtx(ctx, q, k)
	}
	return res, strategy, st, err
}
