package core

import (
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// buildLocal runs the Tardis-L pipeline (paper §IV-C, Fig. 8): broadcast the
// global index as the shuffle partitioner, read and convert every record,
// shuffle it to its target partition, then — per partition, in one
// mapPartitions pass — write the clustered data file, build the local
// sigTree, and encode the Bloom filter.
func (ix *Index) buildLocal(src *storage.Store, dstDir string) error {
	localStart := time.Now()
	cfg, codec := ix.cfg, ix.codec

	// The driver broadcasts Tardis-G to all workers as the partitioner.
	cluster.NewBroadcast(ix.cl, "broadcast-global", ix.Global, ix.Global.SerializedSize())

	// --- Read + convert + shuffle. ---
	stageStart := time.Now()
	srcPids, err := src.Partitions()
	if err != nil {
		return err
	}
	blocks := cluster.Parallelize(ix.cl, srcPids, 0)
	recs, err := cluster.MapPartitions("read-convert", blocks,
		func(_ int, pids []int) ([]shuffleRec, error) {
			var out []shuffleRec
			for _, pid := range pids {
				err := src.ScanPartition(pid, func(r ts.Record) error {
					sig, err := codec.FromSeries(r.Values, cfg.InitialBits)
					if err != nil {
						return err
					}
					target, err := ix.Route(sig, r.RID)
					if err != nil {
						return err
					}
					out = append(out, shuffleRec{pid: target, sig: sig, rec: r})
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	shuffled, err := cluster.RepartitionBy("shuffle", recs, ix.stats.Partitions,
		func(r shuffleRec) (int, error) { return r.pid, nil })
	if err != nil {
		return err
	}
	ix.stats.Records = shuffled.Count()
	ix.stats.ShuffleReadConvert = time.Since(stageStart)

	// --- Per-partition: write data file, build Tardis-L, encode Bloom. ---
	stageStart = time.Now()
	dst, err := storage.CreateCompressed(dstDir, src.SeriesLen(), cfg.Compression)
	if err != nil {
		return err
	}
	var bloomNanos atomic.Int64
	localsDS, err := cluster.MapPartitions("local-build", shuffled,
		func(pid int, items []shuffleRec) ([]*Local, error) {
			w, err := dst.NewWriter(pid)
			if err != nil {
				return nil, err
			}
			tree, err := sigtree.New(codec, cfg.InitialBits, cfg.LMaxSize)
			if err != nil {
				return nil, err
			}
			for _, r := range items {
				if err := w.Write(r.rec); err != nil {
					return nil, err
				}
				if err := tree.Insert(sigtree.Entry{Sig: r.sig, RID: r.rec.RID}); err != nil {
					return nil, err
				}
			}
			if err := w.Close(); err != nil {
				return nil, err
			}
			var bf *bloom.Filter
			if cfg.BuildBloom {
				t0 := time.Now()
				n := uint64(len(items))
				if n == 0 {
					n = 1
				}
				bf, err = bloom.NewWithEstimate(n, cfg.BloomFP)
				if err != nil {
					return nil, err
				}
				for _, r := range items {
					bf.AddString(string(r.sig))
				}
				bloomNanos.Add(int64(time.Since(t0)))
			}
			return []*Local{{Tree: tree, Bloom: bf}}, nil
		})
	if err != nil {
		return err
	}
	if err := dst.Sync(); err != nil {
		return err
	}
	ix.Store = dst
	ix.Locals = make([]*Local, ix.stats.Partitions)
	for pid := 0; pid < ix.stats.Partitions; pid++ {
		part := localsDS.Partition(pid)
		if len(part) == 1 {
			ix.Locals[pid] = part[0]
		}
	}
	ix.stats.BloomConstruct = time.Duration(bloomNanos.Load())
	ix.stats.LocalConstruct = time.Since(stageStart) - ix.stats.BloomConstruct
	ix.stats.LocalTotal = time.Since(localStart)
	return nil
}

// LoadPartition reads one clustered partition from disk and returns its
// records keyed by record id. This is the high-latency operation the
// paper's query analysis counts; callers must treat it as the unit of query
// I/O cost.
func (ix *Index) LoadPartition(pid int) (map[int64]ts.Series, error) {
	recs, err := ix.Store.ReadPartition(pid)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]ts.Series, len(recs))
	for _, r := range recs {
		out[r.RID] = r.Values
	}
	return out, nil
}
