package core

import (
	"context"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
)

// Flight-recorder glue: every query entry point has a Ctx variant that
// pulls a qprof.Profile off the context (nil when the query is unsampled —
// every helper here is a no-op on nil, so the unprofiled path records
// nothing and allocates nothing). Per-partition observations are derived
// from QueryStats deltas at the call sites of the hot scan kernels, never
// inside them, so the //tardis:hotpath functions stay allocation-free.

// queryProf fetches the profile riding ctx and stamps the active trace id
// onto it so `-explain` output and /debug/traces can be cross-referenced.
func queryProf(ctx context.Context) *qprof.Profile {
	prof := qprof.FromContext(ctx)
	if prof != nil {
		prof.SetTrace(obs.SpanContextOf(ctx).TraceID)
	}
	return prof
}

// profBefore snapshots the stats a serial partition scan will mutate.
// Returns the zero snapshot when profiling is off.
func profBefore(prof *qprof.Profile, st *QueryStats) QueryStats {
	if prof == nil {
		return QueryStats{}
	}
	return *st
}

// profScan records one serial partition scan as the delta st accumulated
// since before; t0 is the scan's start offset from prof.Now().
func profScan(prof *qprof.Profile, st *QueryStats, before QueryStats, pid int, bound float64, t0 time.Duration) {
	if prof == nil {
		return
	}
	prof.AddScan(qprof.Scan{
		PID:          pid,
		Bound:        bound,
		PrunedLeaves: st.PrunedLeaves - before.PrunedLeaves,
		Scanned:      st.Scanned - before.Scanned,
		Refined:      st.Candidates - before.Candidates,
		Cache:        cacheOutcome(st.CacheHits-before.CacheHits, st.CacheMisses-before.CacheMisses),
		Worker:       -1,
		Start:        t0,
		Dur:          prof.Now() - t0,
	})
}

// cacheOutcome classifies a scan's partition-cache behaviour from the hit
// and miss deltas it produced.
func cacheOutcome(hits, misses int) qprof.CacheOutcome {
	switch {
	case misses > 0:
		return qprof.CacheMiss
	case hits > 0:
		return qprof.CacheHit
	default:
		return qprof.CacheUnknown
	}
}
