package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Neighbor is one kNN answer: a record id and its Euclidean distance to the
// query. It is the shared knn.Neighbor type.
type Neighbor = knn.Neighbor

// QueryStats profiles one query with the quantities the paper's latency
// analysis is built on.
type QueryStats struct {
	// PartitionsLoaded counts partition data accesses. With the partition
	// cache enabled it splits into CacheHits (served from resident decoded
	// partitions, no I/O) and CacheMisses (actual high-latency disk reads);
	// with caching disabled every access is a disk read.
	PartitionsLoaded int
	// CacheHits counts partition accesses served by the cache.
	CacheHits int
	// CacheMisses counts partition accesses that had to read disk.
	CacheMisses int
	// BloomRejected reports an exact-match query short-circuited by the
	// Bloom filter (no partition load needed).
	BloomRejected bool
	// Candidates counts series whose true distance was computed.
	Candidates int
	// Scanned counts candidate entries collected from surviving leaves
	// before batch refinement (Candidates ≤ Scanned; the gap is what the
	// signature-level filters discarded).
	Scanned int
	// PrunedLeaves counts local-index leaves skipped via the lower bound.
	PrunedLeaves int
	// Degraded reports that an approximate query lost partitions to worker
	// or storage failures and returned a partial (but still valid) answer.
	// Exact queries never set it — they fail loudly instead.
	Degraded bool
	// PartitionsSkipped counts partitions abandoned after retries and
	// failover were exhausted. Non-zero only when Degraded is set.
	PartitionsSkipped int
	// Duration is the wall time of the query.
	Duration time.Duration
	// QPar summarizes the intra-query work-stealing pool when the query ran
	// on it (zero value for serial queries).
	QPar QParStats
}

// QParStats is the work-stealing pool's per-query summary: how wide the
// pool ran, how many tasks executed on a worker other than the one that
// spawned them, and how often the shared kNN bound tightened.
type QParStats struct {
	Workers      int
	TasksStolen  int
	BoundUpdates int
}

// merge folds a per-task stats fragment into the query's totals (Duration
// stays the driver's wall time).
func (st *QueryStats) merge(o QueryStats) {
	st.PartitionsLoaded += o.PartitionsLoaded
	st.CacheHits += o.CacheHits
	st.CacheMisses += o.CacheMisses
	st.Candidates += o.Candidates
	st.Scanned += o.Scanned
	st.PrunedLeaves += o.PrunedLeaves
	st.Degraded = st.Degraded || o.Degraded
	st.PartitionsSkipped += o.PartitionsSkipped
	if o.QPar.Workers > st.QPar.Workers {
		st.QPar.Workers = o.QPar.Workers
	}
	st.QPar.TasksStolen += o.QPar.TasksStolen
	st.QPar.BoundUpdates += o.QPar.BoundUpdates
}

// querySig converts a query series to its full-cardinality signature and
// PAA. The query must live in the same value space as the indexed data
// (z-normalized when the dataset was).
func (ix *Index) querySig(q ts.Series) (isaxt.Signature, ts.Series, error) {
	if len(q) != ix.seriesLen {
		return "", nil, fmt.Errorf("core: query length %d != indexed length %d", len(q), ix.seriesLen)
	}
	paa, err := ts.PAA(q, ix.cfg.WordLen)
	if err != nil {
		return "", nil, err
	}
	sig, err := ix.codec.FromPAA(paa, ix.cfg.InitialBits)
	if err != nil {
		return "", nil, err
	}
	return sig, paa, nil
}

// ExactMatch runs the paper's Exact-Match algorithm (§V-A): traverse
// Tardis-G to the partition, probe its Bloom filter, and only on a positive
// probe load the partition and walk Tardis-L to the leaf for verification.
// With useBloom=false it runs the Non-Bloom-Filter variant, which always
// loads the identified partition. It returns the record ids whose series
// are exactly equal to q.
func (ix *Index) ExactMatch(q ts.Series, useBloom bool) ([]int64, QueryStats, error) {
	return ix.ExactMatchCtx(context.Background(), q, useBloom)
}

// ExactMatchCtx is ExactMatch carrying a context; a qprof.Profile on the
// context records the per-partition execution tree.
func (ix *Index) ExactMatchCtx(ctx context.Context, q ts.Series, useBloom bool) ([]int64, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	sig, _, err := ix.querySig(q)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}
	if useBloom && !ix.cfg.BuildBloom {
		return nil, st, fmt.Errorf("core: bloom filters were not built for this index")
	}
	var matches []int64
	for _, pid := range ix.CandidatePIDs(sig) {
		local := ix.Locals[pid]
		if local == nil {
			continue
		}
		if useBloom && local.Bloom != nil && !local.Bloom.ContainsString(string(sig)) {
			st.BloomRejected = true
			continue
		}
		leaf := local.Tree.FindLeaf(sig)
		if leaf == nil {
			// Local traversal failure proves non-existence (§V-A).
			continue
		}
		t0, before := prof.Now(), profBefore(prof, &st)
		data, err := ix.loadPartition(ctx, pid, &st)
		if err != nil {
			return nil, st, err
		}
		st.Scanned += len(leaf.Entries)
		for _, e := range leaf.Entries {
			// Entries reloaded from disk carry no per-entry signature (only
			// the leaf prefix); they fall through to the raw comparison.
			if e.Sig != "" && e.Sig != sig {
				continue
			}
			if ix.delta.deleted(e.RID) {
				continue
			}
			s, ok := data.Series(e.RID)
			if !ok {
				return nil, st, fmt.Errorf("core: partition %d missing record %d", pid, e.RID)
			}
			st.Candidates++
			if ts.Equal(s, q) {
				matches = append(matches, e.RID)
			}
		}
		profScan(prof, &st, before, pid, 0, t0)
	}
	matches = append(matches, ix.deltaExactMatch(q, sig)...)
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	st.Duration = time.Since(start)
	recordQueryMetrics("exact-match", &st)
	return matches, st, nil
}

// primaryPID picks the deterministic primary partition for a query
// signature: the first candidate.
func (ix *Index) primaryPID(sig isaxt.Signature) (int, error) {
	pids := ix.CandidatePIDs(sig)
	if len(pids) == 0 {
		return 0, fmt.Errorf("core: no partition for signature %q", sig)
	}
	return pids[0], nil
}

// KNNTargetNode runs the Target Node Access strategy (§V-B): descend
// Tardis-G to the partition, descend its Tardis-L to the target node (the
// lowest node on the path holding at least k entries), and refine its
// candidates.
func (ix *Index) KNNTargetNode(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	return ix.KNNTargetNodeCtx(context.Background(), q, k)
}

// KNNTargetNodeCtx is KNNTargetNode carrying a context; a qprof.Profile on
// the context records the execution tree.
func (ix *Index) KNNTargetNodeCtx(ctx context.Context, q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	sig, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	pid, err := ix.primaryPID(sig)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	if _, _, err := ix.targetNodeInto(ctx, h, q, sig, paa, pid, k, &st, prof); err != nil {
		return nil, st, err
	}
	delta := prof.StageStart("delta")
	if err := ix.deltaRefine(h, q, paa, h.Bound(), &st); err != nil {
		return nil, st, err
	}
	prof.StageEnd(delta)
	st.Duration = time.Since(start)
	recordQueryMetrics("tna", &st)
	return h.Sorted(), st, nil
}

// targetNodeInto performs the target-node refinement inside one partition.
// It returns the kth distance found (the threshold seed for the optimized
// strategies) and the loaded partition data for reuse. The heap accumulates
// results. Large target nodes refine in parallel when query parallelism is
// enabled — the candidate set is fixed up front, so the resulting kth
// distance is the same whatever the refinement order.
func (ix *Index) targetNodeInto(ctx context.Context, h *knn.Heap, q ts.Series, sig isaxt.Signature, paa ts.Series, pid, k int, st *QueryStats, prof *qprof.Profile) (float64, PartitionData, error) {
	local := ix.Locals[pid]
	if local == nil {
		return math.Inf(1), nil, fmt.Errorf("core: partition %d has no local index", pid)
	}
	t0, before := prof.Now(), profBefore(prof, st)
	data, err := ix.loadPartition(ctx, pid, st)
	if err != nil {
		return math.Inf(1), nil, err
	}
	node, _ := local.Tree.TargetNode(sig, int64(k))
	entries := sigtree.CollectEntries(node, nil)
	st.Scanned += len(entries)
	if ix.queryParallelism() > 1 && len(entries) > refineChunk {
		p := ix.newParJob("tna", h, false, q, paa, nil, prof)
		p.spawnRefineEntries(entries, data)
		if err := p.run(ctx, st); err != nil {
			return math.Inf(1), nil, err
		}
	} else {
		sc := ix.getScratch()
		err := ix.refineEntriesBatch(h, q, paa, entries, data, nil, sc, st)
		putScratch(sc)
		if err != nil {
			return math.Inf(1), nil, err
		}
	}
	// One scan observation for the whole target-node step: both inner paths
	// fold their stats into st before returning, so the delta is complete.
	profScan(prof, st, before, pid, 0, t0)
	return h.Bound(), data, nil
}

// KNNOnePartition runs the One Partition Access strategy (§V-B): take the
// kth distance from the target node as a pruning threshold, then scan the
// whole Tardis-L of the loaded partition top-down with the lower bound,
// refining every surviving leaf.
func (ix *Index) KNNOnePartition(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	return ix.KNNOnePartitionCtx(context.Background(), q, k)
}

// KNNOnePartitionCtx is KNNOnePartition carrying a context; a
// qprof.Profile on the context records the execution tree.
func (ix *Index) KNNOnePartitionCtx(ctx context.Context, q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	sig, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	pid, err := ix.primaryPID(sig)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}
	h := knn.NewHeap(k)
	th, data, err := ix.targetNodeInto(ctx, h, q, sig, paa, pid, k, &st, prof)
	if err != nil {
		return nil, st, err
	}
	// The partition is already resident from the target-node step; scanning
	// it costs no further I/O (the paper's "only single disk access"). The
	// member snapshot skips re-refining what the target node already fed in.
	skip := h.Members()
	scan := prof.StageStart("scan")
	if ix.queryParallelism() > 1 {
		p := ix.newParJob("opa", h, false, q, paa, skip, prof)
		p.spawnThresholdScan(0, pid, th, data)
		if err := p.run(ctx, &st); err != nil {
			return nil, st, err
		}
	} else {
		t0, before := prof.Now(), profBefore(prof, &st)
		sc := ix.getScratch()
		err := ix.scanPartitionInto(ctx, h, q, paa, pid, th, data, skip, sc, &st)
		putScratch(sc)
		if err != nil {
			return nil, st, err
		}
		profScan(prof, &st, before, pid, th, t0)
	}
	prof.StageEnd(scan)
	delta := prof.StageStart("delta")
	if err := ix.deltaRefine(h, q, paa, h.Bound(), &st); err != nil {
		return nil, st, err
	}
	prof.StageEnd(delta)
	st.Duration = time.Since(start)
	recordQueryMetrics("opa", &st)
	return h.Sorted(), st, nil
}

// scanPartitionInto prune-scans one partition's local tree with the given
// threshold and refines the survivors through the batched kernels. Pass the
// partition's records in data when it is already resident; nil loads (and
// counts) the partition. skip pre-filters candidates an earlier step
// already refined.
//
//tardis:hotpath
func (ix *Index) scanPartitionInto(ctx context.Context, h heapLike, q, paa ts.Series, pid int, threshold float64, data PartitionData, skip map[int64]struct{}, sc *refineScratch, st *QueryStats) error {
	local := ix.Locals[pid]
	if local == nil {
		return fmt.Errorf("core: partition %d has no local index", pid)
	}
	entries, pruned, err := local.Tree.PruneCollect(paa, ix.seriesLen, threshold)
	if err != nil {
		return err
	}
	st.PrunedLeaves += pruned
	if len(entries) == 0 {
		return nil
	}
	st.Scanned += len(entries)
	if data == nil {
		data, err = ix.loadPartition(ctx, pid, st)
		if err != nil {
			return err
		}
	}
	return ix.refineEntriesBatch(h, q, paa, entries, data, skip, sc, st)
}

// KNNMultiPartition runs the Multi-Partitions Access strategy (Algorithm 1):
// fetch the sibling partition list from the parent node in Tardis-G (capped
// at pth partitions, chosen deterministically), obtain the threshold from
// the query's own partition, then prune-scan all selected partitions.
func (ix *Index) KNNMultiPartition(q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	return ix.KNNMultiPartitionCtx(context.Background(), q, k)
}

// KNNMultiPartitionCtx is KNNMultiPartition carrying a context; a
// qprof.Profile on the context records the execution tree.
func (ix *Index) KNNMultiPartitionCtx(ctx context.Context, q ts.Series, k int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	sig, paa, err := ix.querySig(q)
	if err != nil {
		return nil, st, err
	}
	pid, err := ix.primaryPID(sig)
	if err != nil {
		return nil, st, err
	}
	pidList := ix.SiblingPIDs(sig)
	pth := ix.cfg.PartitionThreshold
	if len(pidList) > pth {
		pidList = selectPIDs(pidList, pth, pid, hashString(string(sig)))
	}
	prof.StageEnd(plan)
	// Threshold from the query's own partition (Algorithm 1 lines 10-14).
	h := knn.NewHeap(k)
	th, primaryData, err := ix.targetNodeInto(ctx, h, q, sig, paa, pid, k, &st, prof)
	if err != nil {
		return nil, st, err
	}
	// Scan all selected partitions with the threshold (lines 15-16). With
	// query parallelism, each partition becomes one qpar task that splits
	// its refinement into stealable chunks — the shape of Algorithm 1's
	// parallel scan. The answer is identical to a sequential scan because
	// partitions are disjoint, the local trees prune with the same fixed
	// threshold either way, and the shared heap keeps the canonical top k
	// whatever the offer order. The member snapshot skips candidates the
	// target-node step already refined.
	skip := h.Members()
	scan := prof.StageStart("scan")
	if ix.queryParallelism() > 1 && len(pidList) > 1 {
		p := ix.newParJob("mpa", h, false, q, paa, skip, prof)
		for i, scanPID := range pidList {
			var data PartitionData
			if scanPID == pid {
				data = primaryData
			}
			p.spawnThresholdScan(float64(i), scanPID, th, data)
		}
		if err := p.run(ctx, &st); err != nil {
			return nil, st, err
		}
	} else {
		sc := ix.getScratch()
		for _, scanPID := range pidList {
			var data PartitionData
			if scanPID == pid {
				data = primaryData
			}
			t0, before := prof.Now(), profBefore(prof, &st)
			if err := ix.scanPartitionInto(ctx, h, q, paa, scanPID, th, data, skip, sc, &st); err != nil {
				putScratch(sc)
				return nil, st, err
			}
			profScan(prof, &st, before, scanPID, th, t0)
		}
		putScratch(sc)
	}
	prof.StageEnd(scan)
	delta := prof.StageStart("delta")
	if err := ix.deltaRefine(h, q, paa, h.Bound(), &st); err != nil {
		return nil, st, err
	}
	prof.StageEnd(delta)
	st.Duration = time.Since(start)
	recordQueryMetrics("mpa", &st)
	return h.Sorted(), st, nil
}

// selectPIDs deterministically picks pth elements of pids, always including
// the primary pid (Algorithm 1's randomSelect, seeded for reproducibility).
func selectPIDs(pids []int, pth, primary int, seed uint64) []int {
	cp := make([]int, len(pids))
	copy(cp, pids)
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	for i := 0; i < pth && i < len(cp); i++ {
		j := i + int(next()%uint64(len(cp)-i))
		cp[i], cp[j] = cp[j], cp[i]
	}
	out := cp[:pth]
	// Force-include the primary partition.
	found := false
	for _, p := range out {
		if p == primary {
			found = true
			break
		}
	}
	if !found {
		out[0] = primary
	}
	sort.Ints(out)
	return out
}
