package core

import (
	"fmt"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// Repair: the clustered partition files are the source of truth — local
// sigTrees and Bloom filters are derived data. When index files go missing
// or corrupt (partial copies, disk faults), Verify detects it and Repair
// rebuilds the damaged partitions' local structures from the data, in
// parallel across the cluster.

// VerifyReport lists what Verify found.
type VerifyReport struct {
	// MissingLocal lists partitions with data but no loaded local index.
	MissingLocal []int
	// CountMismatch lists partitions whose local tree count differs from
	// the partition file's record count.
	CountMismatch []int
	// MissingBloom lists partitions lacking a Bloom filter although the
	// configuration builds them.
	MissingBloom []int
}

// OK reports whether nothing needs repair.
func (r VerifyReport) OK() bool {
	return len(r.MissingLocal) == 0 && len(r.CountMismatch) == 0 && len(r.MissingBloom) == 0
}

// Verify cross-checks the loaded local structures against the partition
// files' headers (cheap: header reads only).
func (ix *Index) Verify() (VerifyReport, error) {
	var rep VerifyReport
	pids, err := ix.Store.Partitions()
	if err != nil {
		return rep, err
	}
	for _, pid := range pids {
		n, err := ix.Store.PartitionCount(pid)
		if err != nil {
			return rep, err
		}
		if pid >= len(ix.Locals) || ix.Locals[pid] == nil {
			if n > 0 {
				rep.MissingLocal = append(rep.MissingLocal, pid)
			}
			continue
		}
		l := ix.Locals[pid]
		if l.Tree.Count() != n {
			rep.CountMismatch = append(rep.CountMismatch, pid)
		}
		if ix.cfg.BuildBloom && l.Bloom == nil {
			rep.MissingBloom = append(rep.MissingBloom, pid)
		}
	}
	return rep, nil
}

// Repair rebuilds the local sigTree and Bloom filter of every partition the
// given report flags, reading the partition data and persisting the rebuilt
// structures. It returns the number of partitions rebuilt.
func (ix *Index) Repair(rep VerifyReport) (int, error) {
	need := map[int]struct{}{}
	for _, pid := range rep.MissingLocal {
		need[pid] = struct{}{}
	}
	for _, pid := range rep.CountMismatch {
		need[pid] = struct{}{}
	}
	for _, pid := range rep.MissingBloom {
		need[pid] = struct{}{}
	}
	if len(need) == 0 {
		return 0, nil
	}
	pids := make([]int, 0, len(need))
	for pid := range need {
		if pid >= len(ix.Locals) {
			return 0, fmt.Errorf("core: partition %d beyond index partition count %d", pid, len(ix.Locals))
		}
		pids = append(pids, pid)
	}
	ds := cluster.Parallelize(ix.cl, pids, 0)
	rebuilt, err := cluster.MapErr("repair", ds, func(pid int) (*Local, error) {
		l, err := ix.rebuildLocal(pid)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", pid, err)
		}
		return l, nil
	})
	if err != nil {
		return 0, err
	}
	locals := rebuilt.Collect()
	for i, pid := range pids {
		ix.Locals[pid] = locals[i]
		if err := WriteLocal(ix.Store.Dir(), pid, locals[i].Tree, locals[i].Bloom); err != nil {
			return 0, err
		}
	}
	return len(pids), nil
}

// rebuildLocal reconstructs one partition's Tardis-L and Bloom filter from
// its data file.
func (ix *Index) rebuildLocal(pid int) (*Local, error) {
	tree, err := sigtree.New(ix.codec, ix.cfg.InitialBits, ix.cfg.LMaxSize)
	if err != nil {
		return nil, err
	}
	n, err := ix.Store.PartitionCount(pid)
	if err != nil {
		return nil, err
	}
	var bf *bloom.Filter
	if ix.cfg.BuildBloom {
		cnt := uint64(n)
		if cnt == 0 {
			cnt = 1
		}
		bf, err = bloom.NewWithEstimate(cnt, ix.cfg.BloomFP)
		if err != nil {
			return nil, err
		}
	}
	err = ix.Store.ScanPartition(pid, func(r ts.Record) error {
		sig, err := ix.codec.FromSeries(r.Values, ix.cfg.InitialBits)
		if err != nil {
			return err
		}
		if err := tree.Insert(sigtree.Entry{Sig: sig, RID: r.RID}); err != nil {
			return err
		}
		if bf != nil {
			bf.AddString(string(sig))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Local{Tree: tree, Bloom: bf}, nil
}

// LoadWithRepair is Load followed by Verify and Repair: the standard way to
// open an index whose derived files may be incomplete. WriteLocal persists
// whatever was rebuilt, so subsequent plain Loads succeed.
func LoadWithRepair(cl *cluster.Cluster, storeDir string) (*Index, int, error) {
	ix, err := Load(cl, storeDir)
	if err != nil {
		return nil, 0, err
	}
	rep, err := ix.Verify()
	if err != nil {
		return nil, 0, err
	}
	n, err := ix.Repair(rep)
	if err != nil {
		return nil, 0, err
	}
	return ix, n, nil
}
