package core

import (
	"strconv"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
)

// Query telemetry, fed from the same QueryStats each entry point already
// returns — the /metrics counters and the per-call JSON views aggregate the
// identical numbers, so they can never disagree. Recording happens once per
// query, after the stats are final; the refine/scan hot loops are untouched.
var (
	mQueryDuration = obs.NewHistogramVec("tardis_core_query_duration_seconds",
		"End-to-end query latency by strategy.", nil, "strategy")
	mQueries = obs.NewCounterVec("tardis_core_queries_total",
		"Queries completed by strategy.", "strategy")
	mQueryPartitions = obs.NewCounterVec("tardis_core_query_partitions_total",
		"Partitions loaded to answer queries, by strategy.", "strategy")
	mQueryCandidates = obs.NewCounterVec("tardis_core_query_candidates_total",
		"Candidate series refined against raw data, by strategy.", "strategy")
	mQueryPrunedLeaves = obs.NewCounterVec("tardis_core_query_pruned_leaves_total",
		"Index leaves skipped via lower-bound pruning, by strategy.", "strategy")
	mQueryBloomRejected = obs.NewCounterVec("tardis_core_query_bloom_rejected_total",
		"Partition probes rejected by the Bloom filter, by strategy.", "strategy")
	mQueryDegraded = obs.NewCounterVec("tardis_core_query_degraded_total",
		"Queries answered with one or more partitions skipped, by strategy.", "strategy")
)

// recordQueryMetrics publishes one finished query's stats. strategy is a
// code-defined constant at every call site (bounded label cardinality).
func recordQueryMetrics(strategy string, st *QueryStats) {
	mQueries.With(strategy).Inc()
	mQueryDuration.With(strategy).Observe(st.Duration.Seconds())
	mQueryPartitions.With(strategy).Add(int64(st.PartitionsLoaded))
	mQueryCandidates.With(strategy).Add(int64(st.Candidates))
	mQueryPrunedLeaves.With(strategy).Add(int64(st.PrunedLeaves))
	if st.BloomRejected {
		mQueryBloomRejected.With(strategy).Inc()
	}
	if st.Degraded {
		mQueryDegraded.With(strategy).Inc()
	}
	if obs.TracingEnabled() {
		end := time.Now()
		obs.RecordSpan("core.query", end.Add(-st.Duration), end,
			obs.Attr{Key: "strategy", Value: strategy},
			obs.Attr{Key: "partitions", Value: strconv.Itoa(st.PartitionsLoaded)},
			obs.Attr{Key: "candidates", Value: strconv.Itoa(st.Candidates)})
	}
}
