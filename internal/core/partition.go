package core

import (
	"errors"
	"sort"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/pack"
	"github.com/tardisdb/tardis/internal/sigtree"
)

func sortLayerStats(layer []layerStat) {
	sort.Slice(layer, func(i, j int) bool { return layer[i].sig < layer[j].sig })
}

// assignPartitions implements the paper's partition-assignment stage
// (Definition 5): under every internal (or root) node, the under-utilized
// sibling leaves are FFD-packed into as few capacity-C partitions as
// possible; leaves whose estimated count exceeds the capacity get a
// dedicated set of ceil(count/C) partitions. Afterwards the partition ids
// are synchronized upward: every ancestor carries the sorted union of its
// descendants' ids (the paper's "id list"). It returns the total number of
// partitions created.
func assignPartitions(tree *sigtree.Tree, capacity int64) (int, error) {
	nextPID := 0
	var assign func(n *sigtree.Node) error
	assign = func(n *sigtree.Node) error {
		if n.IsLeaf() {
			return nil
		}
		// Recurse first so internal children have their own ids; then pack
		// this node's leaf children together.
		var leaves []*sigtree.Node
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := n.Children[isaxt.Signature(k)]
			if c.IsLeaf() {
				leaves = append(leaves, c)
			} else if err := assign(c); err != nil {
				return err
			}
		}
		if len(leaves) == 0 {
			return nil
		}
		items := make([]pack.Item, len(leaves))
		for i, l := range leaves {
			items[i] = pack.Item{ID: i, Size: l.Count}
		}
		res, err := pack.Pack(items, capacity, pack.FirstFitDecreasing)
		if err != nil {
			return err
		}
		for _, bin := range res.Bins {
			pid := nextPID
			nextPID++
			for _, id := range bin.Items {
				leaves[id].PIDs = []int{pid}
			}
		}
		for _, it := range res.Oversize {
			parts := int((it.Size + capacity - 1) / capacity)
			pids := make([]int, parts)
			for i := range pids {
				pids[i] = nextPID
				nextPID++
			}
			leaves[it.ID].PIDs = pids
		}
		return nil
	}
	if err := assign(tree.Root()); err != nil {
		return 0, err
	}
	if nextPID == 0 {
		return 0, errors.New("core: partition assignment produced no partitions (empty global index)")
	}
	// Synchronize descendant ids into ancestors.
	var sync func(n *sigtree.Node) []int
	sync = func(n *sigtree.Node) []int {
		if n.IsLeaf() {
			return n.PIDs
		}
		set := map[int]struct{}{}
		for _, c := range n.Children {
			for _, pid := range sync(c) {
				set[pid] = struct{}{}
			}
		}
		ids := make([]int, 0, len(set))
		for pid := range set {
			ids = append(ids, pid)
		}
		sort.Ints(ids)
		n.PIDs = ids
		return ids
	}
	sync(tree.Root())
	return nextPID, nil
}

// Route returns the target partition for a full-cardinality signature and
// record id (see Router.Route).
func (ix *Index) Route(sig isaxt.Signature, rid int64) (int, error) {
	return ix.router().Route(sig, rid)
}

// CandidatePIDs returns every partition that could hold series with the
// given signature (see Router.CandidatePIDs).
func (ix *Index) CandidatePIDs(sig isaxt.Signature) []int {
	return ix.router().CandidatePIDs(sig)
}

// SiblingPIDs returns the partition id list of the parent of the node
// covering sig (see Router.SiblingPIDs).
func (ix *Index) SiblingPIDs(sig isaxt.Signature) []int {
	return ix.router().SiblingPIDs(sig)
}

func (ix *Index) router() *Router {
	ix.routerMu.Lock()
	defer ix.routerMu.Unlock()
	if ix.routerCache == nil {
		ix.routerCache = NewRouter(ix.Global)
	}
	return ix.routerCache
}
