package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

// Concurrent loads of the same partition must collapse into one disk read:
// the singleflight leader decodes, everyone else joins the flight.
func TestCacheSingleflightDedup(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	ix.Store.Stats.Reset()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := ix.loadPartition(context.Background(), 0, nil)
			if err != nil {
				errs <- err
				return
			}
			if data.Len() == 0 {
				errs <- fmt.Errorf("empty partition data")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if reads := ix.Store.Stats.PartitionsRead(); reads != 1 {
		t.Errorf("disk reads = %d, want 1 (singleflight dedup)", reads)
	}
	cs := ix.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", cs.Misses)
	}
	if cs.Hits != goroutines-1 {
		t.Errorf("cache hits = %d, want %d", cs.Hits, goroutines-1)
	}
}

// A fully warm query must not touch disk, and its stats must say so:
// CacheMisses == 0 and CacheHits == PartitionsLoaded.
func TestCacheWarmQueryStats(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())
	q := randomQuery(7)

	if _, _, err := ix.KNNExact(q, 10); err != nil {
		t.Fatal(err)
	}
	ix.Store.Stats.Reset()

	_, st, err := ix.KNNExact(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsLoaded == 0 {
		t.Fatal("warm query loaded no partitions; test is vacuous")
	}
	if st.CacheMisses != 0 {
		t.Errorf("warm query cache misses = %d, want 0", st.CacheMisses)
	}
	if st.CacheHits != st.PartitionsLoaded {
		t.Errorf("cache hits = %d, want %d (every access served from cache)", st.CacheHits, st.PartitionsLoaded)
	}
	if reads := ix.Store.Stats.PartitionsRead(); reads != 0 {
		t.Errorf("warm query read %d partitions from disk, want 0", reads)
	}
}

// Compacting a partition rewrites its file; the cache must drop the stale
// decode so queries see the merged data.
func TestCacheInvalidationAfterCompact(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())

	// Warm the cache over every partition.
	q := randomQuery(11)
	if _, _, err := ix.KNNExact(q, 25); err != nil {
		t.Fatal(err)
	}

	// Insert a synthetic record and fold it into the partitions.
	rec := ts.Record{RID: 1 << 40, Values: randomQuery(12)}
	if err := ix.Insert(rec); err != nil {
		t.Fatal(err)
	}
	rewritten, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if rewritten != 1 {
		t.Fatalf("compacted %d partitions, want 1", rewritten)
	}
	inv := ix.CacheStats().Invalidations
	if inv == 0 {
		t.Error("compaction recorded no cache invalidations")
	}

	// The record must now be served from the rewritten partition (the delta
	// is gone), through the cache path.
	ids, st, err := ix.ExactMatch(rec.Values, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == rec.RID {
			found = true
		}
	}
	if !found {
		t.Fatalf("ExactMatch after compact = %v, want record %d", ids, rec.RID)
	}
	if st.PartitionsLoaded == 0 {
		t.Error("post-compact exact match bypassed partition load")
	}
}

// Every query strategy must return byte-identical results with the cache on
// and off — caching is a pure performance lever.
func TestCacheEquivalenceAllStrategies(t *testing.T) {
	ix, _, _ := buildTestIndex(t, dataset.RandomWalk, testConfig())

	type result struct {
		name string
		val  interface{}
	}
	run := func() []result {
		var out []result
		for i := int64(0); i < 5; i++ {
			q := randomQuery(900 + i)
			em, _, err := ix.ExactMatch(q, true)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{fmt.Sprintf("exactmatch-%d", i), em})
			strategies := []struct {
				name string
				f    func(ts.Series, int) ([]Neighbor, QueryStats, error)
			}{
				{"tna", ix.KNNTargetNode},
				{"opa", ix.KNNOnePartition},
				{"mpa", ix.KNNMultiPartition},
				{"exact", ix.KNNExact},
			}
			for _, s := range strategies {
				name, f := s.name, s.f
				ns, _, err := f(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, result{fmt.Sprintf("%s-%d", name, i), ns})
			}
			rq, _, err := ix.RangeQuery(q, 6.5)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{fmt.Sprintf("range-%d", i), rq})
			dn, _, err := ix.KNNDTW(q, 5, 4)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{fmt.Sprintf("dtw-%d", i), dn})
			gt, _, err := ix.GroundTruthPruned(q, 10, 1e12)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{fmt.Sprintf("gtpruned-%d", i), gt})
		}
		return out
	}

	warm := run()
	if ix.CacheStats().Hits == 0 {
		t.Fatal("cached run recorded no hits; equivalence test is vacuous")
	}
	if err := ix.SetCacheBudget(-1); err != nil {
		t.Fatal(err)
	}
	if ix.CacheStats().Hits != 0 || ix.CacheStats().Entries != 0 {
		t.Fatal("disabled cache must report zero stats")
	}
	cold := run()

	if len(warm) != len(cold) {
		t.Fatalf("result count mismatch: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].name != cold[i].name {
			t.Fatalf("result order mismatch at %d: %s vs %s", i, warm[i].name, cold[i].name)
		}
		if !reflect.DeepEqual(warm[i].val, cold[i].val) {
			t.Errorf("%s: cache on/off results differ:\n  on:  %v\n  off: %v",
				warm[i].name, warm[i].val, cold[i].val)
		}
	}
}
