package core

import (
	"context"
	"fmt"
	"time"

	"github.com/tardisdb/tardis/internal/dtw"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/ts"
)

// DTW queries — an extension beyond the paper (which evaluates Euclidean
// distance only), following the standard iSAX recipe for exact DTW search:
// the query's Keogh envelope is reduced to PAA and compared against SAX
// regions to prune index nodes (LB_PAA), surviving candidates are gated by
// LB_Keogh with early abandoning, and only the remainder pays the full
// banded dynamic program. All three bounds are proper lower bounds of the
// banded DTW, so KNNDTW is exact for the given band.

// dtwBounder caches the per-query envelope machinery.
type dtwBounder struct {
	env  *dtw.Envelope
	penv *dtw.PAAEnvelope
	ix   *Index
}

func (ix *Index) newDTWBounder(q ts.Series, band int) (*dtwBounder, error) {
	env, err := dtw.NewEnvelope(q, band)
	if err != nil {
		return nil, err
	}
	penv, err := env.PAA(ix.cfg.WordLen)
	if err != nil {
		return nil, err
	}
	return &dtwBounder{env: env, penv: penv, ix: ix}, nil
}

// nodeBound lower-bounds DTW(q, c) for every series c under a sigTree node.
func (b *dtwBounder) nodeBound(n *sigtree.Node) (float64, error) {
	if n.Sig == "" {
		return 0, nil // root covers everything
	}
	word, bits, err := b.ix.codec.Decode(n.Sig)
	if err != nil {
		return 0, err
	}
	return b.penv.MinDistRegions(word, bits)
}

// KNNDTW answers the exact k-nearest-neighbor query under banded DTW
// (Sakoe-Chiba half-width `band`). Partitions are visited in ascending
// envelope-bound order and search stops when the next bound exceeds the kth
// DTW distance; within partitions, nodes are pruned with the region bound
// and candidates gated with LB_Keogh before the full dynamic program runs.
//
// With query parallelism above 1 the partition scans run as best-first qpar
// tasks: the bounder's envelope state is immutable after construction and
// dtw.Distance keeps its dynamic-program rows local, so one bounder serves
// all workers. Every pruning bound used is ≥ the final kth distance, so the
// parallel answer is identical to the serial one.
func (ix *Index) KNNDTW(q ts.Series, k, band int) ([]Neighbor, QueryStats, error) {
	return ix.KNNDTWCtx(context.Background(), q, k, band)
}

// KNNDTWCtx is KNNDTW carrying a context; a qprof.Profile on the context
// records the per-partition execution tree.
func (ix *Index) KNNDTWCtx(ctx context.Context, q ts.Series, k, band int) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var st QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if band < 0 {
		return nil, st, fmt.Errorf("core: band must be non-negative, got %d", band)
	}
	if len(q) != ix.seriesLen {
		return nil, st, fmt.Errorf("core: query length %d != indexed length %d", len(q), ix.seriesLen)
	}
	prof := queryProf(ctx)
	plan := prof.StageStart("plan")
	b, err := ix.newDTWBounder(q, band)
	if err != nil {
		return nil, st, err
	}

	// Order partitions by the tightest envelope bound over their global
	// leaves.
	order, err := globalBoundsFunc(ix.Global, b.nodeBound)
	prof.StageEnd(plan)
	if err != nil {
		return nil, st, err
	}

	h := knn.NewHeap(k)
	// Seed with the in-memory delta.
	seed := prof.StageStart("delta-seed")
	if ix.delta != nil {
		for rid, s := range ix.delta.data {
			if ix.delta.deleted(rid) {
				continue
			}
			st.Candidates++
			if err := b.refineDTW(h, q, rid, s, band, &st); err != nil {
				return nil, st, err
			}
		}
	}
	prof.StageEnd(seed)
	scan := prof.StageStart("scan")
	if ix.queryParallelism() > 1 && len(order) > 0 {
		p := ix.newParJob("dtw", h, true, q, nil, h.Members(), prof)
		for _, pb := range order {
			p.spawnDTWScan(pb, b, band)
		}
		if err := p.run(ctx, &st); err != nil {
			return nil, st, err
		}
	} else {
		sc := ix.getScratch()
		skip := h.Members()
		for _, pb := range order {
			if pb.Bound > h.Bound() {
				break // no remaining partition can hold a closer series
			}
			t0, before := prof.Now(), profBefore(prof, &st)
			if err := ix.scanDTWPartitionInto(ctx, b, h, q, pb.PID, h.Bound(), band, skip, sc, &st); err != nil {
				putScratch(sc)
				return nil, st, err
			}
			profScan(prof, &st, before, pb.PID, pb.Bound, t0)
		}
		putScratch(sc)
	}
	prof.StageEnd(scan)
	st.Duration = time.Since(start)
	recordQueryMetrics("dtw", &st)
	return h.Sorted(), st, nil
}

// scanDTWPartitionInto prune-scans one partition under the DTW bounds,
// gating surviving candidates through the batched LB_Keogh kernel before
// the full dynamic program.
//
//tardis:hotpath
func (ix *Index) scanDTWPartitionInto(ctx context.Context, b *dtwBounder, h heapLike, q ts.Series, pid int, threshold float64, band int, skip map[int64]struct{}, sc *refineScratch, st *QueryStats) error {
	local := ix.Locals[pid]
	if local == nil {
		return fmt.Errorf("core: partition %d has no local index", pid)
	}
	entries, pruned, err := local.Tree.PruneCollectFunc(b.nodeBound, threshold)
	if err != nil {
		return err
	}
	st.PrunedLeaves += pruned
	if len(entries) == 0 {
		return nil
	}
	st.Scanned += len(entries)
	data, err := ix.loadPartition(ctx, pid, st)
	if err != nil {
		return err
	}
	return ix.refineDTWBatch(h, q, b.env, band, entries, data, skip, sc, st)
}

// refineDTW gates a candidate with LB_Keogh and, when it survives, computes
// the full banded DTW and offers it to the heap. The scalar path, used for
// the in-memory delta.
func (b *dtwBounder) refineDTW(h *knn.Heap, q ts.Series, rid int64, s ts.Series, band int, st *QueryStats) error {
	bound := h.Bound()
	if _, ok := b.env.LBKeoghEarlyAbandon(s, bound); !ok {
		return nil // LB_Keogh already exceeds the kth distance
	}
	d, err := dtw.Distance(q, s, band)
	if err != nil {
		return err
	}
	h.Offer(Neighbor{RID: rid, Dist: d})
	return nil
}
