package sigtree

import (
	"bytes"
	"testing"

	"github.com/tardisdb/tardis/internal/isaxt"
)

func TestSerializeRoundTrip(t *testing.T) {
	tree, _ := buildRandomTree(t, 21, 700, 30)
	var buf bytes.Buffer
	n, err := tree.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != tree.NodeCount() || got.LeafCount() != tree.LeafCount() {
		t.Errorf("round trip: nodes %d/%d leaves %d/%d",
			got.NodeCount(), tree.NodeCount(), got.LeafCount(), tree.LeafCount())
	}
	if got.Count() != tree.Count() {
		t.Errorf("round trip count %d, want %d", got.Count(), tree.Count())
	}
	if got.MaxBits() != tree.MaxBits() || got.SplitThreshold() != tree.SplitThreshold() {
		t.Error("round trip changed parameters")
	}
	// Same shape under Walk.
	var a, b []isaxt.Signature
	tree.Walk(func(n *Node) { a = append(a, n.Sig) })
	got.Walk(func(n *Node) { b = append(b, n.Sig) })
	if len(a) != len(b) {
		t.Fatalf("walk lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	// Leaf record ids preserved.
	la, lb := tree.Leaves(), got.Leaves()
	for i := range la {
		if len(la[i].Entries) != len(lb[i].Entries) {
			t.Fatalf("leaf %q entry count differs", la[i].Sig)
		}
		for j := range la[i].Entries {
			if la[i].Entries[j].RID != lb[i].Entries[j].RID {
				t.Fatalf("leaf %q rid %d differs", la[i].Sig, j)
			}
		}
	}
}

func TestSerializeWithPIDs(t *testing.T) {
	codec := testCodec()
	tree, err := New(codec, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertNodeStat("0F", 50); err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertNodeStat("F0", 70); err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	leaves[0].PIDs = []int{3, 7}
	leaves[1].PIDs = []int{1}
	tree.Root().PIDs = []int{1, 3, 7}

	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gl := got.Leaves()
	if len(gl) != 2 {
		t.Fatalf("leaves = %d, want 2", len(gl))
	}
	if len(gl[0].PIDs) != 2 || gl[0].PIDs[0] != 3 || gl[0].PIDs[1] != 7 {
		t.Errorf("leaf 0 pids = %v", gl[0].PIDs)
	}
	if len(got.Root().PIDs) != 3 {
		t.Errorf("root pids = %v", got.Root().PIDs)
	}
}

func TestSerializedSize(t *testing.T) {
	tree, _ := buildRandomTree(t, 22, 200, 20)
	var buf bytes.Buffer
	n, err := tree.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := tree.SerializedSize(); s != n {
		t.Errorf("SerializedSize = %d, WriteTo wrote %d", s, n)
	}
}

func TestReadTreeErrors(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadTree(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream.
	tree, _ := buildRandomTree(t, 23, 100, 20)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadTree(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestSigTreeMoreCompactThanEntryCount(t *testing.T) {
	// Index size must be far below data size (it stores no raw series).
	tree, _ := buildRandomTree(t, 24, 1000, 50)
	dataBytes := int64(1000 * testSeriesLen * 8)
	if s := tree.SerializedSize(); s >= dataBytes {
		t.Errorf("index size %d not smaller than data size %d", s, dataBytes)
	}
}
