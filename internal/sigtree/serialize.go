package sigtree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tardisdb/tardis/internal/isaxt"
)

// Serialization format (little endian):
//
//	magic "TSGT", version u16, wordLength u16, maxBits u16,
//	splitThreshold i64, nodeCount u32, then nodes in depth-first order:
//	  sigLen u16, sig bytes, count i64, leaf u8, pidCount u32, pids i32...,
//	  entryCount u32 (leaf payload record ids only; raw series stay in the
//	  partition files), rids i64...
//
// The format captures exactly what the paper counts as "index size": the
// tree skeleton, node statistics, and partition pointers — not the indexed
// data itself (§VI-B2).

const (
	serializeMagic   = "TSGT"
	serializeVersion = 1
)

// WriteTo serializes the tree. It returns the number of bytes written.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(serializeMagic)); err != nil {
		return cw.n, err
	}
	header := []any{
		uint16(serializeVersion),
		uint16(t.codec.WordLength()),
		uint16(t.maxBits),
		int64(t.splitThreshold),
		uint32(t.nodeCount + 1), // including root
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return cw.n, err
		}
	}
	var werr error
	t.Walk(func(n *Node) {
		if werr != nil {
			return
		}
		werr = writeNode(cw, n)
	})
	if werr != nil {
		return cw.n, werr
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

func writeNode(w io.Writer, n *Node) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := write(uint16(len(n.Sig))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(n.Sig)); err != nil {
		return err
	}
	if err := write(n.Count); err != nil {
		return err
	}
	leaf := uint8(0)
	if n.leaf {
		leaf = 1
	}
	if err := write(leaf); err != nil {
		return err
	}
	if err := write(uint32(len(n.PIDs))); err != nil {
		return err
	}
	for _, pid := range n.PIDs {
		if err := write(int32(pid)); err != nil {
			return err
		}
	}
	if err := write(uint32(len(n.Entries))); err != nil {
		return err
	}
	for _, e := range n.Entries {
		if err := write(e.RID); err != nil {
			return err
		}
	}
	return nil
}

// ReadTree deserializes a tree written by WriteTo. Leaf entries come back
// with record ids and signatures only (signatures are reconstructed as the
// leaf's own prefix is insufficient, so Entry.Sig is left empty; callers
// that need entry signatures must rebuild from the data, as the paper's
// un-clustered local indices do).
func ReadTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sigtree: reading magic: %w", err)
	}
	if string(magic) != serializeMagic {
		return nil, errors.New("sigtree: bad magic")
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var version, wordLen, maxBits uint16
	var threshold int64
	var nodeCount uint32
	for _, v := range []any{&version, &wordLen, &maxBits, &threshold, &nodeCount} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("sigtree: reading header: %w", err)
		}
	}
	if version != serializeVersion {
		return nil, fmt.Errorf("sigtree: unsupported version %d", version)
	}
	codec, err := isaxt.NewCodec(int(wordLen))
	if err != nil {
		return nil, fmt.Errorf("sigtree: header word length: %w", err)
	}
	t, err := New(codec, int(maxBits), threshold)
	if err != nil {
		return nil, fmt.Errorf("sigtree: header: %w", err)
	}
	if nodeCount == 0 {
		return nil, errors.New("sigtree: node count zero (missing root)")
	}
	// Nodes arrive in DFS order; reconstruct using a stack of ancestors.
	t.nodeCount, t.leafCount = 0, 0
	var stack []*Node
	for i := uint32(0); i < nodeCount; i++ {
		n, err := readNode(br)
		if err != nil {
			return nil, fmt.Errorf("sigtree: node %d: %w", i, err)
		}
		if i == 0 {
			if n.Sig != "" {
				return nil, errors.New("sigtree: first node is not root")
			}
			n.leaf = false
			if n.Children == nil {
				n.Children = map[isaxt.Signature]*Node{}
			}
			t.root = n
			stack = []*Node{n}
			continue
		}
		n.Layer = len(n.Sig) / codec.PlaneChars()
		if n.Layer < 1 || n.Layer > int(maxBits) {
			return nil, fmt.Errorf("sigtree: node %q at invalid layer %d", n.Sig, n.Layer)
		}
		// Pop ancestors until the top is this node's parent.
		for len(stack) > 0 && stack[len(stack)-1].Layer != n.Layer-1 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("sigtree: node %q has no parent in DFS stream", n.Sig)
		}
		parent := stack[len(stack)-1]
		if !isaxt.Covers(parent.Sig, n.Sig) {
			return nil, fmt.Errorf("sigtree: node %q not under parent %q", n.Sig, parent.Sig)
		}
		n.Parent = parent
		if parent.Children == nil {
			parent.Children = map[isaxt.Signature]*Node{}
		}
		parent.Children[codec.Plane(n.Sig, n.Layer)] = n
		t.nodeCount++
		if n.leaf {
			t.leafCount++
		} else {
			n.Children = map[isaxt.Signature]*Node{}
			stack = append(stack, n)
		}
	}
	return t, nil
}

func readNode(r io.Reader) (*Node, error) {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var sigLen uint16
	if err := read(&sigLen); err != nil {
		return nil, err
	}
	sig := make([]byte, sigLen)
	if _, err := io.ReadFull(r, sig); err != nil {
		return nil, err
	}
	n := &Node{Sig: isaxt.Signature(sig)}
	if err := read(&n.Count); err != nil {
		return nil, err
	}
	var leaf uint8
	if err := read(&leaf); err != nil {
		return nil, err
	}
	n.leaf = leaf == 1
	var pidCount uint32
	if err := read(&pidCount); err != nil {
		return nil, err
	}
	if pidCount > 1<<24 {
		return nil, fmt.Errorf("implausible pid count %d", pidCount)
	}
	// Grow incrementally rather than trusting the declared count with a
	// single huge allocation: a forged header must not cost gigabytes
	// before the truncated stream is detected.
	for i := uint32(0); i < pidCount; i++ {
		var pid int32
		if err := read(&pid); err != nil {
			return nil, err
		}
		n.PIDs = append(n.PIDs, int(pid))
	}
	var entryCount uint32
	if err := read(&entryCount); err != nil {
		return nil, err
	}
	if entryCount > 1<<28 {
		return nil, fmt.Errorf("implausible entry count %d", entryCount)
	}
	for i := uint32(0); i < entryCount; i++ {
		var rid int64
		if err := read(&rid); err != nil {
			return nil, err
		}
		n.Entries = append(n.Entries, Entry{RID: rid})
	}
	return n, nil
}

// SerializedSize returns the exact byte size of the serialized tree without
// materializing it; this is the "index size" metric of the paper's Fig. 13.
func (t *Tree) SerializedSize() int64 {
	n, _ := t.WriteTo(io.Discard)
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
