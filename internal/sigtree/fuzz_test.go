package sigtree

import (
	"bytes"
	"testing"

	"github.com/tardisdb/tardis/internal/isaxt"
)

// FuzzReadTree feeds arbitrary bytes to the tree deserializer: it must never
// panic, and anything it accepts must re-serialize and re-parse to the same
// shape (a parse/print round trip).
func FuzzReadTree(f *testing.F) {
	// Seed with a real serialized tree and some corruptions of it.
	codec := testCodec()
	tree, err := New(codec, 4, 5)
	if err != nil {
		f.Fatal(err)
	}
	for _, st := range []struct {
		sig   string
		count int64
	}{{"0F", 10}, {"F0", 20}, {"0F11", 7}} {
		if err := tree.InsertNodeStat(isaxtSig(st.sig), st.count); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, 4, 10, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:len(valid)-cut])
		}
	}
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 8 {
		mutated[8] ^= 0xFF
	}
	f.Add(mutated)
	f.Add([]byte("TSGT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must survive a write/read round trip.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted tree failed to serialize: %v", err)
		}
		again, err := ReadTree(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NodeCount() != got.NodeCount() || again.Count() != got.Count() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d count",
				again.NodeCount(), got.NodeCount(), again.Count(), got.Count())
		}
	})
}

func isaxtSig(s string) isaxt.Signature { return isaxt.Signature(s) }
