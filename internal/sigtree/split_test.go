package sigtree

import (
	"fmt"
	"math"
	"testing"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/ts"
)

// makeEntry builds an entry whose signature is derived from a PAA vector.
func makeEntry(t *testing.T, codec *isaxt.Codec, paa ts.Series, rid int64) Entry {
	t.Helper()
	sig, err := codec.FromPAA(paa, testMaxBits)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Sig: sig, RID: rid}
}

// Concentrated entries (all sharing the same coarse region, differing only
// at fine cardinality) force leaf splits down the layers.
func TestSplitRedistributes(t *testing.T) {
	codec := testCodec()
	tree, err := New(codec, testMaxBits, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All PAAs in a narrow positive band: identical first planes, so layer-1
	// and layer-2 leaves overflow and split repeatedly.
	const n = 64
	for i := 0; i < n; i++ {
		paa := make(ts.Series, testWordLen)
		for j := range paa {
			paa[j] = 0.05 + 0.012*float64(i) + 0.001*float64(j)
		}
		if err := tree.Insert(makeEntry(t, codec, paa, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stats := tree.ComputeStats()
	if stats.Internal == 0 {
		t.Fatal("no splits happened; test workload not concentrated enough")
	}
	if stats.MaxLeafDepth < 2 {
		t.Errorf("expected depth >= 2 after splits, got %d", stats.MaxLeafDepth)
	}
	// All entries still findable, counts consistent.
	if tree.Count() != n {
		t.Fatalf("count = %d", tree.Count())
	}
	total := 0
	for _, leaf := range tree.Leaves() {
		total += len(leaf.Entries)
		if int64(len(leaf.Entries)) > tree.SplitThreshold() && leaf.Layer < tree.MaxBits() {
			t.Fatalf("leaf %q oversized after split: %d", leaf.Sig, len(leaf.Entries))
		}
	}
	if total != n {
		t.Fatalf("leaves hold %d entries, want %d", total, n)
	}
	tree.Walk(func(nd *Node) {
		if nd.IsLeaf() || nd == tree.Root() {
			return
		}
		var sum int64
		for _, c := range nd.Children {
			sum += c.Count
		}
		if sum != nd.Count {
			t.Fatalf("internal %q count %d != children %d", nd.Sig, nd.Count, sum)
		}
	})
}

// Identical signatures cannot be split apart: the leaf at max depth absorbs
// them all and reports as oversized.
func TestSplitExhaustsAtMaxDepth(t *testing.T) {
	codec := testCodec()
	tree, err := New(codec, testMaxBits, 3)
	if err != nil {
		t.Fatal(err)
	}
	paa := make(ts.Series, testWordLen)
	for j := range paa {
		paa[j] = 0.42
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := tree.Insert(makeEntry(t, codec, paa, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stats := tree.ComputeStats()
	if stats.OversizeLeafs != 1 {
		t.Fatalf("expected exactly one oversized max-depth leaf, got %d", stats.OversizeLeafs)
	}
	if stats.MaxLeafDepth != testMaxBits {
		t.Errorf("oversized leaf should sit at max depth %d, got %d", testMaxBits, stats.MaxLeafDepth)
	}
	sig, _ := codec.FromPAA(paa, testMaxBits)
	leaf := tree.FindLeaf(sig)
	if leaf == nil || len(leaf.Entries) != n {
		t.Fatalf("max-depth leaf should hold all %d duplicates", n)
	}
}

func TestPruneCollectFunc(t *testing.T) {
	tree, entries := buildRandomTree(t, 31, 400, 10)
	// Custom bound: prune everything not under a chosen layer-1 prefix.
	target := tree.Codec().Prefix(entries[0].Sig, 1)
	bound := func(n *Node) (float64, error) {
		if n == tree.Root() {
			return 0, nil
		}
		if tree.Codec().Prefix(n.Sig, 1) == target {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	got, pruned, err := tree.PruneCollectFunc(bound, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Error("nothing pruned")
	}
	want := 0
	for _, e := range entries {
		if tree.Codec().Prefix(e.Sig, 1) == target {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("collected %d entries, want %d", len(got), want)
	}
	// Bound errors propagate.
	boom := fmt.Errorf("boom")
	_, _, err = tree.PruneCollectFunc(func(n *Node) (float64, error) {
		if n == tree.Root() {
			return 0, nil
		}
		return 0, boom
	}, 1)
	if err != boom {
		t.Errorf("bound error not propagated: %v", err)
	}
	// Equivalence with the Euclidean PruneCollect under the same bound.
	q := make(ts.Series, testSeriesLen)
	paa := ts.MustPAA(q, testWordLen)
	a, prunedA, err := tree.PruneCollect(paa, testSeriesLen, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, prunedB, err := tree.PruneCollectFunc(func(n *Node) (float64, error) {
		return tree.MinDist(n, paa, testSeriesLen)
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || prunedA != prunedB {
		t.Fatalf("PruneCollect (%d,%d) != PruneCollectFunc (%d,%d)", len(a), prunedA, len(b), prunedB)
	}
}
