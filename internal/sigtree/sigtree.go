// Package sigtree implements the iSAX-T K-ary index tree of TARDIS (paper
// §III-B). A node at layer i covers all series whose iSAX-T signature starts
// with the node's i bit-planes; its children are keyed by the next plane, so
// the fan-out is at most 2^w. Splitting a leaf promotes it to an internal
// node and redistributes its entries by one extra bit of cardinality on
// every segment at once — the word-level split that keeps similar series
// together (in contrast to the baseline's one-character binary split).
//
// The same structure backs both TARDIS indices: the global index (Tardis-G)
// stores node statistics and partition ids in its leaves, while each local
// index (Tardis-L) stores the actual data entries.
package sigtree

import (
	"fmt"
	"sort"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/ts"
)

// Entry is one indexed element: the full-cardinality iSAX-T signature, the
// record id, and (for clustered local indices) the raw series.
type Entry struct {
	Sig    isaxt.Signature
	RID    int64
	Series ts.Series // nil in un-clustered indices
}

// Node is one sigTree node. Nodes are doubly linked (parent and children) so
// query processing can reach all siblings from the parent (paper §III-B).
type Node struct {
	// Sig is the node's iSAX-T signature prefix; empty for the root.
	Sig isaxt.Signature
	// Layer is the tree layer = word-level cardinality bits of Sig.
	Layer int
	// Count is the number of series in this subtree. For global indices
	// built from sampled statistics it is the (scaled) estimate.
	Count int64
	// Parent is nil only for the root.
	Parent *Node
	// Children maps the next bit-plane to the child covering it. Nil for
	// leaves.
	Children map[isaxt.Signature]*Node
	// Entries holds the leaf payload of a local index.
	Entries []Entry
	// PIDs lists the partition ids under this node. For a global-index leaf
	// it is the assigned partition(s); internal nodes hold the union of
	// their descendants' ids (synchronized by partition assignment).
	PIDs []int

	leaf bool
}

// Concurrency: a Tree is not internally synchronized. Every Tree in the
// system is confined to one of two regimes — the coordinator's trees
// (Index.Global, Index.Locals) are mutated and read under Server.mu, and
// worker-local trees are built single-goroutine inside one RPC handler and
// are immutable once published. racecheck keys accesses by per-type field
// identity, so a read on a worker's tree pairs with a write on the
// coordinator's distinct instance; those cross-instance reports are
// suppressed below with this justification.

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf } //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu

// Tree is a sigTree: a K-ary prefix tree over iSAX-T signatures.
type Tree struct {
	codec *isaxt.Codec
	// maxBits is the initial cardinality in bits: the deepest possible
	// layer. A leaf at maxBits can no longer split and may exceed the
	// threshold.
	maxBits int
	// splitThreshold is the leaf occupancy that triggers a split
	// (G-MaxSize or L-MaxSize in the paper).
	splitThreshold int64

	root      *Node
	nodeCount int // excluding root
	leafCount int
}

// New creates an empty sigTree. maxBits is the initial cardinality exponent
// (e.g. 6 for cardinality 64); splitThreshold is the leaf split threshold.
func New(codec *isaxt.Codec, maxBits int, splitThreshold int64) (*Tree, error) {
	if codec == nil {
		return nil, fmt.Errorf("sigtree: nil codec")
	}
	if maxBits < 1 || maxBits > ts.MaxCardinalityBits {
		return nil, fmt.Errorf("sigtree: maxBits %d out of range [1, %d]", maxBits, ts.MaxCardinalityBits)
	}
	if splitThreshold < 1 {
		return nil, fmt.Errorf("sigtree: split threshold must be positive, got %d", splitThreshold)
	}
	return &Tree{
		codec:          codec,
		maxBits:        maxBits,
		splitThreshold: splitThreshold,
		root:           &Node{Children: map[isaxt.Signature]*Node{}},
	}, nil
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Codec returns the tree's signature codec.
func (t *Tree) Codec() *isaxt.Codec { return t.codec }

// MaxBits returns the deepest layer (initial cardinality exponent).
func (t *Tree) MaxBits() int { return t.maxBits }

// SplitThreshold returns the leaf split threshold.
func (t *Tree) SplitThreshold() int64 { return t.splitThreshold }

// NodeCount returns the number of nodes excluding the root.
func (t *Tree) NodeCount() int { return t.nodeCount }

// LeafCount returns the number of leaf nodes.
func (t *Tree) LeafCount() int { return t.leafCount }

// Count returns the total number of series in the tree.
func (t *Tree) Count() int64 { return t.root.Count }

// Insert adds a data entry (local-index mode), descending to the covering
// leaf and splitting when the leaf exceeds the threshold. The entry's
// signature must be at the tree's full initial cardinality.
func (t *Tree) Insert(e Entry) error {
	if got, err := t.codec.Bits(e.Sig); err != nil || got != t.maxBits {
		return fmt.Errorf("sigtree: entry signature %q must have %d cardinality bits (err=%v)", e.Sig, t.maxBits, err)
	}
	node := t.root
	node.Count++
	for {
		if node.leaf || (node != t.root && node.Children == nil) {
			break
		}
		key := t.codec.Plane(e.Sig, node.Layer+1)
		child := node.Children[key]
		if child == nil {
			child = t.newLeaf(node, t.codec.Prefix(e.Sig, node.Layer+1))
			node.Children[key] = child
		}
		node = child
		node.Count++
		if node.leaf {
			break
		}
	}
	node.Entries = append(node.Entries, e)
	if int64(len(node.Entries)) > t.splitThreshold && node.Layer < t.maxBits {
		t.split(node)
	}
	return nil
}

func (t *Tree) newLeaf(parent *Node, sig isaxt.Signature) *Node {
	leaf := &Node{Sig: sig, Layer: parent.Layer + 1, Parent: parent, leaf: true}
	t.nodeCount++
	t.leafCount++
	return leaf
}

// split promotes a leaf into an internal node, redistributing its entries to
// children one plane deeper — the word-level split: every segment gains one
// cardinality bit simultaneously.
func (t *Tree) split(n *Node) {
	entries := n.Entries
	n.Entries = nil
	n.leaf = false
	n.Children = map[isaxt.Signature]*Node{}
	t.leafCount--
	for _, e := range entries {
		key := t.codec.Plane(e.Sig, n.Layer+1)
		child := n.Children[key]
		if child == nil {
			child = t.newLeaf(n, t.codec.Prefix(e.Sig, n.Layer+1))
			n.Children[key] = child
		}
		child.Count++
		child.Entries = append(child.Entries, e)
	}
	// A pathological split can leave one child holding everything (all
	// entries share the next plane). Recurse while depth remains.
	for _, child := range n.Children {
		if int64(len(child.Entries)) > t.splitThreshold && child.Layer < t.maxBits {
			t.split(child)
		}
	}
}

// InsertNodeStat inserts a node-statistics record (global-index skeleton
// building, paper §IV-B): the signature of a node at some layer and the
// number of series it covers. Ancestors must be inserted before descendants
// (the construction processes layers in ascending order); missing ancestors
// are an error.
func (t *Tree) InsertNodeStat(sig isaxt.Signature, count int64) error {
	bits, err := t.codec.Bits(sig)
	if err != nil {
		return fmt.Errorf("sigtree: bad node signature %q: %v", sig, err)
	}
	if bits > t.maxBits {
		return fmt.Errorf("sigtree: node signature %q exceeds max depth %d", sig, t.maxBits)
	}
	node := t.root
	for layer := 1; layer < bits; layer++ {
		key := t.codec.Plane(sig, layer)
		child := node.Children[key]
		if child == nil {
			return fmt.Errorf("sigtree: missing ancestor at layer %d for %q", layer, sig)
		}
		if child.leaf {
			// The ancestor was a leaf from a previous layer's stats; it is
			// being expanded, so promote it.
			child.leaf = false
			child.Children = map[isaxt.Signature]*Node{}
			t.leafCount--
		}
		node = child
	}
	key := t.codec.Plane(sig, bits)
	if node.Children == nil {
		node.leaf = false
		node.Children = map[isaxt.Signature]*Node{}
		if node != t.root {
			t.leafCount--
		}
	}
	if node.Children[key] != nil {
		return fmt.Errorf("sigtree: duplicate node stat for %q", sig)
	}
	leaf := t.newLeaf(node, sig)
	leaf.Count = count
	node.Children[key] = leaf
	// Root count is the sum over layer-1 nodes only; deeper stats refine
	// existing mass, so only add at layer 1.
	if bits == 1 {
		t.root.Count += count
	}
	return nil
}

// FindLeaf descends from the root toward the given full-cardinality
// signature and returns the covering leaf, or nil if the path ends at an
// internal node with no matching child (a signature never seen during
// construction).
//
//tardis:hotpath
func (t *Tree) FindLeaf(sig isaxt.Signature) *Node {
	node := t.root
	for !node.leaf {
		if node.Layer >= t.maxBits {
			return nil
		}
		key := t.codec.Plane(sig, node.Layer+1)
		child := node.Children[key]
		if child == nil {
			return nil
		}
		node = child
	}
	return node
}

// FindDeepest descends as far as possible toward sig and returns the deepest
// matching node (possibly the root). Unlike FindLeaf it never returns nil.
//
//tardis:hotpath
func (t *Tree) FindDeepest(sig isaxt.Signature) *Node {
	node := t.root
	for !node.leaf && node.Layer < t.maxBits { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
		key := t.codec.Plane(sig, node.Layer+1)
		child := node.Children[key] //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
		if child == nil {
			return node
		}
		node = child
	}
	return node
}

// TargetNode returns the paper's kNN "target node": the lowest node on the
// query's path whose subtree holds at least k entries (§V-B). The boolean is
// false when even the root holds fewer than k.
//
//tardis:hotpath
func (t *Tree) TargetNode(sig isaxt.Signature, k int64) (*Node, bool) {
	if t.root.Count < k {
		return t.root, false
	}
	node := t.root
	for !node.leaf && node.Layer < t.maxBits {
		key := t.codec.Plane(sig, node.Layer+1)
		child := node.Children[key]
		if child == nil || child.Count < k {
			return node, true
		}
		node = child
	}
	return node, true
}

// Walk visits every node in deterministic depth-first order (children sorted
// by signature), root first. The visitor may not modify the tree.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec(n.Children[isaxt.Signature(k)])
		}
	}
	rec(t.root)
}

// Leaves returns all leaf nodes in deterministic order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.leaf {
			out = append(out, n)
		}
	})
	return out
}

// CollectEntries appends all entries stored in the subtree rooted at n.
func CollectEntries(n *Node, out []Entry) []Entry {
	if n.leaf {
		return append(out, n.Entries...)
	}
	keys := make([]string, 0, len(n.Children))
	for k := range n.Children {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = CollectEntries(n.Children[isaxt.Signature(k)], out)
	}
	return out
}

// MinDist lower-bounds the Euclidean distance from the query (given by its
// PAA and original length n) to any series under the node, using the node's
// own word-level cardinality. The root covers everything, so its bound is 0.
func (t *Tree) MinDist(n *Node, paa ts.Series, seriesLen int) (float64, error) {
	if n == t.root {
		return 0, nil
	}
	return t.codec.MinDistPAA(paa, n.Sig, seriesLen)
}

// PruneCollect gathers the entries of every leaf whose lower-bound distance
// to the query does not exceed threshold — the top-down pruning scan used by
// the One-Partition and Multi-Partitions kNN strategies. It returns the
// surviving entries and the number of leaves pruned.
func (t *Tree) PruneCollect(paa ts.Series, seriesLen int, threshold float64) ([]Entry, int, error) {
	var out []Entry
	pruned := 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		d, err := t.MinDist(n, paa, seriesLen)
		if err != nil {
			return err
		}
		if d > threshold {
			if n.leaf { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
				pruned++
			} else {
				pruned += countLeaves(n)
			}
			return nil
		}
		if n.leaf { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
			out = append(out, n.Entries...) //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
			return nil
		}
		keys := make([]string, 0, len(n.Children)) //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
		for k := range n.Children {                //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := rec(n.Children[isaxt.Signature(k)]); err != nil { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return nil, 0, err
	}
	return out, pruned, nil
}

func countLeaves(n *Node) int {
	if n.leaf { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
		return 1
	}
	total := 0
	for _, c := range n.Children { //tardislint:ignore racecheck cross-instance pairing: worker trees immutable once published, coordinator trees guarded by Server.mu
		total += countLeaves(c)
	}
	return total
}

// Stats summarizes the tree shape; the quantities the paper compares against
// the binary iBT (internal-node superabundance, leaf depth).
type Stats struct {
	Nodes         int     // nodes excluding root
	Internal      int     // internal nodes excluding root
	Leaves        int     // leaf nodes
	MaxLeafDepth  int     // deepest leaf layer
	AvgLeafDepth  float64 // mean leaf layer
	AvgLeafSize   float64 // mean entries per leaf (local indices)
	TotalEntries  int64   // total series under the root
	OversizeLeafs int     // leaves above the split threshold (max depth hit)
}

// ComputeStats walks the tree and returns its shape statistics.
func (t *Tree) ComputeStats() Stats {
	s := Stats{TotalEntries: t.root.Count}
	var depthSum, sizeSum int64
	t.Walk(func(n *Node) {
		if n == t.root {
			return
		}
		s.Nodes++
		if n.leaf {
			s.Leaves++
			depthSum += int64(n.Layer)
			sizeSum += int64(len(n.Entries))
			if n.Layer > s.MaxLeafDepth {
				s.MaxLeafDepth = n.Layer
			}
			if int64(len(n.Entries)) > t.splitThreshold {
				s.OversizeLeafs++
			}
		} else {
			s.Internal++
		}
	})
	if s.Leaves > 0 {
		s.AvgLeafDepth = float64(depthSum) / float64(s.Leaves)
		s.AvgLeafSize = float64(sizeSum) / float64(s.Leaves)
	}
	return s
}

// PruneCollectFunc is PruneCollect with a caller-supplied lower-bound
// function, enabling pruning under distances other than Euclidean (the DTW
// extension bounds nodes with the envelope-based LB_PAA). bound(root) should
// return 0. It returns the surviving entries and the number of leaves
// pruned.
func (t *Tree) PruneCollectFunc(bound func(n *Node) (float64, error), threshold float64) ([]Entry, int, error) {
	var out []Entry
	pruned := 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		d, err := bound(n)
		if err != nil {
			return err
		}
		if d > threshold {
			if n.leaf {
				pruned++
			} else {
				pruned += countLeaves(n)
			}
			return nil
		}
		if n.leaf {
			out = append(out, n.Entries...)
			return nil
		}
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := rec(n.Children[isaxt.Signature(k)]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return nil, 0, err
	}
	return out, pruned, nil
}
