package sigtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/ts"
)

const (
	testWordLen   = 8
	testSeriesLen = 64
	testMaxBits   = 6
)

func testCodec() *isaxt.Codec { return isaxt.MustNewCodec(testWordLen) }

func randomEntry(t *testing.T, rng *rand.Rand, codec *isaxt.Codec, rid int64) Entry {
	t.Helper()
	s := make(ts.Series, testSeriesLen)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	s = s.ZNormalize()
	sig, err := codec.FromSeries(s, testMaxBits)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Sig: sig, RID: rid, Series: s}
}

func buildRandomTree(t *testing.T, seed int64, n int, threshold int64) (*Tree, []Entry) {
	t.Helper()
	codec := testCodec()
	tree, err := New(codec, testMaxBits, threshold)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = randomEntry(t, rng, codec, int64(i))
		if err := tree.Insert(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tree, entries
}

func TestNewValidation(t *testing.T) {
	codec := testCodec()
	if _, err := New(nil, 6, 10); err == nil {
		t.Error("nil codec should fail")
	}
	if _, err := New(codec, 0, 10); err == nil {
		t.Error("maxBits 0 should fail")
	}
	if _, err := New(codec, ts.MaxCardinalityBits+1, 10); err == nil {
		t.Error("maxBits beyond limit should fail")
	}
	if _, err := New(codec, 6, 0); err == nil {
		t.Error("threshold 0 should fail")
	}
}

func TestInsertRejectsWrongCardinality(t *testing.T) {
	tree, _ := New(testCodec(), 6, 10)
	if err := tree.Insert(Entry{Sig: "AB"}); err == nil {
		t.Error("1-bit signature should be rejected for a 6-bit tree")
	}
	if err := tree.Insert(Entry{Sig: "XYZ"}); err == nil {
		t.Error("invalid signature should be rejected")
	}
}

func TestInsertAndFindLeaf(t *testing.T) {
	tree, entries := buildRandomTree(t, 1, 500, 20)
	if tree.Count() != 500 {
		t.Fatalf("Count = %d, want 500", tree.Count())
	}
	for _, e := range entries {
		leaf := tree.FindLeaf(e.Sig)
		if leaf == nil {
			t.Fatalf("FindLeaf(%q) = nil", e.Sig)
		}
		found := false
		for _, le := range leaf.Entries {
			if le.RID == e.RID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("entry %d not in its leaf %q", e.RID, leaf.Sig)
		}
		if !isaxt.Covers(leaf.Sig, e.Sig) {
			t.Fatalf("leaf %q does not cover entry %q", leaf.Sig, e.Sig)
		}
	}
}

func TestFindLeafMissing(t *testing.T) {
	tree, _ := buildRandomTree(t, 2, 50, 10)
	// A signature whose first plane was never inserted is very likely after
	// only 50 entries; construct one by flipping until absent.
	codec := tree.Codec()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		s := make(ts.Series, testSeriesLen)
		for j := range s {
			s[j] = rng.NormFloat64() * 3
		}
		sig, err := codec.FromSeries(s, testMaxBits)
		if err != nil {
			t.Fatal(err)
		}
		if tree.FindLeaf(sig) == nil {
			return // found an unseen path: FindLeaf correctly returned nil
		}
	}
	t.Skip("could not construct a missing signature; tree too dense")
}

func TestSplitRespectsThreshold(t *testing.T) {
	tree, _ := buildRandomTree(t, 3, 2000, 50)
	stats := tree.ComputeStats()
	for _, leaf := range tree.Leaves() {
		if int64(len(leaf.Entries)) > tree.SplitThreshold() && leaf.Layer < tree.MaxBits() {
			t.Fatalf("splittable leaf %q holds %d > %d entries", leaf.Sig, len(leaf.Entries), tree.SplitThreshold())
		}
	}
	if stats.Leaves == 0 || stats.TotalEntries != 2000 {
		t.Fatalf("bad stats: %+v", stats)
	}
}

func TestCountsConsistent(t *testing.T) {
	tree, _ := buildRandomTree(t, 4, 1000, 30)
	// Every internal node's count must equal the sum of its children's.
	tree.Walk(func(n *Node) {
		if n.IsLeaf() {
			if int64(len(n.Entries)) != n.Count {
				t.Fatalf("leaf %q count %d != entries %d", n.Sig, n.Count, len(n.Entries))
			}
			return
		}
		var sum int64
		for _, c := range n.Children {
			sum += c.Count
		}
		if sum != n.Count {
			t.Fatalf("internal %q count %d != children sum %d", n.Sig, n.Count, sum)
		}
	})
}

func TestCollectEntries(t *testing.T) {
	tree, entries := buildRandomTree(t, 5, 300, 25)
	got := CollectEntries(tree.Root(), nil)
	if len(got) != len(entries) {
		t.Fatalf("collected %d entries, want %d", len(got), len(entries))
	}
	seen := map[int64]bool{}
	for _, e := range got {
		if seen[e.RID] {
			t.Fatalf("entry %d collected twice", e.RID)
		}
		seen[e.RID] = true
	}
}

func TestTargetNode(t *testing.T) {
	tree, entries := buildRandomTree(t, 6, 1000, 30)
	q := entries[0]
	node, ok := tree.TargetNode(q.Sig, 10)
	if !ok {
		t.Fatal("tree of 1000 should satisfy k=10")
	}
	if node.Count < 10 {
		t.Fatalf("target node count %d < k", node.Count)
	}
	// The child on the query path (if any) must hold fewer than k.
	if !node.IsLeaf() && node.Layer < tree.MaxBits() {
		key := tree.Codec().Plane(q.Sig, node.Layer+1)
		if child := node.Children[key]; child != nil && child.Count >= 10 {
			t.Fatalf("child on path holds %d >= k; target node not lowest", child.Count)
		}
	}
	// k larger than the dataset.
	if _, ok := tree.TargetNode(q.Sig, 5000); ok {
		t.Error("k beyond dataset should report !ok")
	}
}

func TestInsertNodeStat(t *testing.T) {
	codec := testCodec()
	tree, err := New(codec, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Layer-1 nodes.
	if err := tree.InsertNodeStat("0F", 500); err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertNodeStat("F0", 80); err != nil {
		t.Fatal(err)
	}
	// Layer-2 expansion of "0F".
	for _, s := range []struct {
		sig isaxt.Signature
		n   int64
	}{{"0F00", 300}, {"0F11", 150}, {"0FFF", 50}} {
		if err := tree.InsertNodeStat(s.sig, s.n); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Count() != 580 {
		t.Errorf("root count = %d, want 580", tree.Count())
	}
	n := tree.FindDeepest("0F11AAAA0000")
	if n.Sig != "0F11" || !n.IsLeaf() {
		t.Errorf("FindDeepest landed on %q leaf=%v, want 0F11 leaf", n.Sig, n.IsLeaf())
	}
	// "0F" must now be internal.
	p := n.Parent
	if p.Sig != "0F" || p.IsLeaf() {
		t.Errorf("parent %q leaf=%v, want internal 0F", p.Sig, p.IsLeaf())
	}
	// Duplicates and orphans rejected.
	if err := tree.InsertNodeStat("0F00", 1); err == nil {
		t.Error("duplicate stat should fail")
	}
	if err := tree.InsertNodeStat("AB12", 1); err == nil {
		t.Error("orphan (missing layer-1 ancestor) should fail")
	}
	if err := tree.InsertNodeStat("Z", 1); err == nil {
		t.Error("invalid signature should fail")
	}
	long := isaxt.Signature("0F0F0F0F0F0F0F0F")
	if err := tree.InsertNodeStat(long, 1); err == nil {
		t.Error("too-deep signature should fail")
	}
}

func TestWalkDeterministic(t *testing.T) {
	tree, _ := buildRandomTree(t, 7, 400, 20)
	var a, b []isaxt.Signature
	tree.Walk(func(n *Node) { a = append(a, n.Sig) })
	tree.Walk(func(n *Node) { b = append(b, n.Sig) })
	if len(a) != len(b) {
		t.Fatal("walk lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("walk order not deterministic")
		}
	}
	if a[0] != "" {
		t.Error("walk should start at root")
	}
}

func TestMinDistRootIsZero(t *testing.T) {
	tree, _ := buildRandomTree(t, 8, 10, 10)
	paa := make(ts.Series, testWordLen)
	d, err := tree.MinDist(tree.Root(), paa, testSeriesLen)
	if err != nil || d != 0 {
		t.Errorf("root mindist = %v, %v; want 0, nil", d, err)
	}
}

// PruneCollect with threshold = true kNN distance must keep every true
// neighbor: the lower-bound property guarantees no true neighbor is pruned.
func TestPruneCollectSound(t *testing.T) {
	tree, entries := buildRandomTree(t, 9, 800, 40)
	rng := rand.New(rand.NewSource(10))
	q := make(ts.Series, testSeriesLen)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	q = q.ZNormalize()
	paa := ts.MustPAA(q, testWordLen)

	// Brute-force 10 nearest.
	type distRID struct {
		d   float64
		rid int64
	}
	var all []distRID
	for _, e := range entries {
		d, _ := ts.EuclideanDistance(q, e.Series)
		all = append(all, distRID{d, e.RID})
	}
	// selection of k smallest
	k := 10
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	threshold := all[k-1].d

	got, pruned, err := tree.PruneCollect(paa, testSeriesLen, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Log("warning: nothing pruned (dense tree)")
	}
	inResult := map[int64]bool{}
	for _, e := range got {
		inResult[e.RID] = true
	}
	for i := 0; i < k; i++ {
		if !inResult[all[i].rid] {
			t.Fatalf("true neighbor %d (dist %.4f) was pruned", all[i].rid, all[i].d)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tree, _ := buildRandomTree(t, 11, 600, 25)
	s := tree.ComputeStats()
	if s.Nodes != tree.NodeCount() {
		t.Errorf("stats nodes %d != tree %d", s.Nodes, tree.NodeCount())
	}
	if s.Leaves != tree.LeafCount() {
		t.Errorf("stats leaves %d != tree %d", s.Leaves, tree.LeafCount())
	}
	if s.Internal+s.Leaves != s.Nodes {
		t.Error("internal + leaves != nodes")
	}
	if s.MaxLeafDepth > testMaxBits {
		t.Errorf("leaf depth %d beyond max bits", s.MaxLeafDepth)
	}
	if s.AvgLeafDepth <= 0 || s.AvgLeafDepth > float64(testMaxBits) {
		t.Errorf("bad avg leaf depth %v", s.AvgLeafDepth)
	}
	if s.TotalEntries != 600 {
		t.Errorf("total entries %d, want 600", s.TotalEntries)
	}
}

// Property: every inserted entry is findable, leaves never exceed the
// threshold unless at max depth, and node counts stay consistent.
func TestTreeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 100 + int(seed%400+400)%400
		tree, entries := buildRandomTree(t, seed, n, 15)
		if tree.Count() != int64(len(entries)) {
			return false
		}
		for _, e := range entries {
			leaf := tree.FindLeaf(e.Sig)
			if leaf == nil || !isaxt.Covers(leaf.Sig, e.Sig) {
				return false
			}
		}
		ok := true
		tree.Walk(func(nd *Node) {
			if nd.IsLeaf() {
				if int64(len(nd.Entries)) > tree.SplitThreshold() && nd.Layer < tree.MaxBits() {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The compactness claim (paper §III-B): at word length 8 the sigTree fan-out
// keeps the average leaf depth well below the number of cardinality bits.
func TestCompactDepth(t *testing.T) {
	tree, _ := buildRandomTree(t, 13, 5000, 100)
	s := tree.ComputeStats()
	if s.AvgLeafDepth > 3.5 {
		t.Errorf("avg leaf depth %v unexpectedly deep for 5000 entries", s.AvgLeafDepth)
	}
}
