package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFilter(t *testing.T) {
	c := newCluster(t, 3)
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6, 7, 8}, 3)
	even := Filter("even", d, func(v int) bool { return v%2 == 0 })
	got := even.Collect()
	want := []int{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d", i, got[i])
		}
	}
	stages := c.Stages()
	last := stages[len(stages)-1]
	if last.RecordsIn != 8 || last.RecordsOut != 4 {
		t.Errorf("metrics wrong: %+v", last)
	}
}

func TestFlatMap(t *testing.T) {
	c := newCluster(t, 2)
	d := Parallelize(c, []int{1, 2, 3}, 0)
	fm := FlatMap("repeat", d, func(v int) []int {
		out := make([]int, v)
		for i := range out {
			out[i] = v
		}
		return out
	})
	if fm.Count() != 6 {
		t.Errorf("count = %d, want 6", fm.Count())
	}
	got := fm.Collect()
	want := []int{1, 2, 2, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestFlatMapErr(t *testing.T) {
	c := newCluster(t, 2)
	d := Parallelize(c, []int{1, 2}, 0)
	boom := errors.New("boom")
	_, err := FlatMapErr("fail", d, func(v int) ([]int, error) {
		if v == 2 {
			return nil, boom
		}
		return []int{v}, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestUnion(t *testing.T) {
	c := newCluster(t, 2)
	a := Parallelize(c, []int{1, 2}, 0)
	b := Parallelize(c, []int{3, 4}, 0)
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Count() != 4 {
		t.Errorf("count = %d", u.Count())
	}
	other := newCluster(t, 2)
	o := Parallelize(other, []int{5}, 0)
	if _, err := Union(a, o); err == nil {
		t.Error("cross-cluster union should fail")
	}
}

func TestSample(t *testing.T) {
	c := newCluster(t, 4)
	data := make([]int, 10000)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, data, 0)
	s, err := Sample("s", d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(s.Count()) / float64(len(data))
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("sampled fraction %.3f, want ~0.3", frac)
	}
	// Deterministic.
	s2, _ := Sample("s", d, 0.3, 7)
	if s.Count() != s2.Count() {
		t.Error("sampling not deterministic")
	}
	// Edge fractions.
	empty, _ := Sample("s0", d, 0, 1)
	if empty.Count() != 0 {
		t.Errorf("fraction 0 kept %d", empty.Count())
	}
	all, _ := Sample("s1", d, 1, 1)
	if float64(all.Count()) < 0.99*float64(len(data)) {
		t.Errorf("fraction 1 kept %d of %d", all.Count(), len(data))
	}
	if _, err := Sample("bad", d, -0.1, 1); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := Sample("bad", d, 1.1, 1); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestReduce(t *testing.T) {
	c := newCluster(t, 3)
	d := Parallelize(c, []int{1, 2, 3, 4, 5}, 3)
	sum, ok := Reduce("sum", d, func(a, b int) int { return a + b })
	if !ok || sum != 15 {
		t.Errorf("sum = %d, %v", sum, ok)
	}
	empty := Parallelize[int](c, nil, 0)
	if _, ok := Reduce("none", empty, func(a, b int) int { return a + b }); ok {
		t.Error("empty reduce should report !ok")
	}
}

// Property: Filter+Collect equals sequential filtering for any input.
func TestFilterProperty(t *testing.T) {
	c := newCluster(t, 5)
	f := func(data []int16) bool {
		in := make([]int, len(data))
		for i, v := range data {
			in[i] = int(v)
		}
		d := Parallelize(c, in, 0)
		got := Filter("pos", d, func(v int) bool { return v > 0 }).Collect()
		var want []int
		for _, v := range in {
			if v > 0 {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Reduce with + equals the sequential sum.
func TestReduceProperty(t *testing.T) {
	c := newCluster(t, 4)
	f := func(data []int8) bool {
		in := make([]int, len(data))
		want := 0
		for i, v := range data {
			in[i] = int(v)
			want += int(v)
		}
		d := Parallelize(c, in, 0)
		got, ok := Reduce("sum", d, func(a, b int) int { return a + b })
		if len(in) == 0 {
			return !ok
		}
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
