// Package cluster is the distributed-execution substrate TARDIS runs on — a
// Spark-like engine in pure Go. The paper's prototype deliberately uses only
// public Spark primitives ("not to touch the internals of the core spark
// engine", §VI-A): map, reduce-by-key, mapPartitions, repartition-by-
// partitioner, and broadcast. This package provides exactly those
// primitives over in-memory partitioned datasets, executed by a pool of
// simulated workers, with per-stage instrumentation (task counts, records
// processed, shuffle volume, wall time) so the benchmarks can report the
// relative costs the paper argues about.
//
// Determinism: stage results never depend on worker scheduling — partition
// boundaries and shuffle routing are pure functions of the data — so every
// run of a seeded workload yields identical indexes and query answers.
package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a Cluster.
type Config struct {
	// Workers is the simulated worker count; it is the default number of
	// partitions for Parallelize and the upper bound on task concurrency.
	Workers int
	// Parallelism caps the goroutines executing tasks; 0 means
	// min(Workers, GOMAXPROCS).
	Parallelism int
}

// Cluster is a simulated cluster: a driver plus Workers task slots.
type Cluster struct {
	workers     int
	parallelism int

	mu     sync.Mutex
	stages []StageMetrics // guarded by mu
}

// StageMetrics records the execution profile of one stage.
type StageMetrics struct {
	Name  string
	Tasks int
	// TasksSkipped counts queued tasks that never ran because an earlier
	// task in the same stage failed. A non-zero value means the stage
	// aborted early and its Records* counters cover only the completed
	// tasks.
	TasksSkipped    int
	RecordsIn       int64
	RecordsOut      int64
	ShuffledRecords int64
	Duration        time.Duration
}

// New creates a Cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: worker count must be positive, got %d", cfg.Workers)
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = cfg.Workers
		if mp := runtime.GOMAXPROCS(0); p > mp {
			p = mp
		}
	}
	return &Cluster{workers: cfg.Workers, parallelism: p}, nil
}

// Workers returns the simulated worker count.
func (c *Cluster) Workers() int { return c.workers }

// Stages returns a copy of the per-stage metrics recorded so far.
func (c *Cluster) Stages() []StageMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageMetrics, len(c.stages))
	copy(out, c.stages)
	return out
}

// ResetMetrics clears recorded stage metrics.
func (c *Cluster) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = nil
}

func (c *Cluster) record(m StageMetrics) {
	mStageDuration.With(m.Name).Observe(m.Duration.Seconds())
	mStageTasks.With(m.Name).Add(int64(m.Tasks))
	mStageSkipped.With(m.Name).Add(int64(m.TasksSkipped))
	mShuffledRecords.With(m.Name).Add(m.ShuffledRecords)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = append(c.stages, m)
}

// runTasks executes fn(i) for i in [0, n) on the worker pool, collecting the
// first error. After a task fails, workers stop executing and drain the
// remaining queue, counting each never-run task as skipped (in-flight tasks
// still finish — there is no cancellation signal inside fn). Callers surface
// the skipped count through StageMetrics.TasksSkipped so an aborted stage is
// visible in metrics rather than silently truncated.
func (c *Cluster) runTasks(n int, fn func(i int) error) (skipped int, err error) {
	if n == 0 {
		return 0, nil
	}
	p := c.parallelism
	if p > n {
		p = n
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var nskipped atomic.Int64
	var failed atomic.Bool
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(p)
	for g := 0; g < p; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					nskipped.Add(1)
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return int(nskipped.Load()), firstErr
}

// Dataset is a partitioned in-memory collection — the RDD stand-in.
type Dataset[T any] struct {
	c     *Cluster
	parts [][]T
}

// Parallelize distributes data across numPartitions (0 = cluster workers).
func Parallelize[T any](c *Cluster, data []T, numPartitions int) *Dataset[T] {
	if numPartitions <= 0 {
		numPartitions = c.workers
	}
	if numPartitions > len(data) && len(data) > 0 {
		numPartitions = len(data)
	}
	parts := make([][]T, numPartitions)
	if len(data) == 0 {
		return &Dataset[T]{c: c, parts: parts}
	}
	per := (len(data) + numPartitions - 1) / numPartitions
	for i := range parts {
		lo := i * per
		hi := lo + per
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		parts[i] = data[lo:hi]
	}
	return &Dataset[T]{c: c, parts: parts}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions[T any](c *Cluster, parts [][]T) *Dataset[T] {
	return &Dataset[T]{c: c, parts: parts}
}

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return len(d.parts) }

// Partition returns partition i (shared slice; do not mutate).
func (d *Dataset[T]) Partition(i int) []T { return d.parts[i] }

// Count returns the total element count.
func (d *Dataset[T]) Count() int64 {
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// Collect gathers all elements in partition order.
func (d *Dataset[T]) Collect() []T {
	var out []T
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// Map applies f to every element (one task per partition).
func Map[T, U any](name string, d *Dataset[T], f func(T) U) *Dataset[U] {
	out, _ := MapErr(name, d, func(t T) (U, error) { return f(t), nil })
	return out
}

// MapErr is Map with error propagation.
func MapErr[T, U any](name string, d *Dataset[T], f func(T) (U, error)) (*Dataset[U], error) {
	start := time.Now()
	parts := make([][]U, len(d.parts))
	var in, outN int64
	var cmu sync.Mutex
	skipped, err := d.c.runTasks(len(d.parts), func(i int) error {
		res := make([]U, len(d.parts[i]))
		for j, t := range d.parts[i] {
			u, err := f(t)
			if err != nil {
				return fmt.Errorf("cluster: stage %s partition %d: %w", name, i, err)
			}
			res[j] = u
		}
		parts[i] = res
		cmu.Lock()
		in += int64(len(d.parts[i]))
		outN += int64(len(res))
		cmu.Unlock()
		return nil
	})
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), TasksSkipped: skipped, RecordsIn: in, RecordsOut: outN, Duration: time.Since(start)})
	if err != nil {
		return nil, err
	}
	return &Dataset[U]{c: d.c, parts: parts}, nil
}

// MapPartitions applies f to whole partitions — Spark's mapPartitions, the
// operation TARDIS uses to build each local index in one pass (§IV-C).
func MapPartitions[T, U any](name string, d *Dataset[T], f func(pid int, items []T) ([]U, error)) (*Dataset[U], error) {
	start := time.Now()
	parts := make([][]U, len(d.parts))
	var in, outN int64
	var cmu sync.Mutex
	skipped, err := d.c.runTasks(len(d.parts), func(i int) error {
		res, err := f(i, d.parts[i])
		if err != nil {
			return fmt.Errorf("cluster: stage %s partition %d: %w", name, i, err)
		}
		parts[i] = res
		cmu.Lock()
		in += int64(len(d.parts[i]))
		outN += int64(len(res))
		cmu.Unlock()
		return nil
	})
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), TasksSkipped: skipped, RecordsIn: in, RecordsOut: outN, Duration: time.Since(start)})
	if err != nil {
		return nil, err
	}
	return &Dataset[U]{c: d.c, parts: parts}, nil
}

// Pair is a key-value pair for the byKey operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// ReduceByKey merges values per key with a map-side combine followed by a
// hash shuffle — the map/reduce job shape used by the paper's statistics
// collection. The result has one pair per key, partitioned by key hash, with
// deterministic ordering within partitions.
func ReduceByKey[K comparable, V any](name string, d *Dataset[Pair[K, V]], numPartitions int, hash func(K) uint64, reduce func(V, V) V) (*Dataset[Pair[K, V]], error) {
	if numPartitions <= 0 {
		numPartitions = d.c.workers
	}
	start := time.Now()
	// Map-side combine per input partition, bucketed by target reducer so
	// the shuffle touches each combined pair exactly once instead of every
	// reducer scanning every combined map (O(keys × reducers)).
	combined := make([][]map[K]V, len(d.parts)) // [source][reducer]
	totalSkipped := 0
	skipped, err := d.c.runTasks(len(d.parts), func(i int) error {
		m := make(map[K]V)
		for _, p := range d.parts[i] {
			if v, ok := m[p.Key]; ok {
				m[p.Key] = reduce(v, p.Value)
			} else {
				m[p.Key] = p.Value
			}
		}
		b := make([]map[K]V, numPartitions)
		for k, v := range m {
			r := int(hash(k) % uint64(numPartitions))
			if b[r] == nil {
				b[r] = make(map[K]V)
			}
			b[r][k] = v
		}
		combined[i] = b
		return nil
	})
	totalSkipped += skipped
	if err != nil {
		d.c.record(StageMetrics{Name: name, Tasks: len(d.parts) + numPartitions, TasksSkipped: totalSkipped, Duration: time.Since(start)})
		return nil, err
	}
	// Shuffle: each reducer merges only its own buckets, in source order
	// (a key appears at most once per source, so reduce call order per key
	// is source order — deterministic).
	shuffled := make([]map[K]V, numPartitions)
	var shuffledRecords int64
	var smu sync.Mutex
	skipped, err = d.c.runTasks(numPartitions, func(r int) error {
		m := make(map[K]V)
		var cnt int64
		for _, b := range combined {
			for k, v := range b[r] {
				cnt++
				if old, ok := m[k]; ok {
					m[k] = reduce(old, v)
				} else {
					m[k] = v
				}
			}
		}
		shuffled[r] = m
		smu.Lock()
		shuffledRecords += cnt
		smu.Unlock()
		return nil
	})
	totalSkipped += skipped
	if err != nil {
		d.c.record(StageMetrics{Name: name, Tasks: len(d.parts) + numPartitions, TasksSkipped: totalSkipped, Duration: time.Since(start)})
		return nil, err
	}
	// Materialize with deterministic order.
	parts := make([][]Pair[K, V], numPartitions)
	var outN int64
	skipped, err = d.c.runTasks(numPartitions, func(r int) error {
		m := shuffled[r]
		res := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			res = append(res, Pair[K, V]{Key: k, Value: v})
		}
		sort.Slice(res, func(a, b int) bool { return less(res[a].Key, res[b].Key) })
		parts[r] = res
		smu.Lock()
		outN += int64(len(res))
		smu.Unlock()
		return nil
	})
	totalSkipped += skipped
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts) + numPartitions,
		TasksSkipped: totalSkipped,
		RecordsIn:    d.Count(), RecordsOut: outN, ShuffledRecords: shuffledRecords,
		Duration: time.Since(start)})
	if err != nil {
		return nil, err
	}
	return &Dataset[Pair[K, V]]{c: d.c, parts: parts}, nil
}

// less provides a deterministic order for the comparable key types we use
// (strings and integers); other types fall back to their formatted form.
func less[K comparable](a, b K) bool {
	switch av := any(a).(type) {
	case string:
		return av < any(b).(string)
	case int:
		return av < any(b).(int)
	case int64:
		return av < any(b).(int64)
	case uint64:
		return av < any(b).(uint64)
	default:
		return fmt.Sprint(a) < fmt.Sprint(b)
	}
}

// RepartitionBy routes every element to the partition chosen by part — the
// data-shuffle step of Tardis-L construction, where the broadcast global
// index acts as the partitioner. Output partition order is input order
// within each target (stable), so results are deterministic.
func RepartitionBy[T any](name string, d *Dataset[T], numPartitions int, part func(T) (int, error)) (*Dataset[T], error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("cluster: stage %s: target partition count must be positive", name)
	}
	start := time.Now()
	// Each source partition routes its elements, then targets concatenate
	// source buckets in source order for determinism.
	buckets := make([][][]T, len(d.parts)) // [source][target][]T
	totalSkipped := 0
	skipped, err := d.c.runTasks(len(d.parts), func(i int) error {
		b := make([][]T, numPartitions)
		for _, t := range d.parts[i] {
			p, err := part(t)
			if err != nil {
				return fmt.Errorf("cluster: stage %s partition %d: %w", name, i, err)
			}
			if p < 0 || p >= numPartitions {
				return fmt.Errorf("cluster: stage %s: partitioner returned %d outside [0,%d)", name, p, numPartitions)
			}
			b[p] = append(b[p], t)
		}
		buckets[i] = b
		return nil
	})
	totalSkipped += skipped
	if err != nil {
		d.c.record(StageMetrics{Name: name, Tasks: len(d.parts) + numPartitions, TasksSkipped: totalSkipped, Duration: time.Since(start)})
		return nil, err
	}
	parts := make([][]T, numPartitions)
	var shuffledRecords int64
	var smu sync.Mutex
	skipped, err = d.c.runTasks(numPartitions, func(p int) error {
		var res []T
		for src := range buckets {
			res = append(res, buckets[src][p]...)
		}
		parts[p] = res
		smu.Lock()
		shuffledRecords += int64(len(res))
		smu.Unlock()
		return nil
	})
	totalSkipped += skipped
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts) + numPartitions,
		TasksSkipped: totalSkipped,
		RecordsIn:    d.Count(), RecordsOut: shuffledRecords, ShuffledRecords: shuffledRecords,
		Duration: time.Since(start)})
	if err != nil {
		return nil, err
	}
	return &Dataset[T]{c: d.c, parts: parts}, nil
}

// Broadcast models the driver shipping a read-only value to every worker
// (Tardis-G is broadcast as the shuffle partitioner, §IV-C). The value is
// shared by pointer; sizeBytes is recorded for reporting.
type Broadcast[T any] struct {
	Value T
	Size  int64
}

// NewBroadcast wraps a value for worker-side use.
func NewBroadcast[T any](c *Cluster, name string, v T, sizeBytes int64) *Broadcast[T] {
	c.record(StageMetrics{Name: name, Tasks: c.workers, RecordsOut: int64(c.workers), ShuffledRecords: sizeBytes})
	return &Broadcast[T]{Value: v, Size: sizeBytes}
}
