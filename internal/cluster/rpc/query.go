package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Distributed query processing: the coordinator holds only the global tree;
// workers own partition scans — they read the partition's local sigTree and
// data from the shared filesystem, prune with the lower bound, and return
// their local top-k for the coordinator to merge. This mirrors the paper's
// deployment, where Algorithm 1's partition scans run as Spark tasks on the
// workers holding the blocks.
//
// Degradation contract: approximate kNN (DistKNN) survives partition loss —
// a partition no worker can scan is skipped and reported via
// QueryStats.Degraded/PartitionsSkipped, since the approximate answer stays
// valid (just potentially less tight). Exact queries (DistKNNExact,
// DistRange) fail loudly instead: a lost partition could hide a true
// neighbor, so a silently partial exact answer is never returned.

// KNNPartitionArgs asks a worker to prune-scan one partition.
type KNNPartitionArgs struct {
	StoreDir  string
	PID       int
	Query     ts.Series
	K         int
	Threshold float64 // prune bound; +Inf scans everything surviving k-bounds
	WordLen   int
	// Trace carries the coordinator's span identity across the wire; the
	// zero value means "not traced".
	Trace obs.SpanContext
	// Profile asks the worker to return a sub-profile of its scan in the
	// reply; set when the coordinator's query is flight-recorded.
	Profile bool
}

// KNNPartitionReply returns the partition's local top-k.
type KNNPartitionReply struct {
	Neighbors  []knn.Neighbor
	Candidates int
	// PrunedLeaves counts local-index leaves skipped via the lower bound.
	PrunedLeaves int
	// CacheHit reports whether the partition data was served from the
	// worker's resident cache rather than decoded from disk.
	CacheHit bool
	// Prof is the worker-side sub-profile; nil unless args.Profile was set.
	Prof *qprof.WireScan
}

// RangePartitionArgs asks a worker to verify one partition against a range
// query.
type RangePartitionArgs struct {
	StoreDir string
	PID      int
	Query    ts.Series
	Eps      float64
	WordLen  int
	Trace    obs.SpanContext
	Profile  bool
}

// RangePartitionReply returns every in-range record of the partition.
type RangePartitionReply struct {
	Hits         []knn.Neighbor
	Candidates   int
	PrunedLeaves int
	CacheHit     bool
	Prof         *qprof.WireScan
}

// workerTreeCache caches deserialized local trees per (store, pid) so
// repeated queries skip the parse. Entries are small (ids only).
var workerTreeCache sync.Map // map[string]*sigtree.Tree

// partKey identifies one partition of one store; a worker process can serve
// queries against several stores at once.
type partKey struct {
	dir string
	pid int
}

func hashPartKey(k partKey) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.dir))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(k.pid))
	h.Write(b[:])
	return h.Sum64()
}

// workerDataCacheBytes bounds the worker's decoded-partition cache (matches
// the core default).
const workerDataCacheBytes int64 = 256 << 20

// workerDataCache keeps hot decoded partitions resident across KNNPartition
// RPCs, so repeated queries against the same store skip the disk decode.
var workerDataCache = func() *pcache.Cache[partKey] {
	c, err := pcache.New(workerDataCacheBytes, 0, hashPartKey)
	if err != nil {
		panic(err) // static budget and hash; cannot fail
	}
	return c
}()

func loadLocalTree(storeDir string, pid int) (*sigtree.Tree, error) {
	key := fmt.Sprintf("%s/%06d", storeDir, pid)
	if v, ok := workerTreeCache.Load(key); ok {
		return v.(*sigtree.Tree), nil
	}
	path := filepath.Join(storeDir, "_index", fmt.Sprintf("local-%06d.sigtree", pid))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rpc: opening local index for partition %d: %w", pid, err)
	}
	defer f.Close()
	tree, err := sigtree.ReadTree(f)
	if err != nil {
		return nil, fmt.Errorf("rpc: parsing local index for partition %d: %w", pid, err)
	}
	workerTreeCache.Store(key, tree)
	return tree, nil
}

// loadPartitionData fetches one partition through the worker's resident
// cache, recording a child span under the RPC's span when the call is
// traced (a cache hit shows up as a near-zero-duration load).
func loadPartitionData(parent *obs.Span, st *storage.Store, storeDir string, pid int) (*pcache.Partition, bool, error) {
	var span *obs.Span
	if parent != nil {
		_, span = obs.StartRemoteSpan(context.Background(), parent.Context(), "worker.partition_load")
		span.Annotate("pid", strconv.Itoa(pid))
	}
	// net/rpc handlers carry no context; deadlines are enforced client-side
	// by the pool, so the join-wait runs unbounded on the worker.
	p, hit, err := workerDataCache.Get(context.Background(), partKey{dir: storeDir, pid: pid},
		func() (*pcache.Partition, error) {
			rids, values, err := st.ReadPartitionArena(pid)
			if err != nil {
				return nil, err
			}
			return pcache.NewPartition(rids, values, st.SeriesLen())
		})
	if span != nil {
		if hit {
			span.Annotate("cache", "hit")
		} else {
			span.Annotate("cache", "miss")
		}
		span.SetError(err)
		span.Finish()
	}
	return p, hit, err
}

// workerWireScan opens a worker-side sub-profile for one partition RPC when
// the coordinator asked for one (args.Profile). The returned finish func
// stamps the total duration, attaches the scan to the reply slot, and feeds
// the worker's own flight recorder so /debug/queries on the worker shows the
// scan too (the coordinator already made the sampling decision). Both
// returns are nil when profiling is off.
func workerWireScan(on bool, strategy, workerID string, pid int, attach func(*qprof.WireScan)) (*qprof.WireScan, func(error)) {
	if !on {
		return nil, nil
	}
	t0 := time.Now()
	ws := &qprof.WireScan{PID: pid, WorkerID: workerID}
	return ws, func(err error) {
		ws.DurUS = time.Since(t0).Microseconds()
		attach(ws)
		p := qprof.New(strategy)
		p.Graft(ws, "", 1, 0, time.Duration(ws.DurUS)*time.Microsecond)
		qprof.Default().Observe(p, strategy, time.Since(t0), err)
	}
}

// KNNPartition prune-scans one partition against the query and returns the
// local top-k within the threshold. Read-only, hence idempotent.
func (w *Worker) KNNPartition(args KNNPartitionArgs, reply *KNNPartitionReply) (err error) {
	span := w.startSpan(args.Trace, "worker.knn_partition")
	span.Annotate("pid", strconv.Itoa(args.PID))
	defer func() { span.SetError(err); span.Finish() }()
	ws, wsDone := workerWireScan(args.Profile, "worker-knn", w.ID, args.PID,
		func(s *qprof.WireScan) { s.Refined = reply.Candidates; reply.Prof = s })
	if wsDone != nil {
		defer func() { wsDone(err) }()
	}
	if err := faultinj.InjectAs(PointWorkerKNN, w.ID); err != nil {
		return MarkRetryable(err)
	}
	if args.K < 1 {
		return fmt.Errorf("rpc: k must be positive, got %d", args.K)
	}
	st, err := storage.Open(args.StoreDir)
	if err != nil {
		return MarkRetryable(err)
	}
	tree, err := loadLocalTree(args.StoreDir, args.PID)
	if err != nil {
		return MarkRetryable(err)
	}
	paa, err := ts.PAA(args.Query, args.WordLen)
	if err != nil {
		return err
	}
	entries, pruned, err := tree.PruneCollect(paa, len(args.Query), args.Threshold)
	if err != nil {
		return err
	}
	reply.PrunedLeaves = pruned
	if ws != nil {
		ws.PrunedLeaves = pruned
		ws.Scanned = len(entries)
	}
	if len(entries) == 0 {
		reply.Neighbors = []knn.Neighbor{}
		return nil
	}
	load0 := time.Now()
	data, hit, err := loadPartitionData(span, st, args.StoreDir, args.PID)
	if ws != nil {
		ws.LoadUS = time.Since(load0).Microseconds()
		ws.CacheKnown = true
		ws.CacheHit = hit
	}
	if err != nil {
		return MarkRetryable(quarantineIfCorrupt(st, args.PID, err))
	}
	if hit {
		reply.CacheHit = true
	}
	h := knn.NewHeap(args.K)
	for _, e := range entries {
		s, ok := data.Series(e.RID)
		if !ok {
			return fmt.Errorf("rpc: partition %d missing record %d", args.PID, e.RID)
		}
		reply.Candidates++
		bound := h.Bound()
		if bound > args.Threshold {
			bound = args.Threshold
		}
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(args.Query, s, bound*bound); ok2 {
			h.Offer(knn.Neighbor{RID: e.RID, Dist: sqrtf(d2)})
		}
	}
	reply.Neighbors = h.Sorted()
	w.track("KNNPartition", int64(len(entries)))
	return nil
}

// RangePartition verifies one partition's surviving candidates against the
// raw series, returning every record within Eps. Read-only, hence
// idempotent.
func (w *Worker) RangePartition(args RangePartitionArgs, reply *RangePartitionReply) (err error) {
	span := w.startSpan(args.Trace, "worker.range_partition")
	span.Annotate("pid", strconv.Itoa(args.PID))
	defer func() { span.SetError(err); span.Finish() }()
	ws, wsDone := workerWireScan(args.Profile, "worker-range", w.ID, args.PID,
		func(s *qprof.WireScan) { s.Refined = reply.Candidates; reply.Prof = s })
	if wsDone != nil {
		defer func() { wsDone(err) }()
	}
	if err := faultinj.InjectAs(PointWorkerRange, w.ID); err != nil {
		return MarkRetryable(err)
	}
	if args.Eps < 0 || math.IsNaN(args.Eps) {
		return fmt.Errorf("rpc: range radius must be non-negative, got %v", args.Eps)
	}
	st, err := storage.Open(args.StoreDir)
	if err != nil {
		return MarkRetryable(err)
	}
	tree, err := loadLocalTree(args.StoreDir, args.PID)
	if err != nil {
		return MarkRetryable(err)
	}
	paa, err := ts.PAA(args.Query, args.WordLen)
	if err != nil {
		return err
	}
	entries, pruned, err := tree.PruneCollect(paa, len(args.Query), args.Eps)
	if err != nil {
		return err
	}
	reply.PrunedLeaves = pruned
	if ws != nil {
		ws.PrunedLeaves = pruned
		ws.Scanned = len(entries)
	}
	reply.Hits = []knn.Neighbor{}
	if len(entries) == 0 {
		return nil
	}
	load0 := time.Now()
	data, hit, err := loadPartitionData(span, st, args.StoreDir, args.PID)
	if ws != nil {
		ws.LoadUS = time.Since(load0).Microseconds()
		ws.CacheKnown = true
		ws.CacheHit = hit
	}
	if err != nil {
		return MarkRetryable(quarantineIfCorrupt(st, args.PID, err))
	}
	if hit {
		reply.CacheHit = true
	}
	// Same slack as core.RangeQuery: eps² can round below the true squared
	// distance of a record exactly on the radius; membership is verified on
	// the rooted distance, so no extras are admitted.
	epsSq := args.Eps*args.Eps + 1e-9
	for _, e := range entries {
		s, ok := data.Series(e.RID)
		if !ok {
			return fmt.Errorf("rpc: partition %d missing record %d", args.PID, e.RID)
		}
		reply.Candidates++
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(args.Query, s, epsSq); ok2 {
			if d := sqrtf(d2); d <= args.Eps {
				reply.Hits = append(reply.Hits, knn.Neighbor{RID: e.RID, Dist: d})
			}
		}
	}
	w.track("RangePartition", int64(len(entries)))
	return nil
}

// quarantineIfCorrupt pulls a checksum-failing partition out of service on
// this worker's store so the next failover attempt lands on a different
// replica instead of re-reading known-bad bytes. The error passes through
// for the coordinator's retryable classification.
func quarantineIfCorrupt(st *storage.Store, pid int, err error) error {
	if errors.Is(err, storage.ErrChecksum) {
		_ = st.QuarantinePartition(pid)
	}
	return err
}

// profCall wraps one worker RPC attempt with flight-recorder bookkeeping:
// every transport attempt is recorded (including the failed ones the
// failover executor retries elsewhere), and on success the worker's
// sub-profile is grafted into the coordinator's tree exactly once — a failed
// attempt carries no reply, so a retried task's scan appears once, marked
// retried. attempts holds one per-task counter; retries of a single task are
// sequential (the executor moves a task between replicas one at a time), so
// the atomic add only defends against distinct tasks sharing the slice.
func profCall(prof *qprof.Profile, attempts []int32, task int, method, addr string, pid int, call func() error, wire func() *qprof.WireScan) error {
	if prof == nil {
		return call()
	}
	a := int(atomic.AddInt32(&attempts[task], 1))
	t0 := prof.Now()
	err := call()
	dur := prof.Now() - t0
	rc := qprof.RPCCall{Method: method, Addr: addr, PID: pid, Attempt: a, Start: t0, Dur: dur}
	if err != nil {
		rc.Err = err.Error()
	}
	prof.AddRPC(rc)
	if err == nil {
		prof.Graft(wire(), addr, a, t0, dur)
	}
	return err
}

// mergeKNNReply folds one worker scan into the coordinator's stats.
func mergeKNNReply(st *core.QueryStats, candidates, pruned int, cacheHit bool) {
	st.PartitionsLoaded++
	if cacheHit {
		st.CacheHits++
	} else {
		st.CacheMisses++
	}
	st.Candidates += candidates
	st.PrunedLeaves += pruned
}

// DistKNN runs the Multi-Partitions Access strategy with the partition scans
// distributed over the worker pool: the coordinator routes the query through
// the global tree (read from the store's index directory), obtains the
// threshold from the query's primary partition, then fans the sibling scans
// out with one task per partition. Results match the single-process
// KNNMultiPartition except that the threshold is taken as the primary
// partition's full top-k bound (a one-partition scan rather than a
// target-node probe), which can only tighten it.
//
// DistKNN degrades gracefully: a partition that no worker can scan after
// retries and failover is skipped and reported in the returned QueryStats
// (Degraded, PartitionsSkipped) — the answer remains a valid approximate
// result over the partitions that were reached.
func DistKNN(ctx context.Context, pool *Pool, storeDir string, cfg core.Config, q ts.Series, k int) (_ []knn.Neighbor, _ core.QueryStats, err error) {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "query.dist_knn")
	defer func() { span.SetError(err); span.Finish() }()
	var st core.QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("rpc: k must be positive, got %d", k)
	}
	prof := qprof.FromContext(ctx)
	prof.SetTrace(span.Context().TraceID)
	plan := prof.StageStart("plan")
	global, err := core.ReadGlobalTree(storeDir)
	if err != nil {
		return nil, st, err
	}
	router := core.NewRouter(global)
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		return nil, st, err
	}
	sig, err := codec.FromSeries(q, cfg.InitialBits)
	if err != nil {
		return nil, st, err
	}
	pids := router.CandidatePIDs(sig)
	if len(pids) == 0 {
		return nil, st, fmt.Errorf("rpc: no partition for query signature")
	}
	primary := pids[0]
	rt, err := loadRouting(storeDir)
	if err != nil {
		return nil, st, err
	}
	prof.StageEnd(plan)

	sctx, cancel := pool.stageCtx(ctx)
	defer cancel()

	// Threshold from the primary partition (worker-side scan, restricted to
	// the partition's replicas with failover between them). Losing every
	// replica of the primary only loosens the threshold to +Inf; the query
	// proceeds degraded.
	seedStage := prof.StageStart("seed-scan")
	h := knn.NewHeap(k)
	var seed KNNPartitionReply
	seedAttempts := make([]int32, 1)
	es, err := pool.eachReplica(sctx, rt.tasks([]int{primary}), true, func(ctx context.Context, w *workerState, _ int) error {
		return profCall(prof, seedAttempts, 0, "Worker.KNNPartition", w.addr, primary, func() error {
			return pool.callWorker(ctx, w, "Worker.KNNPartition", KNNPartitionArgs{
				StoreDir: rt.dirFor(storeDir, primary, w.addr), PID: primary, Query: q, K: k,
				Threshold: inf(), WordLen: cfg.WordLen, Profile: prof != nil,
			}, &seed)
		}, func() *qprof.WireScan { return seed.Prof })
	})
	prof.StageEnd(seedStage)
	if err != nil {
		return nil, st, err
	}
	if len(es.skipped) > 0 {
		st.Degraded = true
		st.PartitionsSkipped++
	} else {
		mergeKNNReply(&st, seed.Candidates, seed.PrunedLeaves, seed.CacheHit)
		for _, n := range seed.Neighbors {
			h.Offer(n)
		}
	}
	threshold := h.Bound()

	// Sibling partitions, capped at pth, one failover task per partition.
	siblings := router.SiblingPIDs(sig)
	var targets []int
	for _, pid := range siblings {
		if pid != primary {
			targets = append(targets, pid)
		}
	}
	if len(targets) > cfg.PartitionThreshold {
		targets = targets[:cfg.PartitionThreshold]
	}
	sort.Ints(targets)
	fanout := prof.StageStart("fanout")
	replies := make([]KNNPartitionReply, len(targets))
	attempts := make([]int32, len(targets))
	es, err = pool.eachReplica(sctx, rt.tasks(targets), true, func(ctx context.Context, w *workerState, task int) error {
		return profCall(prof, attempts, task, "Worker.KNNPartition", w.addr, targets[task], func() error {
			return pool.callWorker(ctx, w, "Worker.KNNPartition", KNNPartitionArgs{
				StoreDir: rt.dirFor(storeDir, targets[task], w.addr), PID: targets[task], Query: q, K: k,
				Threshold: threshold, WordLen: cfg.WordLen, Profile: prof != nil,
			}, &replies[task])
		}, func() *qprof.WireScan { return replies[task].Prof })
	})
	prof.StageEnd(fanout)
	if err != nil {
		return nil, st, err
	}
	skipped := map[int]bool{}
	for _, task := range es.skipped {
		skipped[task] = true
		st.Degraded = true
		st.PartitionsSkipped++
	}
	for task, r := range replies {
		if skipped[task] {
			continue
		}
		mergeKNNReply(&st, r.Candidates, r.PrunedLeaves, r.CacheHit)
		for _, n := range r.Neighbors {
			h.Offer(n)
		}
	}
	st.Duration = time.Since(start)
	return h.Sorted(), st, nil
}

// DistKNNExact answers the exact k-nearest-neighbor query over the worker
// pool with the same round-based best-first search as core.KNNExact:
// partitions are visited in ascending global lower-bound order, each round
// fans out up to pool.Size() admissible partitions, and the search stops
// when the next bound exceeds the kth distance. Worker failures fail over to
// survivors; a partition no live worker can scan fails the query — an exact
// answer is never silently incomplete.
func DistKNNExact(ctx context.Context, pool *Pool, storeDir string, cfg core.Config, q ts.Series, k int) (_ []knn.Neighbor, _ core.QueryStats, err error) {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "query.dist_knn_exact")
	defer func() { span.SetError(err); span.Finish() }()
	var st core.QueryStats
	if k < 1 {
		return nil, st, fmt.Errorf("rpc: k must be positive, got %d", k)
	}
	prof := qprof.FromContext(ctx)
	prof.SetTrace(span.Context().TraceID)
	plan := prof.StageStart("plan")
	global, err := core.ReadGlobalTree(storeDir)
	if err != nil {
		return nil, st, err
	}
	paa, err := ts.PAA(q, cfg.WordLen)
	if err != nil {
		return nil, st, err
	}
	bounds, err := core.GlobalPartitionBounds(global, paa, len(q))
	if err != nil {
		return nil, st, err
	}
	rt, err := loadRouting(storeDir)
	if err != nil {
		return nil, st, err
	}
	prof.StageEnd(plan)
	scan := prof.StageStart("scan")
	defer prof.StageEnd(scan)
	sctx, cancel := pool.stageCtx(ctx)
	defer cancel()
	h := knn.NewHeap(k)
	fan := pool.Size()
	for i := 0; i < len(bounds); {
		th := h.Bound()
		n := 0
		for i+n < len(bounds) && n < fan && bounds[i+n].Bound <= th {
			n++
		}
		if n == 0 {
			break // no remaining partition can hold a closer series
		}
		batch := bounds[i : i+n]
		i += n
		batchPIDs := make([]int, len(batch))
		for bi, pb := range batch {
			batchPIDs[bi] = pb.PID
		}
		replies := make([]KNNPartitionReply, len(batch))
		attempts := make([]int32, len(batch))
		_, err := pool.eachReplica(sctx, rt.tasks(batchPIDs), false, func(ctx context.Context, w *workerState, task int) error {
			return profCall(prof, attempts, task, "Worker.KNNPartition", w.addr, batchPIDs[task], func() error {
				return pool.callWorker(ctx, w, "Worker.KNNPartition", KNNPartitionArgs{
					StoreDir: rt.dirFor(storeDir, batchPIDs[task], w.addr), PID: batchPIDs[task], Query: q, K: k,
					Threshold: th, WordLen: cfg.WordLen, Profile: prof != nil,
				}, &replies[task])
			}, func() *qprof.WireScan { return replies[task].Prof })
		})
		if err != nil {
			return nil, st, fmt.Errorf("rpc: exact knn round: %w", err)
		}
		// Merge in batch order: deterministic regardless of scheduling.
		for _, r := range replies {
			mergeKNNReply(&st, r.Candidates, r.PrunedLeaves, r.CacheHit)
			for _, nb := range r.Neighbors {
				h.Offer(nb)
			}
		}
	}
	st.Duration = time.Since(start)
	return h.Sorted(), st, nil
}

// DistRange answers the exact range query over the worker pool: every
// partition whose global lower bound is within eps is verified by a worker,
// with failover. Like DistKNNExact it fails loudly on an unscannable
// partition rather than dropping in-range records.
func DistRange(ctx context.Context, pool *Pool, storeDir string, cfg core.Config, q ts.Series, eps float64) (_ []knn.Neighbor, _ core.QueryStats, err error) {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "query.dist_range")
	defer func() { span.SetError(err); span.Finish() }()
	var st core.QueryStats
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("rpc: range radius must be non-negative, got %v", eps)
	}
	prof := qprof.FromContext(ctx)
	prof.SetTrace(span.Context().TraceID)
	plan := prof.StageStart("plan")
	global, err := core.ReadGlobalTree(storeDir)
	if err != nil {
		return nil, st, err
	}
	paa, err := ts.PAA(q, cfg.WordLen)
	if err != nil {
		return nil, st, err
	}
	bounds, err := core.GlobalPartitionBounds(global, paa, len(q))
	if err != nil {
		return nil, st, err
	}
	inRange := make([]int, 0, len(bounds))
	for _, pb := range bounds {
		if pb.Bound > eps {
			break // bounds are sorted; everything beyond is out of range
		}
		inRange = append(inRange, pb.PID)
	}
	rt, err := loadRouting(storeDir)
	if err != nil {
		return nil, st, err
	}
	prof.StageEnd(plan)
	scan := prof.StageStart("scan")
	sctx, cancel := pool.stageCtx(ctx)
	defer cancel()
	replies := make([]RangePartitionReply, len(inRange))
	attempts := make([]int32, len(inRange))
	_, err = pool.eachReplica(sctx, rt.tasks(inRange), false, func(ctx context.Context, w *workerState, task int) error {
		return profCall(prof, attempts, task, "Worker.RangePartition", w.addr, inRange[task], func() error {
			return pool.callWorker(ctx, w, "Worker.RangePartition", RangePartitionArgs{
				StoreDir: rt.dirFor(storeDir, inRange[task], w.addr), PID: inRange[task], Query: q, Eps: eps, WordLen: cfg.WordLen, Profile: prof != nil,
			}, &replies[task])
		}, func() *qprof.WireScan { return replies[task].Prof })
	})
	prof.StageEnd(scan)
	if err != nil {
		return nil, st, fmt.Errorf("rpc: range query: %w", err)
	}
	var out []knn.Neighbor
	for _, r := range replies {
		mergeKNNReply(&st, r.Candidates, r.PrunedLeaves, r.CacheHit)
		out = append(out, r.Hits...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	st.Duration = time.Since(start)
	return out, st, nil
}
