package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/pcache"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Distributed query processing: the coordinator holds only the global tree;
// workers own partition scans — they read the partition's local sigTree and
// data from the shared filesystem, prune with the lower bound, and return
// their local top-k for the coordinator to merge. This mirrors the paper's
// deployment, where Algorithm 1's partition scans run as Spark tasks on the
// workers holding the blocks.

// KNNPartitionArgs asks a worker to prune-scan one partition.
type KNNPartitionArgs struct {
	StoreDir  string
	PID       int
	Query     ts.Series
	K         int
	Threshold float64 // prune bound; +Inf scans everything surviving k-bounds
	WordLen   int
}

// KNNPartitionReply returns the partition's local top-k.
type KNNPartitionReply struct {
	Neighbors  []knn.Neighbor
	Candidates int
	// CacheHit reports whether the partition data was served from the
	// worker's resident cache rather than decoded from disk.
	CacheHit bool
}

// workerTreeCache caches deserialized local trees per (store, pid) so
// repeated queries skip the parse. Entries are small (ids only).
var workerTreeCache sync.Map // map[string]*sigtree.Tree

// partKey identifies one partition of one store; a worker process can serve
// queries against several stores at once.
type partKey struct {
	dir string
	pid int
}

func hashPartKey(k partKey) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.dir))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(k.pid))
	h.Write(b[:])
	return h.Sum64()
}

// workerDataCacheBytes bounds the worker's decoded-partition cache (matches
// the core default).
const workerDataCacheBytes int64 = 256 << 20

// workerDataCache keeps hot decoded partitions resident across KNNPartition
// RPCs, so repeated queries against the same store skip the disk decode.
var workerDataCache = func() *pcache.Cache[partKey] {
	c, err := pcache.New(workerDataCacheBytes, 0, hashPartKey)
	if err != nil {
		panic(err) // static budget and hash; cannot fail
	}
	return c
}()

func loadLocalTree(storeDir string, pid int) (*sigtree.Tree, error) {
	key := fmt.Sprintf("%s/%06d", storeDir, pid)
	if v, ok := workerTreeCache.Load(key); ok {
		return v.(*sigtree.Tree), nil
	}
	path := filepath.Join(storeDir, "_index", fmt.Sprintf("local-%06d.sigtree", pid))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rpc: opening local index for partition %d: %w", pid, err)
	}
	defer f.Close()
	tree, err := sigtree.ReadTree(f)
	if err != nil {
		return nil, fmt.Errorf("rpc: parsing local index for partition %d: %w", pid, err)
	}
	workerTreeCache.Store(key, tree)
	return tree, nil
}

// KNNPartition prune-scans one partition against the query and returns the
// local top-k within the threshold.
func (w *Worker) KNNPartition(args KNNPartitionArgs, reply *KNNPartitionReply) error {
	if args.K < 1 {
		return fmt.Errorf("rpc: k must be positive, got %d", args.K)
	}
	st, err := storage.Open(args.StoreDir)
	if err != nil {
		return err
	}
	tree, err := loadLocalTree(args.StoreDir, args.PID)
	if err != nil {
		return err
	}
	paa, err := ts.PAA(args.Query, args.WordLen)
	if err != nil {
		return err
	}
	entries, _, err := tree.PruneCollect(paa, len(args.Query), args.Threshold)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		reply.Neighbors = []knn.Neighbor{}
		return nil
	}
	data, hit, err := workerDataCache.Get(partKey{dir: args.StoreDir, pid: args.PID},
		func() (*pcache.Partition, error) {
			rids, values, err := st.ReadPartitionArena(args.PID)
			if err != nil {
				return nil, err
			}
			return pcache.NewPartition(rids, values, st.SeriesLen())
		})
	if err != nil {
		return err
	}
	if hit {
		reply.CacheHit = true
	}
	h := knn.NewHeap(args.K)
	for _, e := range entries {
		s, ok := data.Series(e.RID)
		if !ok {
			return fmt.Errorf("rpc: partition %d missing record %d", args.PID, e.RID)
		}
		reply.Candidates++
		bound := h.Bound()
		if bound > args.Threshold {
			bound = args.Threshold
		}
		if d2, ok2 := ts.SquaredDistanceEarlyAbandon(args.Query, s, bound*bound); ok2 {
			h.Offer(knn.Neighbor{RID: e.RID, Dist: sqrtf(d2)})
		}
	}
	reply.Neighbors = h.Sorted()
	w.track("KNNPartition", int64(len(entries)))
	return nil
}

// DistKNN runs the Multi-Partitions Access strategy with the partition scans
// distributed over the worker pool: the coordinator routes the query through
// the global tree (read from the store's index directory), obtains the
// threshold from the query's primary partition, then scatters the sibling
// scans. Results match the single-process KNNMultiPartition except that the
// threshold is taken as the primary partition's full top-k bound (a
// one-partition scan rather than a target-node probe), which can only
// tighten it.
func DistKNN(pool *Pool, storeDir string, cfg core.Config, q ts.Series, k int) ([]knn.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("rpc: k must be positive, got %d", k)
	}
	global, err := core.ReadGlobalTree(storeDir)
	if err != nil {
		return nil, err
	}
	router := core.NewRouter(global)
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		return nil, err
	}
	sig, err := codec.FromSeries(q, cfg.InitialBits)
	if err != nil {
		return nil, err
	}
	pids := router.CandidatePIDs(sig)
	if len(pids) == 0 {
		return nil, fmt.Errorf("rpc: no partition for query signature")
	}
	primary := pids[0]

	// Threshold from the primary partition (worker-side scan).
	var seed KNNPartitionReply
	err = pool.clients[0].Call("Worker.KNNPartition", KNNPartitionArgs{
		StoreDir: storeDir, PID: primary, Query: q, K: k,
		Threshold: inf(), WordLen: cfg.WordLen,
	}, &seed)
	if err != nil {
		return nil, err
	}
	h := knn.NewHeap(k)
	for _, n := range seed.Neighbors {
		h.Offer(n)
	}
	threshold := h.Bound()

	// Sibling partitions, capped at pth, scattered across workers.
	siblings := router.SiblingPIDs(sig)
	var targets []int
	for _, pid := range siblings {
		if pid != primary {
			targets = append(targets, pid)
		}
	}
	if len(targets) > cfg.PartitionThreshold {
		targets = targets[:cfg.PartitionThreshold]
	}
	sort.Ints(targets)
	chunks := chunk(targets, pool.Size())
	replies := make([][]KNNPartitionReply, pool.Size())
	err = pool.scatter(func(i int) error {
		replies[i] = make([]KNNPartitionReply, len(chunks[i]))
		for j, pid := range chunks[i] {
			err := pool.clients[i].Call("Worker.KNNPartition", KNNPartitionArgs{
				StoreDir: storeDir, PID: pid, Query: q, K: k,
				Threshold: threshold, WordLen: cfg.WordLen,
			}, &replies[i][j])
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range replies {
		for _, r := range rs {
			for _, n := range r.Neighbors {
				h.Offer(n)
			}
		}
	}
	return h.Sorted(), nil
}
