package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	netrpc "net/rpc"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// The deterministic fault-injection suite behind ISSUE 4's acceptance
// criteria. Every test arms a seeded faultinj schedule, so a failure
// reproduces exactly: go test -race -run TestFaultInjection ./internal/...

// startFaultWorkers launches n in-process workers whose listeners route all
// connection I/O through the armed faultinj schedule. Worker i serves as id
// "w<i>" and its conns are labeled "w<i>".
func startFaultWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		go Serve(faultinj.WrapListener(ln, fmt.Sprintf("w%d", i)), fmt.Sprintf("w%d", i))
	}
	return addrs
}

// faultPolicy is a retry policy tuned for tests: short timeouts so hung calls
// abandon quickly, deterministic backoff jitter, and a breaker that retires a
// dead worker after two consecutive failures.
func faultPolicy() Policy {
	pol := DefaultPolicy()
	pol.CallTimeout = time.Second
	pol.MaxAttempts = 2
	pol.BaseDelay = 5 * time.Millisecond
	pol.BreakerThreshold = 2
	pol.BreakerCooldown = 30 * time.Second
	pol.Seed = 1
	return pol
}

// writeTestStore generates a small random-walk dataset store.
func writeTestStore(t *testing.T, n int64) (string, dataset.Generator) {
	t.Helper()
	g, err := dataset.New(dataset.RandomWalk, 32)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(t.TempDir(), "src")
	if _, err := dataset.WriteStore(g, 5, n, srcDir, 500, true); err != nil {
		t.Fatal(err)
	}
	return srcDir, g
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 400
	cfg.LMaxSize = 40
	cfg.SamplePct = 0.25
	return cfg
}

// A worker hung forever in Spill must not sink the build: after retries time
// out, its chunk is reassigned to the survivors, and because spill
// directories are keyed by chunk (not worker) and workers clear partial
// output before writing, the finished index is byte-for-byte equivalent to a
// fault-free build — same record counts, same partitions, same query answers.
func TestFaultInjectionBuildSpillHang(t *testing.T) {
	const n = 3000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: PointWorkerSpill, Label: "w1", Kind: faultinj.KindHang,
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	dstDir := filepath.Join(t.TempDir(), "dst")
	stats, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("build with hung worker failed instead of failing over: %v", err)
	}
	faultinj.Disable()
	if stats.Reassigned == 0 {
		t.Error("no chunks reassigned despite a permanently hung worker")
	}
	if stats.Records != n {
		t.Errorf("build routed %d records, want %d", stats.Records, n)
	}
	if len(sched.Events()) == 0 {
		t.Fatal("schedule never fired; test exercised nothing")
	}

	// The degraded-path build must equal the in-process build exactly.
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	total, err := ix.Store.TotalRecords()
	if err != nil || total != n {
		t.Fatalf("store holds %d records (%v), want %d", total, err, n)
	}
	src, err := storage.Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	localIx, err := core.Build(cl, src, filepath.Join(t.TempDir(), "local"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumPartitions() != localIx.NumPartitions() {
		t.Errorf("partition count differs: failover=%d local=%d", ix.NumPartitions(), localIx.NumPartitions())
	}
	for i := int64(0); i < 3; i++ {
		q := dataset.Record(g, 5, 500+i).Values.ZNormalize()
		a, _, err := ix.KNNMultiPartition(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := localIx.KNNMultiPartition(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", i, len(a), len(b))
		}
		for j := range a {
			if a[j].RID != b[j].RID || a[j].Dist != b[j].Dist {
				t.Fatalf("query %d result %d differs: failover=%+v local=%+v", i, j, a[j], b[j])
			}
		}
	}
}

// An exact query with one worker hung in KNNPartition must fail over to the
// survivors and return the exact answer — never a silently truncated one.
func TestFaultInjectionExactKNNHungWorker(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	localIx, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Record(g, 5, 42).Values.ZNormalize()
	const k = 5
	want, _, err := localIx.KNNExact(q, k)
	if err != nil {
		t.Fatal(err)
	}

	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: PointWorkerKNN, Label: "w1", Kind: faultinj.KindHang,
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
	faultinj.Disable()
	if err != nil {
		// Failing loudly is within contract, but with two healthy workers
		// failover must succeed here.
		t.Fatalf("exact query failed despite live survivors: %v", err)
	}
	if st.Degraded || st.PartitionsSkipped != 0 {
		t.Fatalf("exact query reported degradation: %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d exact results", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID || got[i].Dist != want[i].Dist {
			t.Fatalf("exact result %d differs: failover=%+v local=%+v", i, got[i], want[i])
		}
	}
}

// When a partition is unreadable on every worker, the approximate query
// degrades — partial answer plus Degraded/PartitionsSkipped — while the exact
// forms (kNN and range) fail loudly.
func TestFaultInjectionDegradedApprox(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	// Poison the query's primary partition and the globally nearest partition
	// (usually the same pid) at the storage layer: every worker fails the
	// read, so failover cannot save the scan.
	q := dataset.Record(g, 5, 99).Values.ZNormalize()
	global, err := core.ReadGlobalTree(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := codec.FromSeries(q, cfg.InitialBits)
	if err != nil {
		t.Fatal(err)
	}
	pids := core.NewRouter(global).CandidatePIDs(sig)
	if len(pids) == 0 {
		t.Fatal("no candidate partition")
	}
	primary := pids[0]
	paa, err := ts.PAA(q, cfg.WordLen)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := core.GlobalPartitionBounds(global, paa, len(q))
	if err != nil {
		t.Fatal(err)
	}
	nearest := bounds[0].PID
	sched := faultinj.NewSchedule(
		faultinj.Rule{Point: "storage.read", Label: fmt.Sprintf("part-%06d.bin", primary), Kind: faultinj.KindErr},
		faultinj.Rule{Point: "storage.read", Label: fmt.Sprintf("part-%06d.bin", nearest), Kind: faultinj.KindErr},
	)
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	const k = 5
	res, st, err := DistKNN(ctx, pool, dstDir, cfg, q, k)
	if err != nil {
		t.Fatalf("approximate query must degrade, not fail: %v", err)
	}
	if !st.Degraded || st.PartitionsSkipped == 0 {
		t.Fatalf("partition loss not reported: %+v", st)
	}
	if len(res) == 0 {
		t.Error("degraded query returned no results at all")
	}

	// Exact forms must refuse to return a partial answer.
	if _, _, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k); err == nil {
		t.Error("exact kNN returned a result over an unreadable partition")
	}
	if _, _, err := DistRange(ctx, pool, dstDir, cfg, q, 100); err == nil {
		t.Error("range query returned a result over an unreadable partition")
	}
	if len(sched.Events()) == 0 {
		t.Fatal("schedule never fired; test exercised nothing")
	}

	// With the fault cleared the same pool recovers full fidelity.
	faultinj.Disable()
	res2, st2, err := DistKNN(ctx, pool, dstDir, cfg, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Degraded || st2.PartitionsSkipped != 0 {
		t.Fatalf("recovered query still degraded: %+v", st2)
	}
	if len(res2) != k {
		t.Fatalf("recovered query returned %d results, want %d", len(res2), k)
	}
}

// Seeded random transport faults (connection resets and delays on the worker
// wire) must never change query answers: the pool reconnects and retries, and
// the same seed produces the same fault sequence run after run.
func TestFaultInjectionSeedMatrix(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	// Retries strictly exceed the fault budget per worker (3 single-shot
	// rules), so transport faults alone can never exhaust a call, and the
	// breaker threshold exceeds it too — the outcome is deterministically a
	// full-fidelity answer for every seed.
	pol := faultPolicy()
	pol.MaxAttempts = 5
	pol.BreakerThreshold = 10
	pool, err := DialContext(ctx, addrs, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	const k = 8
	queries := make([]ts.Series, 3)
	for i := range queries {
		queries[i] = dataset.Record(g, 5, 200+int64(i)).Values.ZNormalize()
	}
	baseline := make([][]int64, len(queries))
	for i, q := range queries {
		res, _, err := DistKNN(ctx, pool, dstDir, cfg, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range res {
			baseline[i] = append(baseline[i], nb.RID)
		}
	}

	points := []string{faultinj.PointConnRead, faultinj.PointConnWrite}
	for seed := int64(1); seed <= 3; seed++ {
		for run := 0; run < 2; run++ {
			sched := faultinj.RandomSchedule(seed, points, 3, 6)
			faultinj.Enable(sched)
			fired := 0
			for i, q := range queries {
				res, st, err := DistKNN(ctx, pool, dstDir, cfg, q, k)
				if err != nil {
					t.Fatalf("seed %d run %d query %d: %v", seed, run, i, err)
				}
				if st.Degraded {
					t.Fatalf("seed %d run %d query %d degraded under transport faults", seed, run, i)
				}
				if len(res) != len(baseline[i]) {
					t.Fatalf("seed %d run %d query %d: %d results, want %d", seed, run, i, len(res), len(baseline[i]))
				}
				for j, nb := range res {
					if nb.RID != baseline[i][j] {
						t.Fatalf("seed %d run %d query %d result %d: rid %d, want %d",
							seed, run, i, j, nb.RID, baseline[i][j])
					}
				}
			}
			fired = len(sched.Events())
			faultinj.Disable()
			if fired == 0 {
				t.Errorf("seed %d run %d: schedule never fired", seed, run)
			}
		}
	}
}

// Serve drains on listener close: calls already in flight complete with a
// real response, and once clients hang up no server goroutines remain.
func TestServeDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- Serve(ln, "drain") }()

	client, err := netrpc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	// Delay SampleConvert server-side so the calls are mid-flight when the
	// listener closes. The call then proceeds and fails store validation —
	// an application error, which still proves a full request/response cycle.
	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: PointWorkerSampleConvert, Kind: faultinj.KindDelay, Sleep: 300 * time.Millisecond,
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	const calls = 3
	done := make([]*netrpc.Call, calls)
	for i := 0; i < calls; i++ {
		var reply SampleConvertReply
		done[i] = client.Go("Worker.SampleConvert",
			SampleConvertArgs{StoreDir: t.TempDir(), WordLen: 8, Bits: 2}, &reply, nil)
	}
	time.Sleep(50 * time.Millisecond) // let the calls reach the worker
	ln.Close()

	for i, c := range done {
		<-c.Done
		var se netrpc.ServerError
		if c.Error == nil || !errors.As(c.Error, &se) {
			t.Fatalf("in-flight call %d did not complete with a server reply: %v", i, c.Error)
		}
	}
	client.Close()
	if err := <-served; err == nil {
		t.Error("Serve returned nil after listener close")
	}

	// All per-connection goroutines must exit once the client hangs up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
