package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/storage"
)

// k-way partition replication. The canonical clustered store stays at the
// store directory; each replica of a partition lives in a per-owner store at
// <store>/_replicas/<owner-addr>/ — a full storage.Store plus copies of the
// partition's local index files, so a worker scans its replica with the
// unchanged KNNPartition/RangePartition path. Placement uses rendezvous
// (highest-random-weight) hashing: deterministic given the worker set, and
// moving one worker in or out reassigns only the partitions that scored it
// highest — no global reshuffle. The PartitionMap records the placement and
// the expected content checksum of every partition, versioned so the repair
// loop, the coordinator ensemble, and query routing agree on which placement
// is current.

// Replication telemetry.
var (
	mReplRepairs = obs.NewCounterVec("tardis_repl_repairs_total",
		"Partition replicas re-replicated by the anti-entropy loop, by reason (missing, mismatch).",
		"reason")
	mReplUnderReplicated = obs.NewGauge("tardis_repl_underreplicated_count",
		"Partitions below their replication factor at the last repair pass.")
	mReplCopied = obs.NewCounter("tardis_repl_partitions_copied_total",
		"Partition replica copies completed (build fan-out and repair).")
	mReplRepairDuration = obs.NewHistogram("tardis_repl_repair_duration_seconds",
		"Wall time of one anti-entropy repair pass.", nil)
	mReplMapVersion = obs.NewGauge("tardis_repl_map_version_info",
		"Version of the PartitionMap last written or loaded by this process.")
)

const (
	replReasonMissing  = "missing"
	replReasonMismatch = "mismatch"
)

// replicasSubdir holds the per-owner replica stores inside a clustered store.
const replicasSubdir = "_replicas"

// partitionMapName is the PartitionMap file inside the store's index dir.
const partitionMapName = "partition_map.json"

// ReplicaSet is one partition's placement: the owner addresses in rendezvous
// preference order, plus the expected CRC32C content checksum every replica
// must agree on.
type ReplicaSet struct {
	PID      int      `json:"pid"`
	Replicas []string `json:"replicas"`
	Checksum uint32   `json:"checksum"`
}

// PartitionMap is the versioned placement of every partition. Versions only
// move forward: the build writes version 1, each repair pass that changes
// placement bumps it, and the coordinator ensemble commits the version so
// every consumer converges on the same placement.
type PartitionMap struct {
	Version     uint64       `json:"version"`
	Replication int          `json:"replication"`
	Entries     []ReplicaSet `json:"entries"`
}

// Owners returns pid's owner addresses in preference order, or nil when the
// map does not cover pid.
func (m *PartitionMap) Owners(pid int) []string {
	for i := range m.Entries {
		if m.Entries[i].PID == pid {
			return m.Entries[i].Replicas
		}
	}
	return nil
}

func partitionMapPath(storeDir string) string {
	return filepath.Join(storeDir, "_index", partitionMapName)
}

// Save atomically writes the map into the store's index directory
// (tmp + rename, so readers never see a torn map).
func (m *PartitionMap) Save(storeDir string) error {
	path := partitionMapPath(storeDir)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("rpc: saving partition map: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("rpc: saving partition map: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rpc: saving partition map: %w", err)
	}
	mReplMapVersion.Set(int64(m.Version)) //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
	return nil
}

// LoadPartitionMap reads the store's partition map. A store built without
// replication has none: that returns (nil, nil) and callers fall back to
// unreplicated routing.
func LoadPartitionMap(storeDir string) (*PartitionMap, error) {
	data, err := os.ReadFile(partitionMapPath(storeDir))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("rpc: reading partition map: %w", err)
	}
	var m PartitionMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("rpc: parsing partition map: %w", err)
	}
	mReplMapVersion.Set(int64(m.Version))
	return &m, nil
}

// sanitizeAddr turns a worker address into a path segment (":" and "/" are
// not portable inside file names).
func sanitizeAddr(addr string) string {
	r := strings.NewReplacer(":", "_", "/", "_", "\\", "_")
	return r.Replace(addr)
}

// ReplicaDir returns the store directory holding addr's replicas of the
// given clustered store.
func ReplicaDir(storeDir, addr string) string {
	return filepath.Join(storeDir, replicasSubdir, sanitizeAddr(addr))
}

// hrwScore is the rendezvous weight of (addr, pid): FNV-1a over the pair.
func hrwScore(addr string, pid int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, addr)
	io.WriteString(h, "#")
	io.WriteString(h, strconv.Itoa(pid))
	return h.Sum64()
}

// PlaceReplicas returns pid's r owners under rendezvous hashing: the r
// addresses with the highest hash score, in descending score order.
// Deterministic in the set (not the order) of addrs; r is capped at
// len(addrs).
func PlaceReplicas(addrs []string, pid, r int) []string {
	type scored struct {
		addr  string
		score uint64
	}
	ss := make([]scored, len(addrs))
	for i, a := range addrs {
		ss[i] = scored{addr: a, score: hrwScore(a, pid)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].addr < ss[j].addr
	})
	if r > len(ss) {
		r = len(ss)
	}
	out := make([]string, r)
	for i := range out {
		out[i] = ss[i].addr
	}
	return out
}

// NewPartitionMap places every partition across addrs at replication factor
// r (capped at len(addrs)). Checksums start zero; the build fills them from
// worker replies before saving.
func NewPartitionMap(addrs []string, pids []int, r int, version uint64) *PartitionMap {
	if r > len(addrs) {
		r = len(addrs)
	}
	m := &PartitionMap{Version: version, Replication: r}
	for _, pid := range pids {
		m.Entries = append(m.Entries, ReplicaSet{PID: pid, Replicas: PlaceReplicas(addrs, pid, r)})
	}
	return m
}

// --- routing table ---------------------------------------------------------

// replicaRouting is the query-side view of a PartitionMap: which workers may
// scan each partition, and which store directory each of them reads.
type replicaRouting struct {
	owners  map[int][]string
	version uint64
}

// loadRouting reads the store's partition map into a routing table, or nil
// when the store is unreplicated (every worker scans the canonical store).
func loadRouting(storeDir string) (*replicaRouting, error) {
	m, err := LoadPartitionMap(storeDir)
	if err != nil || m == nil {
		return nil, err
	}
	rt := &replicaRouting{owners: make(map[int][]string, len(m.Entries)), version: m.Version}
	for _, e := range m.Entries {
		rt.owners[e.PID] = e.Replicas
	}
	return rt, nil
}

// eligible returns the worker set allowed to scan pid (nil = any worker,
// used when rt itself is nil or the map does not cover pid).
func (rt *replicaRouting) eligible(pid int) map[string]bool {
	if rt == nil {
		return nil
	}
	owners := rt.owners[pid]
	if len(owners) == 0 {
		return nil
	}
	set := make(map[string]bool, len(owners))
	for _, a := range owners {
		set[a] = true
	}
	return set
}

// dirFor returns the store directory worker addr scans for pid: its replica
// store when it owns one, the canonical store otherwise.
func (rt *replicaRouting) dirFor(storeDir string, pid int, addr string) string {
	if rt == nil {
		return storeDir
	}
	for _, a := range rt.owners[pid] {
		if a == addr {
			return ReplicaDir(storeDir, addr)
		}
	}
	return storeDir
}

// replicaTasks builds one eachReplica task per pid.
func (rt *replicaRouting) tasks(pids []int) []replicaTask {
	out := make([]replicaTask, len(pids))
	for i, pid := range pids {
		out[i] = replicaTask{eligible: rt.eligible(pid)}
	}
	return out
}

// --- worker-side replication RPCs ------------------------------------------

// PointWorkerReplicate is the failpoint guarding Worker.Replicate.
const PointWorkerReplicate = "worker.Replicate"

// ReplicateArgs asks a worker to copy partitions from one store into a
// replica store, index files included.
type ReplicateArgs struct {
	// SrcDir is the store to copy from: the canonical store, or a healthy
	// replica during repair.
	SrcDir string
	// DstDir is the replica store to copy into, created if absent.
	DstDir string
	PIDs   []int
	Trace  obs.SpanContext
}

// ReplicateReply reports the content checksum of every copied partition, as
// computed from the bytes actually written — the coordinator cross-checks
// them against the canonical checksums.
type ReplicateReply struct {
	Checksums map[int]uint32
}

// Replicate copies the given partitions of SrcDir into the replica store at
// DstDir, rewriting each partition through a verifying read (a corrupt
// source fails the copy rather than propagating) and copying its local index
// files. Idempotent: existing destination partitions are rewritten.
func (w *Worker) Replicate(args ReplicateArgs, reply *ReplicateReply) (err error) {
	span := w.startSpan(args.Trace, "worker.replicate")
	defer func() { span.SetError(err); span.Finish() }()
	if err := faultinj.InjectAs(PointWorkerReplicate, w.ID); err != nil {
		return MarkRetryable(err)
	}
	src, err := storage.Open(args.SrcDir)
	if err != nil {
		return MarkRetryable(err)
	}
	dst, err := storage.Open(args.DstDir)
	if err != nil {
		dst, err = storage.CreateCompressed(args.DstDir, src.SeriesLen(), src.Compression())
		if err != nil {
			return MarkRetryable(err)
		}
	}
	reply.Checksums = make(map[int]uint32, len(args.PIDs))
	var records int64
	for _, pid := range args.PIDs {
		recs, err := src.ReadPartition(pid)
		if err != nil {
			return MarkRetryable(err)
		}
		if err := dst.DeletePartition(pid); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return MarkRetryable(err)
		}
		wtr, err := dst.NewWriter(pid)
		if err != nil {
			return MarkRetryable(err)
		}
		for _, r := range recs {
			if err := wtr.Write(r); err != nil {
				return MarkRetryable(err)
			}
		}
		if err := wtr.Close(); err != nil {
			return MarkRetryable(err)
		}
		reply.Checksums[pid] = wtr.ContentChecksum()
		if err := copyLocalIndex(args.SrcDir, args.DstDir, pid); err != nil {
			return MarkRetryable(err)
		}
		records += int64(len(recs))
		mReplCopied.Inc()
	}
	if err := dst.Sync(); err != nil {
		return MarkRetryable(err)
	}
	w.track("Replicate", records)
	return nil
}

// copyLocalIndex copies pid's local sigtree (and Bloom filter, when present)
// from one store's index dir into another's.
func copyLocalIndex(srcDir, dstDir string, pid int) error {
	if err := os.MkdirAll(filepath.Join(dstDir, "_index"), 0o755); err != nil {
		return err
	}
	names := []string{
		fmt.Sprintf("local-%06d.sigtree", pid),
		fmt.Sprintf("bloom-%06d.bin", pid),
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(srcDir, "_index", name))
		if errors.Is(err, fs.ErrNotExist) {
			continue // Bloom filters are optional
		}
		if err != nil {
			return err
		}
		dst := filepath.Join(dstDir, "_index", name)
		tmp := dst + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, dst); err != nil {
			return err
		}
	}
	return nil
}

// ChecksumArgs asks a worker for the content checksums of partitions in one
// store (typically its own replica store).
type ChecksumArgs struct {
	StoreDir string
	PIDs     []int
	Trace    obs.SpanContext
}

// ChecksumReply maps pid to its CRC32C content checksum. A pid absent from
// the map is missing or unreadable on this store — the repair loop treats
// both as "this replica needs re-replication".
type ChecksumReply struct {
	Checksums map[int]uint32
}

// ChecksumPartitions computes content checksums for the anti-entropy loop.
// An unopenable store or unreadable partition is reported by omission, not
// error: the caller's question is "which replicas are healthy here", and a
// broken one is a normal answer.
func (w *Worker) ChecksumPartitions(args ChecksumArgs, reply *ChecksumReply) (err error) {
	span := w.startSpan(args.Trace, "worker.checksum_partitions")
	defer func() { span.SetError(err); span.Finish() }()
	reply.Checksums = map[int]uint32{}
	st, err := storage.Open(args.StoreDir)
	if err != nil {
		return nil // no store here: every pid is missing
	}
	for _, pid := range args.PIDs {
		sum, err := st.VerifyPartitionChecksum(pid)
		if err != nil {
			continue
		}
		reply.Checksums[pid] = sum
	}
	w.track("ChecksumPartitions", int64(len(args.PIDs)))
	return nil
}

// --- anti-entropy repair ---------------------------------------------------

// MapCoordinator commits PartitionMap versions to the coordinator ensemble.
// Implemented by raftlite's Registry (in-process) and Client (over RPC); nil
// means "no ensemble, the on-disk map is authoritative".
type MapCoordinator interface {
	ProposeMap(version uint64, data []byte) error
}

// RepairStats summarizes one anti-entropy pass.
type RepairStats struct {
	// Partitions is the number of map entries examined.
	Partitions int
	// Missing counts replicas absent from their owner (or the owner dead);
	// Mismatched counts replicas whose content checksum diverged.
	Missing    int
	Mismatched int
	// Repaired counts replica copies completed this pass.
	Repaired int
	// Unrepaired counts partitions still under-replicated after the pass
	// (not enough live workers, or every copy failed).
	Unrepaired int
	// MapVersion is the placement version after the pass; Rebalanced reports
	// whether this pass changed placement (and hence bumped the version).
	MapVersion uint64
	Rebalanced bool
	Duration   time.Duration
}

// Repairer is the anti-entropy loop: it compares per-partition content
// checksums across replicas, re-replicates missing or diverged ones onto
// live workers, and publishes any placement change as a new PartitionMap
// version (to disk, and to the coordinator ensemble when one is attached).
type Repairer struct {
	Pool     *Pool
	StoreDir string
	// Coord, when non-nil, receives each new map version for majority commit.
	Coord MapCoordinator
	// Interval is the background loop period (default 30s).
	Interval time.Duration
	// Logf, when non-nil, receives one line per completed pass.
	Logf func(format string, args ...any)

	stop chan struct{}
	done chan struct{}
}

// RunOnce executes one repair pass. A store without a partition map is a
// no-op.
func (r *Repairer) RunOnce(ctx context.Context) (RepairStats, error) {
	start := time.Now()
	var rs RepairStats
	m, err := LoadPartitionMap(r.StoreDir)
	if err != nil || m == nil {
		return rs, err
	}
	rs.Partitions = len(m.Entries)
	rs.MapVersion = m.Version //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy

	// Liveness: a worker that answers Ping is a valid placement target.
	statuses, _ := r.Pool.Ping(ctx)
	live := make([]string, 0, len(statuses))
	for _, s := range statuses {
		if s.Err == nil {
			live = append(live, s.Addr)
		}
	}
	if len(live) == 0 {
		return rs, fmt.Errorf("rpc: repair: no live workers")
	}
	sort.Strings(live)

	// Gather every live owner's view of its replicas in one RPC per worker.
	perOwner := map[string][]int{}
	for _, e := range m.Entries {
		for _, a := range e.Replicas { //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
			perOwner[a] = append(perOwner[a], e.PID)
		}
	}
	sums := map[string]map[int]uint32{}
	for _, addr := range live {
		pids := perOwner[addr]
		if len(pids) == 0 {
			continue
		}
		w := r.Pool.worker(addr)
		if w == nil {
			continue
		}
		var reply ChecksumReply
		if err := r.Pool.callWorker(ctx, w, "Worker.ChecksumPartitions", ChecksumArgs{
			StoreDir: ReplicaDir(r.StoreDir, addr), PIDs: pids,
		}, &reply); err != nil {
			continue // treated as all-missing for this owner
		}
		sums[addr] = reply.Checksums
	}
	liveSet := map[string]bool{}
	for _, a := range live {
		liveSet[a] = true
	}

	rebalanced := false
	for i := range m.Entries {
		e := &m.Entries[i]
		// Healthy replicas: live owner, partition present, checksum agrees.
		healthy := make([]string, 0, len(e.Replicas)) //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
		for _, a := range e.Replicas {                //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
			sum, ok := sums[a][e.PID]
			switch {
			case !liveSet[a] || !ok:
				rs.Missing++
			case sum != e.Checksum:
				rs.Mismatched++
			default:
				healthy = append(healthy, a)
			}
		}
		// Desired placement over the live set; keep healthy copies that are
		// no longer preferred rather than deleting data.
		desired := PlaceReplicas(live, e.PID, m.Replication)
		isHealthy := map[string]bool{}
		for _, a := range healthy {
			isHealthy[a] = true
		}
		newOwners := append([]string(nil), healthy...)
		for _, target := range desired {
			if len(newOwners) >= m.Replication {
				break
			}
			if isHealthy[target] {
				continue
			}
			reason := replReasonMissing
			if sum, ok := sums[target][e.PID]; ok && sum != e.Checksum {
				reason = replReasonMismatch
			}
			if r.repairOne(ctx, e, target, healthy, reason) {
				newOwners = append(newOwners, target)
				rs.Repaired++
			}
		}
		if len(newOwners) < m.Replication {
			rs.Unrepaired++
		}
		if !sameOwners(e.Replicas, newOwners) { //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
			e.Replicas = newOwners //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
			rebalanced = true
		}
	}
	mReplUnderReplicated.Set(int64(rs.Unrepaired))

	if rebalanced {
		m.Version++ //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
		if err := m.Save(r.StoreDir); err != nil {
			return rs, err
		}
		rs.MapVersion = m.Version //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
		rs.Rebalanced = true
		if r.Coord != nil {
			data, err := json.Marshal(m)
			if err != nil {
				return rs, err
			}
			if err := r.Coord.ProposeMap(m.Version, data); err != nil && r.Logf != nil { //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
				r.Logf("repair: map v%d commit failed: %v", m.Version, err) //tardislint:ignore racecheck cross-instance pairing: repair mutates a private map loaded from disk; Server.mu-guarded readers hold their own copy
			}
		}
	}
	rs.Duration = time.Since(start)
	mReplRepairDuration.Observe(rs.Duration.Seconds())
	if r.Logf != nil {
		r.Logf("repair: %d partitions, %d missing, %d mismatched, %d repaired, %d unrepaired, map v%d",
			rs.Partitions, rs.Missing, rs.Mismatched, rs.Repaired, rs.Unrepaired, rs.MapVersion)
	}
	return rs, nil
}

// repairOne copies one partition onto target from the first healthy replica
// (falling back to the canonical store) and reports success. The copy runs
// on the target worker itself, pulling into its own replica store.
func (r *Repairer) repairOne(ctx context.Context, e *ReplicaSet, target string, healthy []string, reason string) bool {
	srcDir := r.StoreDir
	if len(healthy) > 0 {
		srcDir = ReplicaDir(r.StoreDir, healthy[0])
	}
	w := r.Pool.worker(target)
	if w == nil {
		return false
	}
	var reply ReplicateReply
	err := r.Pool.callWorker(ctx, w, "Worker.Replicate", ReplicateArgs{
		SrcDir: srcDir, DstDir: ReplicaDir(r.StoreDir, target), PIDs: []int{e.PID},
	}, &reply)
	if err != nil || reply.Checksums[e.PID] != e.Checksum {
		return false
	}
	mReplRepairs.With(reason).Inc()
	return true
}

// sameOwners compares two owner lists as sets (placement order is a
// preference, not an identity).
func sameOwners(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := map[string]bool{}
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		if !in[x] {
			return false
		}
	}
	return true
}

// worker returns the state for addr, or nil when it is not in the pool.
func (p *Pool) worker(addr string) *workerState {
	for _, w := range p.snapshot() {
		if w.addr == addr {
			return w
		}
	}
	return nil
}

// Start launches the background repair loop; Stop halts it and waits.
func (r *Repairer) Start() {
	if r.Interval <= 0 {
		r.Interval = 30 * time.Second
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.Interval)
				_, err := r.RunOnce(ctx)
				cancel()
				if err != nil && r.Logf != nil {
					r.Logf("repair: pass failed: %v", err)
				}
			}
		}
	}()
}

// Stop halts the background loop started by Start.
func (r *Repairer) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
}
