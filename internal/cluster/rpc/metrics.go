package rpc

import "github.com/tardisdb/tardis/internal/obs"

// Coordinator-side RPC telemetry. Method names are the fixed set of
// Worker.* RPC methods and outcomes/states are code-defined enums, so every
// label here has bounded cardinality.
var (
	mRPCCalls = obs.NewCounterVec("tardis_rpc_calls_total",
		"Completed pool calls by method and outcome (ok, app_error, worker_down, canceled).",
		"method", "outcome")
	mRPCDuration = obs.NewHistogramVec("tardis_rpc_call_duration_seconds",
		"Wall time of pool calls including retries and backoff.", nil, "method")
	mRPCRetries = obs.NewCounterVec("tardis_rpc_retries_total",
		"Retry attempts (second and later tries) per method.", "method")
	mBreakerTransitions = obs.NewCounterVec("tardis_rpc_breaker_transitions_total",
		"Per-worker circuit breaker state transitions (to open, half_open, closed).", "state")
	mTasksReassigned = obs.NewCounter("tardis_rpc_tasks_reassigned_total",
		"Fan-out task attempts rerouted to another worker after a worker-down failure.")
	mTasksSkipped = obs.NewCounter("tardis_rpc_tasks_skipped_total",
		"Fan-out tasks abandoned in best-effort mode because no surviving worker could run them.")
	mBuildStageDuration = obs.NewHistogramVec("tardis_rpc_build_stage_duration_seconds",
		"Wall time of distributed build stages on the coordinator.", nil, "stage")
)

const (
	outcomeOK         = "ok"
	outcomeAppError   = "app_error"
	outcomeWorkerDown = "worker_down"
	outcomeCanceled   = "canceled"

	breakerOpen     = "open"
	breakerHalfOpen = "half_open"
	breakerClosed   = "closed"
)
