package rpc

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/obs"
)

// TestTracePropagationAcrossRPC proves the span identity injected into RPC
// args survives the wire: a distributed kNN under fault injection yields one
// connected trace tree — coordinator root, rpc.call children, worker-side
// partition scans and cache loads — all sharing the coordinator's trace ID,
// including the span for the injected (and then retried) failing attempt.
func TestTracePropagationAcrossRPC(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	// The first KNNPartition call landing on w1 fails with a retryable
	// error; the retry succeeds, so the trace must show both attempts.
	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: PointWorkerKNN, Label: "w1", Kind: faultinj.KindErr, Hits: []int{1},
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	obs.SetTracing(true)
	t.Cleanup(func() { obs.SetTracing(false) })
	obs.ResetSpans()

	q := dataset.Record(g, 5, 42).Values.ZNormalize()
	res, st, err := DistKNN(ctx, pool, dstDir, cfg, q, 5)
	faultinj.Disable()
	obs.SetTracing(false)
	if err != nil {
		t.Fatalf("traced query failed: %v", err)
	}
	if len(res) == 0 || st.Degraded {
		t.Fatalf("query degraded or empty under a retryable fault: %d results, %+v", len(res), st)
	}
	if len(sched.Events()) == 0 {
		t.Fatal("failpoint never fired; test exercised nothing")
	}

	spans := obs.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	byID := make(map[uint64]*obs.Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}

	var root *obs.Span
	names := make(map[string]int)
	for _, s := range spans {
		names[s.Name]++
		if s.ParentID == 0 {
			if root != nil {
				t.Fatalf("two roots: %q and %q", root.Name, s.Name)
			}
			root = s
		}
	}
	if root == nil || root.Name != "query.dist_knn" {
		t.Fatalf("missing query.dist_knn root; spans: %v", names)
	}

	// One connected tree: every span shares the root's trace ID and every
	// non-root span's parent was itself collected. In-process workers share
	// the collector, so worker spans only satisfy this if the SpanContext
	// embedded in the RPC args round-tripped intact.
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %q has trace %x, want %x", s.Name, s.TraceID, root.TraceID)
		}
		if s.ParentID != 0 {
			if _, ok := byID[s.ParentID]; !ok {
				t.Errorf("span %q parent %x not in collected set", s.Name, s.ParentID)
			}
		}
	}

	for _, want := range []string{"rpc.call", "worker.knn_partition", "worker.partition_load"} {
		if names[want] == 0 {
			t.Errorf("no %q spans; got %v", want, names)
		}
	}

	// The injected failure's worker span is part of the same tree, carrying
	// the fault, and a sibling retry for the same partition succeeded.
	var failed, retried bool
	for _, s := range spans {
		if s.Name != "worker.knn_partition" || s.Err() == "" {
			continue
		}
		if !strings.Contains(s.Err(), "injected") {
			t.Errorf("worker span failed with unexpected error %q", s.Err())
		}
		failed = true
		pid := attrValue(s, "pid")
		for _, o := range spans {
			if o.Name == "worker.knn_partition" && o.Err() == "" && attrValue(o, "pid") == pid {
				retried = true
			}
		}
	}
	if !failed {
		t.Error("no worker span recorded the injected failure")
	}
	if !retried {
		t.Error("no successful retry span for the failed partition")
	}

	// Worker scans hang off rpc.call spans, which hang off the root: the
	// tree has the coordinator → transport → worker shape end to end.
	for _, s := range spans {
		if s.Name != "worker.knn_partition" {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok || parent.Name != "rpc.call" {
			t.Errorf("worker.knn_partition parent is %v, want rpc.call", parent)
			continue
		}
		if parent.ParentID != root.SpanID {
			t.Errorf("rpc.call parent %x is not the query root %x", parent.ParentID, root.SpanID)
		}
	}
	for _, s := range spans {
		if s.Name != "worker.partition_load" {
			continue
		}
		if parent, ok := byID[s.ParentID]; !ok || parent.Name != "worker.knn_partition" {
			t.Errorf("worker.partition_load parent is %v, want worker.knn_partition", parent)
		}
	}
}

func attrValue(s *obs.Span, key string) string {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
