package rpc

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
)

// Rendezvous placement: deterministic in the worker set, independent of input
// order, and minimally disruptive — adding a worker only pulls partitions
// onto the newcomer, never shuffles placement among the incumbents.
func TestPlaceReplicasProperties(t *testing.T) {
	three := []string{"10.0.0.1:7701", "10.0.0.2:7701", "10.0.0.3:7701"}
	shuffled := []string{three[2], three[0], three[1]}
	four := append(append([]string(nil), three...), "10.0.0.4:7701")

	counts := map[string]int{}
	for pid := 0; pid < 200; pid++ {
		owners := PlaceReplicas(three, pid, 2)
		if len(owners) != 2 {
			t.Fatalf("pid %d: %d owners, want 2", pid, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("pid %d: duplicate owner %s", pid, owners[0])
		}
		if again := PlaceReplicas(three, pid, 2); !reflect.DeepEqual(owners, again) {
			t.Fatalf("pid %d: placement not deterministic: %v vs %v", pid, owners, again)
		}
		if other := PlaceReplicas(shuffled, pid, 2); !reflect.DeepEqual(owners, other) {
			t.Fatalf("pid %d: placement depends on address order: %v vs %v", pid, owners, other)
		}
		for _, a := range owners {
			counts[a]++
		}

		// Minimal movement: with a fourth worker, an incumbent loses a
		// partition only to the newcomer.
		grown := PlaceReplicas(four, pid, 2)
		was := map[string]bool{owners[0]: true, owners[1]: true}
		for _, a := range grown {
			if a != four[3] && !was[a] {
				t.Fatalf("pid %d: adding a worker reshuffled incumbents: %v -> %v", pid, owners, grown)
			}
		}
	}
	// Sanity on balance: no worker should own everything or nothing.
	for _, a := range three {
		if counts[a] == 0 || counts[a] == 400 {
			t.Fatalf("degenerate placement balance: %v", counts)
		}
	}

	// Replication factor is capped at the worker count.
	if got := PlaceReplicas(three, 1, 9); len(got) != 3 {
		t.Fatalf("r above worker count gave %d owners, want 3", len(got))
	}
}

func TestPartitionMapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := LoadPartitionMap(dir)
	if err != nil || m != nil {
		t.Fatalf("empty store: map=%v err=%v, want nil,nil", m, err)
	}
	in := NewPartitionMap([]string{"a:1", "b:1", "c:1"}, []int{0, 3, 7}, 2, 5)
	for i := range in.Entries {
		in.Entries[i].Checksum = uint32(100 + i)
	}
	if err := in.Save(dir); err != nil {
		t.Fatal(err)
	}
	out, err := LoadPartitionMap(dir)
	if err != nil || out == nil {
		t.Fatalf("reload: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	if got := out.Owners(3); len(got) != 2 {
		t.Fatalf("Owners(3) = %v", got)
	}
	if got := out.Owners(99); got != nil {
		t.Fatalf("Owners of unknown pid = %v, want nil", got)
	}
}

func TestReplicaDirSanitizesAddr(t *testing.T) {
	dir := ReplicaDir("/data/idx", "10.0.0.1:7701")
	base := filepath.Base(dir)
	if strings.ContainsAny(base, ":/\\") {
		t.Fatalf("replica dir segment %q not sanitized", base)
	}
	if filepath.Dir(filepath.Dir(dir)) != "/data/idx" {
		t.Fatalf("replica dir %q not under the store's _replicas", dir)
	}
}

// A nil routing table (unreplicated store) lets any worker scan the canonical
// store; a real one confines each partition to its owners and points each
// owner at its replica store.
func TestReplicaRoutingFallbacks(t *testing.T) {
	var rt *replicaRouting
	if rt.eligible(4) != nil {
		t.Fatal("nil routing restricted eligibility")
	}
	if got := rt.dirFor("/idx", 4, "a:1"); got != "/idx" {
		t.Fatalf("nil routing dirFor = %q", got)
	}
	tasks := rt.tasks([]int{1, 2})
	if len(tasks) != 2 || tasks[0].eligible != nil {
		t.Fatalf("nil routing tasks = %+v", tasks)
	}

	rt = &replicaRouting{owners: map[int][]string{4: {"a:1", "b:1"}}, version: 1}
	el := rt.eligible(4)
	if !el["a:1"] || !el["b:1"] || len(el) != 2 {
		t.Fatalf("eligible(4) = %v", el)
	}
	if rt.eligible(9) != nil {
		t.Fatal("uncovered pid restricted eligibility")
	}
	if got := rt.dirFor("/idx", 4, "a:1"); got != ReplicaDir("/idx", "a:1") {
		t.Fatalf("owner dirFor = %q", got)
	}
	if got := rt.dirFor("/idx", 4, "c:1"); got != "/idx" {
		t.Fatalf("non-owner dirFor = %q", got)
	}
}

// A replicated build must change nothing about the canonical index or its
// answers: same record routing, and the exact query over replicas matches the
// in-process exact search.
func TestReplicatedBuildMatchesUnreplicated(t *testing.T) {
	const n = 1500
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	replDir := filepath.Join(t.TempDir(), "repl")
	rstats, err := BuildDistributedOpts(ctx, pool, srcDir, replDir, t.TempDir(), cfg, BuildOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	plainDir := filepath.Join(t.TempDir(), "plain")
	pstats, err := BuildDistributed(ctx, pool, srcDir, plainDir, t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Records != pstats.Records || rstats.Partitions != pstats.Partitions {
		t.Fatalf("replicated build differs: %d/%d records, %d/%d partitions",
			rstats.Records, pstats.Records, rstats.Partitions, pstats.Partitions)
	}
	if pstats.MapVersion != 0 {
		t.Fatalf("unreplicated build wrote a partition map (v%d)", pstats.MapVersion)
	}
	m, err := LoadPartitionMap(replDir)
	if err != nil || m == nil {
		t.Fatalf("partition map missing: %v", err)
	}
	if len(m.Entries) != rstats.Partitions {
		t.Fatalf("map covers %d partitions, build made %d", len(m.Entries), rstats.Partitions)
	}
	verifyReplicaChecksums(t, replDir, m)

	const k = 5
	for i := int64(0); i < 3; i++ {
		q := dataset.Record(g, 5, 800+i).Values.ZNormalize()
		want := exactBaseline(t, replDir, q, k)
		got, st, err := DistKNNExact(ctx, pool, replDir, cfg, q, k)
		if err != nil || st.Degraded {
			t.Fatalf("query %d: %v (degraded=%v)", i, err, st.Degraded)
		}
		assertSameNeighbors(t, "replicated exact", got, want)
	}
}
