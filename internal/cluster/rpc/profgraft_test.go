package rpc

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/qprof"
)

// TestProfileGraftUnderFailover proves the flight recorder's cross-worker
// graft protocol is failover-correct: with the first KNNPartition call on w1
// injected to fail, the coordinator's profile must show the failed transport
// attempt AND exactly one grafted worker scan per partition — the retried
// partition's scan appears once, marked retried, because only the successful
// attempt carries a reply with a sub-profile.
func TestProfileGraftUnderFailover(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: PointWorkerKNN, Label: "w1", Kind: faultinj.KindErr, Hits: []int{1},
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	prof := qprof.New("dist")
	pctx := qprof.NewContext(ctx, prof)
	q := dataset.Record(g, 5, 42).Values.ZNormalize()
	res, st, err := DistKNN(pctx, pool, dstDir, cfg, q, 5)
	faultinj.Disable()
	if err != nil {
		t.Fatalf("profiled query failed: %v", err)
	}
	if len(res) == 0 || st.Degraded {
		t.Fatalf("query degraded or empty under a retryable fault: %d results, %+v", len(res), st)
	}
	if len(sched.Events()) == 0 {
		t.Fatal("failpoint never fired; test exercised nothing")
	}

	prof.Finish(st.Duration, nil)
	snap := prof.Snapshot()
	prof.Release()

	// Every partition's grafted scan appears exactly once, with the remote
	// address and worker id stamped.
	byPID := map[int]int{}
	for _, sc := range snap.Scans {
		byPID[sc.PID]++
		if sc.Addr == "" || sc.WorkerID == "" {
			t.Errorf("grafted scan for p%d missing location: addr=%q worker_id=%q", sc.PID, sc.Addr, sc.WorkerID)
		}
	}
	for pid, c := range byPID {
		if c != 1 {
			t.Errorf("partition %d grafted %d times, want exactly 1", pid, c)
		}
	}
	if len(byPID) != st.PartitionsLoaded {
		t.Errorf("grafted %d partitions, stats loaded %d", len(byPID), st.PartitionsLoaded)
	}

	// The injected failure shows up as a transport attempt with its error,
	// and the same partition has a later successful attempt plus a scan
	// marked retried.
	failedPID := -1
	for _, rc := range snap.RPCs {
		if rc.Err != "" {
			if !strings.Contains(rc.Err, "injected") {
				t.Errorf("rpc attempt failed with unexpected error %q", rc.Err)
			}
			failedPID = rc.PID
		}
	}
	if failedPID < 0 {
		t.Fatal("no failed rpc attempt recorded")
	}
	var sawRetrySuccess bool
	for _, rc := range snap.RPCs {
		if rc.PID == failedPID && rc.Err == "" {
			if rc.Attempt < 2 {
				t.Errorf("successful call for faulted p%d has attempt %d, want >= 2", failedPID, rc.Attempt)
			}
			sawRetrySuccess = true
		}
	}
	if !sawRetrySuccess {
		t.Errorf("no successful retry attempt recorded for faulted partition %d", failedPID)
	}
	var retriedScans int
	for _, sc := range snap.Scans {
		if sc.Retried {
			retriedScans++
			if sc.PID != failedPID {
				t.Errorf("scan for p%d marked retried; fault hit p%d", sc.PID, failedPID)
			}
		}
	}
	if retriedScans != 1 {
		t.Errorf("%d scans marked retried, want exactly 1", retriedScans)
	}

	// The stage skeleton survived the fan-out.
	stages := map[string]bool{}
	for _, stg := range snap.Stages {
		stages[stg.Name] = true
	}
	for _, want := range []string{"plan", "seed-scan", "fanout"} {
		if !stages[want] {
			t.Errorf("missing stage %q; got %v", want, snap.Stages)
		}
	}
}
